#!/usr/bin/env python
"""Online serving walkthrough: request streams, SLOs, and dispatch policies.

Builds the request-level serving engine on the default StepStone system,
replays the same Poisson stream of BERT inference requests under the three
dispatch policies (all-CPU, StepStone PIM with batch-32 splitting, and the
concurrent CPU+PIM hybrid), and prints the latency percentiles and
sustained throughput of each — the online view of the paper's §V-A/§V-B
batch-level claims.

Run:  python examples/online_serving.py
"""

from repro.serving import OnlineServingEngine, poisson_requests

MODEL = "BERT"
SEED = 7


def main() -> None:
    engine = OnlineServingEngine()

    # --- Capacity planning: what can each backend sustain? --------------
    print(f"{MODEL} batch service times (the engine's dispatch table):")
    print(f"{'batch':>6} {'cpu ms':>10} {'pim ms':>10} {'hybrid ms':>10}")
    for batch in (1, 8, 32, 64):
        row = [engine.batch_latency(MODEL, p, batch) * 1e3 for p in ("cpu", "pim", "hybrid")]
        print(f"{batch:>6} {row[0]:>10.1f} {row[1]:>10.1f} {row[2]:>10.1f}")
    caps = {
        p: engine.max_batch / engine.batch_latency(MODEL, p, engine.max_batch)
        for p in ("cpu", "pim", "hybrid")
    }
    print(
        "\nfull-batch capacity: "
        + ", ".join(f"{p} {c:.0f} req/s" for p, c in caps.items())
    )

    # --- A latency-bound stream: PIM's batch-1 advantage. ----------------
    slo_s = 20 * engine.min_latency(MODEL, "cpu")
    low = poisson_requests(MODEL, rate_rps=35, duration_s=4.0, seed=SEED, slo_s=slo_s)
    print(f"\nlow load: {len(low)} requests at 35 req/s, SLO {slo_s * 1e3:.0f} ms")
    for policy in ("cpu", "pim", "hybrid"):
        print("  " + engine.run(low, policy).summary())

    # --- An overloaded stream: the hybrid split sustains more. -----------
    high = poisson_requests(MODEL, rate_rps=300, duration_s=2.0, seed=SEED, slo_s=slo_s)
    print(f"\noverload: {len(high)} requests at 300 req/s, same SLO")
    reports = engine.run_policies(high)
    for policy in ("cpu", "pim", "hybrid"):
        print("  " + reports[policy].summary())
    best_single = max(reports["cpu"].throughput_rps, reports["pim"].throughput_rps)
    gain = reports["hybrid"].throughput_rps / best_single
    print(
        f"\nhybrid sustains {gain:.2f}x the best single backend: the CPU "
        "share of each batch runs concurrently with the PIM sweep (§I), so "
        "neither resource idles."
    )
    assert reports["hybrid"].throughput_rps >= best_single


if __name__ == "__main__":
    main()
