#!/usr/bin/env python
"""Generative serving walkthrough: a chat day on one StepStone socket.

Generates a diurnal stream of chat-style generation requests (short
prompts, mixed output lengths), serves it twice on a single
StepStone-class node — once with classic static batching, once with
iteration-level continuous batching — and prints TTFT, inter-token
latency, and token goodput side by side.  Then drives the KV-cache
budget to saturation to show admissions queue (and preempt) instead of
overflowing.

Run:  PYTHONPATH=src python examples/genai_serving.py
"""

from repro.autoscale import DiurnalTrace
from repro.genai import (
    GPT2_XL,
    ContinuousBatcher,
    GenerativeEngine,
    GenRequest,
    StaticBatcher,
    trace_gen_requests,
)
from repro.serving import STEPSTONE_NODE, OnlineServingEngine

SEED = 11


def main() -> None:
    shared = OnlineServingEngine()

    # --- The traffic: a compressed "day" of chat requests. ---------------
    trace = DiurnalTrace(trough_rps=0.2, peak_rps=1.0, period_s=60.0)
    stream = trace_gen_requests(
        trace,
        duration_s=120.0,
        prompt_range=(16, 48),
        output_range=(8, 96),
        seed=SEED,
    )
    print(
        f"diurnal chat trace {trace.trough_rps:.1f}->{trace.peak_rps:.1f} req/s: "
        f"{len(stream)} requests over 120 s, prompts 16-48, outputs 8-96 tokens"
    )

    # --- One node, what the model costs it. ------------------------------
    eng = GenerativeEngine(config=GPT2_XL, spec=STEPSTONE_NODE, engine=shared)
    print(
        f"{GPT2_XL.name} on {STEPSTONE_NODE.name}: "
        f"{GPT2_XL.weight_bytes / 1e9:.1f} GB of weights, "
        f"{GPT2_XL.kv_bytes_per_token / 1e3:.0f} KB of KV per token, "
        f"{eng.kv_capacity_tokens} cached tokens fit beside the weights"
    )
    print(
        f"one decode step: {eng.gemm_seconds(1) * 1e3:.1f} ms at batch 1, "
        f"{eng.gemm_seconds(8) * 1e3:.1f} ms at batch 8 — "
        "wider batches amortize the weight stream"
    )

    # --- Serve the same stream under both batching disciplines. ----------
    print()
    for sched in (StaticBatcher(), ContinuousBatcher()):
        rep = GenerativeEngine(
            scheduler=sched, max_batch=8, engine=shared
        ).run(stream)
        print(f"  {rep.summary()}")
    print(
        "  -> continuous batching lets short sequences hand their slot to "
        "arrivals:\n     TTFT tracks prefill time instead of batch-drain time."
    )

    # --- KV pressure: a burst against a tiny cache budget. ---------------
    burst = [GenRequest(i, 0.05 * i, prompt_tokens=32, max_new_tokens=32)
             for i in range(20)]
    rep = GenerativeEngine(
        max_batch=8, kv_capacity_tokens=200, engine=shared
    ).run(burst)
    print(
        f"\n20-request burst vs a 200-token KV budget: "
        f"high-water {rep.kv_high_water_tokens}/{rep.kv_capacity_tokens} tokens, "
        f"peak queue {rep.peak_waiting}, {rep.preemptions} preemptions, "
        f"{rep.served}/{len(burst)} served — the wall queues, it never overflows"
    )
    assert rep.kv_high_water_tokens <= rep.kv_capacity_tokens
    assert rep.served == len(burst)


if __name__ == "__main__":
    main()
