#!/usr/bin/env python
"""PIM-level autotuner: the §III-E optimization space in action.

For a sweep of weight-matrix shapes and batch sizes, shows which execution
configuration the scheduler picks (BG vs DV, full vs half PIMs, or CPU),
and the latency landscape behind the choice — the XLM-style dynamic level
switching of §V-B and the Fig. 10 subsetting tradeoff.

Run:  python examples/pim_level_autotuner.py
"""

from repro import PimLevel, StepStoneSystem
from repro.baselines.cpu import CpuGemmModel
from repro.core.gemm import GemmShape


def main() -> None:
    system = StepStoneSystem.default()
    cpu = CpuGemmModel()

    print("latency (DRAM kcycles) per configuration; * marks the winner\n")
    shapes = [(512, 2048), (1024, 4096), (2048, 8192), (8192, 2048)]
    batches = [1, 4, 16, 32, 64]
    for m, k in shapes:
        print(f"weights {m}x{k}:")
        print(f"{'batch':>6} {'BG':>10} {'BG/2':>10} {'DV':>10} {'CPU':>10}  chosen")
        for n in batches:
            row = {}
            for label, kwargs in (
                ("BG", dict(level=PimLevel.BANKGROUP)),
                ("BG/2", dict(level=PimLevel.BANKGROUP, pinned_id_bits=1)),
                ("DV", dict(level=PimLevel.DEVICE)),
            ):
                try:
                    row[label] = system.run_gemm(m, k, n, **kwargs).breakdown.total / 1e3
                except ValueError:
                    row[label] = float("inf")  # infeasible (scratchpad)
            row["CPU"] = cpu.gemm_cycles(GemmShape(m, k, n)) / 1e3
            winner = min(row, key=row.get)
            cells = "".join(
                f"{('*' if lbl == winner else '') + (f'{v:.0f}' if v != float('inf') else '-'):>11}"
                for lbl, v in row.items()
            )
            print(f"{n:>6}{cells}  {winner}")
        print()
    print(
        "BG wins at small batch, DV once arithmetic saturates, half-PIM "
        "subsetting on small matrices, and the CPU only at large batch — "
        "the §III-E/§V-B selection behaviour."
    )


if __name__ == "__main__":
    main()
