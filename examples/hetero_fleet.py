#!/usr/bin/env python
"""Heterogeneous fleet walkthrough: choosing substrates with dollars.

Compares the three node types (StepStone socket, plain Xeon host, Titan
Xp host) on one model, asks the cost-minimizing planner which fleet
serves each traffic regime cheapest under a p99 SLO, and finishes with an
elastic day: a fixed StepStone baseline plus a GPU pool rented only
around the peak.

Run:  PYTHONPATH=src python examples/hetero_fleet.py
"""

from repro.autoscale import (
    BaselineBurstPolicy,
    HeteroElasticCluster,
    NodePool,
    StaticMixPolicy,
)
from repro.autoscale.policies import node_capacity_rps
from repro.autoscale.traces import DiurnalTrace, mix_requests
from repro.cluster import HeteroCapacityPlanner
from repro.serving import (
    CPU_NODE,
    GPU_NODE,
    STEPSTONE_NODE,
    OnlineServingEngine,
)

SEED = 11
MIX = {"BERT": 0.9, "DLRM": 0.1}
CATALOG = (STEPSTONE_NODE, CPU_NODE, GPU_NODE)


def main() -> None:
    engine = OnlineServingEngine()

    # --- The substrates: same batch, very different service times. ------
    print("BERT batch service time per substrate (ms):")
    print(f"  {'batch':>6} " + " ".join(f"{s.name:>10}" for s in CATALOG))
    for batch in (1, 8, 64):
        cells = " ".join(
            f"{engine.batch_latency('BERT', 'hybrid', batch, spec=s) * 1e3:10.2f}"
            for s in CATALOG
        )
        print(f"  {batch:>6} {cells}")
    print(
        "  prices: "
        + ", ".join(f"{s.name} ${s.hourly_cost:.2f}/hr" for s in CATALOG)
    )

    # --- Planning: cheapest fleet per regime. ----------------------------
    planner = HeteroCapacityPlanner(
        MIX, catalog=CATALOG, engine=engine, n_requests=200, window_slos=4.0,
        seed=SEED,
    )
    print("\ncheapest fleet per traffic regime (90/10 BERT/DLRM):")
    for name, rate, slo_s in (
        ("interactive", 120.0, 0.15),
        ("bulk", 1000.0, 1.0),
        ("peak", 1700.0, 1.0),
    ):
        plan = planner.min_cost_fleet("hybrid", rate, slo_s)
        print(f"  {name:>11} ({rate:4.0f} req/s, {slo_s * 1e3:4.0f} ms p99): "
              f"{plan.summary()}")

    # --- Elastic: rent the GPU only when the diurnal peak needs it. ------
    trace = DiurnalTrace(trough_rps=150.0, peak_rps=1400.0, period_s=12.0)
    requests = mix_requests(
        trace, MIX, duration_s=12.0, seed=SEED, slos={m: 1.0 for m in MIX}
    )
    pools = {
        "stepstone": NodePool(
            spec=STEPSTONE_NODE, min_nodes=1, max_nodes=4, initial_nodes=2
        ),
        "gpu": NodePool(spec=GPU_NODE, min_nodes=0, max_nodes=3, initial_nodes=0),
    }
    cluster = HeteroElasticCluster(
        pools, engine=engine, models=list(MIX), control_interval_s=0.5
    )
    elastic = cluster.run(
        requests,
        BaselineBurstPolicy(
            "stepstone",
            "gpu",
            baseline_nodes=2,
            baseline_capacity_rps=node_capacity_rps(
                engine, MIX, "hybrid", spec=STEPSTONE_NODE
            ),
            burst_capacity_rps=node_capacity_rps(
                engine, MIX, "hybrid", spec=GPU_NODE
            ),
            target=0.85,
        ),
    )
    static = cluster.run(requests, StaticMixPolicy({"stepstone": 2, "gpu": 1}))
    print(f"\ndiurnal {trace.trough_rps:.0f}->{trace.peak_rps:.0f} req/s, "
          "1 s p99 SLO:")
    print(f"  elastic  {elastic.summary()}")
    print(f"  static   {static.summary()}")
    by_pool = elastic.node_seconds_by_pool()
    print(
        f"  gpu rented {by_pool['gpu']:.1f} of {elastic.sim_end_s:.1f} "
        "node-seconds — the burst pool scales to zero at the trough"
    )


if __name__ == "__main__":
    main()
