#!/usr/bin/env python
"""Quickstart: run one DL-inference GEMM on a StepStone PIM system.

Builds the Table II system (DDR4-2400R, Skylake XOR mapping), runs the
paper's representative 1024 x 4096 weight GEMM at batch 4 on each PIM
level, validates the distributed flow against NumPy, and prints the Fig. 6
style latency breakdown plus the scheduler's pick.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PimLevel, StepStoneSystem
from repro.utils.units import cycles_to_us


def main() -> None:
    system = StepStoneSystem.default()
    print(system.describe())
    print()

    m, k, n = 1024, 4096, 4

    # --- Timing: compare the three PIM integration levels (Fig. 6). -----
    print(f"GEMM: C[{m},{n}] = A[{m},{k}] @ B[{k},{n}]  (weights in main memory)")
    header = f"{'level':>6} {'total us':>10} {'gemm':>10} {'loc':>10} {'red':>10} {'buffers':>10}"
    print(header)
    for level in (PimLevel.BANKGROUP, PimLevel.DEVICE, PimLevel.CHANNEL):
        r = system.run_gemm(m, k, n, level=level)
        b = r.breakdown
        buffers = b.fill_b + b.fill_c + b.drain_c
        print(
            f"{level.short:>6} {cycles_to_us(b.total):>10.1f} "
            f"{cycles_to_us(b.gemm):>10.1f} {cycles_to_us(b.localization):>10.1f} "
            f"{cycles_to_us(b.reduction):>10.1f} {cycles_to_us(buffers):>10.1f}"
        )

    # --- Scheduler: let StepStone choose level + PIM subsetting. --------
    choice = system.choose(m, k, n)
    print(f"\nscheduler choice: {choice.describe()}")

    # --- Functional validation: the distributed flow computes A @ B. ----
    rng = np.random.default_rng(42)
    a = rng.standard_normal((256, 2048)).astype(np.float32)
    bmat = rng.standard_normal((2048, n)).astype(np.float32)
    c, stats = system.run_gemm_functional(a, bmat, level=PimLevel.BANKGROUP)
    ref = a.astype(np.float64) @ bmat.astype(np.float64)
    err = float(np.abs(c - ref).max())
    print(
        f"\nfunctional check: {stats.n_active_pims} PIMs x {stats.n_groups} block "
        f"groups covered {stats.blocks_touched}/{stats.total_blocks} blocks; "
        f"max |err| = {err:.2e}"
    )
    assert stats.complete and err < 1e-9


if __name__ == "__main__":
    main()
