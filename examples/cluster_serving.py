#!/usr/bin/env python
"""Fleet serving walkthrough: placement, routing, and capacity planning.

Builds a small fleet of simulated StepStone nodes, places model weights
with replication under per-node memory budgets, replays a skewed
three-model request stream under the three routing policies, and asks the
capacity planner how many nodes each dispatch policy needs for a target
load — the datacenter-scale view the paper's cost argument implies.

Run:  PYTHONPATH=src python examples/cluster_serving.py
"""

from repro.cluster import CapacityPlanner, Cluster, ModelPlacement
from repro.serving import OnlineServingEngine, merge_streams, poisson_requests

SEED = 11


def main() -> None:
    engine = OnlineServingEngine()

    # --- Placement: which nodes can serve which model? -------------------
    placement = ModelPlacement.plan(n_nodes=4, replication=2)
    print("weight placement (4 nodes, 2 replicas, 128 GB budget/node):")
    for model, homes in sorted(placement.replicas.items()):
        gb = engine.models[model].total_weight_bytes / 1e9
        print(f"  {model:>5} ({gb:5.1f} GB) -> nodes {homes}")
    print(
        "  node loads: "
        + ", ".join(
            f"n{nid}={used / 1e9:.0f}GB"
            for nid, used in sorted(placement.used_bytes.items())
        )
    )

    # --- Routing: skewed traffic over overlapping replicas. --------------
    # Node 1 hosts both heavy models; oblivious routing keeps feeding it.
    skew = ModelPlacement(
        replicas={"BERT": [0, 1], "XLM": [1, 2], "DLRM": [2, 0]}, used_bytes={}
    )
    stream = merge_streams(
        poisson_requests(
            "BERT", 450, 2.0, seed=SEED,
            slo_s=4 * engine.min_latency("BERT", "cpu"),
        ),
        poisson_requests(
            "XLM", 18, 2.0, seed=SEED + 1, start_id=100_000,
            slo_s=4 * engine.min_latency("XLM", "cpu"),
        ),
        poisson_requests("DLRM", 100, 2.0, seed=SEED + 2, slo_s=0.5, start_id=200_000),
    )
    print(f"\nskewed stream: {len(stream)} requests over 2 s on a 3-node hybrid fleet")
    for router in ("round-robin", "least-loaded", "affinity"):
        cluster = Cluster(
            3, policy="hybrid", router=router, engine=engine, placement=skew
        )
        report = cluster.run(stream)
        print(f"  {report.summary()}  per-node {report.served_per_node()}")

    # --- Capacity planning: nodes needed per dispatch policy. ------------
    planner = CapacityPlanner(
        {"BERT": 0.9, "DLRM": 0.1}, engine=engine, n_requests=300, seed=SEED
    )
    target, slo = 600.0, 1.0
    print(
        f"\nminimum nodes for {target:.0f} req/s (90% BERT / 10% DLRM) "
        f"at p99 <= {slo * 1e3:.0f} ms:"
    )
    plans = {}
    for policy in ("cpu", "pim", "hybrid"):
        plan = planner.min_nodes(policy, target_rps=target, p99_slo_s=slo, max_nodes=32)
        plans[policy] = plan
        print(
            f"  {policy:>6}: {plan.nodes} nodes "
            f"(p99 {plan.report.p99_s * 1e3:6.1f} ms, "
            f"{len(plan.probes)} probes)"
        )
    saved = plans["cpu"].nodes - plans["hybrid"].nodes
    print(
        f"\nthe hybrid fleet saves {saved} node(s) vs cpu-only at this load: "
        "each node's CPU share runs concurrently with its PIM sweep, so the "
        "same SLO needs less hardware."
    )
    assert plans["hybrid"].nodes <= plans["cpu"].nodes


if __name__ == "__main__":
    main()
