#!/usr/bin/env python
"""Elastic fleet walkthrough: diurnal traffic, autoscalers, and the bill.

Generates a day/night request-rate swing, serves it three ways — a static
fleet sized for the peak by the capacity planner, a reactive autoscaler
sizing from the measured rate, and a predictive autoscaler reading the
trace ahead of the provisioning delay — and compares latency SLO
compliance against machine cost (node-seconds and energy).

Run:  PYTHONPATH=src python examples/autoscale_serving.py
"""

from repro.autoscale import (
    DiurnalTrace,
    ElasticCluster,
    PredictiveTracePolicy,
    SLOFeedbackPolicy,
    StaticPolicy,
    TargetUtilizationPolicy,
    mix_requests,
    node_capacity_rps,
)
from repro.cluster import CapacityPlanner
from repro.serving import OnlineServingEngine

SEED = 11
MIX = {"BERT": 0.9, "DLRM": 0.1}
SLO_S = 1.0


def main() -> None:
    engine = OnlineServingEngine()
    capacity = node_capacity_rps(engine, MIX, "hybrid")
    print(f"one hybrid node sustains ~{capacity:.0f} req/s of the 90/10 mix")

    # --- The traffic: two simulated "days" of diurnal swing. -------------
    trace = DiurnalTrace(trough_rps=60.0, peak_rps=700.0, period_s=12.0)
    horizon = 24.0
    stream = mix_requests(
        trace, MIX, horizon, seed=SEED, slos={m: SLO_S for m in MIX}
    )
    print(
        f"diurnal trace {trace.trough_rps:.0f}->{trace.peak_rps:.0f} req/s, "
        f"{len(stream)} requests over {horizon:.0f} s"
    )

    # --- Static baseline: a fleet sized for the peak. --------------------
    planner = CapacityPlanner(MIX, engine=engine, n_requests=300, seed=SEED)
    peak_plan = planner.min_nodes(
        "hybrid", target_rps=trace.peak_rps, p99_slo_s=SLO_S, max_nodes=16
    )
    print(
        f"\ncapacity planner: the {trace.peak_rps:.0f} req/s peak needs "
        f"{peak_plan.nodes} nodes -> static fleet pays "
        f"{peak_plan.nodes * horizon:.0f} node-s no matter the hour"
    )

    def cluster(start_nodes: int) -> ElasticCluster:
        return ElasticCluster(
            engine=engine,
            policy="hybrid",
            models=sorted(MIX),
            initial_nodes=start_nodes,
            max_nodes=12,
            control_interval_s=0.5,
            provision_base_s=0.15,
            copy_gbps=10.0,
        )

    delay = cluster(1).provision_delay_s
    print(
        f"provisioning a node costs {delay:.2f} s "
        f"(spin-up + {cluster(1).weight_bytes / 1e9:.2f} GB of weights at 10 GB/s)"
    )

    # --- Serve the same stream under each scaling policy. ----------------
    policies = {
        "static-peak": (StaticPolicy(peak_plan.nodes), peak_plan.nodes),
        "reactive": (TargetUtilizationPolicy(capacity, target=0.7), 1),
        "predictive": (
            PredictiveTracePolicy(trace, capacity, lookahead_s=delay + 0.5),
            1,
        ),
    }
    print()
    for name, (policy, start) in policies.items():
        rep = cluster(start).run(list(stream), policy)
        print(f"  {name:>11}: {rep.summary()}")

    # --- The planner anchor: constant load converges to min_nodes. -------
    from repro.autoscale import ConstantTrace

    rate = 300.0
    plan = planner.min_nodes("hybrid", target_rps=rate, p99_slo_s=SLO_S, max_nodes=16)
    anchor = cluster(plan.nodes + 2).run(
        mix_requests(ConstantTrace(rate), MIX, 20.0, seed=SEED),
        SLOFeedbackPolicy(SLO_S, down_margin=0.6, patience=2, settle_s=3.0),
    )
    print(
        f"\nconstant {rate:.0f} req/s: SLO-feedback probes down and settles at "
        f"{anchor.converged_nodes()} nodes; the static planner's binary search "
        f"says {plan.nodes} — the elastic and static layers agree."
    )
    assert anchor.converged_nodes() == plan.nodes


if __name__ == "__main__":
    main()
