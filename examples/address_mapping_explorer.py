#!/usr/bin/env python
"""Address-mapping explorer: visualize PIM striping and block groups.

Renders paper-Fig. 2b-style maps: for a weight matrix under a chosen XOR
address mapping, which PIM owns each cache block, and how matrix rows fall
into StepStone block groups.  Also prints the per-mapping group counts that
drive the Fig. 11 localization differences.

Run:  python examples/address_mapping_explorer.py [mapping_id]
"""

import sys

import numpy as np

from repro.mapping.analysis import analyze_footprint
from repro.mapping.presets import mapping_by_id
from repro.mapping.xor_mapping import PimLevel

GLYPHS = "0123456789abcdef"


def render_block_map(mapping, level, m_rows, k_cols, max_rows=16, max_cols=64):
    fa = analyze_footprint(mapping, level, m_rows, k_cols)
    print(
        f"\n{mapping.name} / {level.short}: {m_rows}x{k_cols} fp32 -> "
        f"{fa.n_active_pims} active PIMs, {fa.n_groups} block groups"
    )
    bb = mapping.geometry.block_bytes
    rows = min(m_rows, max_rows)
    cols = min(fa.blocks_per_row, max_cols)
    print(f"block -> PIM map (first {rows} rows x {cols} block-columns):")
    groups = fa.grouping.row_groups
    for r in range(rows):
        addrs = (
            np.uint64(r * fa.row_bytes)
            + np.arange(cols, dtype=np.uint64) * np.uint64(bb)
        )
        ids = fa._pim_ids(addrs)
        line = "".join(GLYPHS[int(i)] for i in ids)
        print(f"  row {r:>3} [grp {groups[r]:>2}] {line}")
    print("  (each digit is the owning PIM id; rows of one group share a pattern)")


def main() -> None:
    mid = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    mapping = mapping_by_id(mid)
    print(mapping.describe())

    # The paper's Fig. 4 example and a bigger matrix.
    render_block_map(mapping, PimLevel.BANKGROUP, 16, 512)
    render_block_map(mapping, PimLevel.DEVICE, 32, 2048)

    # Fig. 11 driver: block-group (sharing) counts per mapping and shape.
    print("\nblock-group counts (localization replication factor), BG level:")
    shapes = [(512, 2048), (128, 8192), (8192, 128), (1024, 4096)]
    header = "mapping".ljust(18) + "".join(f"{m}x{k}".rjust(12) for m, k in shapes)
    print(header)
    for i in range(5):
        mp = mapping_by_id(i)
        counts = [
            analyze_footprint(mp, PimLevel.BANKGROUP, m, k).n_groups
            for m, k in shapes
        ]
        print(mp.name.ljust(18) + "".join(str(c).rjust(12) for c in counts))


if __name__ == "__main__":
    main()
