#!/usr/bin/env python
"""End-to-end BERT inference across execution backends (Fig. 8 scenario).

Evaluates BERT-large text classification (24 blocks, MLP 1024-4096-1024,
batch 4 x sequence 8) under the measured CPU, the idealized CPU, the prior
PIM approaches (PEI, nCHO, eCHO), and StepStone (STP*, STP), printing the
normalized stack for each and the per-layer dispatch decisions of STP.

Run:  python examples/bert_inference.py
"""

from repro import StepStoneSystem
from repro.models.bert import make_bert
from repro.models.inference import BACKENDS, InferenceEngine
from repro.models.layers import pow2_partition


def main() -> None:
    engine = InferenceEngine()
    spec = make_bert()
    print(f"model: {spec.name}  (GEMM flops/inference: {spec.total_gemm_flops:.2e})")

    results = engine.run_all(spec)
    icpu = results["icpu"]
    print(f"\n{'backend':>8} {'PIM_DV':>8} {'PIM_BG':>8} {'CPU_GEMM':>9} {'CPU_Other':>10} {'total':>8}")
    for backend in BACKENDS:
        n = results[backend].normalized_to(icpu)
        print(
            f"{backend:>8} {n['PIM_DV']:>8.3f} {n['PIM_BG']:>8.3f} "
            f"{n['CPU_GEMM']:>9.3f} {n['CPU_Other']:>10.3f} {n['total']:>8.3f}"
        )
    speedup = results["cpu"].total_s / results["stp"].total_s
    print(f"\nCPU / STP speedup: {speedup:.2f}x")

    # Per-layer dispatch under STP: which unit runs each FC layer?
    system = StepStoneSystem.default()
    print("\nSTP per-layer dispatch (unique shapes):")
    seen = set()
    for inv in spec.gemms:
        key = (inv.shape.m, inv.shape.k, inv.shape.n)
        if key in seen:
            continue
        seen.add(key)
        for tile in pow2_partition(inv.shape):
            choice = system.choose(tile.m, tile.k, tile.n, max_pinned_bits=0)
            print(
                f"  {inv.name:<12} tile {tile.m:>5}x{tile.k:<5} N={tile.n:<3} "
                f"-> {choice.describe()}"
            )


if __name__ == "__main__":
    main()
