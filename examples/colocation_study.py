#!/usr/bin/env python
"""Colocation study: long-running kernels vs. per-call kernels (Fig. 13).

Sweeps CPU memory-traffic intensity (from idle to the full §IV SPEC mix)
and reports the GEMM slowdown of StepStone and eCHO, plus the STP/eCHO
speedup — demonstrating why memory-side address generation (long-running
kernels) matters when the command channel is shared.

Run:  python examples/colocation_study.py
"""

from repro.colocation.contention import run_colocated
from repro.colocation.traffic import SPEC_MIX, SPEC_WORKLOADS
from repro.core.config import StepStoneConfig
from repro.core.gemm import GemmShape
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel


def main() -> None:
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    shape = GemmShape(1024, 4096, 4)
    level = PimLevel.BANKGROUP

    print("colocated CPU applications (SPEC CPU 2017 mix of §IV):")
    for name, w in SPEC_WORKLOADS.items():
        print(
            f"  {name:<9} {w.bandwidth_gbps():5.1f} GB/s demand "
            f"-> channel utilization {w.command_bus_utilization():.2f}"
        )
    u_mix = SPEC_MIX()
    print(f"  mix total utilization: {u_mix:.2f}\n")

    print(f"GEMM {shape.m}x{shape.k} batch {shape.n} at StepStone-{level.short}:")
    print(f"{'cpu util':>9} {'STP gemm':>12} {'eCHO gemm':>12} {'STP/eCHO':>9}")
    baseline = None
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        u = u_mix * frac
        stp = run_colocated(cfg, sky, shape, level, "stepstone", u)
        echo = run_colocated(cfg, sky, shape, level, "echo", u)
        if baseline is None:
            baseline = stp.gemm_cycles
        print(
            f"{u:>9.2f} {stp.gemm_cycles:>12.3e} {echo.gemm_cycles:>12.3e} "
            f"{echo.gemm_cycles / stp.gemm_cycles:>9.2f}"
        )
    print(
        "\nSTP's single long-running kernel is nearly contention-immune; "
        "eCHO's per-dot-product launches stall behind CPU traffic."
    )


if __name__ == "__main__":
    main()
