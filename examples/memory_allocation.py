#!/usr/bin/env python
"""Memory allocation and serving: the OS-level substrate in action.

Walks the full deployment path of a model onto a StepStone system:

1. allocate weight matrices with the colored frame allocator (§III-E),
   including a chunked allocation that pins a PIM-ID bit for subsetting;
2. register regions with the PIM controller's translation engine (§IV);
3. serve request batches with splitting and CPU+PIM hybrid dispatch
   (§V-A/V-B), reporting the break-even batch against the CPU.

Run:  python examples/memory_allocation.py
"""

from repro import PimLevel
from repro.mapping.presets import make_skylake
from repro.osmem.allocator import ColorConstraint, ColoredFrameAllocator
from repro.osmem.translation import TranslationEngine
from repro.serving.scheduler import BatchServer
from repro.utils.units import human_bytes


def main() -> None:
    mapping = make_skylake()
    alloc = ColoredFrameAllocator(mapping, reserve_low=1 << 20)
    engine = TranslationEngine()

    # --- 1. Allocate the BERT MLP weights contiguously. ------------------
    mlp_up = alloc.allocate("bert-mlp-up", 4096 * 1024 * 4)
    mlp_down = alloc.allocate("bert-mlp-down", 1024 * 4096 * 4)
    print("contiguous allocations:")
    for r in (mlp_up, mlp_down):
        print(f"  {r.name:<14} base={r.base:#012x} size={human_bytes(r.size)}")

    # --- 2. A small matrix with PIM subsetting via coloring. -------------
    chunk = 32 * 1024
    pinnable = alloc.pinnable_id_bits(PimLevel.BANKGROUP, chunk)
    print(
        f"\npinnable BG-level ID bits at {human_bytes(chunk)} chunks: {pinnable} "
        "(BG1 and RK under Skylake; BG0/CH are fed by offset bits)"
    )
    constraint = ColorConstraint.pin(PimLevel.BANKGROUP, b1=0)
    small = alloc.allocate_chunked("top-mlp", 512 * 512 * 4, chunk, constraint)
    assert alloc.verify_pinning(small)
    assert alloc.verify_consistent_striping(small, PimLevel.BANKGROUP)
    print(
        f"  {small.name}: {len(small.chunks)} colored chunks, pinned BG1=0 "
        f"-> half the bank-group PIMs, striping consistent: True"
    )

    # --- 3. Translation engine: one lookup per coarse kernel. ------------
    for r in (mlp_up, mlp_down, small):
        engine.register(r)
    n_contig = engine.kernel_command_translations("bert-mlp-up", mlp_up.size)
    n_chunked = engine.kernel_command_translations("top-mlp", small.size)
    print(
        f"\ntranslations per kernel command: contiguous={n_contig}, "
        f"chunked={n_chunked} (why §IV calls translation 'infrequent')"
    )

    # --- 4. Serve batches. -----------------------------------------------
    srv = BatchServer()
    print("\nserving the 1024x4096 MLP layer:")
    for n in (4, 32, 128, 512):
        p = srv.serve(1024, 4096, n)
        h = srv.hybrid_split(1024, 4096, n)
        print(
            f"  batch {n:>4}: best single-engine = {p.backend} "
            f"({p.latency_s * 1e3:.2f} ms); hybrid CPU {h.cpu_batch} + PIM "
            f"{h.pim_batch} -> {h.latency_s * 1e3:.2f} ms"
        )
    be = srv.break_even_batch(1024, 4096)
    print(f"  PIM (with batch splitting) beats the CPU up to batch ~{be}")


if __name__ == "__main__":
    main()
