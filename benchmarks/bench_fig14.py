"""Benchmark + regeneration harness: Fig. 14 power and energy per op."""


def test_fig14(run_bench):
    run_bench("fig14")
