"""Fig. 13 harness: colocation speedup of STP over eCHO.

Also benchmarks the synthetic CPU traffic generator running through the
command-level DRAM simulator (the §IV gem5+Ramulator substitute).
"""

from repro.colocation.traffic import SPEC_WORKLOADS, TrafficGenerator
from repro.dram.controller import ChannelController


def test_fig13(run_bench):
    run_bench("fig13")


def test_fig13_traffic_through_controller(benchmark):
    gen = TrafficGenerator(SPEC_WORKLOADS["mcf"], seed=7)
    reqs = gen.requests(2000)

    def run():
        ctl = ChannelController(refresh=True)
        return ctl.run([r for r in reqs])

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.reads + stats.writes == 2000
