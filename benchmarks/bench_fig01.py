"""Fig. 1 harness: CPU/GPU roofline points for bandwidth-bound GEMMs."""

from repro.baselines.cpu import CpuGemmModel
from repro.baselines.gpu import GpuGemmModel
from repro.core.gemm import GemmShape


def test_fig01(run_bench):
    run_bench("fig01", fast_timing=False)


def test_fig01_cpu_model_sweep(benchmark):
    cpu = CpuGemmModel()

    def sweep():
        return [cpu.gflops(GemmShape(1024, 4096, 1 << i)) for i in range(11)]

    points = benchmark(sweep)
    assert points == sorted(points)  # monotone in batch


def test_fig01_gpu_model_sweep(benchmark):
    gpu = GpuGemmModel()

    def sweep():
        return [
            gpu.gflops(GemmShape(1024, 4096, 1 << i), weights_in_device=False)
            for i in range(11)
        ]

    points = benchmark(sweep)
    assert all(p > 0 for p in points)
