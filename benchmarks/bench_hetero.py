"""Heterogeneous-fleet harness: the mixed-substrate planning hot paths.

Regenerates the ``serve-hetero`` experiment (cross-substrate batch
latencies, the all-StepStone equivalence anchor, cost-optimal fleet
planning across traffic regimes, and the StepStone-baseline + GPU-burst
elastic run) and benchmarks the planner directly: one full cheapest-fleet
search at the peak regime and one simulation of its winning mix.  The
recorded metrics land in ``BENCH_hetero.json`` — the $/hr of the optimal
mix next to both homogeneous fleets is the repo's fleet-economics
trajectory.
"""

from repro.experiments.serve_hetero import REGIMES, hetero_planner
from repro.serving import OnlineServingEngine


def test_serve_hetero_experiment(run_bench):
    run_bench("serve-hetero")


def test_hetero_min_cost_search(benchmark, perf_record):
    """Cheapest-fleet search at the peak regime (1 GPU is ~27% short)."""
    engine = OnlineServingEngine()
    planner = hetero_planner(engine, fast=True)
    _, rate, slo_s = REGIMES[-1]

    def run():
        return planner.min_cost_fleet(
            "hybrid", target_rps=rate, p99_slo_s=slo_s, max_nodes_per_type=16
        )

    plan = benchmark.pedantic(run, rounds=2, iterations=1)
    perf_record(
        "min_cost_fleet_peak",
        benchmark,
        mix=" + ".join(f"{c}x{n}" for n, c in sorted(plan.counts.items())),
        mix_cost_per_hr=round(plan.hourly_cost, 2),
        stepstone_cost_per_hr=round(plan.homogeneous_cost("stepstone"), 2),
        gpu_cost_per_hr=round(plan.homogeneous_cost("gpu"), 2),
        p99_ms=round(plan.report.p99_s * 1e3, 2),
        probes=len(plan.probes),
    )
    assert plan.hourly_cost < plan.homogeneous_cost("stepstone")
    assert plan.hourly_cost < plan.homogeneous_cost("gpu")


def test_mixed_fleet_simulation(benchmark, perf_record):
    """One simulation of the peak regime's winning mixed fleet."""
    engine = OnlineServingEngine()
    planner = hetero_planner(engine, fast=True)
    _, rate, slo_s = REGIMES[-1]
    plan = planner.min_cost_fleet(
        "hybrid", target_rps=rate, p99_slo_s=slo_s, max_nodes_per_type=16
    )

    def run():
        return planner.sustains_fleet(plan.counts, "hybrid", rate, slo_s)

    ok, report = benchmark.pedantic(run, rounds=2, iterations=1)
    perf_record(
        "mixed_fleet_simulation",
        benchmark,
        requests=report.offered,
        nodes=plan.total_nodes,
        goodput_rps=round(report.goodput_rps, 2),
        joules_per_request=round(report.joules_per_request, 3),
    )
    assert ok
