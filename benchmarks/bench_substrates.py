"""Substrate micro-benchmarks: DRAM simulators and the XOR mapping layer.

Not a paper artifact — these track the cost of the building blocks every
experiment rests on (useful when tuning the vectorized paths against the
command-level reference).
"""

import numpy as np
import pytest

from repro.dram.commands import BankCoord, Request
from repro.dram.controller import ChannelController
from repro.dram.stream import StreamAccess, stream_cycles
from repro.mapping.presets import make_skylake

SKY = make_skylake()


def test_controller_row_hit_stream(benchmark, perf_record):
    def run():
        ctl = ChannelController(refresh=False)
        reqs = [
            Request(arrival=0, coord=BankCoord(0, i % 4, 0), row=i // 64, column=i % 128, request_id=i)
            for i in range(3000)
        ]
        return ctl.run(reqs)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    perf_record("controller_row_hit_stream", benchmark, reads=stats.reads)
    assert stats.reads == 3000


@pytest.mark.parametrize("n", [10_000, 1_000_000])
def test_stream_model_scaling(benchmark, n):
    rng = np.random.default_rng(0)
    bg = rng.integers(0, 4, n)
    acc = StreamAccess(
        rank=np.zeros(n, dtype=np.int64),
        bankgroup=bg,
        bank=bg * 4,
        row=np.repeat(np.arange(n // 128 + 1), 128)[:n],
    )
    stats = benchmark(stream_cycles, acc)
    assert stats.accesses == n


def test_mapping_vectorized_throughput(benchmark, perf_record):
    addrs = np.arange(1_000_000, dtype=np.uint64) * np.uint64(64)

    def run():
        return SKY.coords_arrays(addrs)

    coords = benchmark(run)
    perf_record("mapping_vectorized_1M", benchmark, addresses=1_000_000)
    assert len(coords["row"]) == 1_000_000
