"""Scale harness: flat-memory streaming runs versus full recording.

Each row replays the ``serve-scale`` diurnal day (or a slice of it) in a
**fresh subprocess** and reads the child's peak RSS from
``ru_maxrss`` — the only honest per-run memory number, since an
in-process run would inherit the parent interpreter's high-water mark.

The matrix crosses run length (~100k, ~1M, and — behind
``REPRO_SCALE_FULL=1`` — the full ~10M-request day) with recording mode:

* ``streaming`` rows use lazy generator arrivals plus the P² sketch
  recorder: peak RSS must stay flat as the trace grows 10x (and 100x);
* ``full`` rows materialize the request list and every per-request
  record — the pre-refactor behavior — so RSS grows linearly, which is
  exactly the contrast ``BENCH_scale.json`` exists to document.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from conftest import record_perf
from repro.experiments.serve_scale import DAY_S

ROOT = Path(__file__).resolve().parent.parent

#: Mean offered rate of the serve-scale diurnal trace (req/s); horizons
#: below are request targets divided by this.
_MEAN_RPS = 116.0

_CHILD = """
import json, resource, sys, time

horizon = float(sys.argv[1])
record = sys.argv[2]

from repro.autoscale import TargetUtilizationPolicy, mix_requests, node_capacity_rps
from repro.experiments.serve_scale import (
    DISPATCH, MIX, SLO_S, make_scale_cluster, run_streaming_day, scale_trace,
)
from repro.serving.engine import OnlineServingEngine

t0 = time.perf_counter()
if record == "streaming":
    rep = run_streaming_day(horizon, period_s=horizon)
else:
    engine = OnlineServingEngine()
    stream = mix_requests(
        scale_trace(period_s=horizon),
        MIX,
        horizon,
        seed=42,
        slos={m: SLO_S for m in MIX},
    )
    cluster = make_scale_cluster(engine, record="full")
    rep = cluster.run(
        stream,
        TargetUtilizationPolicy(
            node_capacity_rps(engine, MIX, DISPATCH), target=0.7
        ),
    )
wall = time.perf_counter() - t0
print(json.dumps({
    "served": rep.served,
    "events": rep.events_processed,
    "wall_s": round(wall, 3),
    "events_per_s": round(rep.events_processed / wall) if wall else 0,
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
    ),
}))
"""


def _measure(horizon_s: float, record: str) -> dict:
    """Run one diurnal serving run in a child process; return its stats."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, str(horizon_s), record],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _row(entry: str, horizon_s: float, record: str) -> dict:
    stats = _measure(horizon_s, record)
    record_perf(
        "scale",
        entry,
        stats["wall_s"],
        served=stats["served"],
        events_per_s=stats["events_per_s"],
        peak_rss_mb=stats["peak_rss_mb"],
        record=record,
        horizon_s=horizon_s,
    )
    return stats


def test_streaming_rss_stays_flat_100k_to_1m():
    """10x the requests, (near-)constant memory: the tentpole claim."""
    small = _row("streaming_100k", DAY_S / 100, "streaming")
    big = _row("streaming_1m", DAY_S / 10, "streaming")
    assert big["served"] > 8 * small["served"]
    # Flat means bounded by structure size, not trace length: allow the
    # interpreter some slack but nothing resembling 10x growth.
    assert big["peak_rss_mb"] < small["peak_rss_mb"] * 1.5, (small, big)


def test_full_recording_grows_linearly():
    """The pre-refactor mode keeps every record; its RSS curve is the
    contrast that makes the flat streaming curve meaningful."""
    small = _row("full_100k", DAY_S / 100, "full")
    big = _row("full_1m", DAY_S / 10, "full")
    assert big["served"] > 8 * small["served"]
    assert big["peak_rss_mb"] > small["peak_rss_mb"] * 2.0, (small, big)


@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_FULL") != "1",
    reason="~10 min; set REPRO_SCALE_FULL=1 to (re)measure the 10M row",
)
def test_streaming_full_day_10m():
    """The headline: one 24 h diurnal day, ~10M requests, flat RSS."""
    base = _row("streaming_1m_anchor", DAY_S / 10, "streaming")
    day = _row("streaming_10m", DAY_S, "streaming")
    assert day["served"] > 9_000_000
    assert day["peak_rss_mb"] < base["peak_rss_mb"] * 1.5, (base, day)
