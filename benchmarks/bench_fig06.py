"""Fig. 6 harness: GEMM latency breakdown across PIM levels vs. the CPU.

Regenerates the stacked-bar series (printed once) and benchmarks the
per-level timing executor on the representative 1024 x 4096 matrix.
"""

import pytest

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel

CFG = StepStoneConfig.default()
SKY = make_skylake()


def test_fig06(run_bench):
    run_bench("fig06")


@pytest.mark.parametrize("level", list(PimLevel), ids=lambda l: l.short)
def test_fig06_executor_batch4(benchmark, level):
    shape = GemmShape(1024, 4096, 4)
    result = benchmark(execute_gemm, CFG, SKY, shape, level)
    assert result.breakdown.total > 0


@pytest.mark.parametrize("n", [1, 32])
def test_fig06_executor_bg_batch(benchmark, n):
    shape = GemmShape(1024, 4096, n)
    result = benchmark(execute_gemm, CFG, SKY, shape, PimLevel.BANKGROUP)
    assert result.breakdown.total > 0
