"""Benchmark + regeneration harness: Fig. 7 rooflines incl. StepStone-BG/DV."""


def test_fig07(run_bench):
    run_bench("fig07")
