"""Benchmark + regeneration harness: Fig. 10 all-vs-half PIM tradeoff."""


def test_fig10(run_bench):
    run_bench("fig10")
