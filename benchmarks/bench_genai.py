"""Generative-serving harness: token throughput of the decode loop.

``repro.genai`` stacks per-token DECODE_STEP events on the shared sim
kernel, so its hot path is the decode boundary: release finished
sequences, admit joiners, reserve KV growth, price one GEMM.  The
``decode_10k`` twin entries drive 10k sequences of decode-heavy traffic
(fixed 16-token prompts so the latency memo stays warm, 32 output
tokens each) through a ContinuousBatcher — once through the
macro-stepped segment path (``fast_path: true``) and once through the
token-at-a-time reference loop (``decode_10k_slow``), so the artifact
keeps both sides of the PR 10 speedup claim.  ``width_sweep`` prices
the continuous-vs-static goodput argument across batch widths on the
fast path, and ``serve-genai`` regenerates the experiment.  The
recorded metrics land in ``BENCH_genai.json`` — the repo's perf
trajectory for the generative layer.
"""

from repro.genai import (
    ContinuousBatcher,
    GenerativeEngine,
    StaticBatcher,
    gen_requests,
)
from repro.genai import fast as gfast
from repro.serving import OnlineServingEngine


def decode_heavy_stream():
    """10k sequences, fixed lengths: prompt 16, output 32 tokens."""
    return gen_requests(
        rate_rps=200.0,
        duration_s=50.0,
        prompt_range=(16, 16),
        output_range=(32, 32),
        seed=42,
    )


def _engine(shared, scheduler=None, max_batch=8):
    return GenerativeEngine(
        scheduler=scheduler if scheduler is not None else ContinuousBatcher(),
        max_batch=max_batch,
        engine=shared,
    )


def test_serve_genai_experiment(run_bench):
    run_bench("serve-genai")


def _bench_decode_10k(benchmark, perf_record, entry, fast):
    stream = decode_heavy_stream()
    shared = OnlineServingEngine()
    eng = _engine(shared)
    # Warm the latency memo so the timing measures the event loop, not
    # first-touch GEMM math.
    eng.run(stream[:200], record="streaming", fast=fast)

    def run():
        return eng.run(stream, record="streaming", fast=fast)

    before = gfast.FAST_RUNS
    rep = benchmark.pedantic(run, rounds=3, iterations=1)
    if fast:
        assert gfast.FAST_RUNS > before, "fast=True fell back"
    wall = float(benchmark.stats.stats.mean)
    perf_record(
        entry,
        benchmark,
        fast_path=fast,
        sequences=len(stream),
        tokens=rep.tokens_out,
        events=rep.events_processed,
        tokens_per_s=round(rep.tokens_out / wall),
        events_per_s=round(rep.events_processed / wall),
        sim_tokens_per_s=round(rep.tokens_per_s, 1),
    )
    assert rep.served == len(stream)
    assert rep.tokens_out == 32 * len(stream)
    assert rep.events_processed > len(stream)  # arrivals + phases


def test_decode_10k_tokens_per_sec(benchmark, perf_record):
    """The macro-stepped decode loop at 10k sequences: one kernel event
    per constant-composition segment (the PR 10 headline number)."""
    _bench_decode_10k(benchmark, perf_record, "decode_10k", fast=True)


def test_decode_10k_slow_reference(benchmark, perf_record):
    """The token-at-a-time reference loop on the same stream — kept so
    the artifact's speedup ratio stays honest across machines."""
    _bench_decode_10k(benchmark, perf_record, "decode_10k_slow", fast=False)


def test_width_sweep_continuous_vs_static(benchmark, perf_record):
    """Simulated goodput, continuous vs static, across batch widths.

    Mixed output lengths (8..64) are what static batching pays for:
    every short sequence pads the decode GEMM until the batch's longest
    finishes.  The sweep runs on the fast path (bit-identical reports)
    and records each combination's simulated tokens/s as one flat entry.
    """
    stream = gen_requests(
        rate_rps=100.0,
        duration_s=20.0,
        prompt_range=(16, 16),
        output_range=(8, 64),
        seed=7,
    )
    widths = (4, 8, 16)
    shared = OnlineServingEngine()
    _engine(shared).run(stream[:100], record="streaming", fast=True)  # warm

    def sweep():
        out = {}
        for w in widths:
            for name, sched in (
                ("continuous", ContinuousBatcher()),
                ("static", StaticBatcher()),
            ):
                rep = _engine(shared, sched, w).run(
                    stream, record="streaming", fast=True
                )
                assert rep.served == len(stream)
                out[f"{name}_b{w}_sim_tokens_per_s"] = round(rep.tokens_per_s, 1)
        return out

    before = gfast.FAST_RUNS
    goodputs = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert gfast.FAST_RUNS > before
    # Continuous must beat static at every width under mixed lengths —
    # the paper-level claim the sweep exists to keep pinned.
    for w in widths:
        assert (
            goodputs[f"continuous_b{w}_sim_tokens_per_s"]
            > goodputs[f"static_b{w}_sim_tokens_per_s"]
        )
    perf_record(
        "width_sweep",
        benchmark,
        fast_path=True,
        sequences=len(stream),
        **goodputs,
    )
