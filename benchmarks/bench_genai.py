"""Generative-serving harness: token throughput of the decode loop.

``repro.genai`` stacks per-token DECODE_STEP events on the shared sim
kernel, so its hot path is the decode boundary: release finished
sequences, admit joiners, reserve KV growth, price one GEMM.  The
``decode_10k`` entry drives 10k sequences of decode-heavy traffic
(fixed 16-token prompts so the latency memo stays warm, 32 output
tokens each) through a ContinuousBatcher and records emitted tokens
and kernel events per wall-second; ``serve-genai`` regenerates the
experiment.  The recorded metrics land in ``BENCH_genai.json`` — the
repo's perf trajectory for the generative layer.
"""

from repro.genai import ContinuousBatcher, GenerativeEngine, gen_requests
from repro.serving import OnlineServingEngine


def decode_heavy_stream():
    """10k sequences, fixed lengths: prompt 16, output 32 tokens."""
    return gen_requests(
        rate_rps=200.0,
        duration_s=50.0,
        prompt_range=(16, 16),
        output_range=(32, 32),
        seed=42,
    )


def test_serve_genai_experiment(run_bench):
    run_bench("serve-genai")


def test_decode_10k_tokens_per_sec(benchmark, perf_record):
    """The decode loop at 10k sequences: tokens/s and events/s of the wall."""
    stream = decode_heavy_stream()
    shared = OnlineServingEngine()
    eng = GenerativeEngine(
        scheduler=ContinuousBatcher(), max_batch=8, engine=shared
    )
    # Warm the latency memo so the timing measures the event loop, not
    # first-touch GEMM math.
    eng.run(stream[:200], record="streaming")

    def run():
        return eng.run(stream, record="streaming")

    rep = benchmark.pedantic(run, rounds=2, iterations=1)
    wall = float(benchmark.stats.stats.mean)
    perf_record(
        "decode_10k",
        benchmark,
        sequences=len(stream),
        tokens=rep.tokens_out,
        events=rep.events_processed,
        tokens_per_s=round(rep.tokens_out / wall),
        events_per_s=round(rep.events_processed / wall),
        sim_tokens_per_s=round(rep.tokens_per_s, 1),
    )
    assert rep.served == len(stream)
    assert rep.tokens_out == 32 * len(stream)
    assert rep.events_processed > len(stream)  # arrivals + phases
