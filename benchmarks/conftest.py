"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact via its experiment runner,
times it with pytest-benchmark, and prints the data series (the rows the
paper's table/figure reports).  Heavy experiments run in ``fast`` mode for
the timed iterations and full mode once for the printed table.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment

_printed = set()


def bench_experiment(benchmark, capsys, experiment_id: str, fast_timing: bool = True):
    """Benchmark an experiment runner and print its full-result table once."""
    benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"fast": fast_timing},
        rounds=1,
        iterations=1,
    )
    if experiment_id not in _printed:
        _printed.add(experiment_id)
        result = run_experiment(experiment_id, fast=False)
        with capsys.disabled():
            print()
            print(result.to_table())
        assert result.all_checks_pass, f"shape checks failed for {experiment_id}"


@pytest.fixture
def run_bench(benchmark, capsys):
    def _run(experiment_id: str, fast_timing: bool = True):
        bench_experiment(benchmark, capsys, experiment_id, fast_timing)

    return _run
