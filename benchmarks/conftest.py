"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact via its experiment runner,
times it with pytest-benchmark, and prints the data series (the rows the
paper's table/figure reports).  Heavy experiments run in ``fast`` mode for
the timed iterations and full mode once for the printed table.

Each bench module also leaves a machine-readable perf artifact behind:
``BENCH_<name>.json`` next to the module (``bench_serving.py`` ->
``BENCH_serving.json``), holding the mean per-round wall time plus key
metrics per entry.  Committed across PRs, these files are the repo's perf
trajectory — diff them to see what a change did to the hot paths.  Every
artifact follows the schema pinned in :mod:`schema` (``wall_s`` per
entry, a ``machine`` tag at top level, normalized ``*_per_s`` throughput
keys) and is validated before being written.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.experiments.registry import run_experiment

_SCHEMA_SPEC = importlib.util.spec_from_file_location(
    "bench_schema", Path(__file__).resolve().parent / "schema.py"
)
_schema = importlib.util.module_from_spec(_SCHEMA_SPEC)
_SCHEMA_SPEC.loader.exec_module(_schema)

_printed = set()
#: bench name -> entry name -> {"wall_s": ..., **metrics}
_PERF: Dict[str, Dict[str, Dict[str, Any]]] = {}


def _bench_name(request) -> str:
    """``benchmarks/bench_serving.py`` -> ``serving``."""
    stem = Path(str(request.node.fspath)).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def record_perf(bench: str, entry: str, wall_s: float, **metrics: Any) -> None:
    """Register one perf data point for this session's BENCH_<bench>.json."""
    _PERF.setdefault(bench, {})[entry] = _schema.migrate_entry(
        {"wall_s": round(wall_s, 6), **metrics}
    )


@pytest.fixture
def perf_record(request):
    """Per-module recorder: ``perf_record("entry", benchmark, **metrics)``
    pulls the mean per-round seconds from the finished benchmark fixture,
    so every artifact entry has the same timing semantics."""

    def _rec(entry: str, benchmark: Any, **metrics: Any) -> None:
        record_perf(
            _bench_name(request),
            entry,
            float(benchmark.stats.stats.mean),
            **metrics,
        )

    return _rec


def pytest_sessionfinish(session, exitstatus):
    if exitstatus != 0:
        return  # don't let a failed/partial run corrupt the perf trajectory
    outdir = Path(__file__).resolve().parent
    for bench, entries in sorted(_PERF.items()):
        path = outdir / f"BENCH_{bench}.json"
        merged: Dict[str, Any] = {}
        if path.exists():  # partial runs (-k, single module) keep old entries
            try:
                old = json.loads(path.read_text()).get("entries", {})
                merged = {k: _schema.migrate_entry(v) for k, v in old.items()}
            except (json.JSONDecodeError, AttributeError):
                merged = {}
        merged.update(entries)
        payload = {
            "bench": bench,
            "machine": _schema.machine_tag(),
            "entries": {k: merged[k] for k in sorted(merged)},
        }
        _schema.validate_bench_payload(payload)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def bench_experiment(
    benchmark, capsys, experiment_id: str, fast_timing: bool = True, recorder=None
):
    """Benchmark an experiment runner and print its full-result table once."""
    timed = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"fast": fast_timing},
        rounds=1,
        iterations=1,
    )
    if recorder is not None:
        recorder(
            f"experiment:{experiment_id}",
            benchmark,
            fast=fast_timing,
            rows=len(timed.rows),
            checks_pass=timed.all_checks_pass,
        )
    if experiment_id not in _printed:
        _printed.add(experiment_id)
        result = run_experiment(experiment_id, fast=False)
        with capsys.disabled():
            print()
            print(result.to_table())
        assert result.all_checks_pass, f"shape checks failed for {experiment_id}"


@pytest.fixture
def run_bench(benchmark, capsys, perf_record):
    def _run(experiment_id: str, fast_timing: bool = True):
        bench_experiment(
            benchmark, capsys, experiment_id, fast_timing, recorder=perf_record
        )

    return _run
