"""Fig. 9 harness: naive vs. StepStone AGEN.

Regenerates the figure's series and benchmarks the address-generation
machinery itself: exact subspace-walk trace generation vs. the vectorized
oracle, plus both iteration-count models.
"""

import pytest

from repro.core.agen import (
    ExactStepStoneAGEN,
    naive_iterations,
    stepstone_iteration_counts,
)
from repro.mapping.analysis import analyze_footprint
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel

SKY = make_skylake()


def test_fig09(run_bench):
    run_bench("fig09")


def test_fig09_exact_agen_trace(benchmark):
    fa = analyze_footprint(SKY, PimLevel.BANKGROUP, 256, 4096)
    pim = int(fa.active_pim_ids()[0])

    def gen():
        return ExactStepStoneAGEN(fa, pim, 0).trace()

    trace = benchmark(gen)
    assert len(trace) > 0


def test_fig09_oracle_trace(benchmark):
    fa = analyze_footprint(SKY, PimLevel.BANKGROUP, 256, 4096)
    pim = int(fa.active_pim_ids()[0])
    trace = benchmark(lambda: fa.blocks_of(pim, 0))
    assert len(trace) > 0


@pytest.mark.parametrize("n", [2**14, 2**18])
def test_fig09_iteration_models(benchmark, n):
    counts = benchmark(stepstone_iteration_counts, n)
    assert counts.mean() < 4.0


def test_fig09_naive_iteration_model(benchmark):
    fa = analyze_footprint(SKY, PimLevel.BANKGROUP, 1024, 4096)
    pim = int(fa.active_pim_ids()[0])
    addrs = fa.blocks_of(pim, 0)
    gaps = benchmark(naive_iterations, addrs)
    assert gaps.max() >= 1
