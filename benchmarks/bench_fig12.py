"""Benchmark + regeneration harness: Fig. 12 scratchpad capacity sweep."""


def test_fig12(run_bench):
    run_bench("fig12")
