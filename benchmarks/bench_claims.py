"""Headline-claims harness (§I contributions, §V-B batch splitting)."""

from repro.serving.scheduler import BatchServer


def test_claims(run_bench):
    run_bench("claims")


def test_claims_serving_break_even(benchmark):
    def run():
        return BatchServer().break_even_batch(1024, 4096, n_max=1024)

    be = benchmark.pedantic(run, rounds=2, iterations=1)
    assert be >= 64


def test_claims_hybrid_split(benchmark):
    srv = BatchServer()
    srv.pim_latency(1024, 4096, 32)  # warm the chunk cache

    h = benchmark(srv.hybrid_split, 1024, 4096, 512)
    assert h.latency_s <= srv.pim_latency(1024, 4096, 512)
