"""The BENCH_*.json perf-artifact schema, one place.

Seven PRs of benchmarks accreted three spellings of "events per second"
and timed everything under a ``mean_s`` key that says nothing about what
was measured.  This module pins the schema every artifact follows:

* top level: ``{"bench": <name>, "machine": <tag>, "entries": {...}}``;
* each entry: ``{"wall_s": <mean seconds per round>, **metrics}`` with
  throughput metrics under the normalized names ``events_per_s`` /
  ``requests_per_s`` / ``tokens_per_s``;
* any entry reporting ``events_per_s`` must also carry a boolean
  ``fast_path`` saying which event loop produced the number — the
  struct-of-arrays path (``repro.sim.fast``) or the reference
  heap-per-event loop.  An events/s figure without that bit is
  uninterpretable across PR 9, where the two paths differ by ~10x.

:func:`validate_bench_payload` is the single gate (the conftest writer
validates before writing, ``tests/test_bench_schema.py`` validates every
committed file), and :func:`migrate_entry` is the single legacy-key
translator the writer applies when merging entries written by older
sessions.
"""

from __future__ import annotations

import platform
import sys
from typing import Any, Dict

__all__ = ["machine_tag", "migrate_entry", "validate_bench_payload", "LEGACY_KEYS"]

#: Legacy key -> normalized key (applied by :func:`migrate_entry`,
#: rejected by :func:`validate_bench_payload`).
LEGACY_KEYS: Dict[str, str] = {
    "mean_s": "wall_s",
    "events_per_sec": "events_per_s",
    "events_per_wall_sec": "events_per_s",
    "requests_per_sec": "requests_per_s",
    "tokens_per_wall_sec": "tokens_per_s",
}


def machine_tag() -> str:
    """A coarse host tag (``os-arch-pyX.Y``) stamped into every artifact
    so cross-machine perf diffs are visibly cross-machine."""
    return (
        f"{platform.system().lower()}-{platform.machine().lower()}"
        f"-py{sys.version_info.major}.{sys.version_info.minor}"
    )


def migrate_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """Translate one entry's legacy keys to the normalized schema.

    Args:
        entry: An entry dict possibly written by an older session.

    Returns:
        A new dict with every :data:`LEGACY_KEYS` name renamed (a
        normalized key already present wins over its legacy alias).
    """
    out: Dict[str, Any] = {}
    for key, value in entry.items():
        target = LEGACY_KEYS.get(key, key)
        if target in out or (target != key and target in entry):
            continue
        out[target] = value
    if "events_per_s" in out and "fast_path" not in out:
        # Entries written before PR 9 predate the fast path, so their
        # events/s figures are reference-loop numbers by construction.
        out["fast_path"] = False
    return out


def validate_bench_payload(payload: Any) -> int:
    """Validate one BENCH_*.json payload against the pinned schema.

    Args:
        payload: The parsed JSON object.

    Returns:
        The number of validated entries.

    Raises:
        ValueError: On a missing/mistyped top-level field, an entry
            without a numeric non-negative ``wall_s``, a legacy metric
            key, a non-scalar metric value, or an ``events_per_s``
            entry without a boolean ``fast_path``.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload must be a JSON object")
    for field, kind in (("bench", str), ("machine", str), ("entries", dict)):
        if not isinstance(payload.get(field), kind):
            raise ValueError(f"payload needs {field!r} of type {kind.__name__}")
    for name, entry in payload["entries"].items():
        if not isinstance(entry, dict):
            raise ValueError(f"entry {name!r} must be an object")
        wall = entry.get("wall_s")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
            raise ValueError(f"entry {name!r} needs numeric non-negative 'wall_s'")
        for key, value in entry.items():
            if key in LEGACY_KEYS:
                raise ValueError(
                    f"entry {name!r} uses legacy key {key!r}; "
                    f"write {LEGACY_KEYS[key]!r}"
                )
            if not isinstance(value, (int, float, bool, str)):
                raise ValueError(f"entry {name!r} metric {key!r} must be scalar")
        if "events_per_s" in entry and not isinstance(
            entry.get("fast_path"), bool
        ):
            raise ValueError(
                f"entry {name!r} reports 'events_per_s' without a boolean "
                "'fast_path' saying which event loop produced it"
            )
    return len(payload["entries"])
