"""Elastic-fleet harness: trace generation and the autoscale control loop.

Regenerates the ``serve-autoscale`` experiment (diurnal elasticity, the
planner convergence anchor, and the flash crowd) and benchmarks the two
hot paths directly: non-homogeneous Poisson stream generation by thinning,
and one diurnal elastic run under the reactive policy.
"""

from repro.autoscale import (
    DiurnalTrace,
    TargetUtilizationPolicy,
    mix_requests,
    node_capacity_rps,
)
from repro.experiments.serve_autoscale import MIX, SLO_S, diurnal_trace, make_cluster
from repro.serving import OnlineServingEngine


def test_serve_autoscale_experiment(run_bench):
    run_bench("serve-autoscale")


def test_nhpp_stream_generation(benchmark, perf_record):
    """Thinned diurnal mix stream: the per-run stream-generation cost."""
    trace = DiurnalTrace(trough_rps=60.0, peak_rps=700.0, period_s=12.0)

    def run():
        return mix_requests(trace, MIX, 24.0, seed=3, slos={m: SLO_S for m in MIX})

    stream = benchmark.pedantic(run, rounds=3, iterations=1)
    perf_record("nhpp_stream_generation", benchmark, requests=len(stream))
    assert stream == sorted(stream, key=lambda r: (r.arrival_s, r.req_id))


def test_elastic_diurnal_reactive(benchmark, perf_record):
    """One diurnal elastic run: control loop + node lifecycle + serving."""
    engine = OnlineServingEngine()
    trace = diurnal_trace(fast=True)
    stream = mix_requests(trace, MIX, 8.0, seed=3, slos={m: SLO_S for m in MIX})
    capacity = node_capacity_rps(engine, MIX, "hybrid")

    def run():
        cluster = make_cluster(engine, initial_nodes=1)
        return cluster.run(stream, TargetUtilizationPolicy(capacity, target=0.7))

    rep = benchmark.pedantic(run, rounds=2, iterations=1)
    perf_record(
        "elastic_diurnal_reactive",
        benchmark,
        requests=len(stream),
        node_seconds=round(rep.node_seconds, 2),
        peak_nodes=rep.peak_fleet_size,
        shed=round(rep.shed_fraction, 4),
    )
    assert rep.served + len(rep.rejected) == len(stream)
