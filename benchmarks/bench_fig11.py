"""Fig. 11 harness: address-mapping sensitivity.

Also benchmarks the footprint analysis (block grouping) itself across the
five Table II mappings — the planning cost a runtime system would pay per
matrix registration.
"""

import pytest

from repro.mapping.analysis import analyze_footprint
from repro.mapping.presets import mapping_by_id
from repro.mapping.xor_mapping import PimLevel


def test_fig11(run_bench):
    run_bench("fig11")


@pytest.mark.parametrize("mid", range(5))
def test_fig11_grouping_cost(benchmark, mid):
    mapping = mapping_by_id(mid)

    def analyze():
        fa = analyze_footprint(mapping, PimLevel.BANKGROUP, 128, 8192)
        # Force the lazy group computation and one column enumeration.
        fa.cols_of(int(fa.active_pim_ids()[0]), 0)
        return fa

    fa = benchmark(analyze)
    assert fa.n_groups >= 1
