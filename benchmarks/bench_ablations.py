"""Design-choice ablation harness (AGEN, lookahead, DMA, granularity,
level selection, kernel fusion)."""

from repro.core.config import StepStoneConfig
from repro.core.fusion import fused_execute
from repro.core.gemm import GemmShape
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel


def test_ablations(run_bench):
    run_bench("ablations")


def test_ablation_fusion_cost(benchmark):
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    r = benchmark(
        fused_execute, cfg, sky, GemmShape(1600, 6400, 4), PimLevel.BANKGROUP
    )
    assert r.savings_fraction > 0.05
