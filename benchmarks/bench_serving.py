"""Online-serving harness: workload sweep over the request-level engine.

Regenerates the ``serve`` experiment (CPU vs PIM vs hybrid dispatch of
Poisson request streams) and benchmarks the engine itself: the memoized
batch-latency model and a full overloaded BERT simulation per policy.
"""

from repro.serving import OnlineServingEngine, poisson_requests


def test_serve_experiment(run_bench):
    run_bench("serve")


def test_serving_bert_overload_sweep(benchmark, perf_record):
    """One overloaded BERT stream simulated under all three policies."""
    engine = OnlineServingEngine()
    requests = poisson_requests(
        "BERT", rate_rps=300, duration_s=2.0, seed=7, slo_s=2.0
    )

    def run():
        return engine.run_policies(requests)

    reports = benchmark.pedantic(run, rounds=2, iterations=1)
    perf_record(
        "bert_overload_sweep",
        benchmark,
        requests=len(requests),
        hybrid_rps=round(reports["hybrid"].throughput_rps, 2),
    )
    best_single = max(reports["cpu"].throughput_rps, reports["pim"].throughput_rps)
    assert reports["hybrid"].throughput_rps >= best_single - 1e-9


def test_serving_batch_latency_model_cold(benchmark, perf_record):
    """Cold-cache cost of the per-batch service-time model (all policies,
    batch sizes 1..64) — the price of admitting one new operating point."""

    def run():
        engine = OnlineServingEngine()  # fresh caches each round
        for policy in ("cpu", "pim", "hybrid"):
            for batch in (1, 4, 16, 64):
                engine.batch_latency("BERT", policy, batch)
        return engine

    engine = benchmark.pedantic(run, rounds=2, iterations=1)
    perf_record(
        "batch_latency_model_cold",
        benchmark,
        cache_entries=len(engine._latency_cache),
    )
    assert len(engine._latency_cache) == 12
