"""Simulation-kernel harness: event throughput of the shared substrate.

The `repro.sim` refactor rebuilt all four serving loops (engine, static
fleet, elastic, hetero) on one discrete-event kernel; this module guards
the cost of that move.  ``hetero_100k`` drives the heaviest loop — a
100k-request heterogeneous elastic run (StepStone baseline + GPU burst
under a diurnal swing) — and records kernel events/sec and requests/sec;
``kernel_micro`` measures the bare kernel (preloaded stream + a finish
scheduled per arrival) with no serving logic on top.  ``serve-chaos``
regenerates the failure-injection experiment the kernel made possible.
The recorded metrics land in ``BENCH_sim.json``; the hetero requests/sec
next to the pre-refactor loop's number is the cost of the abstraction
(it must not be slower).
"""

from repro.autoscale import (
    BaselineBurstPolicy,
    DiurnalTrace,
    HeteroElasticCluster,
    NodePool,
    mix_requests,
)
from repro.autoscale.policies import node_capacity_rps
from repro.serving import GPU_NODE, STEPSTONE_NODE, OnlineServingEngine
from repro.sim import DiscreteEventKernel, Event, EventKind

MIX = {"BERT": 0.9, "DLRM": 0.1}


def hetero_100k_scenario():
    """The 100k-request hetero run: cluster, policy, and stream."""
    engine = OnlineServingEngine()
    cluster = HeteroElasticCluster(
        pools={
            "stepstone": NodePool(
                STEPSTONE_NODE, min_nodes=2, max_nodes=12, initial_nodes=8
            ),
            "gpu": NodePool(GPU_NODE, min_nodes=0, max_nodes=4, initial_nodes=0),
        },
        engine=engine,
        policy="hybrid",
        router="backend-affinity",
        models=sorted(MIX),
        control_interval_s=0.5,
    )
    policy = BaselineBurstPolicy(
        baseline="stepstone",
        burst="gpu",
        baseline_nodes=8,
        baseline_capacity_rps=node_capacity_rps(
            engine, MIX, "hybrid", spec=STEPSTONE_NODE
        ),
        burst_capacity_rps=node_capacity_rps(engine, MIX, "hybrid", spec=GPU_NODE),
    )
    stream = mix_requests(
        DiurnalTrace(trough_rps=1200.0, peak_rps=2800.0, period_s=25.0),
        MIX,
        50.0,
        seed=42,
        slos={m: 1.0 for m in MIX},
    )
    return cluster, policy, stream


def test_serve_chaos_experiment(run_bench):
    run_bench("serve-chaos")


def test_hetero_100k_events_per_sec(benchmark, perf_record):
    """The heaviest loop at 100k requests: the abstraction-cost gate."""
    cluster, policy, stream = hetero_100k_scenario()
    # Warm the engine's latency cache so the timing measures the event
    # loop, not first-touch GEMM math.
    cluster.run(stream[:2000], policy)

    def run():
        return cluster.run(stream, policy)

    rep = benchmark.pedantic(run, rounds=2, iterations=1)
    wall = float(benchmark.stats.stats.mean)
    perf_record(
        "hetero_100k",
        benchmark,
        requests=len(stream),
        events=rep.events_processed,
        events_per_s=round(rep.events_processed / wall),
        requests_per_s=round(len(stream) / wall),
        served=rep.served,
        rejected=len(rep.rejected),
    )
    assert rep.served + len(rep.rejected) == len(stream)
    assert rep.events_processed > len(stream)  # arrivals + finishes + ticks


def test_hetero_100k_profiled(benchmark, perf_record):
    """The same 100k-request loop under `KernelProfiler`: records where
    the per-event Python time goes (handler share, heap-vs-stream split)
    and what self-profiling itself costs next to ``hetero_100k``."""
    from repro.obs import KernelProfiler, RunObserver

    cluster, policy, stream = hetero_100k_scenario()
    cluster.run(stream[:2000], policy)  # warm the latency cache

    prof = KernelProfiler()
    obs = RunObserver(profile=prof)

    def run():
        return cluster.run(stream, policy, obs=obs)

    rep = benchmark.pedantic(run, rounds=2, iterations=1)
    wall = float(benchmark.stats.stats.mean)
    p = prof.profile()
    perf_record(
        "hetero_100k_profiled",
        benchmark,
        requests=len(stream),
        events=rep.events_processed,
        events_per_s=round(rep.events_processed / wall),
        handler_share=round(p.handler_share, 4),
        stream_share=round(p.stream_share, 4),
        top_kind=p.rows()[0]["kind"] if p.rows() else "",
    )
    # The profiler's ledger and the report agree on the last round.
    assert prof.events % rep.events_processed == 0
    assert rep.served + len(rep.rejected) == len(stream)


def test_kernel_micro(benchmark, perf_record):
    """The bare kernel: a preloaded stream plus one scheduled event each."""
    n = 100_000

    def run():
        kernel = DiscreteEventKernel()
        kernel.preload(
            Event(float(i) * 1e-3, EventKind.ARRIVAL, i) for i in range(n)
        )

        def on_arrival(now, events):
            for ev in events:
                kernel.schedule(now + 5e-4, EventKind.FINISH, ev.entity)

        kernel.run({EventKind.ARRIVAL: on_arrival})
        return kernel

    kernel = benchmark.pedantic(run, rounds=3, iterations=1)
    wall = float(benchmark.stats.stats.mean)
    perf_record(
        "kernel_micro",
        benchmark,
        events=kernel.processed,
        events_per_s=round(kernel.processed / wall),
    )
    assert kernel.processed == 2 * n
