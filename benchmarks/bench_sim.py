"""Simulation-kernel harness: event throughput of the shared substrate.

The `repro.sim` refactor rebuilt all four serving loops (engine, static
fleet, elastic, hetero) on one discrete-event kernel; PR 9 added the
struct-of-arrays fast path (`repro.sim.fast`) on top.  This module
guards both:

* ``hetero_100k`` drives the heaviest loop — a 100k-request
  heterogeneous elastic run (StepStone baseline + GPU burst under a
  diurnal swing) — through the fast path, with ``hetero_100k_slow`` as
  the reference-loop anchor next to it (the speedup is their ratio);
* ``engine_800s`` is the headline end-to-end number: a single-engine
  800-second diurnal run at sustainable load, where the fast path
  clears 500k kernel events/sec;
* ``hetero_100k_profiled`` re-runs the hetero scenario under
  ``KernelProfiler`` and records where the per-event Python time goes
  (with batched epochs the handler share stays under half);
* ``kernel_micro`` measures the bare reference kernel (preloaded
  stream + a finish scheduled per arrival) with no serving logic.

Every entry carrying ``events_per_s`` also records ``fast_path`` so the
two loops' numbers are never conflated.  The recorded metrics land in
``BENCH_sim.json``.

Timed iterations warm the engine's latency cache with a full untimed
run, then ``gc.collect(); gc.freeze()`` — the 100k-request stream and
the warmed caches are permanent fixtures of the measurement, and
leaving them in generation 2 costs ~180 collector scans per run on the
reference loop's allocation rate.  ``gc.unfreeze()`` restores the
world after each timed section.
"""

import gc

from repro.autoscale import (
    BaselineBurstPolicy,
    DiurnalTrace,
    HeteroElasticCluster,
    NodePool,
    mix_requests,
)
from repro.autoscale.policies import node_capacity_rps
from repro.serving import GPU_NODE, STEPSTONE_NODE, OnlineServingEngine
from repro.sim import DiscreteEventKernel, Event, EventKind

MIX = {"BERT": 0.9, "DLRM": 0.1}


def hetero_100k_scenario():
    """The 100k-request hetero run: cluster, policy, and stream."""
    engine = OnlineServingEngine()
    cluster = HeteroElasticCluster(
        pools={
            "stepstone": NodePool(
                STEPSTONE_NODE, min_nodes=2, max_nodes=12, initial_nodes=8
            ),
            "gpu": NodePool(GPU_NODE, min_nodes=0, max_nodes=4, initial_nodes=0),
        },
        engine=engine,
        policy="hybrid",
        router="backend-affinity",
        models=sorted(MIX),
        control_interval_s=0.5,
    )
    policy = BaselineBurstPolicy(
        baseline="stepstone",
        burst="gpu",
        baseline_nodes=8,
        baseline_capacity_rps=node_capacity_rps(
            engine, MIX, "hybrid", spec=STEPSTONE_NODE
        ),
        burst_capacity_rps=node_capacity_rps(engine, MIX, "hybrid", spec=GPU_NODE),
    )
    stream = mix_requests(
        DiurnalTrace(trough_rps=1200.0, peak_rps=2800.0, period_s=25.0),
        MIX,
        50.0,
        seed=42,
        slos={m: 1.0 for m in MIX},
    )
    return cluster, policy, stream


def _frozen(benchmark, run, rounds):
    """Time ``run`` with the warmed world frozen out of the collector."""
    gc.collect()
    gc.freeze()
    try:
        return benchmark.pedantic(run, rounds=rounds, iterations=1)
    finally:
        gc.unfreeze()


def test_serve_chaos_experiment(run_bench):
    run_bench("serve-chaos")


def test_hetero_100k_events_per_sec(benchmark, perf_record):
    """The heaviest loop at 100k requests through the fast path."""
    cluster, policy, stream = hetero_100k_scenario()
    # Warm with a full untimed run: the latency cache is keyed by
    # (model, batch size) and the diurnal swing only reaches its peak
    # batch sizes deep into the stream, so a short prefix warm leaves
    # first-touch GEMM math inside the timed rounds.
    cluster.run(stream, policy, fast=True)

    def run():
        return cluster.run(stream, policy, fast=True)

    rep = _frozen(benchmark, run, rounds=3)
    wall = float(benchmark.stats.stats.mean)
    perf_record(
        "hetero_100k",
        benchmark,
        requests=len(stream),
        events=rep.events_processed,
        events_per_s=round(rep.events_processed / wall),
        requests_per_s=round(len(stream) / wall),
        served=rep.served,
        rejected=len(rep.rejected),
        fast_path=True,
    )
    assert rep.served + len(rep.rejected) == len(stream)
    assert rep.events_processed > len(stream)  # arrivals + finishes + ticks


def test_hetero_100k_slow_reference(benchmark, perf_record):
    """The same scenario through the reference loop: the anchor the
    fast-path speedup is measured against."""
    cluster, policy, stream = hetero_100k_scenario()
    cluster.run(stream, policy)  # full warm, same as the fast entry

    def run():
        return cluster.run(stream, policy)

    rep = _frozen(benchmark, run, rounds=1)
    wall = float(benchmark.stats.stats.mean)
    perf_record(
        "hetero_100k_slow",
        benchmark,
        requests=len(stream),
        events=rep.events_processed,
        events_per_s=round(rep.events_processed / wall),
        requests_per_s=round(len(stream) / wall),
        fast_path=False,
    )
    assert rep.served + len(rep.rejected) == len(stream)


def test_engine_800s_events_per_sec(benchmark, perf_record):
    """The headline end-to-end throughput: one engine, an 800-second
    diurnal day at sustainable load, every request served."""
    engine = OnlineServingEngine()
    stream = mix_requests(
        DiurnalTrace(trough_rps=100.0, peak_rps=160.0, period_s=60.0),
        MIX,
        800.0,
        seed=42,
        slos={m: 1.0 for m in MIX},
    )
    engine.run(stream, "hybrid", fast=True)  # warm the latency cache

    def run():
        return engine.run(stream, "hybrid", fast=True)

    rep = _frozen(benchmark, run, rounds=3)
    wall = float(benchmark.stats.stats.mean)
    perf_record(
        "engine_800s",
        benchmark,
        requests=len(stream),
        events=rep.events_processed,
        events_per_s=round(rep.events_processed / wall),
        requests_per_s=round(len(stream) / wall),
        served=rep.served,
        fast_path=True,
    )
    assert rep.served + len(rep.rejected) == len(stream)


def test_hetero_100k_profiled(benchmark, perf_record):
    """The 100k-request fast run under `KernelProfiler`: records where
    the per-event Python time goes (handler share, stream split) and
    what self-profiling costs next to ``hetero_100k``."""
    from repro.obs import KernelProfiler, RunObserver

    cluster, policy, stream = hetero_100k_scenario()
    cluster.run(stream, policy, fast=True)  # full warm, as above

    prof = KernelProfiler()
    obs = RunObserver(profile=prof)

    def run():
        return cluster.run(stream, policy, obs=obs, fast=True)

    rep = _frozen(benchmark, run, rounds=2)
    wall = float(benchmark.stats.stats.mean)
    p = prof.profile()
    perf_record(
        "hetero_100k_profiled",
        benchmark,
        requests=len(stream),
        events=rep.events_processed,
        events_per_s=round(rep.events_processed / wall),
        handler_share=round(p.handler_share, 4),
        stream_share=round(p.stream_share, 4),
        top_kind=p.rows()[0]["kind"] if p.rows() else "",
        fast_path=True,
    )
    # The profiler's ledger and the report agree on the last round.
    assert prof.events % rep.events_processed == 0
    assert rep.served + len(rep.rejected) == len(stream)
    # Batched epochs keep the Python-handler share under half.
    assert p.handler_share < 0.5


def test_kernel_micro(benchmark, perf_record):
    """The bare kernel: a preloaded stream plus one scheduled event each."""
    n = 100_000

    def run():
        kernel = DiscreteEventKernel()
        kernel.preload(
            Event(float(i) * 1e-3, EventKind.ARRIVAL, i) for i in range(n)
        )

        def on_arrival(now, events):
            for ev in events:
                kernel.schedule(now + 5e-4, EventKind.FINISH, ev.entity)

        kernel.run({EventKind.ARRIVAL: on_arrival})
        return kernel

    kernel = benchmark.pedantic(run, rounds=3, iterations=1)
    wall = float(benchmark.stats.stats.mean)
    perf_record(
        "kernel_micro",
        benchmark,
        events=kernel.processed,
        events_per_s=round(kernel.processed / wall),
        fast_path=False,
    )
    assert kernel.processed == 2 * n
