"""Fig. 8 harness: end-to-end inference under all seven backends.

Regenerates the normalized stacks and benchmarks one full model evaluation
(BERT under STP) including GEMM tiling, scheduling, and CPU-op modelling.
"""

from repro.models.inference import InferenceEngine, all_models


def test_fig08(run_bench):
    run_bench("fig08")


def test_fig08_bert_stp(benchmark):
    engine = InferenceEngine()
    spec = all_models()["BERT"]

    def run():
        engine._tile_cache.clear()  # measure a cold evaluation
        return engine.run(spec, "stp")

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.total_s > 0


def test_fig08_dlrm_all_backends(benchmark):
    engine = InferenceEngine()
    spec = all_models()["DLRM"]
    results = benchmark.pedantic(
        lambda: engine.run_all(spec), rounds=2, iterations=1
    )
    assert results["stp"].total_s <= results["cpu"].total_s
