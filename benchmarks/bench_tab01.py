"""Benchmark + regeneration harness: Table I workloads through the scheduler."""


def test_tab01(run_bench):
    run_bench("tab01")
