"""Fleet-serving harness: the cluster simulator's hot paths.

Regenerates the ``serve-cluster`` experiment (routing, scaling, and
capacity planning over simulated StepStone fleets) and benchmarks the
simulator directly: a skewed three-model stream across a 3-node fleet per
routing policy, and one capacity-planner binary search.
"""

from repro.cluster import CapacityPlanner, Cluster
from repro.experiments.serve_cluster import skew_placement, skew_stream
from repro.serving import OnlineServingEngine


def test_serve_cluster_experiment(run_bench):
    run_bench("serve-cluster")


def test_cluster_skewed_fleet_all_routers(benchmark, perf_record):
    """One skewed stream across a 3-node hybrid fleet, all three routers."""
    engine = OnlineServingEngine()
    placement = skew_placement()
    stream = skew_stream(engine, duration_s=1.0)

    def run():
        return {
            router: Cluster(
                3, policy="hybrid", router=router, engine=engine, placement=placement
            ).run(stream)
            for router in ("round-robin", "least-loaded", "affinity")
        }

    reports = benchmark.pedantic(run, rounds=2, iterations=1)
    perf_record(
        "skewed_fleet_all_routers",
        benchmark,
        requests=len(stream),
        jsq_goodput_rps=round(reports["least-loaded"].goodput_rps, 2),
        rr_goodput_rps=round(reports["round-robin"].goodput_rps, 2),
    )
    assert (
        reports["least-loaded"].goodput_rps
        >= reports["round-robin"].goodput_rps - 1e-9
    )


def test_capacity_planner_search(benchmark, perf_record):
    """Binary-search fleet sizing for a 90/10 BERT/DLRM mix (hybrid)."""
    engine = OnlineServingEngine()
    planner = CapacityPlanner(
        {"BERT": 0.9, "DLRM": 0.1},
        engine=engine,
        n_requests=150,
        window_slos=2.0,
        seed=5,
    )

    def run():
        return planner.min_nodes("hybrid", target_rps=300, p99_slo_s=1.0, max_nodes=16)

    plan = benchmark.pedantic(run, rounds=2, iterations=1)
    perf_record(
        "capacity_planner_search",
        benchmark,
        nodes=plan.nodes,
        probes=len(plan.probes),
    )
    assert plan.nodes >= 1
