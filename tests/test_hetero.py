"""Tests for the heterogeneous fleet stack (NodeSpec through autoscale)."""

import math

import pytest

from repro.autoscale import (
    BaselineBurstPolicy,
    HeteroElasticCluster,
    NodePool,
    PerPoolPolicy,
    StaticMixPolicy,
    StaticPolicy,
)
from repro.autoscale.policies import node_capacity_rps
from repro.baselines.gpu import GpuConfig
from repro.cluster import (
    BackendAffinityRouter,
    Cluster,
    ClusterNode,
    HeteroCapacityPlanner,
    ModelPlacement,
    PlacementError,
    make_router,
)
from repro.serving import (
    CPU_NODE,
    GPU_NODE,
    STEPSTONE_NODE,
    NodeSpec,
    OnlineServingEngine,
    Request,
    merge_streams,
    poisson_requests,
)


@pytest.fixture(scope="module")
def eng():
    return OnlineServingEngine()


def _mix_stream(duration_s=1.0, slo_s=1.0, rate=300.0):
    return merge_streams(
        poisson_requests("BERT", 0.9 * rate, duration_s, seed=3, slo_s=slo_s),
        poisson_requests(
            "DLRM", 0.1 * rate, duration_s, seed=4, slo_s=slo_s, start_id=1_000_000
        ),
    )


_EVERYWHERE = ModelPlacement(
    replicas={"BERT": [0, 1, 2], "DLRM": [0, 1, 2]}, used_bytes={}
)


class TestNodeSpec:
    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            NodeSpec(backend="tpu")

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(backend="cpu", memory_bytes=0)
        with pytest.raises(ValueError):
            NodeSpec(backend="cpu", hourly_cost=-1)
        with pytest.raises(ValueError):
            NodeSpec(backend="cpu", idle_w=100.0, busy_w=50.0)

    def test_name_defaults_to_backend(self):
        assert NodeSpec(backend="gpu").name == "gpu"

    def test_effective_policy(self):
        assert STEPSTONE_NODE.effective_policy("hybrid") == "hybrid"
        assert CPU_NODE.effective_policy("hybrid") == "cpu"
        assert GPU_NODE.effective_policy("pim") == "gpu"

    def test_energy_split(self):
        spec = NodeSpec(backend="cpu", idle_w=100.0, busy_w=300.0)
        # 10 s alive, 4 busy: 6*100 + 4*300
        assert spec.energy_j(10.0, 4.0) == pytest.approx(1800.0)

    def test_fits(self):
        assert GPU_NODE.fits(1e9)
        assert not GPU_NODE.fits(47e9)  # GPT2-sized weights


class TestSpecAwareLatencyCache:
    def test_stepstone_spec_shares_legacy_cache_line(self, eng):
        legacy = eng.batch_latency("BERT", "hybrid", 4)
        before = len(eng._latency_cache)
        via_spec = eng.batch_latency("BERT", "hybrid", 4, spec=STEPSTONE_NODE)
        assert via_spec == legacy
        assert len(eng._latency_cache) == before  # same hardware, same line

    def test_different_hardware_never_shares(self, eng):
        """The satellite fix: the cache key carries hardware identity."""
        ss = eng.batch_latency("BERT", "hybrid", 4)
        gpu = eng.batch_latency("BERT", "hybrid", 4, spec=GPU_NODE)
        slow_gpu = NodeSpec(
            backend="gpu", name="gpu-slow", gpu=GpuConfig(device_bw_gbps=50.0)
        )
        slow = eng.batch_latency("BERT", "hybrid", 4, spec=slow_gpu)
        assert ss != gpu
        assert gpu < slow  # distinct GpuConfigs get distinct cache entries

    def test_cpu_spec_matches_cpu_policy(self, eng):
        assert eng.batch_latency("BERT", "hybrid", 8, spec=CPU_NODE) == (
            eng.batch_latency("BERT", "cpu", 8)
        )

    def test_cpu_override_charges_its_own_host_ops(self, eng):
        """A weak-CPU spec pays its own (slower) CPU for the non-GEMM
        host ops too, not the engine's shared 28-core Xeon."""
        from repro.baselines.cpu import CpuConfig

        weak = NodeSpec(
            backend="cpu",
            name="cpu-weak",
            cpu=CpuConfig(name="small-host", cores=4, eff_bw_small_batch_gbps=4.0),
        )
        assert eng.batch_latency("BERT", "cpu", 8, spec=weak) > eng.batch_latency(
            "BERT", "cpu", 8, spec=CPU_NODE
        )

    def test_unknown_policy_still_raises(self, eng):
        with pytest.raises(ValueError, match="unknown policy"):
            eng.batch_latency("BERT", "tpu", 1, spec=GPU_NODE)

    def test_substrate_crossover(self, eng):
        """Fig. 7 shape: StepStone wins batch 1, the GPU wins batch 64."""
        ss1 = eng.batch_latency("BERT", "hybrid", 1, spec=STEPSTONE_NODE)
        gpu1 = eng.batch_latency("BERT", "hybrid", 1, spec=GPU_NODE)
        ss64 = eng.batch_latency("BERT", "hybrid", 64, spec=STEPSTONE_NODE)
        gpu64 = eng.batch_latency("BERT", "hybrid", 64, spec=GPU_NODE)
        assert ss1 < gpu1
        assert gpu64 < ss64


class TestHeteroPlacement:
    def test_per_node_capacities(self):
        # 60 GB + 20 GB nodes: GPT2 (~47 GB) can only land on node 0.
        p = ModelPlacement.plan(
            n_nodes=2, replication=1, capacity_bytes=[60e9, 20e9]
        )
        assert p.replicas["GPT2"] == [0]
        assert p.node_capacity_bytes == {0: 60e9, 1: 20e9}

    def test_capacity_count_mismatch_raises(self):
        with pytest.raises(PlacementError, match="capacities for"):
            ModelPlacement.plan(n_nodes=3, capacity_bytes=[128e9, 128e9])

    def test_plan_for_specs_uses_spec_memory(self, eng):
        models = {m: eng.models[m] for m in ("BERT", "DLRM")}
        p = ModelPlacement.plan_for_specs(
            models, specs=[STEPSTONE_NODE, GPU_NODE], replication=2
        )
        assert p.replicas["BERT"] and p.replicas["DLRM"]

    def test_saturate_skips_oversized_models(self, eng):
        models = {m: eng.models[m] for m in ("BERT", "DLRM", "XLM")}
        p = ModelPlacement.saturate(models, specs=[STEPSTONE_NODE, GPU_NODE])
        assert p.replicas["XLM"] == [0]  # 19 GB cannot fit the 12 GB GPU
        assert p.replicas["BERT"] == [0, 1]

    def test_saturate_unhosted_model_raises(self, eng):
        models = {m: eng.models[m] for m in ("XLM",)}
        with pytest.raises(PlacementError, match="no node can host"):
            ModelPlacement.saturate(models, specs=[GPU_NODE])


class TestBackendAffinityRouter:
    def _nodes(self, eng):
        return [
            ClusterNode(0, eng, "hybrid", spec=GPU_NODE),
            ClusterNode(1, eng, "hybrid", spec=STEPSTONE_NODE),
        ]

    def test_prefers_cheapest_feasible(self, eng):
        nodes = self._nodes(eng)
        r = BackendAffinityRouter()
        req = Request(0, "BERT", 0.0, slo_s=5.0)
        assert r.route(req, nodes, 0.0).node_id == 1  # stepstone is cheaper

    def test_spills_to_faster_backend_when_busy(self, eng):
        nodes = self._nodes(eng)
        # the cheap node is busy past the SLO horizon
        nodes[1].in_flight = [Request(9, "BERT", 0.0)]
        nodes[1].busy_until = 10.0
        r = BackendAffinityRouter()
        req = Request(0, "BERT", 0.0, slo_s=0.5)
        assert r.route(req, nodes, 0.0).node_id == 0

    def test_no_slo_falls_back_to_jsq(self, eng):
        nodes = self._nodes(eng)
        nodes[1].enqueue(Request(5, "BERT", 0.0))
        r = BackendAffinityRouter()
        assert r.route(Request(0, "BERT", 0.0), nodes, 0.0).node_id == 0

    def test_registered_in_make_router(self):
        assert make_router("backend-affinity").name == "backend-affinity"


class TestNodeCapacity:
    def test_spec_capacity_skips_unhostable_models(self, eng):
        """`node_capacity_rps` with a spec covers only the hosted share —
        the GPU's capacity on a BERT+XLM mix equals its pure-BERT one."""
        mix = {"BERT": 0.5, "XLM": 0.5}
        assert node_capacity_rps(eng, mix, "hybrid", spec=GPU_NODE) == (
            pytest.approx(node_capacity_rps(eng, {"BERT": 1.0}, "hybrid", spec=GPU_NODE))
        )

    def test_nothing_fits_raises(self, eng):
        with pytest.raises(ValueError, match="no mix model fits"):
            node_capacity_rps(eng, {"XLM": 1.0}, "hybrid", spec=GPU_NODE)


class TestHeteroClusterAnchors:
    def test_stepstone_spec_fleet_matches_legacy(self, eng):
        """The regression anchor: a fleet of stepstone NodeSpecs is the
        existing Cluster, request for request."""
        stream = _mix_stream()
        legacy = Cluster(3, engine=eng, placement=_EVERYWHERE).run(stream)
        hetero = Cluster(
            engine=eng, placement=_EVERYWHERE, specs=[STEPSTONE_NODE] * 3
        ).run(stream)
        assert [
            (c.request.req_id, c.dispatch_s, c.finish_s, c.batch)
            for c in legacy.completed
        ] == [
            (c.request.req_id, c.dispatch_s, c.finish_s, c.batch)
            for c in hetero.completed
        ]
        assert [r.request.req_id for r in legacy.rejected] == [
            r.request.req_id for r in hetero.rejected
        ]
        assert legacy.sim_end_s == hetero.sim_end_s

    def test_specs_count_mismatch_raises(self, eng):
        with pytest.raises(ValueError, match="disagrees"):
            Cluster(2, engine=eng, specs=[STEPSTONE_NODE] * 3)
        with pytest.raises(ValueError, match="n_nodes or specs"):
            Cluster(engine=eng)

    def test_mixed_fleet_report_cost_energy(self, eng):
        stream = _mix_stream()
        rep = Cluster(
            engine=eng,
            placement=_EVERYWHERE,
            specs=[STEPSTONE_NODE, CPU_NODE, GPU_NODE],
        ).run(stream)
        assert rep.hourly_cost == pytest.approx(
            STEPSTONE_NODE.hourly_cost + CPU_NODE.hourly_cost + GPU_NODE.hourly_cost
        )
        assert rep.energy_j() > 0
        assert rep.joules_per_request > 0
        # nodes report their *effective* policy
        assert [r.policy for r in rep.node_reports] == ["hybrid", "cpu", "gpu"]

    def test_handbuilt_report_cost_is_nan(self, eng):
        from repro.cluster import ClusterReport

        rep = ClusterReport(policy="hybrid", router="least-loaded", node_reports=[])
        assert math.isnan(rep.hourly_cost)
        assert math.isnan(rep.joules_per_request)


class TestHeteroCapacityPlanner:
    def test_duplicate_catalog_names_raise(self, eng):
        with pytest.raises(ValueError, match="duplicate"):
            HeteroCapacityPlanner(
                {"BERT": 1.0}, catalog=(STEPSTONE_NODE, STEPSTONE_NODE), engine=eng
            )

    def test_unknown_spec_in_counts_raises(self, eng):
        p = HeteroCapacityPlanner(
            {"BERT": 1.0}, catalog=(STEPSTONE_NODE,), engine=eng, n_requests=50
        )
        with pytest.raises(KeyError, match="not in the catalog"):
            p.fleet({"tpu": 1}, "hybrid")

    def test_capacity_estimate_orders_substrates(self, eng):
        p = HeteroCapacityPlanner(
            {"BERT": 0.9, "DLRM": 0.1},
            catalog=(STEPSTONE_NODE, CPU_NODE, GPU_NODE),
            engine=eng,
        )
        caps = {s.name: p.capacity_rps(s, "hybrid") for s in p.catalog.values()}
        assert caps["gpu"] > caps["stepstone"] > caps["cpu"] > 0

    def test_mixed_never_costs_more_than_best_homogeneous(self, eng):
        """The planner anchor: the winner's $/hr is bounded by every
        feasible homogeneous fleet's."""
        p = HeteroCapacityPlanner(
            {"BERT": 0.9, "DLRM": 0.1},
            catalog=(STEPSTONE_NODE, GPU_NODE),
            engine=eng,
            n_requests=120,
            window_slos=2.0,
            seed=5,
        )
        plan = p.min_cost_fleet("hybrid", target_rps=300, p99_slo_s=1.0)
        best_homo = min(plan.homogeneous_cost(n) for n in plan.specs)
        assert plan.hourly_cost <= best_homo + 1e-9
        assert plan.report.p99_s <= 1.0

    def test_capacity_estimate_counts_only_hosted_share(self, eng):
        """A node's capacity bound covers only the traffic it can host:
        the GPU (no room for XLM) has the same request capacity on a
        BERT+XLM mix as on pure BERT — not less (the old double-share
        bug under-estimated and could prune the true cheapest mix)."""
        mixed = HeteroCapacityPlanner(
            {"BERT": 0.5, "XLM": 0.5}, catalog=(STEPSTONE_NODE, GPU_NODE), engine=eng
        )
        pure = HeteroCapacityPlanner(
            {"BERT": 1.0}, catalog=(STEPSTONE_NODE, GPU_NODE), engine=eng
        )
        assert mixed.capacity_rps(GPU_NODE, "hybrid") == pytest.approx(
            pure.capacity_rps(GPU_NODE, "hybrid")
        )

    def test_unhostable_mixed_candidate_is_skipped_not_fatal(self, eng):
        """A mixed composition where some model fits no node must be
        treated as infeasible, not crash the search."""
        gpu_a = NodeSpec(
            backend="gpu", name="gpu-a", hourly_cost=0.5, memory_bytes=12e9
        )
        gpu_b = NodeSpec(
            backend="gpu", name="gpu-b", hourly_cost=0.6, memory_bytes=12e9
        )
        p = HeteroCapacityPlanner(
            {"BERT": 0.5, "XLM": 0.5},
            catalog=(STEPSTONE_NODE, gpu_a, gpu_b),
            engine=eng,
            n_requests=60,
            window_slos=1.0,
            seed=5,
        )
        # {gpu-a: 1, gpu-b: 1} is cheaper than the stepstone fleet and
        # passes the capacity prune on its BERT share, but cannot host
        # XLM at all — the search must skip it and land on a fleet that
        # hosts everything.
        plan = p.min_cost_fleet("hybrid", target_rps=20, p99_slo_s=5.0)
        assert plan.counts.get("stepstone", 0) >= 1
        skipped = [
            counts
            for counts, simulated, ok, _, _ in plan.probes
            if set(counts) == {"gpu-a", "gpu-b"} and not ok
        ]
        assert skipped  # the unhostable candidates were probed and rejected

    def test_infeasible_everywhere_raises(self, eng):
        p = HeteroCapacityPlanner(
            {"BERT": 1.0},
            catalog=(CPU_NODE,),
            engine=eng,
            n_requests=40,
            window_slos=1.0,
        )
        # CPU batch-1 BERT (~102 ms) alone busts a 50 ms p99 SLO.
        with pytest.raises(ValueError, match="no homogeneous fleet"):
            p.min_cost_fleet("hybrid", target_rps=50, p99_slo_s=0.05)


def _pools():
    return {
        "stepstone": NodePool(
            spec=STEPSTONE_NODE, min_nodes=1, max_nodes=4, initial_nodes=2
        ),
        "gpu": NodePool(spec=GPU_NODE, min_nodes=0, max_nodes=2, initial_nodes=0),
    }


class TestHeteroElastic:
    def test_pool_validation(self):
        with pytest.raises(ValueError):
            NodePool(spec=GPU_NODE, min_nodes=3, max_nodes=2)
        with pytest.raises(ValueError):
            NodePool(spec=GPU_NODE, min_nodes=0, max_nodes=2, initial_nodes=3)

    def test_unanchored_model_raises(self, eng):
        # XLM (19 GB) only fits the stepstone pool; with min_nodes=0
        # there routing could go dark.
        pools = {
            "stepstone": NodePool(spec=STEPSTONE_NODE, min_nodes=0, initial_nodes=1),
            "gpu": NodePool(spec=GPU_NODE, min_nodes=1, initial_nodes=1),
        }
        with pytest.raises(ValueError, match="routing could go dark"):
            HeteroElasticCluster(pools, engine=eng, models=["XLM"])

    def test_policy_with_unknown_pool_name_raises(self, eng):
        """A typo'd pool name in a policy fails loudly at the first tick
        instead of silently never scaling that pool."""
        cluster = HeteroElasticCluster(
            _pools(), engine=eng, models=["BERT", "DLRM"], control_interval_s=0.5
        )
        with pytest.raises(ValueError, match="unknown pools"):
            cluster.run(
                _mix_stream(rate=100.0),
                StaticMixPolicy({"stepstone": 2, "gpu-burst": 1}),
            )

    def test_static_mix_matches_static_cluster_quality(self, eng):
        """A static all-stepstone mix serves the stream exactly like the
        static fleet (same engine, same event ordering)."""
        from repro.autoscale import ElasticCluster

        stream = _mix_stream(rate=200.0)
        pools = {
            "stepstone": NodePool(
                spec=STEPSTONE_NODE, min_nodes=2, max_nodes=2, initial_nodes=2
            )
        }
        hetero = HeteroElasticCluster(
            pools, engine=eng, models=["BERT", "DLRM"], control_interval_s=0.5
        ).run(stream, StaticMixPolicy({"stepstone": 2}))
        homo = ElasticCluster(
            engine=eng,
            models=["BERT", "DLRM"],
            initial_nodes=2,
            min_nodes=2,
            max_nodes=2,
            control_interval_s=0.5,
        ).run(stream, StaticPolicy(2))
        assert hetero.served == homo.served
        assert hetero.p99_s == homo.p99_s
        assert hetero.sim_end_s == homo.sim_end_s

    def test_baseline_burst_rents_gpu_for_spike(self, eng):
        from repro.autoscale.traces import SpikeTrace, mix_requests

        mix = {"BERT": 0.9, "DLRM": 0.1}
        trace = SpikeTrace(
            base_rps=150.0, spike_rps=1200.0, spike_at_s=2.0, rise_s=0.5,
            decay_s=1.5,
        )
        reqs = mix_requests(trace, mix, duration_s=6.0, seed=9,
                            slos={m: 1.0 for m in mix})
        cluster = HeteroElasticCluster(
            _pools(), engine=eng, models=list(mix), control_interval_s=0.5
        )
        rep = cluster.run(
            reqs,
            BaselineBurstPolicy(
                "stepstone",
                "gpu",
                baseline_nodes=2,
                baseline_capacity_rps=node_capacity_rps(
                    eng, mix, "hybrid", spec=STEPSTONE_NODE
                ),
                burst_capacity_rps=node_capacity_rps(
                    eng, mix, "hybrid", spec=GPU_NODE
                ),
                target=0.85,
            ),
        )
        gpu_counts = [row["gpu_nodes"] for row in rep.pool_timeline]
        assert max(gpu_counts) >= 1  # the spike rented GPU capacity
        assert gpu_counts[0] == 0  # none before the spike
        assert rep.cost_usd > 0
        by_pool = rep.node_seconds_by_pool()
        assert by_pool["gpu"] < by_pool["stepstone"]
        assert rep.node_seconds == pytest.approx(sum(by_pool.values()))

    def test_per_pool_policy_wraps_homogeneous_policies(self, eng):
        from repro.autoscale import TargetUtilizationPolicy

        mix = {"BERT": 0.9, "DLRM": 0.1}
        stream = _mix_stream(rate=250.0, duration_s=2.0)
        cluster = HeteroElasticCluster(
            _pools(), engine=eng, models=list(mix), control_interval_s=0.5
        )
        cap = node_capacity_rps(eng, mix, "hybrid", spec=STEPSTONE_NODE)
        rep = cluster.run(
            stream,
            PerPoolPolicy(
                {"stepstone": TargetUtilizationPolicy(capacity_rps=cap)}
            ),
        )
        assert rep.served + len(rep.rejected) == len(stream)
        # the unmanaged gpu pool held its (empty) size
        assert all(row["gpu_nodes"] == 0 for row in rep.pool_timeline)

    def test_hetero_report_energy_uses_specs(self, eng):
        stream = _mix_stream(rate=150.0)
        pools = {
            "stepstone": NodePool(
                spec=STEPSTONE_NODE, min_nodes=1, max_nodes=1, initial_nodes=1
            )
        }
        rep = HeteroElasticCluster(
            pools, engine=eng, models=["BERT", "DLRM"], control_interval_s=0.5
        ).run(stream, StaticMixPolicy({"stepstone": 1}))
        expect = STEPSTONE_NODE.energy_j(rep.node_seconds, rep.busy_seconds)
        assert rep.energy_j() == pytest.approx(expect)
        assert rep.mean_hourly_cost == pytest.approx(STEPSTONE_NODE.hourly_cost)


class TestHeteroStreamingRecord:
    """Streaming recording on the heterogeneous fleet: run-level and
    per-pool recorder chains must reproduce the full-mode run."""

    @staticmethod
    def _pools():
        return {
            "stepstone": NodePool(
                spec=STEPSTONE_NODE, min_nodes=1, max_nodes=6, initial_nodes=2
            ),
            "gpu": NodePool(spec=GPU_NODE, min_nodes=0, max_nodes=2, initial_nodes=0),
        }

    @staticmethod
    def _policy(eng):
        from repro.autoscale import TargetUtilizationPolicy

        mix = {"BERT": 0.9, "DLRM": 0.1}
        return PerPoolPolicy(
            {
                "stepstone": TargetUtilizationPolicy(
                    node_capacity_rps(eng, mix, "hybrid", spec=STEPSTONE_NODE)
                ),
                "gpu": TargetUtilizationPolicy(
                    node_capacity_rps(eng, mix, "hybrid", spec=GPU_NODE)
                ),
            }
        )

    def test_streaming_matches_full(self, eng):
        reqs = _mix_stream(duration_s=10.0, rate=300.0)
        runs = {}
        for mode in ("full", "streaming"):
            cluster = HeteroElasticCluster(
                self._pools(),
                engine=eng,
                models=["BERT", "DLRM"],
                control_interval_s=0.5,
                record=mode,
            )
            runs[mode] = cluster.run(reqs, self._policy(eng))
        full, stream = runs["full"], runs["streaming"]
        assert stream.served == full.served
        assert stream.rejected_count == full.rejected_count
        assert stream.dropped_count == full.dropped_count
        assert stream.cost_usd == pytest.approx(full.cost_usd)
        assert stream.pool_timeline == full.pool_timeline
        assert [(s.t, s.desired) for s in stream.samples] == [
            (s.t, s.desired) for s in full.samples
        ]
        assert sorted(stream.pool_stats) == ["gpu", "stepstone"]
        assert (
            sum(r.completed_count for r in stream.pool_stats.values())
            == stream.served
        )

    def test_streaming_refuses_per_request_access(self, eng):
        from repro.sim import RecordingModeError

        cluster = HeteroElasticCluster(
            self._pools(),
            engine=eng,
            models=["BERT", "DLRM"],
            control_interval_s=0.5,
            record="streaming",
        )
        rep = cluster.run(_mix_stream(duration_s=3.0, rate=200.0), self._policy(eng))
        with pytest.raises(RecordingModeError):
            rep.latencies_s
        assert rep.record == "streaming"
        assert rep.served > 0
