"""Tests for CPU / GPU / PEI / Chopim baselines and the scheduler."""

import pytest

from repro.baselines.chopim import echo_gemm, ncho_gemm
from repro.baselines.cpu import CpuGemmModel, XEON_8280
from repro.baselines.gpu import GpuGemmModel, TITAN_XP
from repro.baselines.pei import pei_gemm
from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.core.scheduler import choose_execution
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestCpuModel:
    def test_batch1_matches_12x_claim(self, cfg, sky):
        """§V-A: CPU batch-1 latency ~12x StepStone-BG batch-1."""
        cpu = CpuGemmModel()
        shape = GemmShape(1024, 4096, 1)
        cpu_cycles = cpu.gemm_cycles(shape)
        bg = execute_gemm(cfg, sky, shape, PimLevel.BANKGROUP).breakdown.total
        ratio = cpu_cycles / bg
        assert 8.0 < ratio < 16.0

    def test_batch32_about_1p2x_batch1(self):
        """§I/§V-A: +20% latency budget admits batch 32 on the CPU."""
        cpu = CpuGemmModel()
        t1 = cpu.gemm_seconds(GemmShape(1024, 4096, 1))
        t32 = cpu.gemm_seconds(GemmShape(1024, 4096, 32))
        assert 1.05 < t32 / t1 < 1.45

    def test_cpu_slower_than_stepstone_ch(self, cfg, sky):
        """§V-A: measured CPU falls short of channel-level StepStone."""
        cpu = CpuGemmModel()
        shape = GemmShape(1024, 4096, 4)
        ch = execute_gemm(cfg, sky, shape, PimLevel.CHANNEL).breakdown.total
        assert cpu.gemm_cycles(shape) > ch

    def test_cpu_overtakes_pim_by_batch256(self, cfg, sky):
        """§V-B rooflines: CPU wins only at batch >= ~256."""
        cpu = CpuGemmModel()

        def pim_throughput(n):
            best = min(
                execute_gemm(cfg, sky, GemmShape(1024, 4096, n), lvl).breakdown.total
                for lvl in (PimLevel.BANKGROUP, PimLevel.DEVICE)
            )
            return n / (best / 1.2e9)

        def cpu_throughput(n):
            return cpu.throughput_samples_per_s(GemmShape(1024, 4096, n))

        assert pim_throughput(32) > cpu_throughput(32)
        assert cpu_throughput(256) > pim_throughput(256)

    def test_cache_resident_is_compute_bound(self):
        cpu = CpuGemmModel()
        s = GemmShape(1024, 4096, 8)
        assert cpu.gemm_seconds(s, weights_in_memory=False) < cpu.gemm_seconds(s)

    def test_peak_flops(self):
        assert XEON_8280.peak_flops == pytest.approx(28 * 2.7e9 * 64)


class TestGpuModel:
    def test_host_resident_pays_pcie_staging(self):
        gpu = GpuGemmModel()
        s = GemmShape(1024, 4096, 1)
        t_dev = gpu.gemm_seconds(s, weights_in_device=True)
        t_host = gpu.gemm_seconds(s, weights_in_device=False)
        pcie_s = s.weight_bytes / (TITAN_XP.pcie_bw_gbps * 1e9)
        assert t_host == pytest.approx(t_dev + pcie_s)
        # At large batch the occupancy penalty vanishes and staging
        # dominates the host-resident case.
        big = GemmShape(1024, 4096, 512)
        assert gpu.gemm_seconds(big, weights_in_device=False) > 3 * gpu.gemm_seconds(
            big, weights_in_device=True
        )

    def test_small_batch_gpu_host_slower_than_cpu(self):
        """Fig. 1: with weights in main memory, small-batch GPU loses."""
        gpu, cpu = GpuGemmModel(), CpuGemmModel()
        s = GemmShape(1024, 4096, 1)
        assert gpu.gemm_seconds(s, weights_in_device=False) > cpu.gemm_seconds(s)

    def test_large_batch_gpu_device_wins(self):
        gpu, cpu = GpuGemmModel(), CpuGemmModel()
        s = GemmShape(1024, 4096, 1024)
        assert gpu.gemm_seconds(s) < cpu.gemm_seconds(s)

    def test_gflops_monotone_in_batch(self):
        gpu = GpuGemmModel()
        g = [gpu.gflops(GemmShape(1024, 4096, n)) for n in (1, 8, 64, 512)]
        assert g == sorted(g)


class TestPei:
    def test_command_bandwidth_bound_at_bg(self, cfg, sky):
        """§V-B: PEI cannot exploit BG-level parallelism."""
        s = GemmShape(1024, 4096, 4)
        pei = pei_gemm(cfg, sky, s, PimLevel.BANKGROUP)
        stp = execute_gemm(cfg, sky, s, PimLevel.BANKGROUP)
        assert pei.breakdown.gemm > 3 * stp.breakdown.gemm

    def test_bg_no_better_than_dv_for_pei(self, cfg, sky):
        """Using more PIMs with PEI only adds overhead (§V-B)."""
        s = GemmShape(1024, 4096, 4)
        bg = pei_gemm(cfg, sky, s, PimLevel.BANKGROUP).breakdown.total
        dv = pei_gemm(cfg, sky, s, PimLevel.DEVICE).breakdown.total
        assert bg >= dv * 0.95

    def test_pei_flow_tag(self, cfg, sky):
        r = pei_gemm(cfg, sky, GemmShape(256, 1024, 2), PimLevel.DEVICE)
        assert r.flow == "pei"
        assert r.kernel_launches == sum(r.plan.gemm_blocks_per_pim.values())


class TestChopim:
    def test_ncho_scales_with_batch(self, cfg, sky):
        """nCHO = N GEMV passes: ~N x the batch-1 eCHO time."""
        s1 = ncho_gemm(cfg, sky, GemmShape(1024, 4096, 1), PimLevel.DEVICE)
        s4 = ncho_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.DEVICE)
        assert s4.breakdown.total == pytest.approx(4 * s1.breakdown.total, rel=1e-6)

    def test_echo_beats_ncho(self, cfg, sky):
        """Block grouping recovers locality: eCHO << nCHO for batch > 1."""
        s = GemmShape(1024, 4096, 8)
        e = echo_gemm(cfg, sky, s, PimLevel.DEVICE).breakdown.total
        n = ncho_gemm(cfg, sky, s, PimLevel.DEVICE).breakdown.total
        assert n > 2 * e

    def test_stepstone_beats_echo(self, cfg, sky):
        s = GemmShape(1024, 4096, 8)
        e = echo_gemm(cfg, sky, s, PimLevel.DEVICE).breakdown.total
        stp = execute_gemm(cfg, sky, s, PimLevel.DEVICE).breakdown.total
        assert e > stp

    def test_ncho_flow_tag(self, cfg, sky):
        r = ncho_gemm(cfg, sky, GemmShape(256, 1024, 4), PimLevel.DEVICE)
        assert r.flow == "ncho"


class TestScheduler:
    def test_bg_chosen_for_small_batch(self, cfg, sky):
        ch = choose_execution(cfg, sky, GemmShape(1024, 4096, 1))
        assert ch.level is PimLevel.BANKGROUP

    def test_dv_chosen_for_batch32(self, cfg, sky):
        ch = choose_execution(cfg, sky, GemmShape(1024, 4096, 32))
        assert ch.level is PimLevel.DEVICE

    def test_subsetting_chosen_for_small_matrix(self, cfg, sky):
        """Restricted to BG PIMs, the scheduler pins a bit for small
        matrices (Fig. 10's half-PIM win); with DV available it may instead
        express the same tradeoff by dropping to the 4 DV units."""
        ch = choose_execution(
            cfg, sky, GemmShape(512, 2048, 16), levels=(PimLevel.BANKGROUP,)
        )
        assert ch.pinned_id_bits >= 1

    def test_describe(self, cfg, sky):
        ch = choose_execution(cfg, sky, GemmShape(1024, 4096, 4))
        assert "StepStone-" in ch.describe()

    def test_no_feasible_raises(self, cfg, sky):
        with pytest.raises(ValueError):
            choose_execution(
                cfg, sky, GemmShape(1024, 4096, 100000), max_pinned_bits=0
            )
