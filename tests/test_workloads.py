"""Tests for Table I workload definitions and sweep generators."""

import pytest

from repro.workloads.gemm_specs import (
    DEFAULT_WEIGHT_SHAPE,
    TABLE1_GEMMS,
    aspect_ratio_sweep,
    batch_sweep,
)


class TestTable1:
    def test_row_count_matches_paper(self):
        assert len(TABLE1_GEMMS) == 10

    def test_models_covered(self):
        assert {e.model for e in TABLE1_GEMMS} == {"BERT", "GPT2", "DLRM"}

    def test_paper_dimensions_present(self):
        dims = {(e.m, e.k) for e in TABLE1_GEMMS}
        for expected in [
            (1024, 4096),
            (4096, 1024),
            (1024, 1024),
            (1600, 6400),
            (6400, 1600),
            (1600, 1600),
            (512, 2560),
            (32, 512),
            (128, 512),
            (1, 128),
        ]:
            assert expected in dims

    def test_shape_builder_respects_batch_range(self):
        bert = TABLE1_GEMMS[0]
        assert bert.shape(4).n == 4
        with pytest.raises(ValueError):
            bert.shape(256)  # LM batch range is 1-8

    def test_dlrm_allows_large_batch(self):
        dlrm = next(e for e in TABLE1_GEMMS if e.model == "DLRM")
        assert dlrm.shape(256).n == 256


class TestSweeps:
    def test_batch_sweep_powers_of_two(self):
        shapes = list(batch_sweep(n_max=64))
        assert [s.n for s in shapes] == [1, 2, 4, 8, 16, 32, 64]
        assert all((s.m, s.k) == DEFAULT_WEIGHT_SHAPE for s in shapes)

    def test_aspect_sweep_fixed_size(self):
        shapes = aspect_ratio_sweep()
        assert [s.m for s in shapes] == [2048, 4096, 8192, 16384]
        assert all(s.m * s.k == 2**24 for s in shapes)
        assert all(s.n == 4 for s in shapes)
