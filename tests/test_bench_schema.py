"""The BENCH_*.json perf artifacts follow the pinned schema.

``benchmarks/`` is not a package (pytest collects it standalone), so the
schema module is loaded by file path — the same way its conftest loads
it — and then pointed at every committed artifact.  A BENCH file that
drifts back to a legacy key (``mean_s``, ``events_per_sec``, ...) fails
here, in tier 1, not in the next perf-diff review.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

_spec = importlib.util.spec_from_file_location(
    "bench_schema", BENCH_DIR / "schema.py"
)
schema = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(schema)

BENCH_FILES = sorted(BENCH_DIR.glob("BENCH_*.json"))


def test_artifacts_exist():
    """The perf trajectory is committed (one artifact per bench module)."""
    assert len(BENCH_FILES) >= 20
    assert len(BENCH_FILES) == len(sorted(BENCH_DIR.glob("bench_*.py")))


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
def test_committed_artifact_validates(path):
    """Every committed BENCH_*.json parses and passes the schema gate."""
    payload = json.loads(path.read_text())
    n = schema.validate_bench_payload(payload)
    assert n >= 1
    assert payload["bench"] == path.stem[len("BENCH_"):]


def test_machine_tag_shape():
    """The host tag is a stable ``os-arch-pyX.Y`` triple."""
    tag = schema.machine_tag()
    assert len(tag.split("-")) == 3 and tag == tag.lower()
    assert tag.split("-")[2].startswith("py")


def test_migrate_entry_renames_every_legacy_key():
    """Each legacy alias lands on its normalized name, values intact."""
    legacy = {
        "mean_s": 1.5,
        "events_per_sec": 10,
        "requests_per_sec": 20,
        "tokens_per_wall_sec": 30,
        "served": 7,
    }
    out = schema.migrate_entry(legacy)
    assert out == {
        "wall_s": 1.5,
        "events_per_s": 10,
        "requests_per_s": 20,
        "tokens_per_s": 30,
        "served": 7,
        "fast_path": False,  # stamped onto pre-PR-9 events/s entries
    }


def test_migrate_entry_prefers_normalized_key():
    """When both spellings exist the normalized one wins."""
    out = schema.migrate_entry({"mean_s": 1.0, "wall_s": 2.0})
    assert out == {"wall_s": 2.0}


def test_migrate_entry_stamps_pre_fast_path_entries():
    """Entries written before PR 9 get ``fast_path: False`` — their
    events/s figures are reference-loop numbers by construction."""
    out = schema.migrate_entry({"wall_s": 1.0, "events_per_sec": 10})
    assert out == {"wall_s": 1.0, "events_per_s": 10, "fast_path": False}
    # An explicit fast_path survives the migration untouched.
    out = schema.migrate_entry(
        {"wall_s": 1.0, "events_per_s": 10, "fast_path": True}
    )
    assert out["fast_path"] is True
    # No events/s, no stamp: fast_path only qualifies event throughput.
    assert "fast_path" not in schema.migrate_entry({"wall_s": 1.0})


def test_validate_requires_fast_path_with_events_per_s():
    """An events/s figure is uninterpretable without the loop bit."""
    entry = {"wall_s": 0.1, "events_per_s": 5.0}
    payload = {"bench": "x", "machine": "m", "entries": {"e": entry}}
    with pytest.raises(ValueError, match="fast_path"):
        schema.validate_bench_payload(payload)
    entry["fast_path"] = 1  # truthy but not boolean: still rejected
    with pytest.raises(ValueError, match="fast_path"):
        schema.validate_bench_payload(payload)
    entry["fast_path"] = True
    assert schema.validate_bench_payload(payload) == 1


def test_validate_rejects_legacy_and_malformed_payloads():
    """The gate raises on every schema violation it documents."""
    good = {"bench": "x", "machine": "m", "entries": {"e": {"wall_s": 0.1}}}
    assert schema.validate_bench_payload(good) == 1
    bad = [
        {"bench": "x", "entries": {}},  # no machine
        {"bench": "x", "machine": "m", "entries": {"e": {}}},  # no wall_s
        {"bench": "x", "machine": "m", "entries": {"e": {"wall_s": -1.0}}},
        {"bench": "x", "machine": "m", "entries": {"e": {"wall_s": True}}},
        {
            "bench": "x",
            "machine": "m",
            "entries": {"e": {"wall_s": 0.1, "mean_s": 0.1}},  # legacy key
        },
        {
            "bench": "x",
            "machine": "m",
            "entries": {"e": {"wall_s": 0.1, "rows": [1]}},  # non-scalar
        },
    ]
    for payload in bad:
        with pytest.raises(ValueError):
            schema.validate_bench_payload(payload)
