"""Tests of the timing executor: Fig. 6/9/10-style behaviours."""

import pytest

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


SHAPE = GemmShape(1024, 4096, 1)


class TestBreakdown:
    @pytest.mark.parametrize("level", list(PimLevel))
    def test_all_components_nonnegative(self, cfg, sky, level):
        r = execute_gemm(cfg, sky, GemmShape(1024, 4096, 4), level)
        d = r.breakdown.as_dict()
        assert all(v >= 0 for v in d.values())
        assert d["total"] == pytest.approx(sum(v for k, v in d.items() if k != "total"))

    def test_breakdown_add_and_scale(self, cfg, sky):
        r = execute_gemm(cfg, sky, SHAPE, PimLevel.DEVICE)
        b2 = r.breakdown + r.breakdown
        assert b2.total == pytest.approx(2 * r.breakdown.total)
        assert r.breakdown.scaled(3).gemm == pytest.approx(3 * r.breakdown.gemm)


class TestFig6Shapes:
    def test_bg_fastest_at_batch1(self, cfg, sky):
        """§V-A: StepStone-BG has far superior batch-1 latency."""
        res = {
            lvl: execute_gemm(cfg, sky, SHAPE, lvl).breakdown.total
            for lvl in PimLevel
        }
        assert res[PimLevel.BANKGROUP] < res[PimLevel.DEVICE] < res[PimLevel.CHANNEL]
        # BG is ~2.8x better than DV in the paper; allow a generous band.
        ratio = res[PimLevel.DEVICE] / res[PimLevel.BANKGROUP]
        assert 2.0 < ratio < 4.0

    def test_dv_overtakes_bg_at_batch32(self, cfg, sky):
        """Localization/reduction overheads grow with PIM count and N."""
        s32 = GemmShape(1024, 4096, 32)
        bg = execute_gemm(cfg, sky, s32, PimLevel.BANKGROUP).breakdown.total
        dv = execute_gemm(cfg, sky, s32, PimLevel.DEVICE).breakdown.total
        assert dv < bg

    def test_latency_flat_for_small_batches(self, cfg, sky):
        """Bandwidth-bound region: batch-4 GEMM time ~ batch-1 GEMM time."""
        r1 = execute_gemm(cfg, sky, GemmShape(1024, 4096, 1), PimLevel.BANKGROUP)
        r4 = execute_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        assert r4.breakdown.gemm < 1.25 * r1.breakdown.gemm

    def test_relaxed_area_helps_batch32(self, cfg, sky):
        s32 = GemmShape(1024, 4096, 32)
        base = execute_gemm(cfg, sky, s32, PimLevel.DEVICE)
        relaxed = execute_gemm(
            cfg, sky, s32, PimLevel.DEVICE, unit=cfg.unit(PimLevel.DEVICE).relaxed()
        )
        assert relaxed.breakdown.total < base.breakdown.total

    def test_overheads_grow_with_batch(self, cfg, sky):
        r4 = execute_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        r32 = execute_gemm(cfg, sky, GemmShape(1024, 4096, 32), PimLevel.BANKGROUP)
        assert r32.breakdown.localization > r4.breakdown.localization
        assert r32.breakdown.reduction > r4.breakdown.reduction


class TestFig9Agen:
    @pytest.mark.parametrize("level", list(PimLevel))
    def test_naive_never_faster(self, cfg, sky, level):
        s = GemmShape(1024, 4096, 4)
        st = execute_gemm(cfg, sky, s, level, agen="stepstone").breakdown.total
        nv = execute_gemm(cfg, sky, s, level, agen="naive").breakdown.total
        assert nv >= st * 0.999

    def test_gap_largest_with_most_pims(self, cfg, sky):
        """§V-C: AGEN benefit grows with active PIM count (BG > DV >= CH)."""
        s = GemmShape(1024, 4096, 4)
        gaps = {}
        for lvl in PimLevel:
            st = execute_gemm(cfg, sky, s, lvl, agen="stepstone").breakdown.total
            nv = execute_gemm(cfg, sky, s, lvl, agen="naive").breakdown.total
            gaps[lvl] = nv / st
        assert gaps[PimLevel.BANKGROUP] > gaps[PimLevel.DEVICE] >= gaps[PimLevel.CHANNEL] * 0.95
        assert gaps[PimLevel.BANKGROUP] > 2.0  # paper: up to 4x

    def test_stepstone_bubbles_hidden(self, cfg, sky):
        r = execute_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        # AGEN iterations almost never exceed the cadence window.
        assert r.bubble_stall_cycles < 0.01 * r.breakdown.gemm

    def test_unknown_agen_rejected(self, cfg, sky):
        with pytest.raises(ValueError):
            execute_gemm(cfg, sky, SHAPE, PimLevel.DEVICE, agen="magic")

    def test_unknown_flow_rejected(self, cfg, sky):
        with pytest.raises(ValueError):
            execute_gemm(cfg, sky, SHAPE, PimLevel.DEVICE, flow="magic")


class TestFig10Subsetting:
    def test_half_pims_helps_small_matrix(self, cfg, sky):
        """Fig. 10 (left): small matrices benefit from fewer PIMs."""
        s = GemmShape(512, 2048, 32)
        full = execute_gemm(cfg, sky, s, PimLevel.BANKGROUP).breakdown
        half = execute_gemm(
            cfg, sky, s, PimLevel.BANKGROUP, pinned_id_bits=1
        ).breakdown
        assert half.localization < full.localization
        assert half.reduction < full.reduction
        assert half.total < full.total

    def test_half_pims_hurts_large_matrix_gemm(self, cfg, sky):
        """Fig. 10 (right): arithmetic time doubles with half the PIMs."""
        s = GemmShape(4096, 1024, 16)
        full = execute_gemm(cfg, sky, s, PimLevel.BANKGROUP).breakdown
        half = execute_gemm(
            cfg, sky, s, PimLevel.BANKGROUP, pinned_id_bits=1
        ).breakdown
        assert half.gemm > 1.5 * full.gemm


class TestFlows:
    def test_echo_slower_than_stepstone(self, cfg, sky):
        """CPU-driven loc/red + per-dot kernels cost extra (§V-B)."""
        s = GemmShape(1024, 4096, 4)
        st = execute_gemm(cfg, sky, s, PimLevel.BANKGROUP, flow="stepstone")
        ec = execute_gemm(cfg, sky, s, PimLevel.BANKGROUP, flow="echo")
        assert ec.breakdown.total > st.breakdown.total
        assert ec.breakdown.localization > st.breakdown.localization

    def test_launch_delay_hurts_echo_more(self, cfg, sky):
        """§V-G: command-channel contention punishes per-dot kernels."""
        s = GemmShape(1024, 4096, 4)
        st0 = execute_gemm(cfg, sky, s, PimLevel.DEVICE, flow="stepstone")
        st1 = execute_gemm(
            cfg, sky, s, PimLevel.DEVICE, flow="stepstone", launch_delay_cycles=100
        )
        ec0 = execute_gemm(cfg, sky, s, PimLevel.DEVICE, flow="echo")
        ec1 = execute_gemm(
            cfg, sky, s, PimLevel.DEVICE, flow="echo", launch_delay_cycles=100
        )
        d_st = st1.breakdown.total - st0.breakdown.total
        d_ec = ec1.breakdown.total - ec0.breakdown.total
        assert d_ec > 10 * d_st
