"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import bits as B


class TestMasks:
    def test_bit(self):
        assert B.bit(0) == 1
        assert B.bit(7) == 128

    def test_bit_negative_raises(self):
        with pytest.raises(ValueError):
            B.bit(-1)

    def test_mask_roundtrip(self):
        positions = [0, 3, 17, 40]
        assert B.bits_of_mask(B.mask_of_bits(positions)) == positions

    def test_bits_of_mask_empty(self):
        assert B.bits_of_mask(0) == []

    def test_bits_of_mask_negative_raises(self):
        with pytest.raises(ValueError):
            B.bits_of_mask(-5)

    def test_lowest_highest(self):
        assert B.lowest_set_bit(0b101000) == 3
        assert B.highest_set_bit(0b101000) == 5
        assert B.lowest_set_bit(0) == -1
        assert B.highest_set_bit(0) == -1


class TestParity:
    def test_parity_scalar(self):
        assert B.parity(0) == 0
        assert B.parity(0b1011) == 1
        assert B.parity(0b11) == 0

    @given(st.lists(st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=50))
    def test_parity_u64_matches_scalar(self, xs):
        arr = np.asarray(xs, dtype=np.uint64)
        vec = B.parity_u64(arr)
        for x, v in zip(xs, vec):
            assert B.parity(x) == int(v)

    def test_parity_u64_shape_preserved(self):
        arr = np.arange(12, dtype=np.uint64).reshape(3, 4)
        assert B.parity_u64(arr).shape == (3, 4)


class TestScatterGather:
    @given(
        st.integers(min_value=0, max_value=2**20 - 1),
        st.integers(min_value=0, max_value=2**40 - 1),
    )
    def test_scatter_gather_roundtrip(self, value, mask):
        k = bin(mask).count("1")
        v = value & ((1 << k) - 1)
        assert B.gather_bits(B.scatter_bits(v, mask), mask) == v

    @given(st.integers(min_value=0, max_value=2**40 - 1))
    def test_scatter_stays_in_mask(self, mask):
        out = B.scatter_bits(2**30 - 1, mask)
        assert out & ~mask == 0

    def test_known_values(self):
        assert B.scatter_bits(0b11, 0b1010) == 0b1010
        assert B.gather_bits(0b1010, 0b1010) == 0b11

    @given(
        st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=2**24 - 1),
    )
    def test_vectorized_matches_scalar(self, values, mask):
        arr = np.asarray(values, dtype=np.uint64)
        sc = B.scatter_bits_u64(arr, mask)
        ga = B.gather_bits_u64(sc, mask)
        for v, s, g in zip(values, sc, ga):
            k = bin(mask).count("1")
            assert int(s) == B.scatter_bits(v & ((1 << k) - 1), mask)
            assert int(g) == (v & ((1 << k) - 1))


class TestSubmasks:
    def test_iter_submasks_counts(self):
        mask = 0b1011
        subs = list(B.iter_submasks(mask))
        assert len(subs) == 8
        assert subs[0] == mask
        assert subs[-1] == 0
        assert all(s & ~mask == 0 for s in subs)

    def test_iter_submasks_zero(self):
        assert list(B.iter_submasks(0)) == [0]
