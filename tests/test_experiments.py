"""Integration tests: every experiment runner executes and its paper-shape
checks pass (fast mode where sweeps allow)."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment

FAST_OK = sorted(EXPERIMENTS)


class TestRegistry:
    def test_all_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig01",
            "tab01",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "claims",
            "ablations",
            "serve",
            "serve-cluster",
            "serve-autoscale",
            "serve-genai",
            "serve-hetero",
            "serve-chaos",
            "serve-scale",
            "serve-observe",
            "serve-fast",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")


@pytest.mark.parametrize("eid", FAST_OK)
def test_runner_fast_mode(eid):
    result = run_experiment(eid, fast=True)
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{eid} produced no rows"
    assert result.experiment_id == eid
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{eid} shape checks failed: {failed}"


@pytest.mark.parametrize("eid", ["fig09", "fig10", "fig14"])
def test_runner_full_mode_spot(eid):
    """Spot-run a few cheap experiments at full fidelity."""
    result = run_experiment(eid, fast=False)
    assert result.all_checks_pass


class TestResultContainer:
    def test_table_rendering(self):
        r = ExperimentResult("x01", "demo", paper_reference="Fig. X")
        r.add(a=1, b=2.5)
        r.add(a=3, b=1e7)
        r.note("a note")
        r.check("always", True)
        text = r.to_table()
        assert "x01" in text and "demo" in text and "Fig. X" in text
        assert "a note" in text
        assert "check[PASS]: always" in text
        assert "1.000e+07" in text

    def test_columns_union(self):
        r = ExperimentResult("x", "t")
        r.add(a=1)
        r.add(b=2)
        assert r.columns() == ["a", "b"]

    def test_all_checks_pass_default_true(self):
        assert ExperimentResult("x", "t").all_checks_pass

    def test_failed_check_flagged(self):
        r = ExperimentResult("x", "t")
        r.check("bad", False)
        assert not r.all_checks_pass
        assert "check[FAIL]: bad" in r.to_table()

    def test_max_rows_truncation(self):
        r = ExperimentResult("x", "t")
        for i in range(10):
            r.add(i=i)
        assert r.to_table(max_rows=3).count("\n") < r.to_table().count("\n")


class TestCli:
    def test_cli_single(self, capsys):
        from repro.experiments.cli import main

        rc = main(["fig14", "--fast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig14" in out

    def test_cli_unknown(self, capsys):
        from repro.experiments.cli import main

        assert main(["nope"]) == 2
