"""Validation of the vectorized stream model against the controller."""

import numpy as np
import pytest

from repro.dram.commands import BankCoord, Request
from repro.dram.controller import ChannelController
from repro.dram.stream import (
    StreamAccess,
    sequential_stream_cycles,
    stream_cycles,
)
from repro.dram.timing import DDR4_2400R


def _to_requests(acc: StreamAccess):
    return [
        Request(
            arrival=0,
            coord=BankCoord(int(acc.rank[i]), int(acc.bankgroup[i]), int(acc.bank[i])),
            row=int(acc.row[i]),
            column=i % 128,
            request_id=i,
        )
        for i in range(len(acc))
    ]


def _stream(rank, bg, bank, row):
    rank = np.asarray(rank)
    bg = np.asarray(bg)
    bank = np.asarray(bank)
    row = np.asarray(row)
    flat = (rank * 4 + bg) * 4 + bank
    return StreamAccess(rank=rank, bankgroup=bg, bank=flat * 0 + bank, row=row), flat


class TestAgainstController:
    """The vectorized model must track the exact simulator within tolerance."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_low_conflict_trace(self, seed):
        rng = np.random.default_rng(seed)
        n = 1500
        bg = rng.integers(0, 4, n)
        bank = rng.integers(0, 4, n)
        # Slowly-varying rows: realistic PIM streams are mostly row hits.
        row = np.repeat(rng.integers(0, 64, n // 50 + 1), 50)[:n]
        acc = StreamAccess(
            rank=np.zeros(n, dtype=np.int64),
            bankgroup=bg,
            bank=(bg * 4 + bank),
            row=row,
        )
        model = stream_cycles(acc, refresh=False)
        ctl = ChannelController(refresh=False, queue_depth=4)
        exact = ctl.run(_to_requests(acc))
        ratio = model.cycles / exact.total_cycles
        assert 0.75 < ratio < 1.3, f"model {model.cycles} vs exact {exact.total_cycles}"

    def test_pure_row_hit_stream(self):
        n = 512
        acc = StreamAccess(
            rank=np.zeros(n, dtype=np.int64),
            bankgroup=np.zeros(n, dtype=np.int64),
            bank=np.zeros(n, dtype=np.int64),
            row=np.zeros(n, dtype=np.int64),
        )
        model = stream_cycles(acc, refresh=False)
        ctl = ChannelController(refresh=False)
        exact = ctl.run(_to_requests(acc))
        assert abs(model.cycles - exact.total_cycles) / exact.total_cycles < 0.05
        assert model.row_misses == 1  # only the first touch

    def test_bankgroup_alternating_faster_than_same(self):
        n = 512
        same = StreamAccess(
            rank=np.zeros(n, dtype=int),
            bankgroup=np.zeros(n, dtype=int),
            bank=np.zeros(n, dtype=int),
            row=np.zeros(n, dtype=int),
        )
        alt_bg = np.arange(n) % 4
        alt = StreamAccess(
            rank=np.zeros(n, dtype=int),
            bankgroup=alt_bg,
            bank=alt_bg * 4,
            row=np.zeros(n, dtype=int),
        )
        assert stream_cycles(alt).cycles < stream_cycles(same).cycles


class TestBubbles:
    def test_bubbles_below_cadence_free(self):
        n = 256
        acc = StreamAccess(
            rank=np.zeros(n, dtype=int),
            bankgroup=np.zeros(n, dtype=int),
            bank=np.zeros(n, dtype=int),
            row=np.zeros(n, dtype=int),
            bubbles=np.full(n, 3.0),
        )
        base = stream_cycles(
            StreamAccess(acc.rank, acc.bankgroup, acc.bank, acc.row), refresh=False
        )
        with_b = stream_cycles(acc, refresh=False)
        assert with_b.cycles == pytest.approx(base.cycles)
        assert with_b.bubble_stall_cycles == 0.0

    def test_large_bubbles_dominate(self):
        n = 256
        acc = StreamAccess(
            rank=np.zeros(n, dtype=int),
            bankgroup=np.zeros(n, dtype=int),
            bank=np.zeros(n, dtype=int),
            row=np.zeros(n, dtype=int),
            bubbles=np.full(n, 50.0),
        )
        s = stream_cycles(acc, refresh=False)
        assert s.cycles > n * 45
        assert s.bubble_stall_cycles > 0


class TestLookahead:
    def test_lookahead_hides_miss_penalty(self):
        n = 400
        row = np.arange(n) // 100  # a few row switches
        acc = StreamAccess(
            rank=np.zeros(n, dtype=int),
            bankgroup=np.arange(n) % 4,
            bank=(np.arange(n) % 4) * 4,
            row=row,
        )
        ahead = stream_cycles(acc, lookahead_act=True, refresh=False)
        blind = stream_cycles(acc, lookahead_act=False, refresh=False)
        assert ahead.cycles <= blind.cycles

    def test_refresh_overhead_factor(self):
        n = 128
        acc = StreamAccess(
            rank=np.zeros(n, dtype=int),
            bankgroup=np.zeros(n, dtype=int),
            bank=np.zeros(n, dtype=int),
            row=np.zeros(n, dtype=int),
        )
        off = stream_cycles(acc, refresh=False).cycles
        on = stream_cycles(acc, refresh=True).cycles
        assert on == pytest.approx(off / (1 - DDR4_2400R.refresh_overhead))


class TestSequential:
    def test_zero_blocks(self):
        assert sequential_stream_cycles(0) == 0.0

    def test_scales_linearly(self):
        a = sequential_stream_cycles(1000, refresh=False)
        b = sequential_stream_cycles(2000, refresh=False)
        assert b / a == pytest.approx(2.0, rel=0.05)

    def test_cadence_respected(self):
        t = sequential_stream_cycles(10000, cadence=6.0, refresh=False)
        assert t >= 10000 * 6.0
        t4 = sequential_stream_cycles(10000, cadence=4.0, refresh=False)
        assert t4 < t

    def test_matches_stream_model_for_contiguous_scan(self):
        """A contiguous scan across interleaved banks: both models agree."""
        n = 2048
        bg = (np.arange(n) // 2) % 4
        bank = (np.arange(n) // 8) % 4
        row = np.arange(n) // 128
        acc = StreamAccess(
            rank=np.zeros(n, dtype=int),
            bankgroup=bg,
            bank=bg * 4 + bank,
            row=row,
        )
        exact_ish = stream_cycles(acc, refresh=False).cycles
        analytic = sequential_stream_cycles(n, cadence=4.5, refresh=False)
        assert abs(analytic - exact_ish) / exact_ish < 0.25
