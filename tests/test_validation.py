"""Cross-engine validation tests: analytic executor vs command-level sim."""

import pytest

from repro.core.config import StepStoneConfig
from repro.core.gemm import GemmShape, plan_gemm
from repro.core.validation import build_pim_trace, validate_gemm_phase
from repro.mapping.presets import make_skylake, mapping_by_id
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestTraceBuilder:
    def test_trace_covers_pim_blocks(self, cfg, sky):
        plan = plan_gemm(cfg, sky, GemmShape(64, 1024, 1), PimLevel.BANKGROUP)
        pim = plan.max_blocks_pim
        reqs = build_pim_trace(plan, sky, pim)
        assert len(reqs) == plan.gemm_blocks_per_pim[pim]

    def test_bg_trace_stays_in_one_bankgroup(self, cfg, sky):
        plan = plan_gemm(cfg, sky, GemmShape(64, 1024, 1), PimLevel.BANKGROUP)
        pim = plan.max_blocks_pim
        reqs = build_pim_trace(plan, sky, pim)
        coords = {(r.coord.rank, r.coord.bankgroup) for r in reqs}
        assert len(coords) == 1  # a BG PIM only touches its own bank group

    def test_dv_trace_stays_in_one_rank(self, cfg, sky):
        plan = plan_gemm(cfg, sky, GemmShape(128, 2048, 1), PimLevel.DEVICE)
        pim = plan.max_blocks_pim
        reqs = build_pim_trace(plan, sky, pim)
        assert len({r.coord.rank for r in reqs}) == 1
        assert len({r.coord.bankgroup for r in reqs}) > 1


class TestAgreement:
    @pytest.mark.parametrize("m,k", [(64, 1024), (128, 2048)])
    def test_bankgroup_level_close(self, cfg, sky, m, k):
        v = validate_gemm_phase(cfg, sky, GemmShape(m, k, 1), PimLevel.BANKGROUP)
        assert 0.85 <= v.ratio <= 1.25, v

    @pytest.mark.parametrize("m,k", [(64, 1024), (128, 2048)])
    def test_device_level_bounded(self, cfg, sky, m, k):
        """The in-order analytic model is conservative vs the reordering
        controller at DV level; agreement stays within a modest band."""
        v = validate_gemm_phase(cfg, sky, GemmShape(m, k, 1), PimLevel.DEVICE)
        assert 0.8 <= v.ratio <= 1.45, v

    def test_other_mapping(self, cfg):
        mapping = mapping_by_id(0)
        v = validate_gemm_phase(cfg, mapping, GemmShape(64, 1024, 1), PimLevel.BANKGROUP)
        assert 0.8 <= v.ratio <= 1.3, v

    def test_executor_never_wildly_optimistic(self, cfg, sky):
        """The analytic path must not undercut the exact sim by >20%."""
        for lvl in (PimLevel.BANKGROUP, PimLevel.DEVICE):
            v = validate_gemm_phase(cfg, sky, GemmShape(64, 2048, 1), lvl)
            assert v.ratio >= 0.8, v
