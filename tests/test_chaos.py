"""Failure injection across the fleet layers: losses, recovery, accounting.

The serve-chaos experiment pins the headline comparison (elastic beats
static availability); these tests pin the mechanics — request
conservation, busy-time truncation, stale-finish epochs, routing around
the dead, and replacement ordering.
"""

import pytest

from repro.autoscale import (
    ElasticCluster,
    HeteroElasticCluster,
    NodePool,
    StaticMixPolicy,
    StaticPolicy,
)
from repro.cluster import Cluster
from repro.models.inference import all_models
from repro.serving import (
    GPU_NODE,
    STEPSTONE_NODE,
    OnlineServingEngine,
    merge_streams,
    uniform_requests,
)
from repro.sim import FailureTrace

MIX_MODELS = ("BERT", "DLRM")


@pytest.fixture(scope="module")
def engine():
    zoo = all_models()
    return OnlineServingEngine(models={m: zoo[m] for m in MIX_MODELS})


def mk_stream(rate=400.0, horizon=8.0, slo=1.0):
    return merge_streams(
        uniform_requests("BERT", rate * 0.9, horizon, slo_s=slo),
        uniform_requests("DLRM", rate * 0.1, horizon, slo_s=slo, start_id=10_000),
    )


class TestStaticClusterFailures:
    def test_requests_are_conserved(self, engine):
        stream = mk_stream()
        cluster = Cluster(n_nodes=3, engine=engine, replication=3)
        rep = cluster.run(stream, failures=FailureTrace.scripted([(0, 2.0, 6.0)]))
        assert rep.offered == len(stream)
        assert rep.served + len(rep.rejected) + len(rep.failed) == len(stream)
        assert rep.availability < 1.0

    def test_down_node_takes_no_traffic_and_rejoins(self, engine):
        stream = mk_stream()
        cluster = Cluster(n_nodes=2, engine=engine, replication=2)
        rep = cluster.run(stream, failures=FailureTrace.scripted([(0, 2.0, 6.0)]))
        n0 = rep.node_reports[0]
        during = [
            c for c in n0.completed if 2.0 < c.dispatch_s < 6.0
        ]
        assert not during  # nothing dispatched on the dead node
        assert any(c.dispatch_s >= 6.0 for c in n0.completed)  # rejoined

    def test_in_flight_batch_is_lost_and_busy_truncated(self, engine):
        stream = mk_stream(rate=300.0, horizon=4.0)
        cluster = Cluster(n_nodes=1, engine=engine, replication=1)
        clean = cluster.run(stream)
        # Kill the only node mid-run, briefly: its running batch dies.
        rep = cluster.run(stream, failures=FailureTrace.scripted([(0, 2.0, 2.2)]))
        reasons = {f.reason for f in rep.failed}
        assert "in-flight-lost" in reasons
        assert rep.node_busy_s[0] < clean.node_busy_s[0]
        # Busy time never exceeds the horizon (truncation worked).
        assert rep.node_busy_s[0] <= rep.sim_end_s + 1e-9

    def test_stale_finish_does_not_complete_a_lost_batch(self, engine):
        stream = mk_stream(rate=300.0, horizon=4.0)
        cluster = Cluster(n_nodes=1, engine=engine, replication=1)
        # Fail and recover within what would be one batch's service; the
        # node re-dispatches after recovery, and the stale finish event
        # of the lost batch must not complete the new one early.
        rep = cluster.run(stream, failures=FailureTrace.scripted([(0, 1.0, 1.05)]))
        assert rep.served + len(rep.rejected) + len(rep.failed) == len(stream)
        for c in rep.completed:
            assert c.service_s > 0
            assert c.dispatch_s >= c.request.arrival_s - 1e-12

    def test_all_replicas_down_drops_arrivals_at_the_door(self, engine):
        stream = mk_stream(rate=200.0, horizon=4.0)
        cluster = Cluster(n_nodes=2, engine=engine, replication=2)
        trace = FailureTrace.scripted([(0, 1.0, 3.0), (1, 1.0, 3.0)])
        rep = cluster.run(stream, failures=trace)
        assert any(f.reason == "unrouted" for f in rep.dropped)
        assert rep.offered == len(stream)

    def test_unknown_node_id_is_a_noop(self, engine):
        stream = mk_stream(rate=200.0, horizon=2.0)
        cluster = Cluster(n_nodes=2, engine=engine, replication=2)
        clean = cluster.run(stream)
        rep = cluster.run(stream, failures=FailureTrace.scripted([(9, 0.5, 1.0)]))
        assert rep.served == clean.served
        assert not rep.failed


class TestElasticFailures:
    def test_static_policy_orders_a_replacement(self, engine):
        stream = mk_stream(rate=300.0, horizon=8.0)
        cluster = ElasticCluster(
            engine=engine,
            models=list(MIX_MODELS),
            initial_nodes=2,
            min_nodes=1,
            max_nodes=4,
            control_interval_s=0.5,
        )
        rep = cluster.run(
            stream,
            StaticPolicy(2),
            failures=FailureTrace.scripted([(0, 2.0, 7.0)]),
        )
        # A third node id exists: the failed node left the owned set and
        # even a fixed-size policy re-ordered capacity.
        assert len(rep.lifetimes) > 2
        assert any(s.failed == 1 for s in rep.samples)
        assert rep.served + len(rep.rejected) + len(rep.failed) == len(stream)

    def test_failure_free_run_is_unchanged_by_empty_trace(self, engine):
        stream = mk_stream(rate=300.0, horizon=6.0)

        def go(failures):
            cluster = ElasticCluster(
                engine=engine,
                models=list(MIX_MODELS),
                initial_nodes=2,
                min_nodes=1,
                max_nodes=4,
                control_interval_s=0.5,
            )
            return cluster.run(stream, StaticPolicy(2), failures=failures)

        a, b = go(None), go(FailureTrace.scripted([]))
        assert [(c.request.req_id, c.finish_s) for c in a.completed] == [
            (c.request.req_id, c.finish_s) for c in b.completed
        ]

    def test_recovered_node_serves_again(self, engine):
        stream = mk_stream(rate=300.0, horizon=8.0)
        cluster = ElasticCluster(
            engine=engine,
            models=list(MIX_MODELS),
            initial_nodes=2,
            min_nodes=2,
            max_nodes=2,  # no replacement possible: recovery must carry
            control_interval_s=0.5,
        )
        rep = cluster.run(
            stream,
            StaticPolicy(2),
            failures=FailureTrace.scripted([(0, 2.0, 5.0)]),
        )
        n0 = rep.node_reports[0]
        assert any(c.dispatch_s >= 5.0 for c in n0.completed)
        assert not any(2.0 < c.dispatch_s < 5.0 for c in n0.completed)


class TestHeteroFailures:
    def test_pool_failure_is_observed_and_conserved(self, engine):
        stream = mk_stream(rate=400.0, horizon=6.0)
        cluster = HeteroElasticCluster(
            pools={
                "stepstone": NodePool(
                    STEPSTONE_NODE, min_nodes=1, max_nodes=4, initial_nodes=2
                ),
                "gpu": NodePool(GPU_NODE, min_nodes=0, max_nodes=2, initial_nodes=1),
            },
            engine=engine,
            router="backend-affinity",
            models=list(MIX_MODELS),
            control_interval_s=0.5,
        )
        rep = cluster.run(
            stream,
            StaticMixPolicy({"stepstone": 2, "gpu": 1}),
            failures=FailureTrace.scripted([(0, 2.0, 4.0)]),
        )
        assert rep.served + len(rep.rejected) + len(rep.failed) == len(stream)
        assert any(s.failed == 1 for s in rep.samples)
        # The replacement (if any) lands in the failed node's own pool.
        new_nodes = [nid for nid in rep.lifetimes if nid >= 3]
        for nid in new_nodes:
            assert rep.node_pool[nid] == rep.node_pool[0]
