"""Tests for the XOR address-mapping representation."""

import numpy as np
import pytest

from repro.mapping.presets import default_geometry, make_skylake, make_toy_mapping
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestGeometry:
    def test_default_capacity(self):
        g = default_geometry()
        assert g.address_bits == 34
        assert g.capacity_bytes == 16 * 2**30

    def test_row_bytes(self):
        g = default_geometry()
        assert g.row_bytes == 8192
        assert g.blocks_per_row == 128

    def test_num_pims(self):
        g = default_geometry()
        assert g.num_pims(PimLevel.CHANNEL) == 2
        assert g.num_pims(PimLevel.DEVICE) == 4
        assert g.num_pims(PimLevel.BANKGROUP) == 16


class TestValidation:
    def test_wrong_mask_count_rejected(self):
        g = default_geometry()
        masks = make_skylake().field_masks.copy()
        masks = {k: list(v) for k, v in masks.items()}
        masks["channel"] = []
        with pytest.raises(ValueError, match="expected 1 masks"):
            XORAddressMapping(g, masks)

    def test_block_offset_bits_rejected(self):
        masks = {k: list(v) for k, v in make_skylake().field_masks.items()}
        masks["channel"] = [masks["channel"][0] | 1]
        with pytest.raises(ValueError, match="block-offset"):
            XORAddressMapping(default_geometry(), masks)

    def test_non_invertible_rejected(self):
        masks = {k: list(v) for k, v in make_skylake().field_masks.items()}
        # Make BG1 a combination of row bits only -> linearly dependent.
        masks["bankgroup"][1] = masks["row"][0] ^ masks["row"][1]
        with pytest.raises(ValueError, match="not invertible"):
            XORAddressMapping(default_geometry(), masks)

    def test_zero_mask_rejected(self):
        masks = {k: list(v) for k, v in make_skylake().field_masks.items()}
        masks["rank"] = [0]
        with pytest.raises(ValueError, match="zero mask"):
            XORAddressMapping(default_geometry(), masks)


class TestEvaluation:
    def test_scalar_vs_vector_agree(self, sky):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, sky.geometry.capacity_bytes, 500, dtype=np.uint64)
        addrs &= ~np.uint64(63)
        for field in ("channel", "rank", "bankgroup", "bank", "row", "column"):
            vec = sky.field_values(addrs, field)
            for a, v in zip(addrs[:50], vec[:50]):
                assert sky.field_value(int(a), field) == int(v)

    def test_coords_cover_field_ranges(self, sky):
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, sky.geometry.capacity_bytes, 20000, dtype=np.uint64)
        addrs &= ~np.uint64(63)
        coords = sky.coords_arrays(addrs)
        g = sky.geometry
        assert set(np.unique(coords["channel"])) == {0, 1}
        assert set(np.unique(coords["rank"])) == {0, 1}
        assert set(np.unique(coords["bankgroup"])) == set(range(4))
        assert set(np.unique(coords["bank"])) == set(range(4))
        assert coords["row"].max() < g.rows_per_bank
        assert coords["column"].max() < g.blocks_per_row

    def test_mapping_is_bijective_on_sample(self, sky):
        """Distinct addresses within one 1 MiB region get distinct coords."""
        addrs = (np.arange(2**14, dtype=np.uint64)) * np.uint64(64)
        c = sky.coords_arrays(addrs)
        key = (
            ((c["channel"] * 2 + c["rank"]) * 4 + c["bankgroup"]) * 4 + c["bank"]
        ) * np.uint64(2**22) + c["row"] * np.uint64(128) + c["column"]
        assert len(np.unique(key)) == len(addrs)

    def test_paper_fig4_skylake_properties(self, sky):
        """§III-B: BG0 = a7 ^ a14; a8,a9,a12,a13 affect the channel bit."""
        bg0 = sky.field_masks["bankgroup"][0]
        assert bg0 == (1 << 7) | (1 << 14)
        ch = sky.field_masks["channel"][0]
        for b in (8, 9, 12, 13):
            assert (ch >> b) & 1 == 1

    def test_pim_id_bit_order(self, sky):
        """BG0 is PIM ID bit 0; channel is the MSB (paper Fig. 4a)."""
        masks = sky.pim_id_masks(PimLevel.BANKGROUP)
        assert masks[0] == sky.field_masks["bankgroup"][0]
        assert masks[-1] == sky.field_masks["channel"][0]
        assert len(masks) == 4
        assert len(sky.pim_id_masks(PimLevel.DEVICE)) == 2
        assert len(sky.pim_id_masks(PimLevel.CHANNEL)) == 1

    def test_pim_ids_scalar_vs_vector(self, sky):
        addrs = (np.arange(256, dtype=np.uint64)) * np.uint64(64)
        for level in PimLevel:
            vec = sky.pim_ids(addrs, level)
            for a, v in zip(addrs, vec):
                assert sky.pim_id(int(a), level) == int(v)

    def test_block_pairs_share_pim(self, sky):
        """§V-C: pairs of cache blocks are contiguous under Skylake."""
        addrs = (np.arange(4096, dtype=np.uint64)) * np.uint64(64)
        ids = sky.pim_ids(addrs, PimLevel.BANKGROUP)
        assert np.array_equal(ids[0::2], ids[1::2])


class TestToyMapping:
    def test_toy_invertible_and_small(self):
        toy = make_toy_mapping()
        assert toy.geometry.address_bits == 11
        addrs = np.arange(0, toy.geometry.capacity_bytes, 4, dtype=np.uint64)
        ids = toy.pim_ids(addrs, PimLevel.DEVICE)
        # 4 rank-level PIMs, each owning a quarter of the space.
        vals, counts = np.unique(ids, return_counts=True)
        assert len(vals) == 4
        assert len(set(counts)) == 1

    def test_describe_mentions_fields(self):
        txt = make_toy_mapping().describe()
        for f in ("channel", "rank", "bankgroup", "bank", "row", "column"):
            assert f in txt
