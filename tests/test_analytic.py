"""Edge cases of the closed-form M/G/k capacity model.

The differential harness (``tests/test_fast_differential.py``) checks
that the analytic estimates *track* the DES in the friendly regime;
this file pins the edges: exact Pollaczek–Khinchine agreement at
``k = 1``, the saturation clamp-and-warn contract as ``rho -> 1``,
zero-load windows, and the planner-level guarantee that analytic fleet
sizes are never smaller than the simulated answer on the serve-cluster
anchor scenarios.
"""

import math

import pytest

from repro.autoscale import ConstantTrace
from repro.cluster.planner import CapacityPlanner
from repro.serving import OnlineServingEngine
from repro.sim.analytic import AnalyticCapacityModel, erlang_c, mgk_wait

MIX = {"BERT": 0.9, "DLRM": 0.1}


@pytest.fixture(scope="module")
def engine():
    return OnlineServingEngine()


@pytest.fixture(scope="module")
def model(engine):
    return AnalyticCapacityModel(engine, MIX, "hybrid")


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0
        assert erlang_c(4, -1.0) == 0.0

    def test_saturation_is_certain_wait(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 9.0) == 1.0

    def test_single_server_is_rho(self):
        # C(1, a) = a is the textbook M/M/1 / M/G/1 delay probability.
        for a in (0.1, 0.5, 0.9, 0.999):
            assert math.isclose(erlang_c(1, a), a, rel_tol=1e-12)

    def test_needs_a_server(self):
        with pytest.raises(ValueError):
            erlang_c(0, 0.5)

    def test_monotone_in_load(self):
        cs = [erlang_c(8, a) for a in (1.0, 3.0, 5.0, 7.0, 7.9)]
        assert cs == sorted(cs)
        assert all(0.0 < c < 1.0 for c in cs)


class TestMGkWait:
    def test_k1_is_pollaczek_khinchine_exactly(self):
        """At one server the Allen–Cunneen form must *be* P-K:
        ``Wq = lam ES2 / (2 (1 - rho))`` to float round-off."""
        for lam, es, cv2 in [
            (10.0, 0.02, 0.0),
            (30.0, 0.02, 1.0),
            (5.0, 0.1, 2.5),
            (40.0, 0.015, 0.3),
        ]:
            es2 = es * es * (1.0 + cv2)
            rho = lam * es
            assert rho < 1.0
            pk = lam * es2 / (2.0 * (1.0 - rho))
            assert math.isclose(mgk_wait(lam, 1, es, es2), pk, rel_tol=1e-12)

    def test_zero_load_waits_nothing(self):
        assert mgk_wait(0.0, 4, 0.02, 0.0005) == 0.0
        assert mgk_wait(-1.0, 4, 0.02, 0.0005) == 0.0

    def test_saturation_is_infinite(self):
        assert mgk_wait(100.0, 1, 0.02, 0.0005) == math.inf
        assert mgk_wait(200.0, 4, 0.02, 0.0005) == math.inf

    def test_deterministic_service_halves_mm1_wait(self):
        """CS^2 = 0 gives exactly half the exponential-service wait —
        the classic M/D/1 vs M/M/1 factor."""
        lam, es = 30.0, 0.02
        w_det = mgk_wait(lam, 1, es, es * es)
        w_exp = mgk_wait(lam, 1, es, 2.0 * es * es)
        assert math.isclose(w_det, 0.5 * w_exp, rel_tol=1e-12)


class TestSaturationClamp:
    def test_rho_to_one_warns_and_clamps(self, model):
        with pytest.warns(RuntimeWarning):
            est = model.estimate(1, 5000.0)
        assert est.clamped
        # The reported rho is the *pre-clamp* utilization, so the
        # caller can see how far past saturation the ask was.
        assert est.rho >= 1.0
        # ... but the estimate itself is evaluated at the clamp, so it
        # stays finite (the planner needs comparable numbers, not inf).
        assert math.isfinite(est.mean_wait_s)
        assert math.isfinite(est.p99_s)
        assert est.p99_s > 0.0

    def test_unclamped_estimate_does_not_warn(self, model, recwarn):
        est = model.estimate(4, 50.0)
        assert not est.clamped
        assert est.rho < 1.0
        assert not [w for w in recwarn.list if w.category is RuntimeWarning]


class TestZeroLoad:
    def test_zero_rate_estimate_is_all_zero(self, model):
        est = model.estimate(3, 0.0)
        assert est.rho == 0.0
        assert est.mean_wait_s == 0.0
        assert est.p99_wait_s == 0.0
        assert est.p99_s == 0.0
        assert est.mean_latency_s == 0.0
        assert not est.clamped

    def test_zero_rate_windows_carry_zero_load(self, model):
        windows = model.piecewise(ConstantTrace(0.0), 8.0, k=2, window_s=1.0)
        assert len(windows) == 8
        for t0, t1, est in windows:
            assert est.rho == 0.0
            assert est.p99_s == 0.0
            assert not est.clamped

    def test_worst_window_of_idle_trace_is_zero(self, model):
        worst = model.worst_window(ConstantTrace(0.0), 8.0, k=2)
        assert worst.p99_s == 0.0 and not worst.clamped


class TestEquilibriumBatch:
    def test_light_load_serves_singletons(self, model):
        est = model.estimate(4, 5.0)
        assert dict(est.batches)["BERT"] == 1

    def test_heavier_load_grows_the_batch(self, model):
        light = dict(model.estimate(1, 5.0).batches)["BERT"]
        heavy = dict(model.estimate(1, 60.0).batches)["BERT"]
        assert heavy > light


class TestPlannerAnalyticMode:
    def test_mode_is_validated(self):
        with pytest.raises(ValueError):
            CapacityPlanner(MIX, mode="oracle")
        with pytest.raises(ValueError):
            CapacityPlanner(MIX, mode="analytic", analytic_safety=0.5)

    @pytest.mark.parametrize("policy", ["cpu", "pim", "hybrid"])
    def test_analytic_never_undersizes_vs_sim(self, engine, policy):
        """The serve-cluster anchor: for each dispatch policy, the
        instant analytic plan must ask for at least as many nodes as
        the simulated plan — conservative, never optimistic."""
        kwargs = dict(engine=engine, n_requests=300, seed=42)
        sim = CapacityPlanner(MIX, **kwargs).min_nodes(
            policy, 600.0, 1.0, max_nodes=32
        )
        analytic = CapacityPlanner(MIX, mode="analytic", **kwargs).min_nodes(
            policy, 600.0, 1.0, max_nodes=32
        )
        assert analytic.nodes >= sim.nodes, policy
        # Mode-specific evidence rides on the plan.
        assert sim.report is not None and sim.analytic is None
        assert analytic.analytic is not None and analytic.report is None
        assert not analytic.analytic.clamped
        assert analytic.analytic.p99_s * 2.0 <= 1.0

    def test_analytic_infeasible_raises_like_sim(self, engine):
        planner = CapacityPlanner(MIX, engine=engine, mode="analytic")
        with pytest.raises(ValueError):
            planner.min_nodes("hybrid", 50_000.0, 0.05, max_nodes=4)
