"""Tests for the elastic-fleet layer (`repro.autoscale`)."""

import math

import pytest

from repro.autoscale import (
    ConstantTrace,
    ControlObservation,
    DiurnalTrace,
    ElasticCluster,
    FleetPowerModel,
    OnOffTrace,
    PredictiveTracePolicy,
    RampTrace,
    ReplayTrace,
    SLOFeedbackPolicy,
    SpikeTrace,
    StaticPolicy,
    TargetUtilizationPolicy,
    mix_requests,
    nhpp_requests,
    node_capacity_rps,
)
from repro.cluster import CapacityPlanner, Cluster, ModelPlacement
from repro.serving import OnlineServingEngine, poisson_requests


@pytest.fixture(scope="module")
def eng():
    return OnlineServingEngine()


MIX = {"BERT": 0.9, "DLRM": 0.1}


def obs(
    t=1.0,
    interval_s=1.0,
    active=2,
    provisioning=0,
    draining=0,
    arrivals=0,
    completions=0,
    rejections=0,
    window_p99_s=math.nan,
    utilization=0.0,
    backlog=0,
):
    return ControlObservation(
        t=t,
        interval_s=interval_s,
        active=active,
        provisioning=provisioning,
        draining=draining,
        arrivals=arrivals,
        completions=completions,
        rejections=rejections,
        window_p99_s=window_p99_s,
        utilization=utilization,
        backlog=backlog,
    )


class TestTraces:
    def test_constant_and_ramp_shapes(self):
        c = ConstantTrace(100.0)
        assert c.rate_at(0) == c.rate_at(17.3) == 100.0
        r = RampTrace(start_rps=100.0, end_rps=300.0, ramp_s=10.0)
        assert r.rate_at(0.0) == 100.0
        assert r.rate_at(5.0) == pytest.approx(200.0)
        assert r.rate_at(25.0) == 300.0

    def test_diurnal_trough_and_peak(self):
        d = DiurnalTrace(trough_rps=50.0, peak_rps=450.0, period_s=10.0)
        assert d.rate_at(0.0) == pytest.approx(50.0)
        assert d.rate_at(5.0) == pytest.approx(450.0)
        assert d.rate_at(10.0) == pytest.approx(50.0)

    def test_diurnal_windowed_peak(self):
        d = DiurnalTrace(trough_rps=50.0, peak_rps=450.0, period_s=10.0)
        # window holding the summit -> global peak
        assert d.peak_rate(4.0, 6.0) == pytest.approx(450.0)
        # rising window without the summit -> right endpoint
        assert d.peak_rate(0.0, 2.0) == pytest.approx(d.rate_at(2.0))
        # window across a trough but no summit -> an endpoint wins
        assert d.peak_rate(8.0, 12.0) == pytest.approx(
            max(d.rate_at(8.0), d.rate_at(12.0))
        )

    def test_spike_shape_and_windowed_peak(self):
        s = SpikeTrace(base_rps=100.0, spike_rps=500.0, spike_at_s=5.0, rise_s=1.0)
        assert s.rate_at(4.9) == 100.0
        assert s.rate_at(6.0) == pytest.approx(500.0)
        assert s.rate_at(20.0) < 500.0
        assert s.peak_rate(0.0, 4.0) == pytest.approx(100.0)
        assert s.peak_rate(0.0, 20.0) == pytest.approx(500.0)
        # after the summit the decay is monotone down
        assert s.peak_rate(7.0, 9.0) == pytest.approx(s.rate_at(7.0))

    def test_onoff_is_two_valued_and_windowed_peak_is_exact(self):
        t = OnOffTrace(
            base_rps=50.0,
            burst_rps=400.0,
            mean_base_s=1.0,
            mean_burst_s=0.5,
            horizon_s=20.0,
            seed=3,
        )
        rates = {t.rate_at(x / 10) for x in range(200)}
        assert rates <= {50.0, 400.0}
        assert 400.0 in rates  # bursts do happen over 20 s
        first = t._switches[0]
        assert t.peak_rate(0.0, first / 2) == 50.0
        assert t.peak_rate(0.0, first + 0.01) == 400.0

    def test_onoff_same_seed_same_switches(self):
        a = OnOffTrace(50, 400, 1.0, 0.5, horizon_s=20.0, seed=9)
        b = OnOffTrace(50, 400, 1.0, 0.5, horizon_s=20.0, seed=9)
        assert a._switches == b._switches

    def test_replay_interpolation_and_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(
            "# time  rate\n"
            "0.0, 100\n"
            "10.0  300\n"
            "\n"
            "20.0\t100\n"
        )
        tr = ReplayTrace.load(path)
        assert tr.rate_at(-1.0) == 100.0
        assert tr.rate_at(5.0) == pytest.approx(200.0)
        assert tr.rate_at(15.0) == pytest.approx(200.0)
        assert tr.rate_at(99.0) == 100.0
        assert tr.peak_rate(0.0, 20.0) == 300.0
        assert tr.peak_rate(0.0, 5.0) == pytest.approx(200.0)

    def test_replay_validation(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            ReplayTrace(points=())
        with pytest.raises(ValueError, match="strictly increasing"):
            ReplayTrace(points=((0.0, 1.0), (0.0, 2.0)))
        bad = tmp_path / "bad.txt"
        bad.write_text("1.0 2.0 3.0\n")
        with pytest.raises(ValueError, match="expected 't rate'"):
            ReplayTrace.load(bad)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrace(trough_rps=100.0, peak_rps=50.0, period_s=10.0)
        with pytest.raises(ValueError):
            SpikeTrace(base_rps=100.0, spike_rps=50.0, spike_at_s=1.0)
        with pytest.raises(ValueError):
            ConstantTrace(-1.0)


class TestStreamGeneration:
    def test_nhpp_deterministic_per_seed(self):
        tr = DiurnalTrace(trough_rps=40.0, peak_rps=300.0, period_s=8.0)
        a = nhpp_requests(tr, "BERT", 16.0, seed=5)
        b = nhpp_requests(tr, "BERT", 16.0, seed=5)
        assert [(r.req_id, r.arrival_s) for r in a] == [
            (r.req_id, r.arrival_s) for r in b
        ]
        c = nhpp_requests(tr, "BERT", 16.0, seed=6)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in c]

    def test_nhpp_mean_rate_tracks_trace(self):
        tr = DiurnalTrace(trough_rps=50.0, peak_rps=350.0, period_s=10.0)
        reqs = nhpp_requests(tr, "BERT", 40.0, seed=1)
        expect = tr.mean_rate(0.0, 40.0) * 40.0
        assert expect * 0.9 < len(reqs) < expect * 1.1

    def test_nhpp_constant_matches_poisson_intensity(self):
        reqs = nhpp_requests(ConstantTrace(200.0), "BERT", 10.0, seed=2)
        assert 200 * 10 * 0.85 < len(reqs) < 200 * 10 * 1.15
        assert all(0 <= r.arrival_s < 10.0 for r in reqs)
        assert [r.req_id for r in reqs] == list(range(len(reqs)))

    def test_nhpp_zero_rate_and_validation(self):
        assert nhpp_requests(ConstantTrace(0.0), "BERT", 5.0) == []
        with pytest.raises(ValueError, match="duration"):
            nhpp_requests(ConstantTrace(10.0), "BERT", 0.0)

    def test_mix_requests_shares_and_slos(self):
        stream = mix_requests(
            ConstantTrace(400.0),
            MIX,
            10.0,
            seed=4,
            slos={"BERT": 0.8, "DLRM": 0.2},
        )
        models = [r.model for r in stream]
        assert 0.8 < models.count("BERT") / len(models) < 0.97
        slos = {r.model: r.slo_s for r in stream}
        assert slos == {"BERT": 0.8, "DLRM": 0.2}
        assert stream == sorted(stream, key=lambda r: (r.arrival_s, r.req_id))

    def test_mix_requests_validation(self):
        with pytest.raises(ValueError):
            mix_requests(ConstantTrace(10.0), {}, 1.0)
        with pytest.raises(ValueError):
            mix_requests(ConstantTrace(10.0), {"BERT": -1.0}, 1.0)


class TestPolicies:
    def test_static_policy(self):
        p = StaticPolicy(3)
        assert p.desired_nodes(obs(active=1)) == 3
        with pytest.raises(ValueError):
            StaticPolicy(0)

    def test_target_util_sizes_from_demand(self):
        p = TargetUtilizationPolicy(capacity_rps=100.0, target=0.5, patience=2)
        # 300 req/s at 50 rps effective per node -> 6 nodes, immediately.
        assert p.desired_nodes(obs(active=2, arrivals=300)) == 6
        # downward takes `patience` consecutive under-sized windows
        p.reset()
        assert p.desired_nodes(obs(active=6, arrivals=100)) == 6
        assert p.desired_nodes(obs(active=6, arrivals=100)) == 5
        # an up-sized window resets the streak
        p.reset()
        assert p.desired_nodes(obs(active=6, arrivals=100)) == 6
        assert p.desired_nodes(obs(active=6, arrivals=700)) == 14

    def test_slo_feedback_up_on_violation_down_on_comfort(self):
        p = SLOFeedbackPolicy(1.0, down_margin=0.5, patience=2, settle_s=0.0)
        assert p.desired_nodes(obs(t=1.0, active=2, window_p99_s=1.5)) == 3
        p.reset()
        assert p.desired_nodes(obs(t=1.0, active=2, window_p99_s=0.2)) == 2
        assert p.desired_nodes(obs(t=2.0, active=2, window_p99_s=0.2)) == 1

    def test_slo_feedback_floor_memory_blocks_failed_count(self):
        p = SLOFeedbackPolicy(1.0, down_margin=0.5, patience=1, settle_s=0.0)
        # probing 1 node fails -> floor remembers, 2 is never left again
        assert p.desired_nodes(obs(t=1.0, active=2, window_p99_s=0.1)) == 1
        assert p.desired_nodes(obs(t=2.0, active=1, window_p99_s=2.0)) == 2
        for k in range(3, 9):
            assert p.desired_nodes(obs(t=float(k), active=2, window_p99_s=0.1)) == 2

    def test_slo_feedback_floor_ttl_allows_retry(self):
        p = SLOFeedbackPolicy(
            1.0, down_margin=0.5, patience=1, settle_s=0.0, floor_ttl_s=5.0
        )
        assert p.desired_nodes(obs(t=1.0, active=2, window_p99_s=0.1)) == 1
        assert p.desired_nodes(obs(t=2.0, active=1, window_p99_s=2.0)) == 2
        # memory expired -> the probe is allowed again
        assert p.desired_nodes(obs(t=9.0, active=2, window_p99_s=0.1)) == 1

    def test_slo_feedback_settle_holds_after_upscale(self):
        p = SLOFeedbackPolicy(1.0, down_margin=0.5, patience=1, settle_s=2.0)
        assert p.desired_nodes(obs(t=1.0, active=1, window_p99_s=3.0)) == 2
        # still violating while the backlog drains: hold, don't mark
        assert p.desired_nodes(obs(t=1.5, active=2, window_p99_s=3.0)) == 2
        assert 2 not in p._violated_at

    def test_predictive_reads_the_trace_ahead(self):
        tr = RampTrace(start_rps=100.0, end_rps=400.0, ramp_s=10.0)
        p = PredictiveTracePolicy(tr, capacity_rps=100.0, lookahead_s=2.0, headroom=1.0)
        assert p.desired_nodes(obs(t=0.0, active=1)) == 2  # rate_at(2) = 160
        assert p.desired_nodes(obs(t=10.0, active=1)) == 4

    def test_node_capacity_mix_harmonic(self, eng):
        cap_bert = node_capacity_rps(eng, {"BERT": 1.0}, "hybrid")
        cap_mix = node_capacity_rps(eng, MIX, "hybrid")
        cap_dlrm = node_capacity_rps(eng, {"DLRM": 1.0}, "hybrid")
        assert cap_bert < cap_mix < cap_dlrm
        b = eng.max_batch
        assert cap_bert == pytest.approx(b / eng.batch_latency("BERT", "hybrid", b))


class TestElasticCluster:
    def test_static_policy_matches_static_cluster(self, eng):
        """An elastic fleet that never scales is the static fleet, exactly."""
        slo = 20 * eng.min_latency("BERT", "cpu")
        reqs = poisson_requests("BERT", 300, 2.0, seed=3, slo_s=slo)
        placement = ModelPlacement(replicas={"BERT": [0, 1]}, used_bytes={})
        ref = Cluster(2, policy="hybrid", engine=eng, placement=placement).run(reqs)
        elastic = ElasticCluster(
            engine=eng,
            policy="hybrid",
            models=["BERT"],
            initial_nodes=2,
            control_interval_s=0.5,
        )
        rep = elastic.run(reqs, StaticPolicy(2))
        assert sorted(
            (c.request.req_id, c.dispatch_s, c.finish_s, c.batch)
            for c in ref.completed
        ) == sorted(
            (c.request.req_id, c.dispatch_s, c.finish_s, c.batch)
            for c in rep.completed
        )
        assert rep.sim_end_s == ref.sim_end_s
        assert rep.node_seconds == pytest.approx(2 * ref.sim_end_s)

    def test_scale_up_waits_for_provisioning(self, eng):
        elastic = ElasticCluster(
            engine=eng,
            policy="hybrid",
            models=["BERT"],
            initial_nodes=1,
            control_interval_s=0.5,
            provision_base_s=0.3,
            copy_gbps=10.0,
        )
        delay = elastic.provision_delay_s
        reqs = poisson_requests("BERT", 400, 3.0, seed=1, slo_s=1.0)
        rep = elastic.run(reqs, StaticPolicy(3))
        lives = [life for life in rep.lifetimes.values() if life.ordered_s > 0]
        assert len(lives) == 2  # grown at the first control tick
        for life in lives:
            assert life.ordered_s == 0.5
            assert life.ready_s == pytest.approx(0.5 + delay)
        # provisioning time is paid for
        assert rep.node_seconds > rep.sim_end_s  # more than one node's worth

    def test_provision_delay_scales_with_weights(self, eng):
        small = ElasticCluster(engine=eng, models=["DLRM"], copy_gbps=10.0)
        big = ElasticCluster(engine=eng, models=["BERT", "DLRM"], copy_gbps=10.0)
        assert big.provision_delay_s > small.provision_delay_s
        expect = big.provision_base_s + big.weight_bytes / 10e9
        assert big.provision_delay_s == pytest.approx(expect)

    def test_drained_node_finishes_backlog_then_retires(self, eng):
        elastic = ElasticCluster(
            engine=eng,
            policy="hybrid",
            models=["BERT"],
            initial_nodes=3,
            control_interval_s=0.5,
        )
        reqs = poisson_requests("BERT", 500, 4.0, seed=2, slo_s=2.0)
        rep = elastic.run(reqs, StaticPolicy(1))
        # two nodes drained at the first tick; every request is accounted
        assert rep.served + len(rep.rejected) == len(reqs)
        retired = [
            life
            for life in rep.lifetimes.values()
            if life.drain_s is not None and life.retired_s is not None
        ]
        assert len(retired) == 2
        for life in retired:
            assert life.retired_s >= life.drain_s
            # no completion on a drained node after it retired
            node_rep = rep.node_reports[life.node_id]
            assert all(c.finish_s <= life.retired_s for c in node_rep.completed)

    def test_min_and_max_nodes_clamp_the_policy(self, eng):
        elastic = ElasticCluster(
            engine=eng,
            policy="hybrid",
            models=["BERT"],
            initial_nodes=2,
            min_nodes=2,
            max_nodes=3,
            control_interval_s=0.5,
        )
        reqs = poisson_requests("BERT", 200, 3.0, seed=4, slo_s=1.0)
        rep = elastic.run(reqs, StaticPolicy(1))  # wants 1 < min_nodes
        assert all(s.active + s.provisioning >= 2 for s in rep.samples)
        rep2 = elastic.run(reqs, StaticPolicy(12))  # wants 12 > max_nodes
        assert all(s.active + s.provisioning <= 3 for s in rep2.samples)

    def test_empty_stream(self, eng):
        elastic = ElasticCluster(engine=eng, models=["BERT"], initial_nodes=1)
        rep = elastic.run([], StaticPolicy(1))
        assert rep.served == 0 and rep.offered == 0
        assert rep.node_seconds == 0.0
        assert math.isnan(rep.p99_s)
        assert rep.samples == []

    def test_constructor_validation(self, eng):
        with pytest.raises(ValueError, match="unknown policy"):
            ElasticCluster(engine=eng, policy="tpu")
        with pytest.raises(ValueError):
            ElasticCluster(engine=eng, initial_nodes=0)
        with pytest.raises(ValueError):
            ElasticCluster(engine=eng, min_nodes=4, max_nodes=2)
        with pytest.raises(ValueError):
            ElasticCluster(engine=eng, initial_nodes=9, max_nodes=4)
        with pytest.raises(ValueError):
            ElasticCluster(engine=eng, control_interval_s=0.0)
        with pytest.raises(KeyError, match="unknown to the engine"):
            ElasticCluster(engine=eng, models=["LLAMA"])

    def test_deterministic_runs(self, eng):
        trace = DiurnalTrace(trough_rps=50.0, peak_rps=400.0, period_s=6.0)
        stream = mix_requests(trace, MIX, 6.0, seed=8, slos={m: 1.0 for m in MIX})
        cap = node_capacity_rps(eng, MIX, "hybrid")

        def once():
            elastic = ElasticCluster(
                engine=eng,
                policy="hybrid",
                models=sorted(MIX),
                initial_nodes=1,
                control_interval_s=0.5,
            )
            return elastic.run(stream, TargetUtilizationPolicy(cap, target=0.7))

        a, b = once(), once()
        assert a.served == b.served
        assert a.node_seconds == b.node_seconds
        assert [(s.t, s.active, s.desired) for s in a.samples] == [
            (s.t, s.active, s.desired) for s in b.samples
        ]

    def test_windowed_observation_consistency(self, eng):
        """Control samples partition completions/arrivals without loss."""
        trace = DiurnalTrace(trough_rps=50.0, peak_rps=400.0, period_s=6.0)
        stream = mix_requests(trace, MIX, 6.0, seed=8, slos={m: 1.0 for m in MIX})
        cap = node_capacity_rps(eng, MIX, "hybrid")
        elastic = ElasticCluster(
            engine=eng,
            policy="hybrid",
            models=sorted(MIX),
            initial_nodes=1,
            control_interval_s=0.5,
        )
        rep = elastic.run(stream, TargetUtilizationPolicy(cap, target=0.7))
        assert sum(s.arrivals for s in rep.samples) == len(stream)
        # completions observed at ticks never exceed the total served (the
        # tail after the last tick is drained outside any window)
        assert sum(s.completions for s in rep.samples) <= rep.served
        assert all(0.0 <= s.utilization <= 1.0 for s in rep.samples)


class TestPlannerAnchor:
    def test_constant_trace_converges_to_capacity_planner(self, eng):
        """Satellite anchor: elastic convergence == static binary search."""
        rate, slo = 300.0, 1.0
        planner = CapacityPlanner(MIX, engine=eng, n_requests=150, seed=11)
        plan = planner.min_nodes("hybrid", target_rps=rate, p99_slo_s=slo, max_nodes=16)
        stream = mix_requests(ConstantTrace(rate), MIX, 16.0, seed=11)
        elastic = ElasticCluster(
            engine=eng,
            policy="hybrid",
            models=sorted(MIX),
            initial_nodes=plan.nodes + 2,
            control_interval_s=0.5,
            provision_base_s=0.15,
            copy_gbps=10.0,
        )
        rep = elastic.run(
            stream, SLOFeedbackPolicy(slo, down_margin=0.6, patience=2, settle_s=3.0)
        )
        assert rep.converged_nodes() == plan.nodes


class TestAutoscaleReport:
    def _report(self, eng):
        trace = SpikeTrace(base_rps=80.0, spike_rps=400.0, spike_at_s=2.0)
        stream = mix_requests(trace, MIX, 6.0, seed=5, slos={m: 1.0 for m in MIX})
        cap = node_capacity_rps(eng, MIX, "hybrid")
        elastic = ElasticCluster(
            engine=eng,
            policy="hybrid",
            models=sorted(MIX),
            initial_nodes=1,
            control_interval_s=0.5,
        )
        return elastic.run(stream, TargetUtilizationPolicy(cap, target=0.7))

    def test_accounting_identities(self, eng):
        rep = self._report(eng)
        assert rep.offered == rep.served + len(rep.rejected)
        assert 0.0 <= rep.shed_fraction < 1.0
        assert rep.busy_seconds <= rep.node_seconds + 1e-9
        assert rep.mean_fleet_size == pytest.approx(
            rep.node_seconds / rep.sim_end_s
        )
        assert rep.peak_fleet_size >= 1

    def test_energy_model_grounded_in_table2(self, eng):
        power = FleetPowerModel()
        # 38.4 GB/s at 25.7 pJ/bit ~ 7.9 W of DRAM streaming
        assert power.dram_stream_w == pytest.approx(7.895, rel=1e-3)
        assert power.busy_w > power.idle_w
        rep = self._report(eng)
        joules = rep.energy_j(power)
        assert joules >= rep.node_seconds * power.idle_w
        assert joules <= rep.node_seconds * power.busy_w + 1e-9

    def test_timeline_and_violations(self, eng):
        rep = self._report(eng)
        rows = rep.timeline_rows()
        assert len(rows) == len(rep.samples)
        assert {"t_s", "nodes", "offered_rps", "goodput_rps", "p99_ms"} <= set(rows[0])
        assert 0.0 <= rep.violation_fraction(1.0) <= 1.0
        # with per-request SLOs, completions can never exceed the SLO
        assert rep.violation_fraction(10.0) == 0.0

    def test_window_percentile_reuses_shared_helper(self, eng):
        rep = self._report(eng)
        assert math.isnan(rep.window_percentile(99, -5.0, 0.0))
        full = rep.window_percentile(99, 0.0, rep.sim_end_s + 1.0)
        assert full == pytest.approx(rep.p99_s)

    def test_converged_nodes_validation(self, eng):
        rep = self._report(eng)
        with pytest.raises(ValueError):
            rep.converged_nodes(tail_fraction=0.0)
        assert rep.converged_nodes(tail_fraction=1.0) >= 1


class TestStreamingTraces:
    """The lazy generator variants must reproduce their list counterparts
    request-for-request (same seeds, same ids, same merge order)."""

    def test_nhpp_stream_matches_list(self):
        from repro.autoscale import nhpp_stream

        tr = DiurnalTrace(trough_rps=30.0, peak_rps=200.0, period_s=20.0)
        eager = nhpp_requests(tr, "BERT", 40.0, seed=5, slo_s=1.0, start_id=3)
        lazy = list(nhpp_stream(tr, "BERT", 40.0, seed=5, slo_s=1.0, start_id=3))
        assert lazy == eager

    def test_mix_request_stream_matches_list(self):
        from repro.autoscale import mix_request_stream

        tr = DiurnalTrace(trough_rps=30.0, peak_rps=200.0, period_s=20.0)
        eager = mix_requests(tr, MIX, 40.0, seed=11, slos={"BERT": 1.0})
        lazy = list(mix_request_stream(tr, MIX, 40.0, seed=11, slos={"BERT": 1.0}))
        assert lazy == eager

    def test_stream_validation_matches_list(self):
        from repro.autoscale import mix_request_stream, nhpp_stream

        with pytest.raises(ValueError):
            list(nhpp_stream(ConstantTrace(10.0), "BERT", 0.0))
        with pytest.raises(ValueError):
            mix_request_stream(ConstantTrace(10.0), {}, 5.0)
        assert list(nhpp_stream(ConstantTrace(0.0), "BERT", 5.0)) == []


class TestStreamingRecord:
    """record="streaming" must be observationally equivalent to the
    pre-refactor full mode everywhere the controller looks, while
    refusing per-request access."""

    @staticmethod
    def _cluster(eng, record):
        return ElasticCluster(
            engine=eng,
            policy="hybrid",
            models=sorted(MIX),
            initial_nodes=1,
            min_nodes=1,
            max_nodes=8,
            control_interval_s=0.5,
            record=record,
        )

    @staticmethod
    def _stream(horizon=20.0):
        tr = DiurnalTrace(trough_rps=50.0, peak_rps=300.0, period_s=20.0)
        return mix_requests(tr, MIX, horizon, seed=9, slos={m: 1.0 for m in MIX})

    def test_unknown_record_mode_raises(self, eng):
        with pytest.raises(ValueError, match="unknown record mode"):
            self._cluster(eng, "ledger")

    def test_streaming_run_matches_full_run(self, eng):
        reqs = self._stream()
        cap = node_capacity_rps(eng, MIX, "hybrid")
        full = self._cluster(eng, "full").run(
            reqs, TargetUtilizationPolicy(cap, target=0.7)
        )
        stream = self._cluster(eng, "streaming").run(
            reqs, TargetUtilizationPolicy(cap, target=0.7)
        )
        assert stream.served == full.served
        assert stream.rejected_count == full.rejected_count
        assert stream.failed_count == full.failed_count
        assert stream.node_seconds == pytest.approx(full.node_seconds)
        # Control equivalence: every tick sees the same signals, so the
        # fleet makes the same decisions at the same instants.
        assert [(s.t, s.desired, s.completions, s.rejections) for s in stream.samples] == [
            (s.t, s.desired, s.completions, s.rejections) for s in full.samples
        ]
        # Sketch tolerance on the overall tail: the documented 2% holds
        # for 50k-sample streams (tests/test_stats.py); this short run
        # spills the reservoir with only ~5k samples, so allow 5%.
        assert stream.latency_percentile(99) == pytest.approx(
            full.latency_percentile(99), rel=0.05
        )

    def test_streaming_refuses_per_request_access(self, eng):
        from repro.sim import RecordingModeError

        cap = node_capacity_rps(eng, MIX, "hybrid")
        rep = self._cluster(eng, "streaming").run(
            self._stream(8.0), TargetUtilizationPolicy(cap, target=0.7)
        )
        for attr in ("completed", "rejected", "dropped_list", "latencies_s"):
            if attr == "dropped_list":
                continue  # dropped stays a (bounded) list field
            with pytest.raises(RecordingModeError):
                getattr(rep, attr)
        assert rep.record == "streaming"

    def test_lazy_presorted_run_matches_eager(self, eng):
        from repro.autoscale import mix_request_stream

        tr = DiurnalTrace(trough_rps=50.0, peak_rps=300.0, period_s=20.0)
        horizon = 20.0
        cap = node_capacity_rps(eng, MIX, "hybrid")
        eager = self._cluster(eng, "streaming").run(
            self._stream(horizon), TargetUtilizationPolicy(cap, target=0.7)
        )
        lazy = self._cluster(eng, "streaming").run(
            mix_request_stream(tr, MIX, horizon, seed=9, slos={m: 1.0 for m in MIX}),
            TargetUtilizationPolicy(cap, target=0.7),
            presorted=True,
            horizon_s=horizon,
        )
        assert lazy.served == eager.served
        assert lazy.rejected_count == eager.rejected_count
        # The lazy run schedules ticks through the declared horizon, so
        # it may carry trailing ticks past the last arrival: the eager
        # decision sequence must be a prefix of the lazy one.
        n = len(eager.samples)
        assert len(lazy.samples) >= n
        assert [s.desired for s in lazy.samples[:n]] == [
            s.desired for s in eager.samples
        ]

    def test_presorted_requires_horizon(self, eng):
        with pytest.raises(ValueError, match="horizon"):
            self._cluster(eng, "streaming").run(
                iter([]), StaticPolicy(1), presorted=True
            )
