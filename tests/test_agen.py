"""AGEN validation: exact traces vs. brute-force oracle (paper §IV method)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agen import (
    ExactStepStoneAGEN,
    agen_supported,
    naive_iterations,
    solve_constraints,
    stepstone_iteration_counts,
)
from repro.mapping.analysis import Constraint, analyze_footprint
from repro.mapping.presets import make_skylake, mapping_by_id
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestSolveConstraints:
    def test_unconstrained_full_space(self):
        s = solve_constraints([], 4)
        assert s.size == 16
        assert sorted(int(x) for x in s.elements()) == list(range(16))

    def test_single_parity_halves_space(self):
        s = solve_constraints([Constraint(0b101, 1)], 4)
        assert s.size == 8
        for x in s.elements():
            assert bin(int(x) & 0b101).count("1") % 2 == 1

    def test_contradiction_returns_none(self):
        assert solve_constraints([Constraint(0b1, 0), Constraint(0b1, 1)], 4) is None
        assert solve_constraints([Constraint(0, 1)], 4) is None

    def test_elements_strictly_increasing(self):
        s = solve_constraints([Constraint(0b1100, 1), Constraint(0b0011, 0)], 6)
        els = [s.element(k) for k in range(s.size)]
        assert els == sorted(els)
        assert len(set(els)) == s.size

    def test_index_of_roundtrip(self):
        s = solve_constraints([Constraint(0b1010, 1)], 5)
        for k in range(s.size):
            assert s.index_of(s.element(k)) == k

    def test_index_of_nonmember_raises(self):
        s = solve_constraints([Constraint(0b1, 1)], 3)
        with pytest.raises(ValueError):
            s.index_of(0)  # parity of bit0 is 0, not a member

    @settings(max_examples=30, deadline=None)
    @given(
        n_bits=st.integers(min_value=3, max_value=10),
        data=st.data(),
    )
    def test_solution_set_matches_bruteforce(self, n_bits, data):
        n_cons = data.draw(st.integers(min_value=0, max_value=3))
        cons = []
        for _ in range(n_cons):
            mask = data.draw(st.integers(min_value=1, max_value=(1 << n_bits) - 1))
            tgt = data.draw(st.integers(min_value=0, max_value=1))
            cons.append(Constraint(mask, tgt))
        s = solve_constraints(cons, n_bits)
        brute = [
            x
            for x in range(1 << n_bits)
            if all(bin(x & c.mask).count("1") % 2 == c.target for c in cons)
        ]
        if s is None:
            assert brute == []
        else:
            got = sorted(int(e) for e in s.elements())
            assert got == brute


class TestExactAgen:
    @pytest.mark.parametrize("level", list(PimLevel))
    @pytest.mark.parametrize("m,k", [(32, 512), (64, 1024)])
    def test_trace_equals_oracle_all_pairs(self, sky, level, m, k):
        """The paper's validation: AGEN addresses == pre-generated trace."""
        fa = analyze_footprint(sky, level, m, k)
        for pim in fa.active_pim_ids():
            for grp in range(fa.n_groups):
                agen = ExactStepStoneAGEN(fa, int(pim), grp)
                oracle = np.sort(fa.blocks_of(int(pim), grp))
                assert np.array_equal(agen.trace(), oracle), (level, pim, grp)

    @settings(max_examples=15, deadline=None)
    @given(
        mid=st.integers(min_value=0, max_value=4),
        m_exp=st.integers(min_value=4, max_value=7),
        k_exp=st.integers(min_value=7, max_value=10),
        level=st.sampled_from(list(PimLevel)),
    )
    def test_trace_equals_oracle_random(self, mid, m_exp, k_exp, level):
        mapping = mapping_by_id(mid)
        fa = analyze_footprint(mapping, level, 1 << m_exp, 1 << k_exp)
        pim = int(fa.active_pim_ids()[-1])
        for grp in range(min(2, fa.n_groups)):
            agen = ExactStepStoneAGEN(fa, pim, grp)
            oracle = np.sort(fa.blocks_of(pim, grp))
            assert np.array_equal(agen.trace(), oracle)

    def test_agen_supported_matches_ownership(self, sky):
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 64, 1024)
        for pim in fa.active_pim_ids():
            for grp in range(fa.n_groups):
                assert agen_supported(fa, int(pim), grp) == fa.owns_blocks(int(pim), grp)

    def test_trace_with_iterations_lengths(self, sky):
        fa = analyze_footprint(sky, PimLevel.DEVICE, 32, 512)
        agen = ExactStepStoneAGEN(fa, int(fa.active_pim_ids()[0]), 0)
        addrs, iters = agen.trace_with_iterations()
        assert len(addrs) == len(iters)


class TestIterationModels:
    def test_stepstone_counts_small(self):
        c = stepstone_iteration_counts(9)
        # Ruler sequence: step k costs tz(k)+2.
        assert c.tolist() == [2, 2, 3, 2, 4, 2, 3, 2, 5]

    def test_stepstone_counts_bounded(self):
        c = stepstone_iteration_counts(1 << 12)
        assert c.max() <= 12 + 2
        assert c.mean() < 4.0

    def test_stepstone_empty(self):
        assert len(stepstone_iteration_counts(0)) == 0

    def test_naive_gap_counts(self):
        addrs = np.array([0, 64, 256, 320], dtype=np.uint64)
        assert naive_iterations(addrs).tolist() == [1, 1, 3, 1]

    def test_naive_requires_increasing(self):
        with pytest.raises(ValueError):
            naive_iterations(np.array([64, 0], dtype=np.uint64))

    def test_naive_mean_tracks_pim_count(self, sky):
        """§V-C intuition: naive finds the next block with p ~ 1/n_pims,
        so mean within-row gap is about the active-PIM count per row."""
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 1024, 4096)
        pim = int(fa.active_pim_ids()[0])
        row = fa.rows_of_group(0)[:1]
        addrs = fa.blocks_of(pim, 0, rows=row)
        gaps = naive_iterations(addrs)[1:]
        # Within a row, 4 PIM IDs are reachable under Skylake: mean gap ~4.
        assert 2.0 <= gaps.mean() <= 8.0
