"""Tests for the streaming statistics core (``repro.sim.stats``) and the
lazy kernel stream: sketch-vs-exact cross-checks, the window ring, the
recorder's two modes, the versioned-list cache-invalidation fix, and the
``preload_stream`` ordering contract."""

import math
import random

import pytest

from repro.serving.engine import (
    CompletedRequest,
    OnlineServingEngine,
    Request,
    ServingReport,
)
from repro.sim import (
    DiscreteEventKernel,
    Event,
    EventKind,
    MetricsRecorder,
    P2Quantile,
    QuantileSketch,
    RecordingModeError,
    StreamStats,
    VersionedList,
    WindowRing,
    nearest_rank,
)


def _completion(latency_s, finish_s=0.0, req_id=0, queue_s=0.0, batch=1):
    finish_s = max(finish_s, latency_s)  # arrivals cannot be negative
    r = Request(req_id=req_id, model="BERT", arrival_s=finish_s - latency_s)
    return CompletedRequest(
        request=r,
        dispatch_s=finish_s - latency_s + queue_s,
        finish_s=finish_s,
        batch=batch,
    )


class TestVersionedList:
    def test_every_mutation_bumps_version(self):
        vl = VersionedList([1.0])
        seen = {vl.version}

        def bumped():
            assert vl.version not in seen, "mutation did not bump version"
            seen.add(vl.version)

        vl.append(2.0); bumped()
        vl.extend([3.0, 4.0]); bumped()
        vl.insert(0, 0.5); bumped()
        vl[0] = 0.25; bumped()
        vl += [5.0]; bumped()
        vl.sort(); bumped()
        vl.remove(5.0); bumped()
        vl.pop(); bumped()
        del vl[0]; bumped()
        vl.clear(); bumped()

    def test_reads_do_not_bump(self):
        vl = VersionedList([3.0, 1.0, 2.0])
        v = vl.version
        _ = vl[0], len(vl), list(vl), sorted(vl), 1.0 in vl
        assert vl.version == v


class TestQuantileSketch:
    def test_exact_regime_matches_nearest_rank(self):
        rng = random.Random(7)
        xs = [rng.expovariate(3.0) for _ in range(200)]
        sk = QuantileSketch(exact_limit=512)
        for x in xs:
            sk.add(x)
        assert sk.is_exact
        for q in (25, 50, 75, 90, 95, 99, 100):
            assert sk.quantile(q) == nearest_rank(sorted(xs), q)

    @pytest.mark.parametrize(
        "dist",
        [
            lambda rng: rng.expovariate(2.0),
            lambda rng: rng.lognormvariate(0.0, 0.7),
        ],
        ids=["expovariate", "lognormal"],
    )
    def test_sketch_within_two_percent_of_exact(self, dist):
        """The documented tolerance: tracked percentiles of a 50k-sample
        stream sit within 2% of the exact nearest-rank answer."""
        rng = random.Random(42)
        xs = [dist(rng) for _ in range(50_000)]
        sk = QuantileSketch()
        for x in xs:
            sk.add(x)
        assert not sk.is_exact
        for q in (50, 90, 95, 99):
            exact = nearest_rank(sorted(xs), q)
            rel = abs(sk.quantile(q) - exact) / exact
            assert rel < 0.02, f"p{q}: {rel:.4f} off"

    def test_min_max_and_count(self):
        sk = QuantileSketch(exact_limit=8)
        for x in range(1000):
            sk.add(float(x))
        assert (sk.min, sk.max, sk.count) == (0.0, 999.0, 1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(quantiles=[1.5])
        with pytest.raises(ValueError):
            QuantileSketch(exact_limit=4)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(0)

    def test_empty_is_nan(self):
        assert math.isnan(QuantileSketch().quantile(50))

    def test_p2_is_monotone_in_rank(self):
        rng = random.Random(3)
        sk = QuantileSketch(exact_limit=8)
        for _ in range(10_000):
            sk.add(rng.gauss(10.0, 2.0))
        vals = [sk.quantile(q) for q in (10, 25, 50, 75, 90, 95, 99)]
        assert vals == sorted(vals)


class TestP2Quantile:
    def test_seeded_from_sorted_reservoir(self):
        seed = sorted(float(i) for i in range(64))
        m = P2Quantile(0.5, seed)
        assert abs(m.value - nearest_rank(seed, 50)) <= 1.0

    def test_tracks_shifting_stream(self):
        rng = random.Random(11)
        seed = sorted(rng.uniform(0, 1) for _ in range(64))
        m = P2Quantile(0.9, seed)
        xs = [rng.uniform(0, 1) for _ in range(20_000)]
        for x in xs:
            m.add(x)
        assert abs(m.value - 0.9) < 0.02


class TestStreamStats:
    def test_mean_total_and_percentiles(self):
        st = StreamStats()
        for x in (1.0, 2.0, 3.0, 4.0):
            st.add(x)
        assert st.count == 4
        assert st.mean == pytest.approx(2.5)
        assert st.min == 1.0 and st.max == 4.0
        assert st.percentile(50) == nearest_rank([1.0, 2.0, 3.0, 4.0], 50)


class TestWindowRing:
    def test_exact_windows_merge_exactly(self):
        ring = WindowRing()
        xs0 = [0.5, 0.1, 0.9]
        xs1 = [0.3, 0.7]
        for x in xs0:
            ring.add(x, 0.2)
        ring.roll(1.0)
        for x in xs1:
            ring.add(x, 1.2)
        ring.roll(2.0)
        assert ring.window_percentile(99, 0.0, 1.0) == nearest_rank(sorted(xs0), 99)
        assert ring.window_percentile(99, 1.0, 2.0) == nearest_rank(sorted(xs1), 99)
        assert ring.window_percentile(50, 0.0, 2.0) == nearest_rank(sorted(xs0 + xs1), 50)
        assert ring.window_count(0.0, 2.0) == 5

    def test_open_window_is_queryable(self):
        ring = WindowRing()
        ring.add(0.4, 0.1)
        assert ring.window_percentile(99, 0.0, 1.0) == 0.4
        ring.roll(1.0)  # once closed, a disjoint later range sees nothing
        assert math.isnan(ring.window_percentile(99, 5.0, 6.0))

    def test_auto_roll_snaps_to_width_grid(self):
        ring = WindowRing(window_s=1.0)
        ring.add(0.1, 0.5)
        ring.add(0.2, 7.3)  # jumps several widths: boundary at 7.0, not 8.3
        assert ring.window_count(0.0, 1.0) == 1
        assert ring.window_count(7.0, 8.0) == 1
        assert ring._closed[-1].end_s == 7.0  # snapped to the width grid
        assert ring._open.start_s == 7.0

    def test_depth_bounds_memory(self):
        ring = WindowRing(depth=4)
        for i in range(32):
            ring.add(float(i), float(i) + 0.5)
            ring.roll(float(i + 1))
        assert len(ring._closed) == 4
        assert ring.window_count(0.0, 32.0) == 4  # older windows evicted

    def test_spilled_window_estimate_stays_close(self):
        rng = random.Random(5)
        ring = WindowRing(exact_limit=128)
        xs = [rng.expovariate(1.0) for _ in range(5_000)]
        for x in xs:
            ring.add(x, 0.5)
        ring.roll(1.0)
        exact = nearest_rank(sorted(xs), 95)
        assert abs(ring.window_percentile(95, 0.0, 1.0) - exact) / exact < 0.05


class TestMetricsRecorder:
    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown record mode"):
            MetricsRecorder(record="ledger")

    def test_full_mode_keeps_records(self):
        rec = MetricsRecorder(record="full")
        rec.record_completion(_completion(0.25, finish_s=1.0))
        assert rec.completed_count == 1
        assert rec.latencies_s == [0.25]
        assert rec.percentile(99) == 0.25

    def test_streaming_mode_refuses_per_request_access(self):
        rec = MetricsRecorder(record="streaming")
        rec.record_completion(_completion(0.25, finish_s=1.0))
        assert rec.completed_count == 1
        assert rec.percentile(50) == 0.25
        for attr in ("completed", "rejected", "failed", "latencies_s"):
            with pytest.raises(RecordingModeError, match="record='full'"):
                getattr(rec, attr)

    def test_modes_agree_on_aggregates(self):
        rng = random.Random(9)
        full = MetricsRecorder(record="full")
        stream = MetricsRecorder(record="streaming")
        t = 10.0
        # 100 observations: under both the overall (512) and per-window
        # (128) exact limits, so every answer must match bit-for-bit.
        for i in range(100):
            t += rng.expovariate(50.0)
            c = _completion(rng.expovariate(8.0), finish_s=t, req_id=i)
            full.record_completion(c)
            stream.record_completion(c)
        assert stream.completed_count == full.completed_count
        assert stream.mean_latency_s == pytest.approx(full.mean_latency_s)
        assert stream.mean_queue_s == pytest.approx(full.mean_queue_s)
        assert stream.mean_batch == pytest.approx(full.mean_batch)
        assert stream.percentile(99) == full.percentile(99)
        # End strictly after the last finish: the window query's end is
        # exclusive, and both modes must see all 100 completions.
        assert stream.window_percentile(99, 0.0, t + 1.0) == (
            full.window_percentile(99, 0.0, t + 1.0)
        )

    def test_parent_chaining_feeds_every_level(self):
        run = MetricsRecorder(record="streaming")
        pool = MetricsRecorder(record="streaming", parent=run)
        node = MetricsRecorder(record="streaming", parent=pool)
        node.record_completion(_completion(0.5, finish_s=1.0))
        node.record_rejection(object())
        node.record_failure(object())
        for rec in (node, pool, run):
            assert (rec.completed_count, rec.rejected_count, rec.failed_count) == (
                1,
                1,
                1,
            )
        assert run.percentile(50) == 0.5


class TestSortedLatencyCacheInvalidation:
    """The satellite fix: percentile memos key on list *versions*, not
    lengths, so a same-length in-place mutation can never serve a stale
    sorted-latency cache."""

    def test_serving_report_same_length_mutation_refreshes(self):
        rep = ServingReport(policy="hybrid")
        rep.record_completion(_completion(0.1, finish_s=1.0, req_id=0))
        rep.record_completion(_completion(0.2, finish_s=2.0, req_id=1))
        assert rep.latency_percentile(99) == pytest.approx(0.2)
        # Same length, different contents — the pre-fix len-keyed memo
        # returned the stale 0.2 here.
        rep.completed[1] = _completion(0.9, finish_s=2.0, req_id=1)
        assert rep.latency_percentile(99) == pytest.approx(0.9)

    def test_cluster_report_same_length_mutation_refreshes(self):
        from repro.cluster import Cluster
        from repro.serving import poisson_requests

        eng = OnlineServingEngine()
        rep = Cluster(2, engine=eng).run(
            poisson_requests("BERT", 200.0, 1.0, seed=1)
        )
        before = rep.latency_percentile(99)
        node = max(rep.node_reports, key=lambda r: r.served)
        assert node.served > 0
        bumped = max(rep.latencies_s) * 10.0
        node.completed[0] = _completion(bumped, finish_s=1.0)
        assert rep.latency_percentile(100) == pytest.approx(bumped)
        assert rep.latency_percentile(100) != before


class TestServingReportModes:
    def test_streaming_report_counts_without_lists(self):
        rep = ServingReport(policy="hybrid", record="streaming")
        rep.record_completion(_completion(0.3, finish_s=1.0))
        assert rep.served == 1
        assert rep.p99_s == pytest.approx(0.3)
        with pytest.raises(RecordingModeError):
            rep.completed
        with pytest.raises(RecordingModeError):
            rep.latencies_s

    def test_engine_run_streaming_matches_full_counts(self):
        from repro.serving import poisson_requests

        eng = OnlineServingEngine()
        reqs = poisson_requests("BERT", 300.0, 2.0, seed=5, slo_s=1.0)
        full = eng.run(reqs, policy="hybrid")
        stream = eng.run(reqs, policy="hybrid", record="streaming")
        assert stream.served == full.served
        assert stream.rejected_count == full.rejected_count
        assert stream.throughput_rps == pytest.approx(full.throughput_rps)
        if full.served:
            assert stream.p99_s == pytest.approx(full.p99_s)


class TestLazyKernelStream:
    @staticmethod
    def _events(n, seed=0):
        rng = random.Random(seed)
        t = 0.0
        out = []
        for i in range(n):
            t += rng.expovariate(10.0)
            out.append(Event(t, EventKind.ARRIVAL, i, payload=i))
        return out

    def test_lazy_stream_matches_eager_preload(self):
        events = self._events(500)
        seen_eager, seen_lazy = [], []

        k1 = DiscreteEventKernel()
        k1.preload(events)
        k1.run({EventKind.ARRIVAL: lambda t, evs: seen_eager.extend(
            (t, e.payload) for e in evs)})

        k2 = DiscreteEventKernel()
        k2.preload_stream(iter(events))
        k2.run({EventKind.ARRIVAL: lambda t, evs: seen_lazy.extend(
            (t, e.payload) for e in evs)})

        assert seen_lazy == seen_eager
        assert k2.processed == k1.processed

    def test_lazy_stream_interleaves_with_scheduled_events(self):
        events = self._events(200, seed=3)
        order = []
        kernel = DiscreteEventKernel()
        kernel.preload_stream(iter(events))
        kernel.schedule(events[50].time, EventKind.CONTROL, payload="tick")
        kernel.run(
            {
                EventKind.ARRIVAL: lambda t, evs: order.extend(
                    e.payload for e in evs
                ),
                EventKind.CONTROL: lambda t, evs: order.append("tick"),
            }
        )
        assert order.index("tick") == 51  # ARRIVAL sorts before CONTROL
        assert [o for o in order if o != "tick"] == list(range(200))

    def test_out_of_order_lazy_stream_raises_mid_run(self):
        bad = [
            Event(1.0, EventKind.ARRIVAL, 0),
            Event(0.5, EventKind.ARRIVAL, 1),
        ]
        kernel = DiscreteEventKernel()
        kernel.preload_stream(iter(bad))
        with pytest.raises(ValueError, match="out of order"):
            kernel.run({})

    def test_double_attach_raises(self):
        kernel = DiscreteEventKernel()
        kernel.preload_stream(iter([]))
        with pytest.raises(RuntimeError, match="already attached"):
            kernel.preload_stream(iter([]))
