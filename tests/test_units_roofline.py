"""Tests for unit helpers and the roofline model."""

import pytest

from repro.core.gemm import GemmShape
from repro.roofline.model import Roofline, gemm_operational_intensity
from repro.utils.units import (
    CACHE_BLOCK_BYTES,
    GiB,
    KiB,
    MiB,
    cycles_to_seconds,
    cycles_to_us,
    human_bytes,
    human_cycles,
)


class TestUnits:
    def test_constants(self):
        assert KiB == 1024 and MiB == 1024**2 and GiB == 1024**3
        assert CACHE_BLOCK_BYTES == 64

    def test_cycles_to_us(self):
        assert cycles_to_us(1.2e6) == pytest.approx(1000.0)
        assert cycles_to_seconds(1.2e9) == pytest.approx(1.0)

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, clock_hz=0)

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(3 * MiB) == "3.0 MiB"
        assert "GiB" in human_bytes(5 * GiB)

    def test_human_cycles(self):
        assert human_cycles(1234567) == "1.23e+06"


class TestOperationalIntensity:
    def test_grows_with_batch(self):
        ois = [
            gemm_operational_intensity(GemmShape(1024, 4096, n))
            for n in (1, 4, 16, 64)
        ]
        assert ois == sorted(ois)

    def test_batch1_oi_below_one(self):
        """Batch-1 GEMM moves ~4 bytes per flop pair: OI ~ 0.5."""
        oi = gemm_operational_intensity(GemmShape(1024, 4096, 1))
        assert 0.2 < oi < 1.0

    def test_weights_resident_oi_much_higher(self):
        s = GemmShape(1024, 4096, 4)
        assert gemm_operational_intensity(s, weights_resident=True) > 10 * gemm_operational_intensity(s)


class TestRoofline:
    def test_attainable_clamps_to_peak(self):
        r = Roofline("x", peak_gflops=100.0, bandwidth_gbps=10.0)
        assert r.attainable_gflops(1.0) == 10.0
        assert r.attainable_gflops(1e6) == 100.0

    def test_ridge(self):
        r = Roofline("x", 100.0, 10.0)
        assert r.ridge_oi == 10.0
        assert r.is_memory_bound(5.0)
        assert not r.is_memory_bound(50.0)

    def test_invalid_oi(self):
        with pytest.raises(ValueError):
            Roofline("x", 1.0, 1.0).attainable_gflops(0.0)

    def test_sweep(self):
        r = Roofline("x", 100.0, 10.0)
        pts = r.sweep([0.1, 1.0, 100.0])
        assert len(pts) == 3
        assert pts[0].gflops == pytest.approx(1.0)
        assert all(p.label == "x" for p in pts)
