"""Differential harness pinning the fast event path to the reference path.

``repro.sim.fast`` re-implements the serving hot loop as batched
struct-of-arrays sweeps; this file is the contract that makes that
rewrite safe.  Every seeded scenario below runs the *same* request
stream twice — once through the heap-per-event reference loop, once
through the fast path — and asserts the two reports agree
request-for-request: same completions in the same order with the same
dispatch/finish instants, same rejections, same failure drops, same
``events_processed``, same ``sim_end_s``.  Anything weaker (aggregate
counts, percentile bands) would let reordering or tie-break bugs slip
through; exact equality is cheap because both paths are deterministic.

Scenarios are generated from small integer seeds so CI can throw fresh
ones at the harness on every push (``FAST_DIFF_SEEDS=a,b,c``, see the
``fast-differential`` job in ``.github/workflows/ci.yml``).  The
default matrix — seeds 0..4 across all four serving loops, plus the
router sweep — already exercises >20 distinct scenarios: every router,
SLO and no-SLO mixes, scripted outages, elastic scale events, and
hetero pool churn.

The analytic M/G/k model (``repro.sim.analytic``) is cross-checked at
the bottom: it is an *approximation*, so those tests assert tolerance
bands (the module docstring's "within roughly a factor of two below
rho ~0.85"), not equality.
"""

import math
import os
import random

import pytest

from repro.autoscale import (
    BaselineBurstPolicy,
    DiurnalTrace,
    ElasticCluster,
    HeteroElasticCluster,
    NodePool,
    mix_requests,
)
from repro.autoscale.policies import TargetUtilizationPolicy, node_capacity_rps
from repro.cluster import Cluster
from repro.serving import (
    GPU_NODE,
    STEPSTONE_NODE,
    OnlineServingEngine,
    poisson_requests,
)
from repro.sim import FailureTrace
from repro.sim import fast as fastmod
from repro.sim.analytic import AnalyticCapacityModel

ROUTERS = ("round-robin", "least-loaded", "affinity", "backend-affinity")
POLICIES = ("cpu", "pim", "hybrid")


def _seeds():
    """Default seed matrix, plus any fresh ones injected by CI."""
    seeds = [0, 1, 2, 3, 4]
    extra = os.environ.get("FAST_DIFF_SEEDS", "")
    for tok in extra.replace(",", " ").split():
        s = int(tok)
        if s not in seeds:
            seeds.append(s)
    return seeds


SEEDS = _seeds()


class Scenario:
    """One seeded random serving scenario, shared by all four loops.

    Everything the fast path could get wrong is a dimension here:
    router choice (four structurally different fast twins), execution
    policy, per-model SLOs (including models with *no* SLO, which take
    the fallback admission path), scripted mid-run outages, and a
    diurnal arrival trace whose rate crosses node capacity so queues
    build and drain within the run.
    """

    def __init__(self, seed):
        rng = random.Random(f"fast-diff-{seed}")
        self.seed = seed
        self.router = ROUTERS[seed % len(ROUTERS)]
        self.policy = rng.choice(POLICIES)
        shares = rng.choice([(0.9, 0.1), (0.5, 0.5), (0.2, 0.8)])
        self.mix = {"BERT": shares[0], "DLRM": shares[1]}
        self.duration_s = rng.uniform(6.0, 10.0)
        trough = rng.uniform(100.0, 300.0)
        self.trace = DiurnalTrace(
            trough_rps=trough,
            peak_rps=trough * rng.uniform(1.5, 3.0),
            period_s=rng.uniform(3.0, 8.0),
        )
        # Some models get a tight SLO, some a loose one, some none at
        # all (None = best effort, a separate admission code path).
        self.slos = {
            m: rng.choice([None, 0.6, 1.0, 1.5]) for m in self.mix
        }
        if all(v is None for v in self.slos.values()):
            self.slos["BERT"] = 1.0
        # Zero, one, or two scripted outages inside the run window.
        self.outages = []
        for node in range(rng.randint(0, 2)):
            start = rng.uniform(0.5, self.duration_s * 0.6)
            self.outages.append(
                (node, start, start + rng.uniform(0.5, self.duration_s * 0.3))
            )

    def stream(self):
        return mix_requests(
            self.trace,
            self.mix,
            self.duration_s,
            seed=self.seed,
            slos=self.slos,
        )

    def failures(self):
        return FailureTrace.scripted(self.outages) if self.outages else None


@pytest.fixture(scope="module")
def engine():
    return OnlineServingEngine()


# --------------------------------------------------------------------------
# Exact comparators.  Identity keys include every user-visible field; a
# fast path that reorders ties or shifts a dispatch by one float ULP
# fails here, not in some downstream percentile.
# --------------------------------------------------------------------------


def req_key(r):
    return (r.req_id, r.model, r.arrival_s, r.slo_s)


def comp_key(c):
    return (req_key(c.request), c.dispatch_s, c.finish_s, c.batch)


def rej_key(r):
    return (req_key(r.request), r.rejected_at_s)


def fail_key(f):
    return (req_key(f.request), f.failed_at_s, f.node_id, f.reason)


def assert_reports_identical(slow, fast, label):
    assert slow.served == fast.served, (label, slow.served, fast.served)
    assert [comp_key(c) for c in slow.completed] == [
        comp_key(c) for c in fast.completed
    ], label
    assert [rej_key(r) for r in slow.rejected] == [
        rej_key(r) for r in fast.rejected
    ], label
    assert [fail_key(f) for f in slow.failed] == [
        fail_key(f) for f in fast.failed
    ], label
    assert slow.sim_end_s == fast.sim_end_s, label


def assert_cluster_identical(slow, fast):
    assert len(slow.node_reports) == len(fast.node_reports)
    for i, (ra, rb) in enumerate(zip(slow.node_reports, fast.node_reports)):
        assert_reports_identical(ra, rb, f"node{i}")
    assert [fail_key(f) for f in slow.dropped] == [
        fail_key(f) for f in fast.dropped
    ]
    assert slow.node_busy_s == fast.node_busy_s
    assert slow.sim_end_s == fast.sim_end_s
    assert slow.events_processed == fast.events_processed


def assert_elastic_identical(slow, fast):
    assert set(slow.node_reports) == set(fast.node_reports)
    for nid in slow.node_reports:
        assert_reports_identical(
            slow.node_reports[nid], fast.node_reports[nid], f"node{nid}"
        )
    assert slow.samples == fast.samples
    assert {
        k: (v.ordered_s, v.ready_s, v.drain_s, v.retired_s)
        for k, v in slow.lifetimes.items()
    } == {
        k: (v.ordered_s, v.ready_s, v.drain_s, v.retired_s)
        for k, v in fast.lifetimes.items()
    }
    assert slow.node_busy_s == fast.node_busy_s
    assert [fail_key(f) for f in slow.dropped] == [
        fail_key(f) for f in fast.dropped
    ]
    assert slow.events_processed == fast.events_processed
    assert slow.sim_end_s == fast.sim_end_s


def run_both(loop, scenario):
    """Run ``loop`` slow then fast on the same scenario; the fast run
    must actually engage the fast path (FAST_RUNS counter bumps)."""
    slow = loop(fast=False)
    before = fastmod.FAST_RUNS
    fast = loop(fast=True)
    assert fastmod.FAST_RUNS == before + 1, (
        "fast=True fell back to the reference path",
        scenario.seed,
        scenario.router,
    )
    return slow, fast


# --------------------------------------------------------------------------
# The four serving loops x the seed matrix.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_fast_matches_slow(engine, seed):
    sc = Scenario(seed)
    stream = sc.stream()
    slow, fast = run_both(
        lambda fast: engine.run(stream, sc.policy, fast=fast), sc
    )
    assert_reports_identical(slow, fast, f"engine-{seed}")
    assert slow.events_processed == fast.events_processed


@pytest.mark.parametrize("seed", SEEDS)
def test_cluster_fast_matches_slow(engine, seed):
    sc = Scenario(seed)
    stream = sc.stream()
    cl = Cluster(
        n_nodes=2 + seed % 3,
        engine=engine,
        policy=sc.policy,
        router=sc.router,
        replication=1 + seed % 2,
    )
    slow, fast = run_both(
        lambda fast: cl.run(stream, failures=sc.failures(), fast=fast), sc
    )
    assert_cluster_identical(slow, fast)


@pytest.mark.parametrize("seed", SEEDS)
def test_elastic_fast_matches_slow(engine, seed):
    sc = Scenario(seed)
    stream = sc.stream()
    el = ElasticCluster(
        engine=engine,
        policy=sc.policy,
        router=sc.router,
        models=sorted(sc.mix),
        initial_nodes=1 + seed % 3,
        max_nodes=6,
        control_interval_s=0.5,
    )
    pol = TargetUtilizationPolicy(
        capacity_rps=node_capacity_rps(engine, sc.mix, sc.policy),
        target=0.7,
    )
    slow, fast = run_both(
        lambda fast: el.run(stream, pol, failures=sc.failures(), fast=fast),
        sc,
    )
    assert_elastic_identical(slow, fast)


@pytest.mark.parametrize("seed", SEEDS)
def test_hetero_fast_matches_slow(engine, seed):
    sc = Scenario(seed)
    stream = sc.stream()
    hc = HeteroElasticCluster(
        pools={
            "stepstone": NodePool(
                STEPSTONE_NODE,
                min_nodes=1,
                max_nodes=5,
                initial_nodes=2 + seed % 2,
            ),
            "gpu": NodePool(GPU_NODE, min_nodes=0, max_nodes=2, initial_nodes=0),
        },
        engine=engine,
        policy=sc.policy,
        router=sc.router,
        models=sorted(sc.mix),
        control_interval_s=0.5,
    )
    pol = BaselineBurstPolicy(
        baseline="stepstone",
        burst="gpu",
        baseline_nodes=2,
        baseline_capacity_rps=node_capacity_rps(
            engine, sc.mix, sc.policy, spec=STEPSTONE_NODE
        ),
        burst_capacity_rps=node_capacity_rps(
            engine, sc.mix, sc.policy, spec=GPU_NODE
        ),
    )
    slow, fast = run_both(
        lambda fast: hc.run(stream, pol, failures=sc.failures(), fast=fast),
        sc,
    )
    assert_elastic_identical(slow, fast)
    assert slow.pool_timeline == fast.pool_timeline
    assert slow.node_pool == fast.node_pool


def test_every_router_covered_by_default_matrix():
    """Seeds 0..3 map onto the four routers, so even the minimal matrix
    exercises all four fast router twins; fresh CI seeds extend it."""
    covered = {Scenario(s).router for s in SEEDS}
    assert covered == set(ROUTERS)


# --------------------------------------------------------------------------
# Analytic cross-check: the M/G/k fluid model is an approximation, so
# these are tolerance bands, not equality.  The scenarios keep the
# equilibrium batch at 1 and utilization below ~0.85, the regime where
# the module docstring promises factor-of-two accuracy.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("rate_rps", [10.0, 20.0])
def test_analytic_tracks_single_node_des(engine, rate_rps):
    """M/G/1 regime: a single node at moderate load.  Analytic mean
    latency must land within 2x of the simulated mean; the p99 bound
    is one-sided — at least the simulated p99 (the planner relies on
    that conservatism) and no more than 4x it."""
    duration_s = 120.0
    stream = poisson_requests("BERT", rate_rps, duration_s, seed=11)
    rep = engine.run(stream, "hybrid")
    assert rep.rejected_count == 0

    model = AnalyticCapacityModel(engine, {"BERT": 1.0}, "hybrid")
    est = model.estimate(1, rate_rps)
    assert not est.clamped
    assert est.rho < 0.85

    des_mean = sum(rep.latencies_s) / len(rep.latencies_s)
    assert est.mean_latency_s <= 2.0 * des_mean
    assert est.mean_latency_s >= 0.5 * des_mean
    assert rep.p99_s <= est.p99_s <= 4.0 * rep.p99_s


def test_analytic_tracks_cluster_des(engine):
    """M/G/k regime: k nodes behind a least-loaded router approximate
    the shared-queue M/G/k the analytic model assumes."""
    k, rate_rps, duration_s = 3, 120.0, 90.0
    stream = poisson_requests("BERT", rate_rps, duration_s, seed=13)
    cl = Cluster(
        n_nodes=k,
        engine=engine,
        policy="hybrid",
        router="least-loaded",
        replication=k,
    )
    rep = cl.run(stream)

    model = AnalyticCapacityModel(engine, {"BERT": 1.0}, "hybrid")
    est = model.estimate(k, rate_rps)
    assert not est.clamped
    assert est.rho < 0.85

    lats = [lat for nr in rep.node_reports for lat in nr.latencies_s]
    des_mean = sum(lats) / len(lats)
    assert est.mean_latency_s <= 2.0 * des_mean
    assert est.mean_latency_s >= 0.5 * des_mean
    des_p99 = sorted(lats)[max(0, math.ceil(0.99 * len(lats)) - 1)]
    assert des_p99 <= est.p99_s <= 4.0 * des_p99


def test_fast_path_does_not_perturb_goldens():
    """The golden traces are produced by the reference path; the fast
    path must leave them untouched.  tests/test_golden_traces.py pins
    the bytes — here we just confirm fast runs never mutate the shared
    engine caches in a way a subsequent slow run would observe."""
    eng = OnlineServingEngine()
    stream = poisson_requests("BERT", 150.0, 2.0, seed=3)
    before = eng.run(stream, "hybrid")
    eng.run(stream, "hybrid", fast=True)
    after = eng.run(stream, "hybrid")
    assert_reports_identical(before, after, "golden-stability")
