"""Tests for CPU traffic generation and command-bus contention (Fig. 13)."""

import pytest

from repro.colocation.contention import (
    CommandBusModel,
    colocation_speedup,
    run_colocated,
)
from repro.colocation.traffic import SPEC_MIX, SPEC_WORKLOADS, TrafficGenerator
from repro.core.config import StepStoneConfig
from repro.core.gemm import GemmShape
from repro.dram.controller import ChannelController
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestWorkloads:
    def test_four_paper_workloads(self):
        assert set(SPEC_WORKLOADS) == {"mcf", "lbm", "omnetpp", "gemsFDTD"}

    def test_bandwidth_positive(self):
        for w in SPEC_WORKLOADS.values():
            assert 1.0 < w.bandwidth_gbps() < 20.0

    def test_utilization_bounded(self):
        for w in SPEC_WORKLOADS.values():
            assert 0.0 < w.command_bus_utilization() < 0.5

    def test_mix_saturates_large_fraction(self):
        u = SPEC_MIX()
        assert 0.4 < u <= 0.85


class TestTrafficGenerator:
    def test_deterministic_with_seed(self):
        a = TrafficGenerator(SPEC_WORKLOADS["mcf"], seed=3).requests(100)
        b = TrafficGenerator(SPEC_WORKLOADS["mcf"], seed=3).requests(100)
        assert [(r.arrival, r.row) for r in a] == [(r.arrival, r.row) for r in b]

    def test_row_hit_rate_reflected(self):
        """High row-hit workloads produce longer same-row runs."""
        hits = {}
        for name in ("mcf", "lbm"):
            reqs = TrafficGenerator(SPEC_WORKLOADS[name], seed=1).requests(3000)
            same = sum(
                1
                for a, b in zip(reqs, reqs[1:])
                if a.coord == b.coord and a.row == b.row
            )
            hits[name] = same / len(reqs)
        assert hits["lbm"] > hits["mcf"]  # lbm is the streaming workload

    def test_requests_run_through_controller(self):
        reqs = TrafficGenerator(SPEC_WORKLOADS["omnetpp"], seed=0).requests(500)
        stats = ChannelController(refresh=False).run(reqs)
        assert stats.reads + stats.writes == 500


class TestCommandBus:
    def test_no_contention_no_delay(self):
        assert CommandBusModel(0.0).launch_delay_cycles == 0.0

    def test_delay_grows_with_utilization(self):
        delays = [CommandBusModel(u).launch_delay_cycles for u in (0.2, 0.5, 0.8)]
        assert delays == sorted(delays)
        assert delays[-1] > 4 * delays[0]

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            CommandBusModel(1.0)
        with pytest.raises(ValueError):
            CommandBusModel(-0.1)


class TestColocation:
    def test_unknown_flow_rejected(self, cfg, sky):
        with pytest.raises(ValueError):
            run_colocated(cfg, sky, GemmShape(256, 1024, 4), PimLevel.DEVICE, "pei", 0.5)

    def test_speedup_at_least_one(self, cfg, sky):
        r = colocation_speedup(cfg, sky, GemmShape(2048, 2048, 4), PimLevel.DEVICE, 0.5)
        assert r["speedup"] >= 1.0

    def test_idle_cpu_small_gap(self, cfg, sky):
        """Without CPU traffic the launch overhead is minor (§V-G setup)."""
        busy = colocation_speedup(cfg, sky, GemmShape(4096, 4096, 4), PimLevel.BANKGROUP, SPEC_MIX())
        idle = colocation_speedup(cfg, sky, GemmShape(4096, 4096, 4), PimLevel.BANKGROUP, 0.0)
        assert busy["speedup"] > 1.5 * idle["speedup"]

    def test_tall_thin_worse_for_echo(self, cfg, sky):
        u = SPEC_MIX()
        fat = colocation_speedup(cfg, sky, GemmShape(2048, 8192, 4), PimLevel.BANKGROUP, u)
        thin = colocation_speedup(cfg, sky, GemmShape(16384, 1024, 4), PimLevel.BANKGROUP, u)
        assert thin["echo_launches"] > fat["echo_launches"]
        assert thin["speedup"] > fat["speedup"]

    def test_stp_launches_tiny(self, cfg, sky):
        r = colocation_speedup(cfg, sky, GemmShape(4096, 4096, 4), PimLevel.BANKGROUP, 0.5)
        assert r["stp_launches"] < 0.02 * r["echo_launches"]
