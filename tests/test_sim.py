"""The discrete-event kernel: total order, epochs, streams, failures.

The tie-break table test is the one place the event total order is
*asserted* (the kernel docstring is the one place it is documented):
every permutation of a set of same-time events must pop in the same
documented order, so no simulation can depend on insertion order.
"""

import random

import pytest

from repro.sim import (
    BusyWindow,
    DiscreteEventKernel,
    Event,
    EventKind,
    FailureTrace,
    Outage,
    SimClock,
    nearest_rank,
)


def drain(kernel):
    """Run a kernel, returning every delivered event in delivery order."""
    seen = []
    handlers = {
        kind: (lambda now, evs: seen.extend(evs)) for kind in EventKind
    }
    kernel.run(handlers)
    return seen


#: The documented total order at one instant: kind priority, then entity
#: id.  One row per event, listed in expected pop order.
ORDER_TABLE = [
    (EventKind.RECOVER, 0),
    (EventKind.RECOVER, 3),
    (EventKind.ARRIVAL, 0),
    (EventKind.ARRIVAL, 7),
    (EventKind.READY, 2),
    (EventKind.CONTROL, 1),
    (EventKind.FAIL, 0),
    (EventKind.FAIL, 5),
    (EventKind.PREFILL, 0),
    (EventKind.PREFILL, 2),
    (EventKind.DECODE_STEP, 0),
    (EventKind.DECODE_STEP, 6),
    (EventKind.FINISH, 0),
    (EventKind.FINISH, 1),
    (EventKind.FINISH, 4),
]


def _insertion_orders():
    """Orders to try: identity, reversed, interleaved, and a seeded
    random sample (the full 15! is too many)."""
    base = list(range(len(ORDER_TABLE)))
    orders = [base, base[::-1], base[1::2] + base[0::2]]
    rng = random.Random(1234)
    for _ in range(20):
        perm = base[:]
        rng.shuffle(perm)
        orders.append(perm)
    return orders


class TestTotalOrder:
    TABLE = ORDER_TABLE

    def test_kind_priorities_are_the_documented_table(self):
        """ARRIVAL < CONTROL < FINISH (the ISSUE contract), with RECOVER
        first, READY before CONTROL, FAIL between CONTROL and the
        completion kinds, and the generative phases (PREFILL, then
        DECODE_STEP) between FAIL and FINISH."""
        assert EventKind.RECOVER < EventKind.ARRIVAL < EventKind.READY
        assert EventKind.READY < EventKind.CONTROL < EventKind.FAIL
        assert EventKind.FAIL < EventKind.PREFILL < EventKind.DECODE_STEP
        assert EventKind.DECODE_STEP < EventKind.FINISH
        assert [k.value for k in EventKind] == [0, 1, 2, 3, 4, 5, 6, 7]

    @pytest.mark.parametrize("perm", _insertion_orders())
    def test_equal_time_events_pop_in_table_order(self, perm):
        """Any insertion order of equal-time events pops identically."""
        kernel = DiscreteEventKernel()
        for idx in perm:
            kind, entity = self.TABLE[idx]
            kernel.schedule(1.0, kind, entity)
        popped = [(e.kind, e.entity) for e in drain(kernel)]
        assert popped == [(int(k), n) for k, n in self.TABLE]

    def test_time_dominates_kind_and_entity(self):
        kernel = DiscreteEventKernel()
        kernel.schedule(2.0, EventKind.RECOVER, 0)
        kernel.schedule(1.0, EventKind.FINISH, 99)
        times = [(e.time, e.kind) for e in drain(kernel)]
        assert times == [(1.0, int(EventKind.FINISH)), (2.0, int(EventKind.RECOVER))]

    def test_insertion_sequence_breaks_exact_ties(self):
        kernel = DiscreteEventKernel()
        a = kernel.schedule(1.0, EventKind.ARRIVAL, 0, payload="first")
        b = kernel.schedule(1.0, EventKind.ARRIVAL, 0, payload="second")
        assert a.seq < b.seq
        assert [e.payload for e in drain(kernel)] == ["first", "second"]


class TestKernel:
    def test_epoch_delivery_batches_same_time_same_kind(self):
        kernel = DiscreteEventKernel()
        for entity in (3, 1, 2):
            kernel.schedule(1.0, EventKind.ARRIVAL, entity)
        kernel.schedule(1.0, EventKind.FINISH, 0)
        batches = []
        kernel.run(
            {
                EventKind.ARRIVAL: lambda now, evs: batches.append(
                    ("arrival", [e.entity for e in evs])
                ),
                EventKind.FINISH: lambda now, evs: batches.append(
                    ("finish", [e.entity for e in evs])
                ),
            }
        )
        assert batches == [("arrival", [1, 2, 3]), ("finish", [0])]

    def test_preload_merges_with_heap_in_total_order(self):
        kernel = DiscreteEventKernel()
        kernel.preload(
            Event(float(t), EventKind.ARRIVAL, t) for t in range(3)
        )
        kernel.schedule(0.5, EventKind.FINISH, 0)
        kernel.schedule(1.0, EventKind.FINISH, 0)  # after the t=1 arrival
        order = [(e.time, int(e.kind)) for e in drain(kernel)]
        assert order == [
            (0.0, int(EventKind.ARRIVAL)),
            (0.5, int(EventKind.FINISH)),
            (1.0, int(EventKind.ARRIVAL)),
            (1.0, int(EventKind.FINISH)),
            (2.0, int(EventKind.ARRIVAL)),
        ]

    def test_preload_rejects_out_of_order_streams(self):
        kernel = DiscreteEventKernel()
        with pytest.raises(ValueError, match="out of order"):
            kernel.preload(
                [
                    Event(1.0, EventKind.ARRIVAL, 0),
                    Event(0.5, EventKind.ARRIVAL, 1),
                ]
            )

    def test_schedule_into_the_past_raises(self):
        kernel = DiscreteEventKernel()
        kernel.schedule(1.0, EventKind.ARRIVAL, 0)
        kernel.run({})  # clock now at 1.0
        with pytest.raises(ValueError, match="past"):
            kernel.schedule(0.5, EventKind.FINISH, 0)

    def test_clock_is_monotonic_and_processed_counts(self):
        kernel = DiscreteEventKernel()
        kernel.preload(Event(float(t), EventKind.ARRIVAL, t) for t in range(5))
        end = kernel.run({})
        assert end == 4.0
        assert kernel.clock.now == 4.0
        assert kernel.processed == 5

    def test_simclock_rejects_backwards_time(self):
        clock = SimClock()
        clock.advance(2.0)
        with pytest.raises(RuntimeError, match="backwards"):
            clock.advance(1.0)

    def test_handlers_can_schedule_future_work(self):
        kernel = DiscreteEventKernel()
        kernel.schedule(1.0, EventKind.ARRIVAL, 0)
        seen = []

        def on_arrival(now, evs):
            kernel.schedule(now + 1.0, EventKind.FINISH, 0)

        kernel.run(
            {
                EventKind.ARRIVAL: on_arrival,
                EventKind.FINISH: lambda now, evs: seen.append(now),
            }
        )
        assert seen == [2.0]


class TestBusyWindow:
    def test_overhang_moves_credit_into_the_right_window(self):
        bw = BusyWindow()
        # A 3 s batch dispatched at t=1 crosses the t=2 window edge.
        assert bw.observe(3.0, 4.0, True, 2.0) == 1.0
        # Window (2, 4]: the rest of the batch, no new dispatches.
        assert bw.observe(3.0, 4.0, True, 4.0) == 2.0
        # Idle window.
        assert bw.observe(3.0, 4.0, False, 6.0) == 0.0

    def test_matches_simple_accounting_when_no_overhang(self):
        bw = BusyWindow()
        assert bw.observe(1.5, 0.0, False, 2.0) == 1.5
        assert bw.observe(2.5, 0.0, False, 4.0) == 1.0


class TestFailureTrace:
    def test_scripted_sorts_and_validates(self):
        trace = FailureTrace.scripted([(1, 5.0, 6.0), (0, 1.0, 2.0)])
        assert [o.node_id for o in trace.outages] == [0, 1]
        assert len(trace) == 2
        assert trace.outages[0].duration_s == 1.0

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            Outage(0, 5.0, 5.0)
        with pytest.raises(ValueError):
            Outage(-1, 0.0, 1.0)
        with pytest.raises(ValueError, match="overlapping"):
            FailureTrace.scripted([(0, 1.0, 3.0), (0, 2.0, 4.0)])

    def test_poisson_is_seeded_and_respects_horizon(self):
        a = FailureTrace.poisson(4, mtbf_s=5.0, mttr_s=1.0, horizon_s=50.0, seed=7)
        b = FailureTrace.poisson(4, mtbf_s=5.0, mttr_s=1.0, horizon_s=50.0, seed=7)
        c = FailureTrace.poisson(4, mtbf_s=5.0, mttr_s=1.0, horizon_s=50.0, seed=8)
        assert a.outages == b.outages
        assert a.outages != c.outages
        assert len(a) > 0
        assert all(o.start_s < 50.0 for o in a.outages)

    def test_schedule_on_emits_fail_recover_pairs(self):
        kernel = DiscreteEventKernel()
        FailureTrace.scripted([(2, 1.0, 3.0)]).schedule_on(kernel)
        events = [(e.time, int(e.kind), e.entity) for e in drain(kernel)]
        assert events == [
            (1.0, int(EventKind.FAIL), 2),
            (3.0, int(EventKind.RECOVER), 2),
        ]


class TestMetricsReexports:
    def test_serving_engine_still_exports_the_helpers(self):
        """Back-compat: the pre-refactor import sites keep working."""
        from repro.serving.engine import nearest_rank as nr
        from repro.serving.engine import window_latencies as wl
        from repro.sim.metrics import window_latencies

        assert nr is nearest_rank
        assert wl is window_latencies
        from repro.serving import engine

        assert "nearest_rank" in engine.__all__
        assert "window_latencies" in engine.__all__


class TestFastDrainTotalOrder:
    """PR 5's tie-break table, extended to the batched fast path.

    ``repro.sim.fast.drain`` replays arrivals from a sorted array
    instead of the heap, so the one ordering risk it adds is at the
    *seam*: equal-time heap events must land around an arrival epoch
    exactly where the documented table puts ARRIVAL.  These tests run
    the same permutation discipline as :class:`TestTotalOrder` with
    arrivals moved into the struct-of-arrays column, and a differential
    check against the reference kernel on seeded random schedules.
    """

    #: The tie-break table with the ARRIVAL rows re-expressed as one
    #: batched epoch (the fast path delivers an epoch, not per-entity
    #: events, so the arrival entities collapse into a single marker).
    HEAP_ROWS = [
        (kind, entity)
        for kind, entity in ORDER_TABLE
        if kind != EventKind.ARRIVAL
    ]

    @staticmethod
    def _fast_drain(heap_rows, arrival_ts, epoch_finish_at=None):
        """Drain heap_rows + an arrival column, returning the unified
        delivery order.  ``epoch_finish_at`` optionally maps an epoch
        time to a FINISH (time, entity) scheduled *from inside* the
        epoch — the re-peek hazard."""
        import numpy as np

        from repro.sim import fast as fastmod

        kernel = DiscreteEventKernel()
        for kind, entity in heap_rows:
            kernel.schedule(1.0, kind, entity)
        seen = []

        def on_epoch(t, lo, hi):
            seen.append(("epoch", t, lo, hi))
            if epoch_finish_at and t in epoch_finish_at:
                ft, fe = epoch_finish_at[t]
                kernel.schedule(ft, EventKind.FINISH, fe)
                return True
            return False

        handlers = {
            int(kind): (
                lambda now, evs: seen.extend(
                    ("heap", e.time, int(e.kind), e.entity) for e in evs
                )
            )
            for kind in EventKind
        }
        fastmod.drain(
            kernel,
            np.asarray(arrival_ts, dtype=np.float64),
            on_epoch,
            handlers,
        )
        return kernel, seen

    @pytest.mark.parametrize("perm", _insertion_orders()[:12])
    def test_epoch_lands_at_the_arrival_slot(self, perm):
        """Any heap insertion order: RECOVER pops before the arrival
        epoch, everything above ARRIVAL pops after — same instant."""
        rows = [
            self.HEAP_ROWS[i % len(self.HEAP_ROWS)]
            for i in perm[: len(self.HEAP_ROWS)]
        ]
        # Dedup while keeping the permuted insertion order.
        rows = list(dict.fromkeys(rows))
        _, seen = self._fast_drain(rows, [1.0, 1.0, 1.0])
        kinds = [
            int(EventKind.ARRIVAL) if s[0] == "epoch" else s[2] for s in seen
        ]
        assert kinds == sorted(kinds)
        # The epoch is one batched delivery covering all three arrivals.
        epochs = [s for s in seen if s[0] == "epoch"]
        assert epochs == [("epoch", 1.0, 0, 3)]

    def test_equal_time_arrivals_form_one_epoch_per_instant(self):
        _, seen = self._fast_drain([], [0.5, 0.5, 1.25, 2.0, 2.0, 2.0])
        assert seen == [
            ("epoch", 0.5, 0, 2),
            ("epoch", 1.25, 2, 3),
            ("epoch", 2.0, 3, 6),
        ]

    def test_epoch_scheduled_finish_preempts_next_epoch(self):
        """The re-peek hazard: an epoch at t=1 schedules a FINISH at
        t=1.5, which must pop before the t=2 epoch."""
        _, seen = self._fast_drain(
            [], [1.0, 2.0], epoch_finish_at={1.0: (1.5, 7)}
        )
        assert seen == [
            ("epoch", 1.0, 0, 1),
            ("heap", 1.5, int(EventKind.FINISH), 7),
            ("epoch", 2.0, 1, 2),
        ]

    def test_same_instant_finish_from_epoch_still_pops_after(self):
        """FINISH scheduled *at the epoch's own instant* pops after the
        epoch (FINISH > ARRIVAL) but before the next epoch."""
        _, seen = self._fast_drain(
            [], [1.0, 1.0, 2.0], epoch_finish_at={1.0: (1.0, 3)}
        )
        assert seen == [
            ("epoch", 1.0, 0, 2),
            ("heap", 1.0, int(EventKind.FINISH), 3),
            ("epoch", 2.0, 2, 3),
        ]

    def test_heap_arrival_is_rejected(self):
        """The fast drain owns arrivals; one on the heap is a bug."""
        import numpy as np

        from repro.sim import fast as fastmod

        kernel = DiscreteEventKernel()
        kernel.schedule(1.0, EventKind.ARRIVAL, 0)
        with pytest.raises(ValueError):
            fastmod.drain(
                kernel,
                np.asarray([1.0]),
                lambda t, lo, hi: False,
                {},
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_schedules_match_reference_kernel(self, seed):
        """Differential: a seeded random mix of arrivals (duplicates
        included) and heap events drains in exactly the reference
        kernel's order, with the same processed-event count."""
        import numpy as np

        from repro.sim import fast as fastmod

        rng = random.Random(seed)
        times = sorted(
            round(rng.uniform(0.0, 4.0), 1) for _ in range(rng.randint(3, 12))
        )
        heap_rows = [
            (
                round(rng.uniform(0.0, 4.0), 1),
                rng.choice(
                    [
                        EventKind.RECOVER,
                        EventKind.CONTROL,
                        EventKind.FAIL,
                        EventKind.FINISH,
                    ]
                ),
                rng.randint(0, 3),
            )
            for _ in range(rng.randint(0, 8))
        ]

        # Reference: arrivals preloaded as per-entity events; the
        # kernel batches each equal-time, equal-kind span into one
        # handler call, which is exactly the fast path's epoch.
        ref_kernel = DiscreteEventKernel()
        ref_kernel.preload(
            Event(t, EventKind.ARRIVAL, i) for i, t in enumerate(times)
        )
        for t, kind, entity in heap_rows:
            ref_kernel.schedule(t, kind, entity)
        ref = []
        ref_kernel.run(
            {
                kind: (
                    lambda now, evs: ref.append(
                        (
                            now,
                            int(evs[0].kind),
                            tuple(e.entity for e in evs),
                        )
                    )
                )
                for kind in EventKind
            }
        )

        fast_kernel = DiscreteEventKernel()
        for t, kind, entity in heap_rows:
            fast_kernel.schedule(t, kind, entity)
        got = []

        def on_epoch(t, lo, hi):
            got.append((t, int(EventKind.ARRIVAL), tuple(range(lo, hi))))
            return False

        handlers = {
            int(kind): (
                lambda now, evs: got.append(
                    (now, int(evs[0].kind), tuple(e.entity for e in evs))
                )
            )
            for kind in EventKind
        }
        fastmod.drain(
            fast_kernel, np.asarray(times, dtype=np.float64), on_epoch, handlers
        )

        assert got == ref
        assert fast_kernel.processed == ref_kernel.processed

        class _Rep:
            events_processed = 0

        rep = _Rep()
        fast_kernel.finalize(rep)
        assert rep.events_processed == ref_kernel.processed
