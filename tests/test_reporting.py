"""Tests for ASCII chart rendering."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.reporting.charts import grouped_bars, line_plot, stacked_bars


ROWS = [
    {"cfg": "BG-1", "gemm": 100.0, "loc": 20.0, "red": 10.0},
    {"cfg": "DV-1", "gemm": 300.0, "loc": 5.0, "red": 2.0},
]


class TestStacked:
    def test_renders_all_rows(self):
        out = stacked_bars(ROWS, "cfg", ["gemm", "loc", "red"])
        assert "BG-1" in out and "DV-1" in out
        assert "legend" in out

    def test_longest_bar_fills_width(self):
        out = stacked_bars(ROWS, "cfg", ["gemm", "loc", "red"], width=40)
        dv_line = next(l for l in out.splitlines() if l.startswith("DV-1"))
        bar = dv_line.split("|")[1]
        assert bar.count(" ") <= 1  # the max row nearly fills the width

    def test_proportions(self):
        out = stacked_bars(ROWS, "cfg", ["gemm", "loc", "red"], width=40)
        bg_line = next(l for l in out.splitlines() if l.startswith("BG-1"))
        bar = bg_line.split("|")[1]
        assert 0 < len(bar.replace(" ", "")) < 30

    def test_empty(self):
        assert stacked_bars([], "x", ["y"]) == "(no data)"

    def test_missing_components_treated_zero(self):
        out = stacked_bars([{"cfg": "a", "gemm": 1.0}], "cfg", ["gemm", "loc"])
        assert "a" in out


class TestGrouped:
    def test_values_shown(self):
        rows = [{"m": "a", "v": 2.0}, {"m": "b", "v": 4.0}]
        out = grouped_bars(rows, "m", "v")
        assert "2.00" in out and "4.00" in out

    def test_relative_lengths(self):
        rows = [{"m": "a", "v": 1.0}, {"m": "b", "v": 2.0}]
        out = grouped_bars(rows, "m", "v", width=20)
        a = next(l for l in out.splitlines() if l.startswith("a"))
        b = next(l for l in out.splitlines() if l.startswith("b"))
        assert b.count("#") == 2 * a.count("#")

    def test_empty(self):
        assert grouped_bars([], "x", "y") == "(no data)"


class TestLine:
    def test_basic_grid(self):
        rows = [{"x": 10.0 ** i, "y": 10.0 ** i} for i in range(4)]
        out = line_plot(rows, "x", ["y"], width=20, height=8)
        assert out.count("|") >= 16  # bordered grid rows
        assert "legend" in out

    def test_nan_and_nonpositive_skipped(self):
        rows = [{"x": 1.0, "y": float("nan")}, {"x": 2.0, "y": -1.0}]
        assert "(no plottable data)" in line_plot(rows, "x", ["y"])

    def test_multiple_series_glyphs(self):
        rows = [{"x": 1.0, "a": 1.0, "b": 10.0}, {"x": 10.0, "a": 2.0, "b": 20.0}]
        out = line_plot(rows, "x", ["a", "b"])
        assert "#" in out and "=" in out

    def test_empty(self):
        assert line_plot([], "x", ["y"]) == "(no data)"


class TestExperimentIntegration:
    def test_render_chart_no_spec(self):
        r = ExperimentResult("x", "t")
        assert "no chart" in r.render_chart()

    def test_render_chart_stacked(self):
        r = ExperimentResult("x", "t")
        r.add(cfg="a", gemm=1.0, loc=2.0)
        r.chart = {"kind": "stacked", "category_key": "cfg", "component_keys": ["gemm", "loc"]}
        assert "legend" in r.render_chart()

    def test_render_chart_unknown_kind(self):
        r = ExperimentResult("x", "t")
        r.chart = {"kind": "pie"}
        with pytest.raises(ValueError):
            r.render_chart()

    def test_every_figure_declares_a_chart(self):
        from repro.experiments.registry import run_experiment

        for eid in ("fig06", "fig09", "fig13", "fig14"):
            res = run_experiment(eid, fast=True)
            assert res.chart is not None
            assert len(res.render_chart()) > 50


class TestScalingPlot:
    ROWS = [
        {"nodes": 1, "cpu": 100.0, "hybrid": 200.0},
        {"nodes": 2, "cpu": 200.0, "hybrid": 400.0},
        {"nodes": 4, "cpu": 400.0, "hybrid": 400.0},
    ]

    def test_grid_and_value_table(self):
        from repro.reporting import scaling_plot

        out = scaling_plot(self.ROWS, "nodes", ["cpu", "hybrid"])
        assert "legend" in out
        assert "nodes" in out and "cpu" in out and "hybrid" in out
        # the value table carries the exact series values
        assert "400.00" in out and "100.00" in out

    def test_missing_series_value_dashed(self):
        from repro.reporting import scaling_plot

        rows = [{"nodes": 1, "cpu": 1.0}, {"nodes": 2, "cpu": 2.0, "hybrid": 4.0}]
        out = scaling_plot(rows, "nodes", ["cpu", "hybrid"])
        assert "-" in out.splitlines()[-2] + out.splitlines()[-1]

    def test_empty(self):
        from repro.reporting import scaling_plot

        assert scaling_plot([], "x", ["y"]) == "(no data)"

    def test_render_chart_scaling_with_row_override(self):
        r = ExperimentResult("x", "t")
        r.add(section="other", foo=1)
        r.chart = {
            "kind": "scaling",
            "rows": TestScalingPlot.ROWS,
            "x_key": "nodes",
            "y_keys": ["cpu", "hybrid"],
        }
        out = r.render_chart()
        assert "legend" in out and "400.00" in out


class TestTimelinePlot:
    ROWS = [
        {"t_s": 0.5, "nodes": 1, "offered_rps": 60.0, "p99_ms": 120.0},
        {"t_s": 1.0, "nodes": 2, "offered_rps": 200.0, "p99_ms": float("nan")},
        {"t_s": 1.5, "nodes": 4, "offered_rps": 500.0, "p99_ms": 380.0},
    ]

    def test_series_normalized_with_ranges_in_legend(self):
        from repro.reporting import timeline_plot

        out = timeline_plot(self.ROWS, "t_s", ["nodes", "offered_rps", "p99_ms"])
        assert "nodes [1.00 .. 4.00]" in out
        assert "offered_rps [60.00 .. 500.00]" in out
        assert "x: t_s [0.50 .. 1.50]" in out

    def test_nan_points_are_skipped(self):
        from repro.reporting import timeline_plot

        out = timeline_plot(self.ROWS, "t_s", ["p99_ms"])
        # two real points survive; the NaN window draws nothing
        grid = [ln for ln in out.splitlines() if ln.startswith("|")]
        assert sum(ln.count("#") for ln in grid) == 2

    def test_empty_and_all_nan(self):
        from repro.reporting import timeline_plot

        assert timeline_plot([], "t_s", ["nodes"]) == "(no data)"
        rows = [{"t_s": 0.0, "y": float("nan")}]
        out = timeline_plot(rows, "t_s", ["y"])
        assert "nan" in out.lower()  # legend shows an empty range

    def test_render_chart_timeline(self):
        r = ExperimentResult("x", "t")
        r.chart = {
            "kind": "timeline",
            "rows": TestTimelinePlot.ROWS,
            "x_key": "t_s",
            "y_keys": ["nodes"],
        }
        out = r.render_chart()
        assert "nodes [1.00 .. 4.00]" in out
