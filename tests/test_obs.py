"""repro.obs: span tracing, the telemetry bus, and kernel self-profiling.

Three invariants carry the module:

* **Inertness** — ``obs=None`` (the default) leaves every run loop on
  its original code path, and an attached observer never changes a
  report (tracing observes, never perturbs);
* **Exactness** — span totals reproduce report aggregates with ``==``,
  not ``approx``, and survive ring eviction unchanged;
* **Coverage** — all five run loops thread one observer down to the
  kernel and populate ``events_processed`` through the one shared
  :meth:`~repro.sim.kernel.DiscreteEventKernel.finalize` helper.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    BUS,
    KernelProfiler,
    RunObserver,
    Span,
    SpanRecorder,
    Telemetry,
    validate_chrome_trace,
)
from repro.sim import FailureTrace
from repro.sim.kernel import DiscreteEventKernel, Event, EventKind

MIX = {"BERT": 0.9, "DLRM": 0.1}


# --------------------------------------------------------------------- #
# SpanRecorder
# --------------------------------------------------------------------- #


class TestSpanRecorder:
    def test_emit_and_accounting(self):
        sp = SpanRecorder(cap=10)
        sp.emit(1, "queued", 0.0, 0.5)
        sp.emit(1, "serve", 0.5, 0.25, node=2, batch=4, model="BERT")
        sp.emit(-1, "batch", 0.5, 0.25, node=2, batch=4)
        assert len(sp) == 3 and sp.n_emitted == 3 and sp.n_evicted == 0
        assert sp.count("serve") == 1 and sp.total_s("queued") == 0.5
        assert sp.count("missing") == 0 and sp.total_s("missing") == 0.0
        assert sp.phases() == ["queued", "serve", "batch"]
        s = sp.spans[1]
        assert s == Span(1, "serve", 0.5, 0.25, 2, 4, "BERT", 0, 0)
        assert s.end_s == 0.75

    def test_by_request_excludes_engine_spans(self):
        sp = SpanRecorder()
        sp.emit(3, "queued", 0.0, 1.0)
        sp.emit(-1, "batch", 0.0, 1.0)
        sp.emit(3, "serve", 1.0, 1.0)
        groups = sp.by_request()
        assert list(groups) == [3] and len(groups[3]) == 2

    def test_slowest_ranks_by_extent(self):
        sp = SpanRecorder()
        sp.emit(1, "serve", 0.0, 1.0)
        sp.emit(2, "serve", 0.0, 5.0)
        sp.emit(3, "serve", 0.0, 3.0)
        assert [rid for rid, _, _ in sp.slowest(2)] == [2, 3]

    def test_eviction_keeps_totals_exact_and_memory_flat(self):
        """The ring caps retained spans; counts/durations stay exact."""
        sp = SpanRecorder(cap=16)
        expect = 0.0
        for i in range(1000):
            sp.emit(i, "serve", float(i), 0.125)
            expect += 0.125
        assert len(sp) == 16  # flat: never exceeds cap
        assert sp.n_emitted == 1000 and sp.n_evicted == 1000 - 16
        assert sp.count("serve") == 1000
        assert sp.total_s("serve") == expect
        assert sp.spans[0].req_id == 1000 - 16  # oldest evicted first

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(cap=0)

    def test_waterfall_renders_glyphs(self):
        sp = SpanRecorder()
        sp.emit(7, "queued", 0.0, 1.0)
        sp.emit(7, "serve", 1.0, 1.0)
        out = sp.waterfall(n=4)
        assert "req 7" in out and "legend:" in out
        assert "." in out and "s" in out
        assert SpanRecorder().waterfall() == "(no request spans retained)"

    def test_chrome_trace_exports_and_validates(self, tmp_path):
        sp = SpanRecorder()
        sp.emit(1, "serve", 1.0, 0.5, node=3, batch=2, model="BERT")
        sp.emit(-1, "batch", 0.5, 1.0, node=3, kv_tokens=8, tokens=4)
        payload = sp.chrome_trace()
        assert validate_chrome_trace(payload) == 2
        ev0, ev1 = payload["traceEvents"]
        assert ev0["ts"] <= ev1["ts"]  # sorted monotonic
        assert ev1["cat"] == "request" and ev0["cat"] == "engine"
        assert ev0["tid"] == 0 and ev1["tid"] == 1
        assert ev1["args"] == {"batch": 2, "model": "BERT"}
        path = tmp_path / "trace.json"
        assert sp.write_chrome_trace(str(path)) == 2
        assert validate_chrome_trace(json.loads(path.read_text())) == 2

    @pytest.mark.parametrize(
        "payload",
        [
            {"foo": []},
            {"traceEvents": {}},
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": 0, "pid": 0}]},
            {
                "traceEvents": [
                    {"name": "x", "ph": "B", "ts": 0, "dur": 0, "pid": 0, "tid": 0}
                ]
            },
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "ts": -1, "dur": 0, "pid": 0, "tid": 0}
                ]
            },
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "ts": 0, "dur": 0, "pid": 0.5, "tid": 0}
                ]
            },
            {
                "traceEvents": [
                    {"name": "x", "ph": "X", "ts": 5, "dur": 0, "pid": 0, "tid": 0},
                    {"name": "y", "ph": "X", "ts": 1, "dur": 0, "pid": 0, "tid": 0},
                ]
            },
        ],
    )
    def test_validate_rejects_schema_violations(self, payload):
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)


# --------------------------------------------------------------------- #
# Telemetry
# --------------------------------------------------------------------- #


class TestTelemetry:
    def test_counters_gauges_histograms(self):
        bus = Telemetry()
        bus.inc("served", 2, scope="engine")
        bus.inc("served", 3, scope="engine")
        bus.gauge("depth", 7.0, node="0")
        bus.observe("latency", 0.1)
        bus.observe("latency", 0.3)
        assert bus.counter("served", scope="engine") == 5.0
        assert bus.counter("served") == 0.0  # different label set
        assert bus.gauge_value("depth", node="0") == 7.0
        assert math.isnan(bus.gauge_value("depth"))
        h = bus.histogram("latency")
        assert h.count == 2 and h.mean == pytest.approx(0.2)
        snap = bus.snapshot()
        assert snap["counters"]["served{scope=engine}"] == 5.0
        assert snap["histograms"]["latency"]["count"] == 2

    def test_disabled_bus_is_a_no_op(self):
        bus = Telemetry(enabled=False)
        bus.inc("served")
        bus.gauge("depth", 1.0)
        bus.observe("latency", 0.5)
        bus.record_counts("engine", served=3)
        assert bus.counter("served") == 0.0
        assert bus.histogram("latency").count == 0
        assert bus.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert bus.enable().counter("served") == 0.0  # chainable

    def test_module_bus_starts_disabled(self):
        assert BUS.enabled is False

    def test_scoped_labels_merge_and_call_site_wins(self):
        bus = Telemetry()
        scoped = bus.scoped(scope="cluster", node="1")
        scoped.inc("served")
        scoped.inc("served", 1, node="2")  # call-site overrides
        assert bus.counter("served", scope="cluster", node="1") == 1.0
        assert bus.counter("served", scope="cluster", node="2") == 1.0

    def test_record_counts_and_reset(self):
        bus = Telemetry()
        bus.record_counts("genai", served=4, tokens=128)
        assert bus.counter("served", scope="genai") == 4.0
        assert bus.counter("tokens", scope="genai") == 128.0
        bus.reset()
        assert bus.counter("served", scope="genai") == 0.0


# --------------------------------------------------------------------- #
# KernelProfiler
# --------------------------------------------------------------------- #


def _micro_kernel(n: int = 500):
    kernel = DiscreteEventKernel()
    kernel.preload(Event(float(i) * 1e-3, EventKind.ARRIVAL, i) for i in range(n))

    def on_arrival(now, events):
        for ev in events:
            kernel.schedule(now + 5e-4, EventKind.FINISH, ev.entity)

    def on_finish(now, events):
        pass

    return kernel, {EventKind.ARRIVAL: on_arrival, EventKind.FINISH: on_finish}


class TestKernelProfiler:
    def test_profiled_run_accounts_every_event(self):
        prof = KernelProfiler(sample_every=200)
        kernel, handlers = _micro_kernel(500)
        kernel.run(handlers, obs=RunObserver(profile=prof))
        assert prof.events == kernel.processed == 1000
        assert prof.counts[int(EventKind.ARRIVAL)] == 500
        assert prof.counts[int(EventKind.FINISH)] == 500
        assert prof.stream_events == 500  # preloaded arrivals
        assert prof.heap_events == 500  # scheduled finishes
        assert prof.runs == 1 and prof.wall_s > 0
        assert prof.timeline and prof.timeline[0][2] >= 200

    def test_profile_freezes_named_kinds(self):
        prof = KernelProfiler()
        kernel, handlers = _micro_kernel(100)
        kernel.run(handlers, obs=RunObserver(profile=prof))
        p = prof.profile()
        assert p.counts == {"ARRIVAL": 100, "FINISH": 100}
        assert p.batches["ARRIVAL"] == 100
        assert p.events_per_s > 0
        assert 0.0 < p.handler_share <= 1.0
        assert p.stream_share == 0.5
        assert [r["kind"] for r in p.rows()] == sorted(
            p.counts, key=lambda n: -p.handler_s.get(n, 0.0)
        )
        assert "kernel profile: 200 events" in p.summary()

    def test_profiler_accumulates_across_runs(self):
        prof = KernelProfiler()
        for _ in range(2):
            kernel, handlers = _micro_kernel(50)
            kernel.run(handlers, obs=RunObserver(profile=prof))
        assert prof.runs == 2 and prof.events == 200

    def test_empty_profile_is_safe(self):
        p = KernelProfiler().profile()
        assert p.events_per_s == 0.0 and p.handler_share == 0.0
        assert p.stream_share == 0.0 and p.rows() == []

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            KernelProfiler(sample_every=0)


# --------------------------------------------------------------------- #
# Observed runs: inertness, exact tie-outs, five-loop coverage
# --------------------------------------------------------------------- #


def _engine_stream():
    from repro.serving import OnlineServingEngine, poisson_requests

    engine = OnlineServingEngine()
    stream = poisson_requests("BERT", 200.0, 1.5, seed=9, slo_s=0.5)
    return engine, stream


class TestObservedRuns:
    def test_tracing_never_perturbs_the_engine(self):
        engine, stream = _engine_stream()
        plain = engine.run(list(stream), "hybrid")
        obs = RunObserver.full(cap=50_000)
        traced = engine.run(list(stream), "hybrid", obs=obs)
        assert [
            (c.request.req_id, c.dispatch_s, c.finish_s, c.batch)
            for c in traced.completed
        ] == [
            (c.request.req_id, c.dispatch_s, c.finish_s, c.batch)
            for c in plain.completed
        ]
        assert traced.sim_end_s == plain.sim_end_s
        assert traced.events_processed == plain.events_processed

    def test_engine_spans_tie_out_exactly(self):
        engine, stream = _engine_stream()
        obs = RunObserver.tracing()
        rep = engine.run(stream, "hybrid", obs=obs)
        sp = obs.spans
        assert sp.total_s("serve") == sum(c.service_s for c in rep.completed)
        assert sp.total_s("queued") == sum(c.queue_s for c in rep.completed)
        assert sp.count("serve") == rep.served
        assert sp.count("rejected") == rep.rejected_count
        assert validate_chrome_trace(sp.chrome_trace()) == sp.n_emitted

    def test_genai_engine_spans_tie_out_exactly(self):
        from repro.genai import GenerativeEngine, gen_requests

        reqs = gen_requests(2.0, 15.0, seed=5)
        obs = RunObserver.tracing()
        eng = GenerativeEngine(max_batch=4)
        rep = eng.run(reqs, obs=obs)
        plain = GenerativeEngine(max_batch=4).run(reqs)
        sp = obs.spans
        assert sp.total_s("prefill-pass") == rep.busy_prefill_s
        assert sp.total_s("decode-step") == rep.busy_decode_s
        assert sp.total_s("prefill-pass") + sp.total_s("decode-step") == rep.busy_s
        assert sp.count("sequence") == rep.served
        assert (rep.served, rep.tokens_out, rep.sim_end_s, rep.busy_s) == (
            plain.served,
            plain.tokens_out,
            plain.sim_end_s,
            plain.busy_s,
        )

    def test_cluster_failure_spans_cover_lost_requests(self):
        from repro.cluster import Cluster
        from repro.serving import poisson_requests

        obs = RunObserver.tracing()
        cluster = Cluster(n_nodes=2, replication=2)
        stream = poisson_requests("BERT", 300.0, 2.0, seed=3)
        rep = cluster.run(
            stream,
            failures=FailureTrace.scripted([(0, 0.5, 1.0)]),
            obs=obs,
        )
        sp = obs.spans
        assert rep.failed_count > 0
        assert sp.count("failed") == rep.failed_count
        assert sp.count("serve") == rep.served
        # Truncated batch spans: busy accounting still ties per node.
        for node in cluster.nodes:
            batch_sum = sum(
                s.dur_s
                for s in sp.spans
                if s.phase == "batch" and s.node == node.node_id
            )
            assert batch_sum == pytest.approx(node.busy_s, abs=1e-12)

    def test_all_five_run_loops_populate_events_processed(self):
        """The shared ``kernel.finalize`` helper feeds every report —
        and one observer threads through all five loops unchanged."""
        from repro.autoscale import (
            BaselineBurstPolicy,
            DiurnalTrace,
            ElasticCluster,
            HeteroElasticCluster,
            NodePool,
            TargetUtilizationPolicy,
            mix_requests,
            node_capacity_rps,
        )
        from repro.cluster import Cluster
        from repro.genai import GenerativeEngine, gen_requests
        from repro.serving import (
            GPU_NODE,
            STEPSTONE_NODE,
            OnlineServingEngine,
            poisson_requests,
        )

        obs = RunObserver.full(cap=50_000)
        engine = OnlineServingEngine()
        reports = {}

        reports["engine"] = engine.run(
            poisson_requests("BERT", 150.0, 1.0, seed=1), "hybrid", obs=obs
        )
        reports["cluster"] = Cluster(n_nodes=2, replication=2).run(
            poisson_requests("BERT", 200.0, 1.0, seed=2), obs=obs
        )
        elastic = ElasticCluster(
            engine=engine,
            policy="hybrid",
            models=sorted(MIX),
            initial_nodes=1,
            min_nodes=1,
            max_nodes=3,
            control_interval_s=0.5,
        )
        stream = mix_requests(
            DiurnalTrace(trough_rps=40.0, peak_rps=150.0, period_s=2.0),
            MIX,
            2.0,
            seed=3,
            slos={m: 1.0 for m in MIX},
        )
        capacity = node_capacity_rps(engine, MIX, "hybrid")
        reports["elastic"] = elastic.run(
            stream, TargetUtilizationPolicy(capacity, target=0.7), obs=obs
        )
        hetero = HeteroElasticCluster(
            pools={
                "stepstone": NodePool(
                    STEPSTONE_NODE, min_nodes=1, max_nodes=3, initial_nodes=1
                ),
                "gpu": NodePool(GPU_NODE, min_nodes=0, max_nodes=2, initial_nodes=0),
            },
            engine=engine,
            policy="hybrid",
            models=sorted(MIX),
            control_interval_s=0.5,
        )
        policy = BaselineBurstPolicy(
            baseline="stepstone",
            burst="gpu",
            baseline_nodes=1,
            baseline_capacity_rps=node_capacity_rps(
                engine, MIX, "hybrid", spec=STEPSTONE_NODE
            ),
            burst_capacity_rps=node_capacity_rps(
                engine, MIX, "hybrid", spec=GPU_NODE
            ),
            target=0.75,
        )
        hstream = mix_requests(
            DiurnalTrace(trough_rps=50.0, peak_rps=300.0, period_s=2.0),
            MIX,
            2.0,
            seed=4,
            slos={m: 1.0 for m in MIX},
        )
        reports["hetero"] = hetero.run(hstream, policy, obs=obs)
        reports["genai"] = GenerativeEngine(max_batch=4).run(
            gen_requests(2.0, 8.0, seed=5), obs=obs
        )

        for name, rep in reports.items():
            assert rep.events_processed > 0, name
        # The one profiler saw every one of those kernel events.
        assert obs.profile.events == sum(
            r.events_processed for r in reports.values()
        )
        assert obs.profile.runs == 5
        # Every loop reported its counts to the one telemetry bus.
        for scope in ("engine", "cluster", "elastic", "hetero", "genai"):
            assert obs.telemetry.counter("served", scope=scope) > 0, scope

        # The shared helper itself: finalizing twice is a no-op (run
        # loops and their callers may both finalize), and finalizing a
        # kernel that still has a pending event is a hard error — the
        # fast path drains the heap itself, so silent under-counting
        # here would be invisible downstream.
        kernel = DiscreteEventKernel()
        kernel.schedule(1.0, EventKind.CONTROL, 0)
        kernel.run({})
        rep = reports["engine"]
        first = rep.events_processed
        kernel.finalize(rep)
        assert rep.events_processed == kernel.processed == 1
        kernel.finalize(rep)  # idempotent: same drained kernel, same count
        assert rep.events_processed == 1
        rep.events_processed = first

        pending = DiscreteEventKernel()
        pending.schedule(2.0, EventKind.FINISH, 0)
        with pytest.raises(RuntimeError, match="still pending"):
            pending.finalize(rep)
        assert rep.events_processed == first  # a failed finalize wrote nothing

    def test_run_observer_factories(self):
        t = RunObserver.tracing(cap=8)
        assert t.spans.cap == 8 and t.profile is None and t.telemetry is None
        p = RunObserver.profiling(sample_every=10)
        assert p.spans is None and p.profile.sample_every == 10
        f = RunObserver.full(cap=9)
        assert f.spans.cap == 9 and f.profile is not None
        assert f.telemetry.enabled
