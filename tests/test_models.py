"""Tests for model specs (Table II) and the layer building blocks."""

import pytest

from repro.core.gemm import GemmShape
from repro.models.bert import make_bert
from repro.models.dlrm import make_dlrm_rm3
from repro.models.gpt2 import make_gpt2
from repro.models.layers import CpuOp, GemmInvocation, pow2_partition
from repro.models.xlm import make_xlm


class TestPow2Partition:
    def test_pow2_passthrough(self):
        tiles = pow2_partition(GemmShape(1024, 4096, 4))
        assert len(tiles) == 1
        assert tiles[0] == GemmShape(1024, 4096, 4)

    def test_gpt2_1600_decomposition(self):
        tiles = pow2_partition(GemmShape(1600, 1600, 4))
        ms = sorted({t.m for t in tiles}, reverse=True)
        assert ms == [1024, 512, 64]
        # Full coverage: sum of m-tiles x k-tiles = original area.
        area = sum(t.m * t.k for t in tiles)
        assert area == 1600 * 1600

    def test_6400_decomposition(self):
        tiles = pow2_partition(GemmShape(6400, 16, 1))
        assert sum(t.m for t in {(t.m, t.k): t for t in tiles}.values()) >= 6400
        assert all(t.m & (t.m - 1) == 0 for t in tiles)

    def test_small_dims_round_up(self):
        tiles = pow2_partition(GemmShape(3, 20, 1))
        assert all(t.m >= 3 for t in tiles)
        assert all(t.k & (t.k - 1) == 0 for t in tiles)

    def test_n_preserved(self):
        tiles = pow2_partition(GemmShape(1600, 6400, 7))
        assert all(t.n == 7 for t in tiles)


class TestLayerPrimitives:
    def test_invocation_count_positive(self):
        with pytest.raises(ValueError):
            GemmInvocation("x", GemmShape(4, 16, 1), count=0)

    def test_cpu_op_seconds_positive_and_scales(self):
        op1 = CpuOp("x", flops=1e6, bytes_moved=1e6, count=1)
        op2 = CpuOp("x", flops=1e6, bytes_moved=1e6, count=3)
        assert op2.seconds() == pytest.approx(3 * op1.seconds())
        assert op1.seconds() > 0


class TestModelSpecs:
    def test_dlrm_layers(self):
        spec = make_dlrm_rm3()
        names = [g.name for g in spec.gemms]
        assert names == ["bottom-fc1", "bottom-fc2", "top-fc1", "top-fc2"]
        big = spec.gemms[0].shape
        assert (big.m, big.k) == (512, 2560)
        assert spec.batch_size == 4

    def test_dlrm_dominated_by_first_fc(self):
        """§V-B: a single FC layer dominates DLRM execution (92%)."""
        spec = make_dlrm_rm3()
        flops = [g.shape.flops * g.count for g in spec.gemms]
        assert flops[0] / sum(flops) > 0.85

    def test_bert_n_is_32(self):
        """§V-B: N = batch x seq = 32 in all BERT FC layers."""
        spec = make_bert()
        fc = [g for g in spec.gemms if g.name != "classifier"]
        assert all(g.shape.n == 32 for g in fc)
        assert sum(g.count for g in fc) == 24 * 6  # 4 proj + 2 MLP per block

    def test_bert_weights_match_table2(self):
        spec = make_bert()
        shapes = {(g.shape.m, g.shape.k) for g in spec.gemms}
        assert (4096, 1024) in shapes and (1024, 4096) in shapes
        assert (1024, 1024) in shapes

    def test_gpt2_generates_at_batch_n(self):
        """KV-cached generation: every step runs FCs at N = batch."""
        spec = make_gpt2()
        assert all(g.shape.n == 4 for g in spec.gemms)
        mlp = [g for g in spec.gemms if g.name == "mlp-up"]
        assert mlp[0].count == 48 * 8  # blocks x generated tokens

    def test_gpt2_non_pow2_dims(self):
        spec = make_gpt2()
        assert any(g.shape.m == 6400 or g.shape.k == 6400 for g in spec.gemms)

    def test_xlm_growing_sequence(self):
        """§V-B: XLM's N grows 4, 8, ..., 32 across iterations."""
        spec = make_xlm()
        ns = sorted({g.shape.n for g in spec.gemms})
        assert ns == [4 * i for i in range(1, 9)]

    def test_xlm_weights_match_table2(self):
        spec = make_xlm()
        shapes = {(g.shape.m, g.shape.k) for g in spec.gemms}
        assert (8192, 2048) in shapes and (2048, 8192) in shapes

    def test_cpu_other_small_but_nonzero(self):
        for spec in (make_dlrm_rm3(), make_bert(), make_gpt2(), make_xlm()):
            t = spec.cpu_other_seconds()
            assert 0 < t < 0.1  # well under the GEMM time scale

    def test_total_weight_bytes_sensible(self):
        bert = make_bert()
        # 24 blocks x (4 x 1M + 2 x 4M) fp32 params = ~1.1 GiB streamed.
        assert 1e9 < bert.total_weight_bytes < 2e9
