"""Tests for model specs (Table II) and the layer building blocks."""

import pytest

from repro.core.gemm import GemmShape
from repro.models.bert import make_bert
from repro.models.dlrm import make_dlrm_rm3
from repro.models.gpt2 import make_gpt2
from repro.models.layers import (
    CpuOp,
    GemmInvocation,
    decode_attention_cpu_ops,
    decoder_step_gemms,
    pow2_partition,
)
from repro.models.xlm import make_xlm


class TestPow2Partition:
    def test_pow2_passthrough(self):
        tiles = pow2_partition(GemmShape(1024, 4096, 4))
        assert len(tiles) == 1
        assert tiles[0] == GemmShape(1024, 4096, 4)

    def test_gpt2_1600_decomposition(self):
        tiles = pow2_partition(GemmShape(1600, 1600, 4))
        ms = sorted({t.m for t in tiles}, reverse=True)
        assert ms == [1024, 512, 64]
        # Full coverage: sum of m-tiles x k-tiles = original area.
        area = sum(t.m * t.k for t in tiles)
        assert area == 1600 * 1600

    def test_6400_decomposition(self):
        tiles = pow2_partition(GemmShape(6400, 16, 1))
        assert sum(t.m for t in {(t.m, t.k): t for t in tiles}.values()) >= 6400
        assert all(t.m & (t.m - 1) == 0 for t in tiles)

    def test_small_dims_round_up(self):
        tiles = pow2_partition(GemmShape(3, 20, 1))
        assert all(t.m >= 3 for t in tiles)
        assert all(t.k & (t.k - 1) == 0 for t in tiles)

    def test_n_preserved(self):
        tiles = pow2_partition(GemmShape(1600, 6400, 7))
        assert all(t.n == 7 for t in tiles)


class TestLayerPrimitives:
    def test_invocation_count_positive(self):
        with pytest.raises(ValueError):
            GemmInvocation("x", GemmShape(4, 16, 1), count=0)

    def test_cpu_op_seconds_positive_and_scales(self):
        op1 = CpuOp("x", flops=1e6, bytes_moved=1e6, count=1)
        op2 = CpuOp("x", flops=1e6, bytes_moved=1e6, count=3)
        assert op2.seconds() == pytest.approx(3 * op1.seconds())
        assert op1.seconds() > 0


class TestModelSpecs:
    def test_dlrm_layers(self):
        spec = make_dlrm_rm3()
        names = [g.name for g in spec.gemms]
        assert names == ["bottom-fc1", "bottom-fc2", "top-fc1", "top-fc2"]
        big = spec.gemms[0].shape
        assert (big.m, big.k) == (512, 2560)
        assert spec.batch_size == 4

    def test_dlrm_dominated_by_first_fc(self):
        """§V-B: a single FC layer dominates DLRM execution (92%)."""
        spec = make_dlrm_rm3()
        flops = [g.shape.flops * g.count for g in spec.gemms]
        assert flops[0] / sum(flops) > 0.85

    def test_bert_n_is_32(self):
        """§V-B: N = batch x seq = 32 in all BERT FC layers."""
        spec = make_bert()
        fc = [g for g in spec.gemms if g.name != "classifier"]
        assert all(g.shape.n == 32 for g in fc)
        assert sum(g.count for g in fc) == 24 * 6  # 4 proj + 2 MLP per block

    def test_bert_weights_match_table2(self):
        spec = make_bert()
        shapes = {(g.shape.m, g.shape.k) for g in spec.gemms}
        assert (4096, 1024) in shapes and (1024, 4096) in shapes
        assert (1024, 1024) in shapes

    def test_gpt2_generates_at_batch_n(self):
        """KV-cached generation: every step runs FCs at N = batch."""
        spec = make_gpt2()
        assert all(g.shape.n == 4 for g in spec.gemms)
        mlp = [g for g in spec.gemms if g.name == "mlp-up"]
        assert mlp[0].count == 48 * 8  # blocks x generated tokens

    def test_gpt2_non_pow2_dims(self):
        spec = make_gpt2()
        assert any(g.shape.m == 6400 or g.shape.k == 6400 for g in spec.gemms)

    def test_xlm_growing_sequence(self):
        """§V-B: XLM's N grows 4, 8, ..., 32 across iterations."""
        spec = make_xlm()
        ns = sorted({g.shape.n for g in spec.gemms})
        assert ns == [4 * i for i in range(1, 9)]

    def test_xlm_weights_match_table2(self):
        spec = make_xlm()
        shapes = {(g.shape.m, g.shape.k) for g in spec.gemms}
        assert (8192, 2048) in shapes and (2048, 8192) in shapes

    def test_cpu_other_small_but_nonzero(self):
        for spec in (make_dlrm_rm3(), make_bert(), make_gpt2(), make_xlm()):
            t = spec.cpu_other_seconds()
            assert 0 < t < 0.1  # well under the GEMM time scale

    def test_total_weight_bytes_sensible(self):
        bert = make_bert()
        # 24 blocks x (4 x 1M + 2 x 4M) fp32 params = ~1.1 GiB streamed.
        assert 1e9 < bert.total_weight_bytes < 2e9


class TestDecoderStepHelpers:
    """The shared per-step decode helpers and the prompt-length knobs
    (PR 7 satellite): defaults must pin the original aggregate specs."""

    def test_gpt2_default_aggregate_pinned(self):
        """make_gpt2() is bit-identical to the pre-refactor aggregate."""
        spec = make_gpt2()
        assert spec.total_gemm_flops == 94371840000.0
        assert spec.total_weight_bytes == 47185920000
        assert spec.cpu_other_seconds() == pytest.approx(
            0.018642752727272723, rel=0, abs=0
        )
        assert [(g.name, g.shape.m, g.shape.k, g.shape.n, g.count) for g in spec.gemms] == [
            ("proj-qkv", 1600, 1600, 4, 1152),
            ("proj-out", 1600, 1600, 4, 384),
            ("mlp-up", 6400, 1600, 4, 384),
            ("mlp-down", 1600, 6400, 4, 384),
        ]

    def test_xlm_default_aggregate_pinned(self):
        """make_xlm() is bit-identical to the pre-refactor aggregate."""
        spec = make_xlm()
        assert spec.total_gemm_flops == 173946175488.0
        assert spec.total_weight_bytes == 19327352832
        assert spec.cpu_other_seconds() == pytest.approx(
            0.005820003463203462, rel=0, abs=0
        )
        assert spec.gemms[0].name == "proj-qkv/len1"
        assert spec.gemms[0].count == 36

    def test_decoder_step_gemms_structure(self):
        gemms = decoder_step_gemms(1600, 6400, n=4, blocks=48, repeat=8)
        assert [g.name for g in gemms] == ["proj-qkv", "proj-out", "mlp-up", "mlp-down"]
        assert [g.count for g in gemms] == [3 * 384, 384, 384, 384]
        assert gemms[2].shape == GemmShape(6400, 1600, 4)

    def test_gpt2_prompt_grows_attention_not_gemms(self):
        """KV cache: a longer prompt leaves the FC GEMMs untouched but
        inflates the attended context (CPU_Other)."""
        base, long = make_gpt2(), make_gpt2(prompt_tokens=64)
        assert long.total_gemm_flops == base.total_gemm_flops
        assert long.total_weight_bytes == base.total_weight_bytes
        assert long.cpu_other_seconds() > base.cpu_other_seconds()

    def test_xlm_prompt_grows_gemms(self):
        """No KV cache: XLM re-processes prompt + generated every step,
        so the prompt inflates the GEMM activation dimension."""
        base, long = make_xlm(), make_xlm(prompt_tokens=16)
        assert long.total_gemm_flops > base.total_gemm_flops
        ns = sorted({g.shape.n for g in long.gemms})
        assert ns == [4 * (16 + i) for i in range(1, 9)]

    def test_decode_attention_linear_in_context(self):
        """Decode-time attention is linear in total context (the KV-cached
        1 x ctx GEMV), unlike the quadratic prefill ops."""
        small = decode_attention_cpu_ops("d", 48, 25, 64, 1600, n_tokens=4, total_context=100)
        big = decode_attention_cpu_ops("d", 48, 25, 64, 1600, n_tokens=4, total_context=200)
        s = next(op for op in small if op.name.endswith("attn-scores"))
        b = next(op for op in big if op.name.endswith("attn-scores"))
        assert b.flops == pytest.approx(2 * s.flops)
        # Dispatch overhead is batch-independent: counts stay at blocks.
        assert s.count == b.count == 48

    def test_decode_attention_overhead_amortizes(self):
        """Doubling the batch less than doubles per-step seconds: kernel
        launches are shared, volumes scale."""
        one = decode_attention_cpu_ops("d", 48, 25, 64, 1600, n_tokens=1, total_context=128)
        two = decode_attention_cpu_ops("d", 48, 25, 64, 1600, n_tokens=2, total_context=256)
        t1 = sum(op.seconds() for op in one)
        t2 = sum(op.seconds() for op in two)
        assert t1 < t2 < 2 * t1
