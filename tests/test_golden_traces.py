"""Golden-trace regression fixtures: the pre-refactor request streams.

These fixtures were captured from the serving stack *before* the four
event loops (engine, cluster, elastic, hetero) were rebuilt on the shared
:mod:`repro.sim` kernel, and they pin request-for-request behavior across
that migration: every completed request's (node, dispatch, finish, batch),
every admission rejection, every control-tick sample, and every node
lifecycle timestamp must reproduce exactly (same seeds, same floats).

Regenerate (only when a *deliberate* behavior change is being made):

    PYTHONPATH=src python tests/test_golden_traces.py --capture
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

SEED = 42
MIX = {"BERT": 0.9, "DLRM": 0.1}


def _f(x):
    """NaN-safe float for JSON comparison (NaN != NaN, so map it to None)."""
    if x is None or x != x:
        return None
    return float(x)


def _serving_rows(node_id, rep):
    completed = [
        [
            node_id,
            c.request.req_id,
            c.request.model,
            _f(c.request.arrival_s),
            _f(c.dispatch_s),
            _f(c.finish_s),
            c.batch,
        ]
        for c in rep.completed
    ]
    rejected = [
        [node_id, r.request.req_id, r.request.model, _f(r.rejected_at_s)]
        for r in rep.rejected
    ]
    return completed, rejected


def _report_payload(node_reports, sim_end_s, extra=None):
    """Serializable request-for-request view of per-node serving reports.

    Args:
        node_reports: Iterable of ``(node_id, ServingReport)`` pairs.
        sim_end_s: The run's serving horizon.
        extra: Optional additional payload entries.
    """
    completed, rejected = [], []
    for nid, rep in node_reports:
        c, r = _serving_rows(nid, rep)
        completed.extend(c)
        rejected.extend(r)
    payload = {
        "sim_end_s": _f(sim_end_s),
        "completed": completed,
        "rejected": rejected,
    }
    if extra:
        payload.update(extra)
    return payload


def _autoscale_extra(rep):
    return {
        "samples": [
            [
                _f(s.t),
                s.active,
                s.provisioning,
                s.draining,
                s.desired,
                s.arrivals,
                s.completions,
                s.rejections,
                _f(s.window_p99_s),
                _f(s.utilization),
                s.backlog,
            ]
            for s in rep.samples
        ],
        "lifetimes": [
            [
                life.node_id,
                _f(life.ordered_s),
                _f(life.ready_s),
                _f(life.drain_s),
                _f(life.retired_s),
            ]
            for _, life in sorted(rep.lifetimes.items())
        ],
        "node_busy_s": [
            [nid, _f(b)] for nid, b in sorted(rep.node_busy_s.items())
        ],
    }


# --------------------------------------------------------------------- #
# Scenarios (shared by capture and comparison — do not edit casually)
# --------------------------------------------------------------------- #


def scenario_engine():
    """Single-node engine: merged Poisson BERT+DLRM stream, hybrid."""
    from repro.serving import (
        OnlineServingEngine,
        merge_streams,
        poisson_requests,
    )

    engine = OnlineServingEngine()
    stream = merge_streams(
        poisson_requests("BERT", 220.0, 4.0, seed=11, slo_s=1.0),
        poisson_requests("DLRM", 40.0, 4.0, seed=12, slo_s=0.8, start_id=10_000),
    )
    rep = engine.run(stream, "hybrid")
    return _report_payload([(0, rep)], rep.sim_end_s)


def scenario_cluster():
    """Mixed-spec static fleet behind the backend-affinity router."""
    from repro.cluster import Cluster
    from repro.serving import (
        GPU_NODE,
        STEPSTONE_NODE,
        OnlineServingEngine,
        merge_streams,
        poisson_requests,
    )

    engine = OnlineServingEngine()
    cluster = Cluster(
        policy="hybrid",
        router="backend-affinity",
        engine=engine,
        specs=[STEPSTONE_NODE, STEPSTONE_NODE, GPU_NODE],
    )
    stream = merge_streams(
        poisson_requests("BERT", 500.0, 4.0, seed=21, slo_s=0.6),
        poisson_requests("DLRM", 60.0, 4.0, seed=22, slo_s=0.6, start_id=10_000),
    )
    rep = cluster.run(stream)
    return _report_payload(
        list(enumerate(rep.node_reports)),
        rep.sim_end_s,
        extra={
            "last_arrival_s": _f(rep.last_arrival_s),
            "node_busy_s": [[i, _f(b)] for i, b in enumerate(rep.node_busy_s)],
        },
    )


def scenario_elastic():
    """Elastic fleet under the reactive policy on a diurnal swing."""
    from repro.autoscale import (
        DiurnalTrace,
        ElasticCluster,
        TargetUtilizationPolicy,
        mix_requests,
        node_capacity_rps,
    )
    from repro.serving import OnlineServingEngine

    engine = OnlineServingEngine()
    cluster = ElasticCluster(
        engine=engine,
        policy="hybrid",
        models=sorted(MIX),
        initial_nodes=2,
        min_nodes=1,
        max_nodes=6,
        control_interval_s=0.5,
        provision_base_s=0.15,
        copy_gbps=10.0,
    )
    stream = mix_requests(
        DiurnalTrace(trough_rps=60.0, peak_rps=420.0, period_s=6.0),
        MIX,
        8.0,
        seed=SEED,
        slos={m: 1.0 for m in MIX},
    )
    capacity = node_capacity_rps(engine, MIX, "hybrid")
    rep = cluster.run(stream, TargetUtilizationPolicy(capacity, target=0.7))
    return _report_payload(
        sorted(rep.node_reports.items()),
        rep.sim_end_s,
        extra={"last_arrival_s": _f(rep.last_arrival_s), **_autoscale_extra(rep)},
    )


def scenario_hetero():
    """StepStone baseline + GPU burst pools under baseline-burst scaling."""
    from repro.autoscale import (
        BaselineBurstPolicy,
        DiurnalTrace,
        HeteroElasticCluster,
        NodePool,
        mix_requests,
    )
    from repro.autoscale.policies import node_capacity_rps
    from repro.serving import GPU_NODE, STEPSTONE_NODE, OnlineServingEngine

    engine = OnlineServingEngine()
    cluster = HeteroElasticCluster(
        pools={
            "stepstone": NodePool(
                STEPSTONE_NODE, min_nodes=1, max_nodes=6, initial_nodes=2
            ),
            "gpu": NodePool(GPU_NODE, min_nodes=0, max_nodes=3, initial_nodes=0),
        },
        engine=engine,
        policy="hybrid",
        router="backend-affinity",
        models=sorted(MIX),
        control_interval_s=0.5,
    )
    ss_cap = node_capacity_rps(engine, MIX, "hybrid", spec=STEPSTONE_NODE)
    gpu_cap = node_capacity_rps(engine, MIX, "hybrid", spec=GPU_NODE)
    policy = BaselineBurstPolicy(
        baseline="stepstone",
        burst="gpu",
        baseline_nodes=2,
        baseline_capacity_rps=ss_cap,
        burst_capacity_rps=gpu_cap,
        target=0.75,
    )
    stream = mix_requests(
        DiurnalTrace(trough_rps=100.0, peak_rps=900.0, period_s=8.0),
        MIX,
        8.0,
        seed=SEED + 3,
        slos={m: 1.0 for m in MIX},
    )
    rep = cluster.run(stream, policy)
    return _report_payload(
        sorted(rep.node_reports.items()),
        rep.sim_end_s,
        extra={
            "last_arrival_s": _f(rep.last_arrival_s),
            **_autoscale_extra(rep),
            "node_pool": [
                [nid, pool] for nid, pool in sorted(rep.node_pool.items())
            ],
        },
    )


SCENARIOS = {
    "engine": scenario_engine,
    "cluster": scenario_cluster,
    "elastic": scenario_elastic,
    "hetero": scenario_hetero,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name):
    """The refactored stack reproduces the pre-refactor stream exactly."""
    path = FIXTURES / f"golden_{name}.json"
    assert path.exists(), (
        f"missing fixture {path.name}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_traces.py --capture`"
    )
    expected = json.loads(path.read_text())
    actual = json.loads(json.dumps(SCENARIOS[name]()))  # normalize tuples
    assert actual == expected


def _capture() -> None:
    FIXTURES.mkdir(exist_ok=True)
    for name, build in sorted(SCENARIOS.items()):
        payload = build()
        path = FIXTURES / f"golden_{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(
            f"{path.name}: {len(payload['completed'])} completed, "
            f"{len(payload['rejected'])} rejected, sim_end "
            f"{payload['sim_end_s']:.4f}s"
        )


if __name__ == "__main__":
    if "--capture" in sys.argv:
        _capture()
    else:
        print(__doc__)
