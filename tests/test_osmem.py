"""Tests for the colored frame allocator and translation engine (§III-E/IV)."""

import numpy as np
import pytest

from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel
from repro.osmem.allocator import (
    PAGE_BYTES,
    AllocationError,
    ColorConstraint,
    ColoredFrameAllocator,
)
from repro.osmem.translation import TranslationEngine


@pytest.fixture()
def alloc():
    return ColoredFrameAllocator(make_skylake())


class TestContiguous:
    def test_natural_alignment(self, alloc):
        r = alloc.allocate("a", 16 * 2**20)
        assert r.base % (16 * 2**20) == 0
        assert r.contiguous

    def test_small_rounds_to_page(self, alloc):
        r = alloc.allocate("t", 100)
        assert r.size == PAGE_BYTES

    def test_duplicate_name_rejected(self, alloc):
        alloc.allocate("x", 4096)
        with pytest.raises(AllocationError, match="already exists"):
            alloc.allocate("x", 4096)

    def test_release_coalesces(self, alloc):
        before = alloc.free_bytes()
        alloc.allocate("x", 1 << 20)
        alloc.allocate("y", 1 << 20)
        alloc.release("x")
        alloc.release("y")
        assert alloc.free_bytes() == before
        assert len(alloc._free) == 1

    def test_exhaustion(self, alloc):
        with pytest.raises(AllocationError):
            alloc.allocate("huge", alloc.capacity * 2)

    def test_release_unknown(self, alloc):
        with pytest.raises(AllocationError):
            alloc.release("nope")


class TestPinnability:
    def test_skylake_32k_chunks(self, alloc):
        """Under Skylake with 32 KiB chunks, only BG1 (1) and RK (2) are
        pinnable at BG level — BG0 and CH are fed by offset bits."""
        assert alloc.pinnable_id_bits(PimLevel.BANKGROUP, 32 * 1024) == [1, 2]

    def test_larger_chunks_pin_fewer(self, alloc):
        """Raising granularity swallows feeding bits: at 256 KiB only RK
        (a18^a22) survives; at 1 MiB nothing is pinnable."""
        assert alloc.pinnable_id_bits(PimLevel.BANKGROUP, 256 * 1024) == [2]
        assert alloc.pinnable_id_bits(PimLevel.BANKGROUP, 1 << 20) == []

    def test_page_chunks_pin_more(self, alloc):
        bits = alloc.pinnable_id_bits(PimLevel.BANKGROUP, PAGE_BYTES)
        assert 1 in bits and 2 in bits

    def test_invalid_chunk(self, alloc):
        with pytest.raises(ValueError):
            alloc.pinnable_id_bits(PimLevel.BANKGROUP, 3000)


class TestChunkedColored:
    def test_pinned_bit_constant(self, alloc):
        c = ColorConstraint.pin(PimLevel.BANKGROUP, b1=0)
        r = alloc.allocate_chunked("w", 4 << 20, 32 * 1024, constraint=c)
        assert alloc.verify_pinning(r)
        assert len(r.chunks) == (4 << 20) // (32 * 1024)

    def test_pinned_value_one(self, alloc):
        c = ColorConstraint.pin(PimLevel.BANKGROUP, b2=1)
        r = alloc.allocate_chunked("w", 1 << 20, 32 * 1024, constraint=c)
        assert alloc.verify_pinning(r)

    def test_unpinnable_bit_rejected(self, alloc):
        c = ColorConstraint.pin(PimLevel.BANKGROUP, b0=0)  # BG0: fed by a7
        with pytest.raises(AllocationError, match="cannot be pinned"):
            alloc.allocate_chunked("w", 1 << 20, 32 * 1024, constraint=c)

    def test_consistent_striping_across_chunks(self, alloc):
        """§III-E: contiguous VAs stay aligned in DRAM space — every chunk
        maps offset->PIM identically."""
        c = ColorConstraint.pin(PimLevel.BANKGROUP, b1=0)
        r = alloc.allocate_chunked("w", 2 << 20, 32 * 1024, constraint=c)
        assert alloc.verify_consistent_striping(r, PimLevel.BANKGROUP)

    def test_active_pims_halved_functionally(self, alloc):
        """The colored region really reaches only half the BG PIMs."""
        mapping = alloc.mapping
        c = ColorConstraint.pin(PimLevel.BANKGROUP, b1=0)
        r = alloc.allocate_chunked("w", 2 << 20, 32 * 1024, constraint=c)
        blocks = np.concatenate(
            [np.uint64(b) + np.arange(0, r.chunk_bytes, 64, dtype=np.uint64) for b in r.chunks[:16]]
        )
        ids = mapping.pim_ids(blocks, PimLevel.BANKGROUP)
        # BG1 pinned: the region reaches only PIMs with that bit clear.
        assert len(np.unique(ids)) <= 8
        assert all((int(i) >> 1) & 1 == 0 for i in np.unique(ids))

    def test_bad_size_multiple(self, alloc):
        with pytest.raises(AllocationError, match="multiple"):
            alloc.allocate_chunked("w", 100_000, 32 * 1024)

    def test_rollback_on_failure(self):
        """If a constrained chunk cannot be placed, nothing leaks."""
        alloc = ColoredFrameAllocator(make_skylake())
        before = alloc.free_bytes()
        c = ColorConstraint.pin(PimLevel.BANKGROUP, b0=1)
        with pytest.raises(AllocationError):
            alloc.allocate_chunked("w", 1 << 20, 32 * 1024, constraint=c)
        assert alloc.free_bytes() == before


class TestConstraint:
    def test_pin_builder(self):
        c = ColorConstraint.pin(PimLevel.DEVICE, b0=1, b1=0)
        assert c.bit_values == ((0, 1), (1, 0))

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ColorConstraint(PimLevel.DEVICE, ((0, 2),))


class TestTranslation:
    def test_contiguous_single_translation(self, alloc):
        r = alloc.allocate("a", 1 << 20)
        eng = TranslationEngine()
        eng.register(r)
        assert eng.kernel_command_translations("a", 1 << 20) == 1
        assert eng.translate("a", 0x1234) == r.base + 0x1234

    def test_chunked_translation(self, alloc):
        c = ColorConstraint.pin(PimLevel.BANKGROUP, b1=0)
        r = alloc.allocate_chunked("w", 1 << 20, 32 * 1024, constraint=c)
        eng = TranslationEngine()
        eng.register(r)
        off = 5 * 32 * 1024 + 96
        assert eng.translate("w", off) == r.chunks[5] + 96
        assert eng.kernel_command_translations("w", 1 << 20) == 32

    def test_out_of_range(self, alloc):
        r = alloc.allocate("a", 4096)
        eng = TranslationEngine()
        eng.register(r)
        with pytest.raises(ValueError):
            eng.translate("a", 5000)

    def test_stats_track_chunk_locality(self, alloc):
        r = alloc.allocate("a", 1 << 20)
        eng = TranslationEngine()
        eng.register(r)
        for off in range(0, 4096, 64):
            eng.translate("a", off)
        assert eng.stats("a").hit_rate > 0.9

    def test_duplicate_register(self, alloc):
        r = alloc.allocate("a", 4096)
        eng = TranslationEngine()
        eng.register(r)
        with pytest.raises(ValueError):
            eng.register(r)
