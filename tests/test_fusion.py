"""Tests for non-pow2 kernel fusion (§III-E)."""

import pytest

from repro.core.config import StepStoneConfig
from repro.core.fusion import fused_execute, pow2_grid
from repro.core.gemm import GemmShape
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestGrid:
    def test_pow2_single_tile(self):
        m, k = pow2_grid(GemmShape(1024, 4096, 4))
        assert m == [1024] and k == [4096]

    def test_gpt2_decomposition(self):
        m, k = pow2_grid(GemmShape(1600, 6400, 4))
        assert m == [1024, 512, 64]
        assert k == [4096, 2048, 256]
        assert sum(m) == 1600 and sum(k) == 6400

    def test_min_dim_rounding(self):
        m, k = pow2_grid(GemmShape(24, 24, 1))
        assert all(x >= 16 for x in m + k)


class TestFusedExecution:
    def test_pow2_no_savings(self, cfg, sky):
        r = fused_execute(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        assert r.n_tiles == 1
        assert r.savings_fraction == pytest.approx(0.0)
        assert r.breakdown.total == pytest.approx(r.unfused_breakdown.total)

    def test_non_pow2_saves(self, cfg, sky):
        r = fused_execute(cfg, sky, GemmShape(1600, 1600, 4), PimLevel.BANKGROUP)
        assert r.n_tiles == 9
        assert 0.05 < r.savings_fraction < 0.6

    def test_gemm_phase_unchanged(self, cfg, sky):
        """Fusion only elides loc/red duplicates, never compute/stream."""
        r = fused_execute(cfg, sky, GemmShape(1600, 1600, 4), PimLevel.BANKGROUP)
        assert r.breakdown.gemm == pytest.approx(r.unfused_breakdown.gemm)
        assert r.breakdown.fill_b == pytest.approx(r.unfused_breakdown.fill_b)
        assert r.breakdown.localization < r.unfused_breakdown.localization
        assert r.breakdown.reduction < r.unfused_breakdown.reduction

    def test_localization_once_per_k_band(self, cfg, sky):
        """M-splits of the same K range share one B localization."""
        r = fused_execute(cfg, sky, GemmShape(2560, 512, 4), PimLevel.BANKGROUP)
        # 2560 -> [2048, 512]; one K band: loc counted once, red twice.
        assert r.breakdown.localization < r.unfused_breakdown.localization
        assert r.breakdown.reduction == pytest.approx(r.unfused_breakdown.reduction)

    def test_reduction_once_per_m_band(self, cfg, sky):
        """K-splits accumulating into the same C share one reduction."""
        r = fused_execute(cfg, sky, GemmShape(512, 2560, 4), PimLevel.BANKGROUP)
        assert r.breakdown.reduction < r.unfused_breakdown.reduction
        assert r.breakdown.localization == pytest.approx(
            r.unfused_breakdown.localization
        )

    def test_dv_level_also_fuses(self, cfg, sky):
        r = fused_execute(cfg, sky, GemmShape(1600, 6400, 8), PimLevel.DEVICE)
        assert r.savings_fraction > 0.0
