"""Tests for the Fig. 8 inference engine."""

import pytest

from repro.models.dlrm import make_dlrm_rm3
from repro.models.inference import BACKENDS, InferenceEngine, all_models
from repro.models.xlm import make_xlm


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine()


@pytest.fixture(scope="module")
def dlrm_results(engine):
    return engine.run_all(make_dlrm_rm3())


class TestEngine:
    def test_backends_tuple(self):
        assert BACKENDS == ("cpu", "icpu", "pei", "ncho", "echo", "stp_dv", "stp")

    def test_unknown_backend_rejected(self, engine):
        with pytest.raises(ValueError, match="unknown backend"):
            engine.run(make_dlrm_rm3(), "tpu")

    def test_all_models_registry(self):
        models = all_models()
        assert set(models) == {"DLRM", "GPT2", "XLM", "BERT"}

    def test_components_sum_to_total(self, dlrm_results):
        for r in dlrm_results.values():
            assert r.total_s == pytest.approx(
                r.pim_dv_s + r.pim_bg_s + r.cpu_gemm_s + r.cpu_other_s
            )

    def test_cpu_backend_has_no_pim_time(self, dlrm_results):
        r = dlrm_results["cpu"]
        assert r.pim_dv_s == 0.0 and r.pim_bg_s == 0.0
        assert r.cpu_gemm_s > 0

    def test_stp_dv_never_uses_bg(self, dlrm_results):
        assert dlrm_results["stp_dv"].pim_bg_s == 0.0

    def test_ordering_cpu_worst_stp_best(self, dlrm_results):
        t = {b: dlrm_results[b].total_s for b in BACKENDS}
        assert t["stp"] <= t["stp_dv"] <= t["echo"]
        assert t["echo"] < t["ncho"]
        assert t["stp"] < t["icpu"] < t["cpu"]

    def test_icpu_never_slower_than_cpu(self, engine):
        for spec in all_models().values():
            icpu = engine.run(spec, "icpu")
            cpu = engine.run(spec, "cpu")
            assert icpu.total_s <= cpu.total_s

    def test_normalization(self, dlrm_results):
        icpu = dlrm_results["icpu"]
        norm = icpu.normalized_to(icpu)
        assert norm["total"] == pytest.approx(1.0)

    def test_xlm_level_switching(self, engine):
        """§V-B: XLM uses BG-level PIMs at small N, DV-level at large N."""
        r = engine.run(make_xlm(), "stp")
        assert r.pim_bg_s > 0 and r.pim_dv_s > 0
        assert r.level_switches == 1

    def test_tile_cache_reused(self):
        eng = InferenceEngine()
        eng.run(make_dlrm_rm3(), "stp")
        n1 = len(eng._tile_cache)
        eng.run(make_dlrm_rm3(), "stp")
        assert len(eng._tile_cache) == n1  # second run fully cached

    def test_cpu_other_constant_across_backends(self, dlrm_results):
        vals = {round(r.cpu_other_s, 12) for r in dlrm_results.values()}
        assert len(vals) == 1
