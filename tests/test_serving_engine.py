"""Tests for the request-level online serving engine."""

import math
import random

import pytest

from repro.serving import (
    POLICIES,
    OnlineServingEngine,
    Request,
    ServingReport,
    merge_streams,
    poisson_requests,
    slo_admit,
    uniform_requests,
)


@pytest.fixture(scope="module")
def eng():
    return OnlineServingEngine()


class TestStreams:
    def test_poisson_deterministic(self):
        a = poisson_requests("BERT", rate_rps=100, duration_s=1.0, seed=3)
        b = poisson_requests("BERT", rate_rps=100, duration_s=1.0, seed=3)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]

    def test_poisson_rate_roughly_respected(self):
        reqs = poisson_requests("BERT", rate_rps=500, duration_s=4.0, seed=0)
        assert 1500 < len(reqs) < 2500  # ~2000 expected

    def test_uniform_spacing(self):
        reqs = uniform_requests("BERT", rate_rps=10, duration_s=1.0)
        gaps = [b.arrival_s - a.arrival_s for a, b in zip(reqs, reqs[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_uniform_delivers_exact_rate(self):
        """Regression: the last arrival used to land on duration_s and get
        filtered, understating the asked-for rate by one request."""
        reqs = uniform_requests("BERT", rate_rps=10, duration_s=1.0)
        assert len(reqs) == 10
        assert reqs[0].arrival_s == 0.0
        assert reqs[-1].arrival_s < 1.0

    def test_merge_orders_by_arrival(self):
        a = uniform_requests("BERT", rate_rps=7, duration_s=1.0, start_id=0)
        b = uniform_requests("DLRM", rate_rps=11, duration_s=1.0, start_id=1000)
        merged = merge_streams(a, b)
        assert len(merged) == len(a) + len(b)
        arrivals = [r.arrival_s for r in merged]
        assert arrivals == sorted(arrivals)

    def test_invalid_stream_params(self):
        with pytest.raises(ValueError):
            poisson_requests("BERT", rate_rps=0, duration_s=1.0)
        with pytest.raises(ValueError):
            uniform_requests("BERT", rate_rps=10, duration_s=0)

    def test_invalid_request(self):
        with pytest.raises(ValueError):
            Request(req_id=0, model="BERT", arrival_s=-1.0)
        with pytest.raises(ValueError):
            Request(req_id=0, model="BERT", arrival_s=0.0, slo_s=0.0)


class TestBatchLatency:
    def test_unknown_policy_and_model(self, eng):
        with pytest.raises(ValueError, match="unknown policy"):
            eng.batch_latency("BERT", "gpu", 4)
        with pytest.raises(KeyError, match="unknown model"):
            eng.batch_latency("LLAMA", "cpu", 4)
        with pytest.raises(ValueError):
            eng.batch_latency("BERT", "cpu", 0)

    def test_monotone_in_batch(self, eng):
        for policy in POLICIES:
            t1 = eng.batch_latency("BERT", policy, 1)
            t8 = eng.batch_latency("BERT", policy, 8)
            t64 = eng.batch_latency("BERT", policy, 64)
            assert 0 < t1 <= t8 <= t64

    def test_hybrid_no_worse_than_best_single(self, eng):
        """The hybrid split's service time lower-bounds either backend for
        every model and batch size (its share grid includes both endpoints)."""
        for model in ("BERT", "DLRM", "XLM"):
            for batch in (1, 3, 17, 32, 64):
                hybrid = eng.batch_latency(model, "hybrid", batch)
                single = min(
                    eng.batch_latency(model, "cpu", batch),
                    eng.batch_latency(model, "pim", batch),
                )
                assert hybrid <= single + 1e-15

    def test_latency_cache_hit(self, eng):
        t1 = eng.batch_latency("BERT", "pim", 5)
        # the cache key carries the node-spec hardware identity; the
        # spec-less call is the default StepStone node
        assert ("BERT", "pim", 5, ("stepstone",)) in eng._latency_cache
        assert eng.batch_latency("BERT", "pim", 5) == t1


class TestEngineRuns:
    def test_empty_stream(self, eng):
        rep = eng.run([], "pim")
        assert rep.completed == [] and rep.rejected == []
        assert math.isnan(rep.p50_s)
        assert rep.throughput_rps == 0.0

    def test_unknown_policy(self, eng):
        with pytest.raises(ValueError, match="unknown policy"):
            eng.run([Request(0, "BERT", 0.0)], "tpu")

    def test_deterministic_same_seed(self, eng):
        reqs = poisson_requests("BERT", rate_rps=200, duration_s=1.0, seed=11, slo_s=3.0)
        a = eng.run(reqs, "hybrid")
        b = eng.run(reqs, "hybrid")
        assert len(a.completed) == len(b.completed)
        assert (a.p50_s, a.p95_s, a.p99_s) == (b.p50_s, b.p95_s, b.p99_s)
        assert a.throughput_rps == b.throughput_rps

    def test_all_served_no_slo(self, eng):
        reqs = poisson_requests("BERT", rate_rps=100, duration_s=1.0, seed=5)
        rep = eng.run(reqs, "hybrid")
        assert len(rep.completed) == len(reqs)
        assert not rep.rejected

    def test_slo_rejects_infeasible_requests(self, eng):
        """A request whose SLO is below the batch-1 service floor can never
        be served — admission rejects it instead of blowing the bound."""
        floor = eng.min_latency("BERT", "pim")
        reqs = poisson_requests(
            "BERT", rate_rps=50, duration_s=0.5, seed=2, slo_s=floor / 2
        )
        rep = eng.run(reqs, "pim")
        assert not rep.completed
        assert len(rep.rejected) == len(reqs)

    def test_completed_latencies_respect_slo(self, eng):
        slo = 30 * eng.min_latency("BERT", "cpu")
        reqs = poisson_requests("BERT", rate_rps=400, duration_s=1.0, seed=9, slo_s=slo)
        rep = eng.run(reqs, "hybrid")
        assert rep.completed
        assert max(c.latency_s for c in rep.completed) <= slo

    def test_fifo_and_accounting(self, eng):
        reqs = uniform_requests("BERT", rate_rps=120, duration_s=1.0)
        rep = eng.run(reqs, "cpu")
        assert len(rep.completed) == len(reqs)
        for c in rep.completed:
            assert c.queue_s >= 0
            assert c.service_s > 0
            assert c.latency_s == pytest.approx(c.queue_s + c.service_s)
            assert 1 <= c.batch <= eng.max_batch
        finishes = [c.finish_s for c in rep.completed]
        assert finishes == sorted(finishes)  # FIFO batches finish in order

    def test_max_batch_respected(self):
        small = OnlineServingEngine(max_batch=4)
        reqs = uniform_requests("DLRM", rate_rps=1000, duration_s=0.05)
        rep = small.run(reqs, "pim")
        assert rep.completed
        assert max(c.batch for c in rep.completed) <= 4

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError):
            OnlineServingEngine(max_batch=0)

    def test_colliding_req_ids_across_streams(self, eng):
        """Regression: queue bookkeeping used req_id, so merged streams with
        overlapping ids silently dropped requests."""
        a = Request(req_id=0, model="BERT", arrival_s=0.0)
        b = Request(req_id=0, model="DLRM", arrival_s=0.0)
        rep = eng.run([a, b], "pim")
        assert len(rep.completed) == 2
        assert not rep.rejected

    def test_slo_admission_shrinks_before_mass_reject(self, eng):
        """Regression: two simultaneous requests whose SLO admits batch 1
        but not batch 2 — admission must serve one, not reject both."""
        s1 = eng.batch_latency("BERT", "cpu", 1)
        s2 = eng.batch_latency("BERT", "cpu", 2)
        assert s1 < s2
        slo = (s1 + s2) / 2
        reqs = [Request(i, "BERT", 0.0, slo_s=slo) for i in range(2)]
        rep = eng.run(reqs, "cpu")
        assert len(rep.completed) >= 1
        assert all(c.latency_s <= slo for c in rep.completed)

    def test_batches_never_mix_models(self, eng):
        a = poisson_requests("BERT", rate_rps=60, duration_s=0.5, seed=1, start_id=0)
        b = poisson_requests("DLRM", rate_rps=600, duration_s=0.5, seed=2, start_id=10_000)
        rep = eng.run(merge_streams(a, b), "hybrid")
        assert len(rep.completed) == len(a) + len(b)
        by_dispatch = {}
        for c in rep.completed:
            by_dispatch.setdefault(c.dispatch_s, set()).add(c.request.model)
        assert all(len(models) == 1 for models in by_dispatch.values())

    def test_hybrid_policy_never_worse_throughput(self, eng):
        """Overload BERT: hybrid sustains at least the best single backend."""
        reqs = poisson_requests("BERT", rate_rps=300, duration_s=1.5, seed=7, slo_s=2.0)
        reports = eng.run_policies(reqs)
        best_single = max(
            reports["cpu"].throughput_rps, reports["pim"].throughput_rps
        )
        assert reports["hybrid"].throughput_rps >= best_single - 1e-9


class TestReport:
    def test_percentiles_nearest_rank(self):
        rep = ServingReport(policy="cpu")
        reqs = [Request(i, "BERT", 0.0) for i in range(10)]
        from repro.serving import CompletedRequest

        for i, r in enumerate(reqs):
            rep.completed.append(
                CompletedRequest(request=r, dispatch_s=0.0, finish_s=float(i + 1), batch=1)
            )
        rep.sim_end_s = 10.0
        assert rep.p50_s == 5.0
        assert rep.p99_s == 10.0
        assert rep.latency_percentile(100) == 10.0
        assert rep.throughput_rps == 1.0

    def test_percentile_validation(self):
        rep = ServingReport(policy="cpu")
        with pytest.raises(ValueError):
            rep.latency_percentile(0)
        with pytest.raises(ValueError):
            rep.latency_percentile(101)

    def test_summary_renders(self, eng):
        reqs = poisson_requests("DLRM", rate_rps=2000, duration_s=0.05, seed=4)
        rep = eng.run(reqs, "pim")
        s = rep.summary()
        assert "pim" in s and "p50" in s and "req/s" in s


class TestSloAdmitRegression:
    """The single-pass admission must reject exactly the same requests the
    original shrink-one-recompute-all (O(b^2)) loop rejected."""

    @staticmethod
    def _reference(batch, clock, service_for_size):
        """The pre-refactor quadratic admission loop, verbatim semantics."""
        b = list(batch)
        rejected = []
        service = 0.0
        while b:
            service = service_for_size(len(b))
            violators = [
                r
                for r in b
                if r.slo_s is not None and (clock - r.arrival_s) + service > r.slo_s
            ]
            if not violators:
                break
            worst = min(violators, key=lambda r: r.slo_s - (clock - r.arrival_s))
            rejected.append(worst)
            b = [r for r in b if r is not worst]
        if not b:
            service = 0.0
        return b, rejected, service

    def _assert_matches(self, batch, clock, service_for_size):
        ref_adm, ref_rej, ref_srv = self._reference(batch, clock, service_for_size)
        admitted, rejected, service = slo_admit(batch, clock, service_for_size)
        assert [id(r) for r in rejected] == [id(r) for r in ref_rej]
        assert [id(r) for r in admitted] == [id(r) for r in ref_adm]
        assert service == ref_srv

    def test_randomized_batches_match(self):
        rng = random.Random(1234)
        for trial in range(200):
            clock = rng.uniform(0.0, 5.0)
            size = rng.randint(1, 40)
            batch = []
            for i in range(size):
                arrival = clock - rng.uniform(0.0, 2.0)
                slo = None if rng.random() < 0.2 else rng.uniform(0.05, 3.0)
                batch.append(
                    Request(req_id=i, model="BERT", arrival_s=max(0.0, arrival), slo_s=slo)
                )
            per_req = rng.uniform(0.01, 0.5)
            base = rng.uniform(0.0, 0.5)
            self._assert_matches(batch, clock, lambda n: base + per_req * n)

    def test_headroom_ties_match(self):
        """Identical (arrival, slo) pairs: drop order must still agree."""
        batch = [Request(req_id=i, model="BERT", arrival_s=0.0, slo_s=0.3) for i in range(8)]
        self._assert_matches(batch, 1.0, lambda n: 0.05 * n)

    def test_no_slo_requests_never_rejected(self):
        batch = [Request(req_id=i, model="BERT", arrival_s=0.0) for i in range(4)]
        admitted, rejected, service = slo_admit(batch, 100.0, lambda n: 1.0 * n)
        assert admitted == batch and not rejected
        assert service == 4.0

    def test_all_rejected(self):
        batch = [Request(req_id=i, model="BERT", arrival_s=0.0, slo_s=0.01) for i in range(3)]
        admitted, rejected, service = slo_admit(batch, 5.0, lambda n: 1.0)
        assert not admitted and len(rejected) == 3
        assert service == 0.0

    def test_engine_runs_match_reference_end_to_end(self, eng):
        """Replaying an overloaded stream, every dispatched batch's reject
        set matches the quadratic reference (checked via total counts and
        identical reports across the refactor's seams)."""
        slo = 6 * eng.min_latency("BERT", "cpu")
        reqs = poisson_requests("BERT", rate_rps=400, duration_s=1.0, seed=21, slo_s=slo)
        rep = eng.run(reqs, "cpu")
        assert len(rep.completed) + len(rep.rejected) == len(reqs)
        assert rep.rejected  # the scenario actually exercises rejection
        assert max(c.latency_s for c in rep.completed) <= slo


class TestServingReportEdgeCases:
    def test_zero_completed_percentiles_and_means_are_nan(self):
        rep = ServingReport(policy="cpu")
        assert math.isnan(rep.p50_s)
        assert math.isnan(rep.p95_s)
        assert math.isnan(rep.p99_s)
        assert math.isnan(rep.latency_percentile(100))
        assert math.isnan(rep.mean_queue_s)
        assert math.isnan(rep.mean_service_s)
        assert math.isnan(rep.mean_batch)
        assert rep.offered == 0

    def test_zero_completed_summary_still_renders(self):
        rep = ServingReport(policy="cpu")
        assert "cpu" in rep.summary()

    def test_single_request_stream(self, eng):
        rep = eng.run([Request(0, "BERT", 0.5)], "pim")
        assert len(rep.completed) == 1
        c = rep.completed[0]
        assert rep.p50_s == rep.p95_s == rep.p99_s == c.latency_s
        assert rep.mean_queue_s == 0.0
        assert rep.mean_service_s == pytest.approx(c.service_s)
        assert rep.mean_batch == 1.0
        assert rep.sim_end_s == c.finish_s
        assert rep.throughput_rps == pytest.approx(1.0 / c.finish_s)

    def test_single_rejected_request(self, eng):
        floor = eng.min_latency("BERT", "pim")
        rep = eng.run([Request(0, "BERT", 0.0, slo_s=floor / 10)], "pim")
        assert not rep.completed and len(rep.rejected) == 1
        assert math.isnan(rep.p99_s)
        assert rep.offered == 1

    def test_merge_streams_ties_break_by_req_id(self):
        a = [Request(5, "BERT", 1.0), Request(1, "BERT", 0.0)]
        b = [Request(2, "DLRM", 1.0), Request(0, "DLRM", 1.0)]
        merged = merge_streams(a, b)
        assert [(r.arrival_s, r.req_id) for r in merged] == [
            (0.0, 1),
            (1.0, 0),
            (1.0, 2),
            (1.0, 5),
        ]

    def test_merged_tied_arrivals_form_one_batch(self, eng):
        """Simultaneous same-model arrivals dispatch as a single batch."""
        reqs = [Request(i, "BERT", 0.0) for i in range(3)]
        rep = eng.run(reqs, "cpu")
        assert [c.batch for c in rep.completed] == [3, 3, 3]


class TestStreamDeterminismRegression:
    """Satellite regression: stream generators and `merge_streams` must be
    reproducible — identical seeds give identical streams, and full
    (arrival, req_id) ties keep a stable, input-order merge."""

    def test_poisson_identical_seed_identical_stream(self):
        a = poisson_requests("BERT", rate_rps=250, duration_s=2.0, seed=17, slo_s=0.5)
        b = poisson_requests("BERT", rate_rps=250, duration_s=2.0, seed=17, slo_s=0.5)
        assert a == b  # frozen dataclasses: bit-for-bit equality
        c = poisson_requests("BERT", rate_rps=250, duration_s=2.0, seed=18, slo_s=0.5)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in c]

    def test_uniform_identical_args_identical_stream(self):
        a = uniform_requests("DLRM", rate_rps=100, duration_s=1.0, slo_s=0.1)
        b = uniform_requests("DLRM", rate_rps=100, duration_s=1.0, slo_s=0.1)
        assert a == b

    def test_merge_is_stable_for_full_ties(self):
        """Colliding (arrival_s, req_id) pairs — caller-chosen ids may
        collide across streams — must keep input stream order."""
        a = [Request(0, "BERT", 1.0), Request(1, "BERT", 1.0)]
        b = [Request(0, "DLRM", 1.0), Request(1, "DLRM", 1.0)]
        merged = merge_streams(a, b)
        assert [(r.req_id, r.model) for r in merged] == [
            (0, "BERT"),
            (0, "DLRM"),
            (1, "BERT"),
            (1, "DLRM"),
        ]
        # and the merge itself is reproducible call to call
        assert merge_streams(a, b) == merge_streams(a, b)

    def test_merge_of_seeded_streams_is_reproducible(self):
        def build():
            return merge_streams(
                poisson_requests("BERT", 300, 1.0, seed=3, start_id=0),
                poisson_requests("DLRM", 100, 1.0, seed=4, start_id=1_000_000),
            )

        assert build() == build()


class TestWindowPercentiles:
    """Satellite coverage: the shared windowed-percentile helpers (reused
    by ClusterReport and AutoscaleReport) on their edge cases."""

    def _completed(self, finishes):
        from repro.serving import CompletedRequest

        rep = ServingReport(policy="cpu")
        for i, f in enumerate(finishes):
            rep.completed.append(
                CompletedRequest(
                    request=Request(i, "BERT", 0.0),
                    dispatch_s=0.0,
                    finish_s=f,
                    batch=1,
                )
            )
        return rep

    def test_empty_window_is_nan(self):
        rep = self._completed([1.0, 2.0, 3.0])
        assert math.isnan(rep.window_percentile(99, 10.0, 20.0))
        # inverted and zero-width windows are empty too
        assert math.isnan(rep.window_percentile(99, 2.0, 1.0))
        assert math.isnan(rep.window_percentile(99, 1.0, 1.0))

    def test_empty_report_window_is_nan(self):
        rep = ServingReport(policy="cpu")
        assert math.isnan(rep.window_percentile(50, 0.0, 100.0))

    def test_single_request_window(self):
        rep = self._completed([1.5])
        assert rep.window_percentile(1, 1.0, 2.0) == 1.5
        assert rep.window_percentile(99, 1.0, 2.0) == 1.5
        assert rep.window_percentile(100, 1.0, 2.0) == 1.5

    def test_window_bounds_are_half_open(self):
        rep = self._completed([1.0, 2.0])
        assert rep.window_percentile(99, 1.0, 2.0) == 1.0  # [1, 2): keeps 1.0
        assert rep.window_percentile(99, 1.0, 2.0 + 1e-9) == 2.0

    def test_all_rejected_window_is_nan(self, eng):
        """A window in which everything was shed has no latency signal."""
        floor = eng.min_latency("BERT", "pim")
        reqs = [Request(i, "BERT", 0.0, slo_s=floor / 10) for i in range(4)]
        rep = eng.run(reqs, "pim")
        assert len(rep.rejected) == 4
        assert math.isnan(rep.window_percentile(99, 0.0, 100.0))

    def test_window_matches_full_percentile_when_covering(self, eng):
        reqs = poisson_requests("BERT", 150, 1.0, seed=9)
        rep = eng.run(reqs, "hybrid")
        assert rep.window_percentile(99, 0.0, rep.sim_end_s + 1.0) == rep.p99_s

    def test_percentile_validation_applies_to_windows(self):
        rep = self._completed([1.0])
        with pytest.raises(ValueError):
            rep.window_percentile(0, 0.0, 1.0)
        with pytest.raises(ValueError):
            rep.window_percentile(101, 0.0, 1.0)
