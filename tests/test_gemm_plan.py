"""Tests for GEMM shapes, padding, and the Algorithm-1 planner."""

import math

import pytest

from repro.core.config import StepStoneConfig
from repro.core.gemm import GemmShape, plan_gemm
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestShape:
    def test_flops(self):
        assert GemmShape(2, 3, 4).flops == 48.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            GemmShape(0, 3, 4)

    def test_padding_rounds_up(self):
        p = GemmShape(100, 1000, 5).padded()
        assert (p.m, p.k, p.n) == (128, 1024, 5)

    def test_padding_min_k_one_block(self):
        p = GemmShape(128, 1, 1).padded()
        assert p.k == 16  # one 64 B cache block of fp32

    def test_pow2_unchanged(self):
        p = GemmShape(1024, 4096, 4).padded()
        assert (p.m, p.k) == (1024, 4096)


class TestPlanner:
    @pytest.mark.parametrize("level", list(PimLevel))
    def test_plan_basic_invariants(self, cfg, sky, level):
        plan = plan_gemm(cfg, sky, GemmShape(1024, 4096, 4), level)
        assert plan.n_active_pims == cfg.addressable_units(level)
        assert plan.n_rparts == math.ceil(plan.shape.m / plan.rpart_rows)
        # Work items cover the whole matrix.
        total = sum(
            w.n_cols * w.n_rows for items in plan.work.values() for w in items
        )
        assert total == plan.analysis.total_blocks

    @pytest.mark.parametrize("level", list(PimLevel))
    @pytest.mark.parametrize("n", [1, 4, 16, 32])
    def test_tiles_fit_scratchpad(self, cfg, sky, level, n):
        plan = plan_gemm(cfg, sky, GemmShape(1024, 4096, n), level)
        u = plan.unit
        if plan.direct_scratchpad:
            return
        c_bytes = plan.rpart_rows * n * 4
        b_bytes = plan.cpart_blocks * u.words_per_block_per_slice * n * 4
        assert c_bytes + b_bytes <= u.scratchpad_bytes

    def test_localization_volume_formula(self, cfg, sky):
        """Total replicated B is n_groups * K * N words (Fig. 5 flow)."""
        plan = plan_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        expected = plan.analysis.n_groups * plan.shape.k * plan.shape.n
        assert plan.localization_write_words == expected

    def test_reduction_scales_with_addressable_units(self, cfg, sky):
        bg = plan_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        dv = plan_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.DEVICE)
        ch = plan_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.CHANNEL)
        assert bg.n_partials == 16
        assert dv.n_partials == 4
        assert ch.n_partials == 2
        assert bg.reduction_read_words > dv.reduction_read_words > ch.reduction_read_words

    def test_kernel_launches_echo_exceeds_stepstone(self, cfg, sky):
        plan = plan_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        assert plan.kernel_launches("echo") > 20 * plan.kernel_launches("stepstone")

    def test_kernel_launches_unknown_flow(self, cfg, sky):
        plan = plan_gemm(cfg, sky, GemmShape(256, 1024, 4), PimLevel.DEVICE)
        with pytest.raises(ValueError):
            plan.kernel_launches("bogus")

    def test_oversized_batch_rejected(self, cfg, sky):
        with pytest.raises(ValueError, match="scratchpad"):
            plan_gemm(cfg, sky, GemmShape(1024, 4096, 4096), PimLevel.BANKGROUP)

    def test_direct_scratchpad_small_matrix(self, cfg, sky):
        """§III-E: small B and C live in the scratchpad, skipping staging."""
        plan = plan_gemm(cfg, sky, GemmShape(128, 256, 1), PimLevel.CHANNEL)
        assert plan.direct_scratchpad
        assert plan.fill_b_blocks(plan.max_blocks_pim) == 0.0
        assert plan.fill_c_blocks(plan.max_blocks_pim) == 0.0

    def test_pinning_halves_pims_and_groups(self, cfg, sky):
        full = plan_gemm(cfg, sky, GemmShape(1024, 4096, 16), PimLevel.BANKGROUP)
        half = plan_gemm(
            cfg, sky, GemmShape(1024, 4096, 16), PimLevel.BANKGROUP, pinned_id_bits=1
        )
        assert half.n_active_pims * 2 == full.n_active_pims
        assert half.localization_write_words < full.localization_write_words
        assert half.reduction_read_words * 2 == full.reduction_read_words

    def test_relaxed_unit_reduces_rparts(self, cfg, sky):
        base_unit = cfg.unit(PimLevel.BANKGROUP)
        plan = plan_gemm(cfg, sky, GemmShape(1024, 4096, 32), PimLevel.BANKGROUP)
        relaxed = plan_gemm(
            cfg,
            sky,
            GemmShape(1024, 4096, 32),
            PimLevel.BANKGROUP,
            unit=base_unit.relaxed(),
        )
        assert relaxed.n_rparts < plan.n_rparts

    def test_gemm_blocks_balanced(self, cfg, sky):
        plan = plan_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        blocks = list(plan.gemm_blocks_per_pim.values())
        assert max(blocks) == min(blocks)
