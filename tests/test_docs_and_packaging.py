"""Repository hygiene: doctests, console entry point, docs cross-refs."""

import doctest
import inspect
import pathlib
import re
import subprocess
import sys


ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestDoctests:
    def test_utils_bits_doctests(self):
        import repro.utils.bits as m

        results = doctest.testmod(m)
        assert results.failed == 0
        assert results.attempted >= 2

    def test_system_docstring_example(self):
        """The quickstart in the system facade docstring is runnable."""
        from repro import PimLevel, StepStoneSystem

        sys_ = StepStoneSystem.default()
        r = sys_.run_gemm(m=1024, k=4096, n=4, level=PimLevel.BANKGROUP)
        assert r.breakdown.total > 0


class TestCli:
    def test_module_entry_point(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "fig14", "--fast"],
            capture_output=True,
            text=True,
            cwd=ROOT,
            timeout=120,
        )
        assert out.returncode == 0
        assert "fig14" in out.stdout

    def test_chart_flag(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "fig09", "--fast", "--chart"],
            capture_output=True,
            text=True,
            cwd=ROOT,
            timeout=120,
        )
        assert out.returncode == 0
        assert "legend" not in out.stderr
        assert "|" in out.stdout  # a rendered bar


class TestDocs:
    def test_readme_references_exist(self):
        readme = (ROOT / "README.md").read_text()
        for ref in ("DESIGN.md", "EXPERIMENTS.md", "examples/"):
            assert ref in readme
        for path in ("DESIGN.md", "EXPERIMENTS.md"):
            assert (ROOT / path).exists()

    def test_design_covers_every_experiment(self):
        from repro.experiments.registry import EXPERIMENTS

        design = (ROOT / "DESIGN.md").read_text()
        for eid in EXPERIMENTS:
            if eid.startswith("fig") or eid.startswith("tab"):
                assert eid in design, f"{eid} missing from DESIGN.md index"

    def test_experiments_md_covers_artifacts(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artifact in ("Fig. 6", "Fig. 8", "Fig. 9", "Fig. 13", "Fig. 14", "Table I"):
            assert artifact in text

    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for line in readme.splitlines():
            if line.startswith("| `") and line.endswith("|") and ".py" in line:
                name = line.split("`")[1]
                assert (ROOT / "examples" / name).exists(), name

    def test_readme_fleet_quickstart_snippet(self):
        """The "choosing a fleet" quickstart exists, is a bash block, and
        points at a registered experiment (CI executes it verbatim)."""
        from repro.experiments.registry import EXPERIMENTS

        readme = (ROOT / "README.md").read_text()
        m = re.search(r"## Choosing a fleet.*?```bash\n(.*?)```", readme, re.S)
        assert m, "README is missing the 'Choosing a fleet' quickstart"
        snippet = m.group(1)
        assert "serve-hetero" in snippet
        assert "serve-hetero" in EXPERIMENTS

    def test_readme_genai_quickstart_snippet(self):
        """The generative-serving quickstart exists, is a bash block, and
        points at a registered experiment (CI executes it verbatim)."""
        from repro.experiments.registry import EXPERIMENTS

        readme = (ROOT / "README.md").read_text()
        m = re.search(r"## Generative LLM serving.*?```bash\n(.*?)```", readme, re.S)
        assert m, "README is missing the generative-serving quickstart"
        snippet = m.group(1)
        assert "serve-genai" in snippet
        assert "serve-genai" in EXPERIMENTS

    def test_readme_observe_quickstart_snippet(self):
        """The tracing quickstart exists, is a bash block, and points at
        the registered serve-observe experiment (CI executes it)."""
        from repro.experiments.registry import EXPERIMENTS

        readme = (ROOT / "README.md").read_text()
        m = re.search(r"## Tracing a run.*?```bash\n(.*?)```", readme, re.S)
        assert m, "README is missing the 'Tracing a run' quickstart"
        snippet = m.group(1)
        assert "serve-observe" in snippet
        assert "--trace-out" in snippet
        assert "serve-observe" in EXPERIMENTS

    def test_readme_instant_capacity_snippet_runs(self):
        """The "instant capacity estimate" quickstart is *executed*
        verbatim — the README's analytic-planner code must keep
        running (and keep asserting its own conservatism claim)."""
        readme = (ROOT / "README.md").read_text()
        m = re.search(
            r"### Instant capacity estimate.*?```python\n(.*?)```",
            readme,
            re.S,
        )
        assert m, "README is missing the 'Instant capacity estimate' quickstart"
        snippet = m.group(1)
        assert 'mode="analytic"' in snippet
        exec(compile(snippet, "README.md::instant-capacity", "exec"), {})

    def test_cluster_autoscale_public_docstrings(self):
        """Every public ``__all__`` member of the fleet packages — and
        every public method/property it defines — documents itself (the
        docstring-audit gate for `repro.sim`, `repro.cluster`,
        `repro.autoscale`, `repro.genai`, and `repro.obs`)."""
        import repro.autoscale
        import repro.cluster
        import repro.genai
        import repro.obs
        import repro.sim

        missing = []
        for pkg in (repro.sim, repro.cluster, repro.autoscale, repro.genai, repro.obs):
            for name in pkg.__all__:
                obj = getattr(pkg, name)
                if not (isinstance(obj, type) or callable(obj)):
                    continue  # plain constants (tuples, strings)
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{pkg.__name__}.{name}")
                if not isinstance(obj, type):
                    continue
                for attr, member in vars(obj).items():
                    if attr.startswith("_"):
                        continue
                    if isinstance(member, (staticmethod, classmethod)):
                        member = member.__func__
                    if inspect.isfunction(member) or isinstance(member, property):
                        if not (member.__doc__ or "").strip():
                            missing.append(f"{pkg.__name__}.{name}.{attr}")
        assert not missing, f"undocumented public API: {sorted(set(missing))}"

    def test_every_public_module_has_docstring(self):
        import importlib

        for mod in (
            "repro.mapping.xor_mapping",
            "repro.mapping.analysis",
            "repro.dram.controller",
            "repro.dram.stream",
            "repro.core.agen",
            "repro.core.gemm",
            "repro.core.executor",
            "repro.core.fusion",
            "repro.core.functional",
            "repro.core.validation",
            "repro.baselines.cpu",
            "repro.models.inference",
            "repro.energy.model",
            "repro.colocation.contention",
            "repro.osmem.allocator",
            "repro.serving.scheduler",
            "repro.serving.nodespec",
            "repro.cluster.planner",
            "repro.autoscale.hetero",
            "repro.reporting.charts",
            "repro.sim.kernel",
            "repro.sim.metrics",
            "repro.sim.failures",
            "repro.sim.stats",
            "repro.sim.sweep",
            "repro.genai.model",
            "repro.genai.workload",
            "repro.genai.kvcache",
            "repro.genai.schedulers",
            "repro.genai.engine",
            "repro.genai.report",
            "repro.obs.trace",
            "repro.obs.telemetry",
            "repro.obs.profile",
        ):
            m = importlib.import_module(mod)
            assert m.__doc__ and len(m.__doc__) > 40, mod
