"""Generative serving invariants: phases, KV budget, scheduler semantics.

The load-bearing guarantees of ``repro.genai``:

* continuous == static **request-for-request** when every output length
  is equal and batches close together (or ``max_batch=1``) — the anchor
  proving the two schedulers differ only in slot handover;
* the KV budget is never exceeded at any event time, even driven to
  saturation (queueing and preemption absorb the pressure, never
  overflow);
* seeded determinism: identical inputs, identical reports;
* ``record="streaming"`` matches ``record="full"`` on counts and TTFT
  exactly (percentiles sketched past the reservoir).
"""

import math
import random

import pytest

from repro.genai import (
    GPT2_XL,
    ContinuousBatcher,
    GenerativeEngine,
    GenModelConfig,
    GenRequest,
    KVCacheBudget,
    StaticBatcher,
    gen_requests,
    trace_gen_requests,
)
from repro.autoscale.traces import DiurnalTrace
from repro.serving.engine import OnlineServingEngine
from repro.serving.nodespec import GPU_NODE, STEPSTONE_NODE, NodeSpec
from repro.sim.stats import RecordingModeError


@pytest.fixture(scope="module")
def shared_engine():
    """One OnlineServingEngine so every test shares the latency memo."""
    return OnlineServingEngine()


def make_engine(shared_engine, **kw):
    kw.setdefault("engine", shared_engine)
    kw.setdefault("max_batch", 8)
    return GenerativeEngine(**kw)


def completion_keys(report):
    """Request-for-request identity tuples, sorted by request id."""
    return sorted(
        (c.request.req_id, c.ttft_s, c.finish_s, c.tokens_out, c.preemptions)
        for c in report.completions
    )


class TestWorkload:
    def test_gen_requests_seeded_deterministic(self):
        a = gen_requests(2.0, 30.0, seed=9)
        b = gen_requests(2.0, 30.0, seed=9)
        assert a == b
        c = gen_requests(2.0, 30.0, seed=10)
        assert a != c

    def test_lengths_respect_ranges(self):
        reqs = gen_requests(5.0, 20.0, prompt_range=(4, 6), output_range=(2, 3), seed=1)
        assert reqs
        assert all(4 <= r.prompt_tokens <= 6 for r in reqs)
        assert all(2 <= r.max_new_tokens <= 3 for r in reqs)

    def test_trace_arrivals_match_autoscale_thinning(self):
        trace = DiurnalTrace(trough_rps=1.0, peak_rps=3.0, period_s=60.0)
        a = trace_gen_requests(trace, 60.0, seed=4)
        b = trace_gen_requests(trace, 60.0, seed=4)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert all(r.arrival_s < 60.0 for r in a)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            GenRequest(0, -1.0, 4, 4)
        with pytest.raises(ValueError):
            GenRequest(0, 0.0, 0, 4)
        with pytest.raises(ValueError):
            GenRequest(0, 0.0, 4, 0)


class TestModelConfig:
    def test_kv_bytes_per_token_formula(self):
        assert GPT2_XL.kv_bytes_per_token == 2 * 48 * 1600 * 4

    def test_step_spec_prices_at_activation_n(self, shared_engine):
        """batch_latency(step, policy, n) runs the decoder GEMMs at N=n."""
        eng = make_engine(shared_engine)
        assert eng.gemm_seconds(1) > 0
        # More tokens never serve faster on StepStone (chunked GEMV).
        assert eng.gemm_seconds(64) > eng.gemm_seconds(1)

    def test_weights_include_lm_head(self):
        step = GPT2_XL.step_spec().total_weight_bytes
        assert GPT2_XL.weight_bytes == step + 50257 * 1600 * 4

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            GenModelConfig("bad", 1600, 6400, 48, 7, 100)  # heads don't divide


class TestKVCacheBudget:
    def test_for_node_nets_out_weights(self):
        budget = KVCacheBudget.for_node(STEPSTONE_NODE, GPT2_XL)
        expected = int(
            (STEPSTONE_NODE.memory_bytes - GPT2_XL.weight_bytes)
            // GPT2_XL.kv_bytes_per_token
        )
        assert budget.capacity_tokens == expected

    def test_gpu_holds_far_fewer_tokens(self):
        """12 GB of device memory vs a 128 GB socket: order-of-magnitude
        fewer concurrent cached tokens — capacity bounds concurrency."""
        ss = KVCacheBudget.for_node(STEPSTONE_NODE, GPT2_XL)
        gpu = KVCacheBudget.for_node(GPU_NODE, GPT2_XL)
        assert gpu.capacity_tokens * 10 < ss.capacity_tokens

    def test_too_small_node_raises(self):
        tiny = NodeSpec(backend="stepstone", name="tiny", memory_bytes=1e9)
        with pytest.raises(ValueError):
            KVCacheBudget.for_node(tiny, GPT2_XL)

    def test_reserve_release_accounting(self):
        b = KVCacheBudget(10)
        b.reserve(6)
        assert b.fits(4) and not b.fits(5)
        with pytest.raises(RuntimeError):
            b.reserve(5)
        b.release(6)
        assert b.used_tokens == 0 and b.high_water_tokens == 6
        with pytest.raises(RuntimeError):
            b.release(1)


class TestSchedulerEquivalence:
    def test_continuous_equals_static_on_equal_lengths(self, shared_engine):
        """Closed batches + equal output lengths: request-for-request
        identical.  Slots only ever free all-at-once, so continuous
        batching degenerates to static exactly."""
        rng = random.Random(5)
        reqs = [GenRequest(i, 0.0, rng.randint(8, 40), 24) for i in range(20)]
        reports = [
            make_engine(shared_engine, scheduler=s).run(reqs)
            for s in (StaticBatcher(), ContinuousBatcher())
        ]
        assert completion_keys(reports[0]) == completion_keys(reports[1])
        assert reports[0].tokens_out == reports[1].tokens_out
        assert reports[0].sim_end_s == reports[1].sim_end_s

    def test_batch_of_one_serializes_identically(self, shared_engine):
        """max_batch=1: no slot to join mid-flight, so the schedulers
        coincide even on staggered arrivals and mixed lengths."""
        rng = random.Random(6)
        reqs = [
            GenRequest(i, i * 0.9, rng.randint(8, 24), rng.randint(4, 16))
            for i in range(8)
        ]
        a = make_engine(shared_engine, scheduler=StaticBatcher(), max_batch=1).run(reqs)
        b = make_engine(shared_engine, scheduler=ContinuousBatcher(), max_batch=1).run(reqs)
        assert completion_keys(a) == completion_keys(b)

    def test_continuous_wins_on_mixed_lengths(self, shared_engine):
        """The headline: mixed output lengths + open arrivals — continuous
        strictly better mean TTFT and at least static's goodput."""
        reqs = gen_requests(0.6, 70.0, prompt_range=(16, 32), output_range=(8, 96), seed=7)
        static = make_engine(shared_engine, scheduler=StaticBatcher()).run(reqs)
        cont = make_engine(shared_engine, scheduler=ContinuousBatcher()).run(reqs)
        assert cont.served == static.served == len(reqs)
        assert cont.mean_ttft_s < static.mean_ttft_s
        assert cont.ttft_percentile(95) < static.ttft_percentile(95)
        assert cont.tokens_per_s >= static.tokens_per_s


class TestKVPressure:
    def test_budget_never_exceeded_at_saturation(self, shared_engine):
        """Drive the budget to the wall: queueing and preemption absorb
        the pressure; the high-water mark touches capacity but never
        crosses it, and every sequence still completes."""
        reqs = [GenRequest(i, 0.05 * i, 32, 32) for i in range(20)]
        eng = make_engine(shared_engine, kv_capacity_tokens=200)
        rep = eng.run(reqs)
        assert rep.kv_high_water_tokens <= rep.kv_capacity_tokens
        assert rep.peak_waiting > 0  # admissions queued at the wall
        assert rep.served == len(reqs)  # queueing, not loss
        assert rep.rejected_count == 0

    def test_preemption_requeues_and_completes(self, shared_engine):
        reqs = [GenRequest(i, 0.05 * i, 32, 32) for i in range(20)]
        rep = make_engine(shared_engine, kv_capacity_tokens=200).run(reqs)
        assert rep.preemptions > 0
        preempted = [c for c in rep.completions if c.preemptions > 0]
        assert preempted
        # Recompute semantics: a preempted sequence still emits every token.
        assert all(c.tokens_out == c.request.max_new_tokens for c in preempted)

    def test_capacity_bounds_concurrency(self, shared_engine):
        """A budget of ~2 sequences' footprints never holds 3: peak usage
        stays within what two admitted sequences can reserve."""
        reqs = [GenRequest(i, 0.0, 16, 8) for i in range(6)]
        rep = make_engine(shared_engine, kv_capacity_tokens=50).run(reqs)
        # One sequence peaks at 16+8=24 tokens; three would need >= 72.
        assert rep.kv_high_water_tokens <= 50
        assert rep.served == 6

    def test_impossible_request_rejected_at_arrival(self, shared_engine):
        eng = make_engine(shared_engine, kv_capacity_tokens=100)
        rep = eng.run([GenRequest(0, 0.0, 80, 40), GenRequest(1, 0.0, 16, 8)])
        assert rep.rejected_count == 1
        assert rep.served == 1

    def test_lone_sequence_always_progresses(self, shared_engine):
        """The no-livelock anchor: a sequence whose worst-case footprint
        exactly fills the budget runs to completion alone."""
        rep = make_engine(shared_engine, kv_capacity_tokens=24).run(
            [GenRequest(0, 0.0, 16, 8)]
        )
        assert rep.served == 1
        assert rep.kv_high_water_tokens == 24


class TestDeterminismAndRecording:
    def test_identical_runs_identical_reports(self, shared_engine):
        reqs = gen_requests(0.5, 60.0, seed=11)
        a = make_engine(shared_engine).run(reqs)
        b = make_engine(shared_engine).run(reqs)
        assert (a.served, a.tokens_out, a.sim_end_s) == (b.served, b.tokens_out, b.sim_end_s)
        assert a.mean_ttft_s == b.mean_ttft_s
        assert a.mean_itl_s == b.mean_itl_s
        assert completion_keys(a) == completion_keys(b)

    def test_streaming_matches_full_exactly(self, shared_engine):
        """Counts, means, and (under the exact reservoir) percentiles are
        bit-identical across recording modes — same accumulation order."""
        reqs = gen_requests(0.5, 60.0, seed=11)
        full = make_engine(shared_engine).run(reqs)
        stream = make_engine(shared_engine).run(reqs, record="streaming")
        assert stream.served == full.served
        assert stream.tokens_out == full.tokens_out
        assert stream.rejected_count == full.rejected_count
        assert stream.mean_ttft_s == full.mean_ttft_s
        assert stream.mean_itl_s == full.mean_itl_s
        assert stream.ttft_percentile(95) == full.ttft_percentile(95)
        assert stream.sim_end_s == full.sim_end_s

    def test_streaming_raises_on_per_sequence_access(self, shared_engine):
        rep = make_engine(shared_engine).run(gen_requests(1.0, 10.0, seed=2), record="streaming")
        with pytest.raises(RecordingModeError):
            rep.completions

    def test_unknown_record_mode_rejected(self, shared_engine):
        with pytest.raises(ValueError):
            make_engine(shared_engine).run([], record="sometimes")


class TestPhaseAccounting:
    def test_every_emitted_token_counted(self, shared_engine):
        reqs = gen_requests(0.8, 40.0, seed=3)
        rep = make_engine(shared_engine).run(reqs)
        assert rep.tokens_out == sum(r.max_new_tokens for r in reqs)

    def test_ttft_is_prefill_completion(self, shared_engine):
        """A lone request's TTFT is exactly the prefill service time."""
        r = GenRequest(0, 0.0, 32, 4)
        eng = make_engine(shared_engine)
        rep = eng.run([r])
        c = rep.completions[0]
        from repro.genai.engine import SeqState

        assert c.ttft_s == pytest.approx(eng.prefill_seconds([SeqState(r)]))

    def test_single_token_sequence_finishes_at_prefill(self, shared_engine):
        rep = make_engine(shared_engine).run([GenRequest(0, 0.0, 16, 1)])
        c = rep.completions[0]
        assert c.tokens_out == 1
        assert c.finish_s == c.first_token_s
        assert rep.itl_samples == 0

    def test_itl_sample_per_token_after_first(self, shared_engine):
        """Without preemption every token past a sequence's first emits
        exactly one ITL gap."""
        reqs = [GenRequest(i, 0.0, 16, 12) for i in range(4)]
        rep = make_engine(shared_engine).run(reqs)
        assert rep.preemptions == 0
        assert rep.itl_samples == rep.tokens_out - rep.served

    def test_decode_step_grows_with_context(self, shared_engine):
        """Later tokens cost more: attention walks a longer cached context."""
        eng = make_engine(shared_engine)
        from repro.genai.engine import SeqState

        young = SeqState(GenRequest(0, 0.0, 16, 64))
        old = SeqState(GenRequest(1, 0.0, 16, 64))
        old.emitted = 48
        assert eng.decode_seconds(1, [old]) > eng.decode_seconds(1, [young])

    def test_stepstone_beats_gpu_at_batch_one_decode(self, shared_engine):
        """The paper's thesis at the per-event level: batch-1 decode is
        bandwidth-bound GEMV, where the 12 TF GPU roofline collapses."""
        ss = make_engine(shared_engine)
        gpu = make_engine(shared_engine, spec=GPU_NODE)
        assert ss.gemm_seconds(1) * 10 < gpu.gemm_seconds(1)
