"""Tests for the batch-serving layer (§V-A/V-B policies)."""

import pytest

from repro.serving.scheduler import BatchServer


@pytest.fixture(scope="module")
def srv():
    return BatchServer()


class TestPrimitive:
    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            BatchServer(max_pim_batch=0)

    def test_pim_latency_splits(self, srv):
        t32 = srv.pim_latency(1024, 4096, 32)
        t64 = srv.pim_latency(1024, 4096, 64)
        assert t64 == pytest.approx(2 * t32)

    def test_remainder_chunk(self, srv):
        t40 = srv.pim_latency(1024, 4096, 40)
        t32 = srv.pim_latency(1024, 4096, 32)
        assert t40 > t32
        assert t40 < 2 * t32  # the 8-sample tail is cheaper than a full chunk

    def test_serve_prefers_pim_small_batch(self, srv):
        p = srv.serve(1024, 4096, 4)
        assert p.backend == "pim"

    def test_serve_prefers_cpu_huge_batch(self, srv):
        p = srv.serve(1024, 4096, 2048)
        assert p.backend == "cpu"


class TestClaims:
    def test_break_even_past_saturation(self, srv):
        """§V-B: splitting keeps PIM ahead well past batch 32."""
        be = srv.break_even_batch(1024, 4096, n_max=1024)
        assert be >= 64
        # And the crossover exists: the CPU eventually wins.
        assert be < 1024

    def test_throughput_under_cpu_batch1_latency(self, srv):
        constraint = srv.cpu_latency(1024, 4096, 1)
        p = srv.throughput_under_latency(1024, 4096, constraint)
        assert p.backend == "pim"
        assert p.throughput > 20 * (1.0 / constraint)  # the §V-A 77x family

    def test_impossible_constraint(self, srv):
        with pytest.raises(ValueError):
            srv.throughput_under_latency(1024, 4096, 1e-9)


class TestHybrid:
    def test_hybrid_no_worse_than_pim_only(self, srv):
        n = 512
        pim_only = srv.pim_latency(1024, 4096, n)
        h = srv.hybrid_split(1024, 4096, n)
        assert h.latency_s <= pim_only
        assert h.total == n

    def test_hybrid_uses_both_for_large_batches(self, srv):
        h = srv.hybrid_split(1024, 4096, 512)
        assert h.cpu_batch > 0 and h.pim_batch > 0

    def test_hybrid_small_batch_stays_on_pim(self, srv):
        h = srv.hybrid_split(1024, 4096, 16)
        assert h.cpu_batch == 0

    def test_invalid_batch(self, srv):
        with pytest.raises(ValueError):
            srv.hybrid_split(1024, 4096, 0)

    def test_chunk_cache_reused(self):
        srv = BatchServer()
        srv.pim_latency(1024, 4096, 96)
        n1 = len(srv._chunk_cache)
        srv.pim_latency(1024, 4096, 960)
        assert len(srv._chunk_cache) == n1
