"""Tests for the batch-serving layer (§V-A/V-B policies)."""

import pytest

from repro.serving.scheduler import BatchServer


@pytest.fixture(scope="module")
def srv():
    return BatchServer()


class TestPrimitive:
    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            BatchServer(max_pim_batch=0)

    def test_pim_latency_splits(self, srv):
        t32 = srv.pim_latency(1024, 4096, 32)
        t64 = srv.pim_latency(1024, 4096, 64)
        assert t64 == pytest.approx(2 * t32)

    def test_remainder_chunk(self, srv):
        t40 = srv.pim_latency(1024, 4096, 40)
        t32 = srv.pim_latency(1024, 4096, 32)
        assert t40 > t32
        assert t40 < 2 * t32  # the 8-sample tail is cheaper than a full chunk

    def test_serve_prefers_pim_small_batch(self, srv):
        p = srv.serve(1024, 4096, 4)
        assert p.backend == "pim"

    def test_serve_prefers_cpu_huge_batch(self, srv):
        p = srv.serve(1024, 4096, 2048)
        assert p.backend == "cpu"


class TestClaims:
    def test_break_even_past_saturation(self, srv):
        """§V-B: splitting keeps PIM ahead well past batch 32."""
        be = srv.break_even_batch(1024, 4096, n_max=1024)
        assert be >= 64
        # And the crossover exists: the CPU eventually wins.
        assert be < 1024

    def test_throughput_under_cpu_batch1_latency(self, srv):
        constraint = srv.cpu_latency(1024, 4096, 1)
        p = srv.throughput_under_latency(1024, 4096, constraint)
        assert p.backend == "pim"
        assert p.throughput > 20 * (1.0 / constraint)  # the §V-A 77x family

    def test_impossible_constraint(self, srv):
        with pytest.raises(ValueError):
            srv.throughput_under_latency(1024, 4096, 1e-9)

    def test_probes_chunk_multiples_not_just_pow2(self, srv):
        """Regression: a power-of-two-only sweep misses the best batch.

        With the constraint set to the CPU latency of batch 416 (a multiple
        of the 32-sample chunk), the pow2 sweep tops out at 256 (512 misses
        the constraint) while 416 amortizes the weight stream further and is
        strictly better.
        """
        m, k = 1024, 4096
        constraint = srv.cpu_latency(m, k, 416)
        pow2_best = 0.0
        n = 1
        while n <= 1024:
            for t in (srv.pim_latency(m, k, n), srv.cpu_latency(m, k, n)):
                if t <= constraint:
                    pow2_best = max(pow2_best, n / t)
            n *= 2
        p = srv.throughput_under_latency(m, k, constraint, n_max=1024)
        assert p.batch % srv.max_pim_batch == 0
        assert p.batch == 416
        assert p.throughput > pow2_best


class TestHybrid:
    def test_hybrid_no_worse_than_pim_only(self, srv):
        n = 512
        pim_only = srv.pim_latency(1024, 4096, n)
        h = srv.hybrid_split(1024, 4096, n)
        assert h.latency_s <= pim_only
        assert h.total == n

    def test_hybrid_uses_both_for_large_batches(self, srv):
        h = srv.hybrid_split(1024, 4096, 512)
        assert h.cpu_batch > 0 and h.pim_batch > 0

    def test_hybrid_small_batch_stays_on_pim(self, srv):
        h = srv.hybrid_split(1024, 4096, 16)
        assert h.cpu_batch == 0

    def test_invalid_batch(self, srv):
        with pytest.raises(ValueError):
            srv.hybrid_split(1024, 4096, 0)

    def test_hybrid_evaluates_all_cpu_endpoint(self):
        """Regression: for n=40 < one 64-sample chunk, the old chunk-quanta
        share grid was {0}, so the all-CPU split was never evaluated even
        when the CPU wins the whole batch outright."""
        srv = BatchServer(max_pim_batch=64)
        m, k, n = 256, 256, 40
        assert srv.cpu_latency(m, k, n) < srv.pim_latency(m, k, n)
        h = srv.hybrid_split(m, k, n)
        assert h.cpu_batch == n and h.pim_batch == 0
        assert h.latency_s == pytest.approx(srv.cpu_latency(m, k, n))

    def test_hybrid_never_worse_than_either_backend(self, srv):
        """With both endpoints in the share grid, the hybrid split is a
        relaxation of single-backend dispatch for any n, pow2 or not."""
        for m, k, n in [(256, 256, 40), (1024, 4096, 40), (1024, 4096, 100)]:
            h = srv.hybrid_split(m, k, n)
            assert h.total == n
            assert h.latency_s <= srv.cpu_latency(m, k, n)
            assert h.latency_s <= srv.pim_latency(m, k, n)

    def test_hybrid_probes_remainder_shares(self, srv):
        """CPU shares that leave the PIM side an exact chunk multiple are in
        the grid: for n=40 the winning split keeps 8 samples off the PIMs."""
        h = srv.hybrid_split(256, 256, 40)
        assert h.cpu_batch in (32, 8, 40)  # quanta, remainder, or endpoint
        assert h.pim_batch + h.cpu_batch == 40

    def test_chunk_cache_reused(self):
        srv = BatchServer()
        srv.pim_latency(1024, 4096, 96)
        n1 = len(srv._chunk_cache)
        srv.pim_latency(1024, 4096, 960)
        assert len(srv._chunk_cache) == n1
