"""Tests for the DDR4 timing set, bank state machines, and controller."""

import pytest

from repro.dram.bank import Bank, RankState
from repro.dram.commands import BankCoord, CommandType, Request
from repro.dram.controller import ChannelController
from repro.dram.timing import DDR4Timing, DDR4_2400R


class TestTiming:
    def test_table2_values(self):
        t = DDR4_2400R
        assert (t.tBL, t.tCCDS, t.tCCDL) == (4, 4, 6)
        assert (t.tCL, t.tRCD, t.tRP, t.tCWL) == (16, 16, 16, 12)
        assert (t.tRAS, t.tRC, t.tRTP) == (39, 55, 9)
        assert (t.tWTRS, t.tWTRL, t.tWR) == (3, 9, 18)
        assert (t.tRRDS, t.tRRDL, t.tFAW) == (4, 6, 26)

    def test_derived(self):
        t = DDR4_2400R
        assert t.row_miss_penalty == 32
        assert t.peak_channel_bytes_per_cycle == 16.0
        assert abs(t.peak_channel_gbps - 19.2) < 0.01
        assert t.cas_to_cas(True) == 6
        assert t.cas_to_cas(False) == 4
        assert t.cas_to_cas(True, same_rank=False) == 6  # tBL + tRTRS

    def test_validation(self):
        with pytest.raises(ValueError):
            DDR4Timing(tCCDL=2)  # below tCCDS
        with pytest.raises(ValueError):
            DDR4Timing(tCL=0)

    def test_scaled(self):
        t = DDR4_2400R.scaled(tCCDL=8)
        assert t.tCCDL == 8
        assert t.tCCDS == DDR4_2400R.tCCDS


class TestBank:
    def test_activate_then_read(self):
        b = Bank(DDR4_2400R)
        assert b.can_activate(0)
        b.activate(0, row=7)
        assert not b.can_column(0, 7)
        assert b.can_column(DDR4_2400R.tRCD, 7)
        assert not b.can_column(DDR4_2400R.tRCD, 8)

    def test_ras_gates_precharge(self):
        b = Bank(DDR4_2400R)
        b.activate(0, 1)
        assert not b.can_precharge(10)
        assert b.can_precharge(DDR4_2400R.tRAS)

    def test_trc_gates_next_activate(self):
        b = Bank(DDR4_2400R)
        b.activate(0, 1)
        b.precharge(DDR4_2400R.tRAS)
        ready = max(DDR4_2400R.tRC, DDR4_2400R.tRAS + DDR4_2400R.tRP)
        assert not b.can_activate(ready - 1)
        assert b.can_activate(ready)

    def test_illegal_transitions_raise(self):
        b = Bank(DDR4_2400R)
        with pytest.raises(RuntimeError):
            b.precharge(0)
        with pytest.raises(RuntimeError):
            b.column_access(0, is_write=False)

    def test_write_recovery(self):
        b = Bank(DDR4_2400R)
        b.activate(0, 1)
        t = DDR4_2400R
        b.column_access(t.tRCD, is_write=True)
        earliest = t.tRCD + t.tCWL + t.tBL + t.tWR
        assert not b.can_precharge(earliest - 1)
        assert b.can_precharge(earliest)


class TestRankState:
    def test_faw_limits_fifth_act(self):
        r = RankState(DDR4_2400R)
        times = [0, 7, 14, 21]
        for i, c in enumerate(times):
            r.record_act(c, bankgroup=i % 4)
        # Fifth ACT must wait for the tFAW window from the first.
        assert r.act_ready_cycle(0) >= times[0] + DDR4_2400R.tFAW

    def test_rrd_spacing(self):
        r = RankState(DDR4_2400R)
        r.record_act(0, bankgroup=0)
        assert r.act_ready_cycle(0) == DDR4_2400R.tRRDL
        assert r.act_ready_cycle(1) == DDR4_2400R.tRRDS


def _seq_requests(n, coord, row_of, arrival=0):
    return [
        Request(arrival=arrival, coord=coord, row=row_of(i), column=i % 128, request_id=i)
        for i in range(n)
    ]


class TestController:
    def test_row_hit_stream_cadence(self):
        """Back-to-back same-row reads issue at tCCD_L in one bank group."""
        ctl = ChannelController(refresh=False)
        reqs = _seq_requests(64, BankCoord(0, 0, 0), lambda i: 5)
        stats = ctl.run(reqs)
        assert stats.activates == 1
        assert stats.row_hits == 63
        issue_span = stats.total_cycles - (DDR4_2400R.tCL + DDR4_2400R.tBL)
        # 63 gaps of tCCD_L plus the initial ACT+tRCD.
        expected = DDR4_2400R.tRCD + 63 * DDR4_2400R.tCCDL
        assert abs(issue_span - expected) <= 2

    def test_bankgroup_interleave_uses_ccds(self):
        ctl = ChannelController(refresh=False)
        reqs = []
        for i in range(64):
            reqs.append(
                Request(arrival=0, coord=BankCoord(0, i % 4, 0), row=1, column=i, request_id=i)
            )
        stats = ctl.run(reqs)
        span_interleaved = stats.total_cycles
        ctl2 = ChannelController(refresh=False)
        stats2 = ctl2.run(_seq_requests(64, BankCoord(0, 0, 0), lambda i: 1))
        # Interleaving across bank groups must be faster than same-BG.
        assert span_interleaved < stats2.total_cycles

    def test_row_conflicts_cost_more(self):
        ctl = ChannelController(refresh=False)
        hits = ctl.run(_seq_requests(32, BankCoord(0, 0, 0), lambda i: 0))
        ctl2 = ChannelController(refresh=False)
        conflicts = ctl2.run(_seq_requests(32, BankCoord(0, 0, 0), lambda i: i))
        assert conflicts.total_cycles > hits.total_cycles * 2
        assert conflicts.activates == 32

    def test_all_requests_complete(self):
        ctl = ChannelController(refresh=False)
        reqs = _seq_requests(100, BankCoord(1, 2, 3), lambda i: i // 10)
        ctl.run(reqs)
        assert all(r.done for r in reqs)
        # Data returns in issue order for an in-order same-bank stream.
        comps = [r.completion for r in sorted(reqs, key=lambda r: r.request_id)]
        assert comps == sorted(comps)

    def test_refresh_adds_time(self):
        n = 2000
        reqs = _seq_requests(n, BankCoord(0, 0, 0), lambda i: 3)
        base = ChannelController(refresh=False).run(
            _seq_requests(n, BankCoord(0, 0, 0), lambda i: 3)
        )
        with_ref = ChannelController(refresh=True).run(reqs)
        assert with_ref.refreshes >= 1
        assert with_ref.total_cycles > base.total_cycles

    def test_writes_then_read_turnaround(self):
        ctl = ChannelController(refresh=False)
        reqs = [
            Request(arrival=0, coord=BankCoord(0, 0, 0), row=1, column=0, is_write=True, request_id=0),
            Request(arrival=0, coord=BankCoord(0, 0, 0), row=1, column=1, is_write=False, request_id=1),
        ]
        stats = ctl.run(reqs)
        assert stats.writes == 1 and stats.reads == 1
        rd = next(r for r in reqs if not r.is_write)
        wr = next(r for r in reqs if r.is_write)
        t = DDR4_2400R
        # The read issue must respect the write-to-read turnaround.
        rd_issue = rd.completion - (t.tCL + t.tBL)
        wr_issue = wr.completion - (t.tCWL + t.tBL)
        assert rd_issue - wr_issue >= t.write_to_read(True)

    def test_command_trace_recorded(self):
        ctl = ChannelController(refresh=False, trace_commands=True)
        stats = ctl.run(_seq_requests(4, BankCoord(0, 0, 0), lambda i: 1))
        kinds = [c.kind for c in stats.commands]
        assert kinds[0] == CommandType.ACT
        assert kinds.count(CommandType.RD) == 4
