"""Tests for the multiprocess sweep runner (``repro.sim.sweep``): results
must be a pure function of (fn, configs) — identical to serial execution
for any worker count — and unpicklable inputs must fail fast."""

import pytest

from repro.sim import SweepResult, run_sweep
from repro.sim.sweep import default_workers


def _square(cfg):
    return cfg * cfg


def _seeded_run(cfg):
    """A tiny seeded simulation: one engine run keyed off the config."""
    from repro.serving import OnlineServingEngine, poisson_requests

    eng = OnlineServingEngine()
    rep = eng.run(
        poisson_requests("BERT", rate_rps=cfg["rate"], duration_s=0.5,
                         seed=cfg["seed"]),
        policy="hybrid",
    )
    return (rep.served, round(rep.p99_s, 9), round(rep.throughput_rps, 6))


def _planner_probe(cfg):
    """One CapacityPlanner sizing probe — the sweep's intended workload."""
    from repro.cluster import CapacityPlanner

    planner = CapacityPlanner(
        {"BERT": 0.9, "DLRM": 0.1}, n_requests=60, seed=cfg["seed"]
    )
    plan = planner.min_nodes(
        "hybrid", target_rps=cfg["rate"], p99_slo_s=1.0, max_nodes=8
    )
    return (plan.nodes, len(plan.probes))


CONFIGS = [{"rate": 150.0 + 50.0 * i, "seed": i} for i in range(4)]


class TestRunSweep:
    def test_serial_matches_plain_loop(self):
        out = run_sweep(_square, [1, 2, 3], workers=1)
        assert out.results == [1, 4, 9]
        assert out.workers == 1

    def test_parallel_identical_to_serial(self):
        serial = run_sweep(_seeded_run, CONFIGS, workers=1)
        pooled = run_sweep(_seeded_run, CONFIGS, workers=2)
        assert pooled.results == serial.results
        assert pooled.workers == 2

    def test_worker_count_independence(self):
        """The determinism contract: any worker count, same answer."""
        outs = [run_sweep(_square, list(range(16)), workers=w).results
                for w in (1, 2, 3, 5)]
        assert all(o == outs[0] for o in outs)

    def test_planner_probe_grid(self):
        """A capacity-plan probe ladder fans out with identical results."""
        serial = run_sweep(_planner_probe, CONFIGS, workers=1)
        pooled = run_sweep(_planner_probe, CONFIGS, workers=3)
        assert pooled.results == serial.results
        nodes = [n for n, _ in pooled.results]
        assert nodes == sorted(nodes)  # higher load never needs fewer nodes

    def test_workers_clamped_to_config_count(self):
        out = run_sweep(_square, [7], workers=8)
        assert out.workers == 1  # one config runs serially

    def test_unpicklable_fn_fails_fast(self):
        with pytest.raises(TypeError, match="not picklable"):
            run_sweep(lambda c: c, [1, 2], workers=2)

    def test_unpicklable_config_fails_fast(self):
        with pytest.raises(TypeError, match="config #1"):
            run_sweep(_square, [1, lambda: None], workers=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep(_square, [1, 2], workers=0)
        with pytest.raises(ValueError):
            run_sweep(_square, [1, 2], workers=2, chunksize=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestSweepResult:
    def test_len_and_pair_iteration(self):
        out = run_sweep(_square, [2, 3], workers=1)
        assert len(out) == 2
        assert list(out) == [(2, 4), (3, 9)]

    def test_is_frozen(self):
        out = SweepResult(results=[1], configs=[1])
        with pytest.raises(AttributeError):
            out.results = []
