"""Value-level validation of the distributed GEMM flow (paper §IV)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.functional import functional_gemm
from repro.mapping.presets import make_skylake, mapping_by_id
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


def _rand(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    return a, b


class TestCorrectness:
    @pytest.mark.parametrize("level", list(PimLevel))
    def test_matches_reference(self, sky, level):
        a, b = _rand(64, 1024, 4)
        c, stats = functional_gemm(sky, level, a, b)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        np.testing.assert_allclose(c, ref, rtol=1e-10, atol=1e-10)
        assert stats.complete

    def test_identity_weights(self, sky):
        k = 256
        a = np.eye(k, dtype=np.float32)
        b = np.arange(k * 3, dtype=np.float32).reshape(k, 3)
        c, stats = functional_gemm(sky, PimLevel.BANKGROUP, a, b)
        np.testing.assert_allclose(c, b)
        assert stats.complete

    def test_zero_inputs(self, sky):
        a = np.zeros((32, 512), dtype=np.float32)
        b = np.zeros((512, 2), dtype=np.float32)
        c, _ = functional_gemm(sky, PimLevel.DEVICE, a, b)
        assert not c.any()

    @pytest.mark.parametrize("mid", range(5))
    def test_all_mappings(self, mid):
        a, b = _rand(32, 512, 2, seed=mid)
        c, stats = functional_gemm(mapping_by_id(mid), PimLevel.BANKGROUP, a, b)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        np.testing.assert_allclose(c, ref, rtol=1e-10, atol=1e-10)
        assert stats.complete

    def test_pinned_subset_still_correct(self, sky):
        # 256 x 2048 fp32 = 2 MiB: large enough to reach all 16 BG PIMs.
        a, b = _rand(256, 2048, 3)
        c, stats = functional_gemm(sky, PimLevel.BANKGROUP, a, b, pinned_id_bits=2)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        np.testing.assert_allclose(c, ref, rtol=1e-10, atol=1e-10)
        assert stats.n_active_pims == 4  # 16 / 2^2

    def test_incompatible_operands_rejected(self, sky):
        with pytest.raises(ValueError):
            functional_gemm(sky, PimLevel.DEVICE, np.ones((4, 8)), np.ones((16, 2)))


class TestCoverage:
    def test_blocks_counted_once(self, sky):
        a, b = _rand(128, 1024, 1)
        _, stats = functional_gemm(sky, PimLevel.BANKGROUP, a, b)
        assert stats.blocks_touched == stats.total_blocks
        assert sum(stats.blocks_per_pim.values()) == stats.total_blocks

    def test_stats_fields(self, sky):
        a, b = _rand(128, 1024, 2)  # 512 KiB: reaches the rank bit (a18/a22)
        _, stats = functional_gemm(sky, PimLevel.DEVICE, a, b)
        assert stats.n_active_pims == 4
        assert stats.n_groups >= 1

    def test_small_footprint_activates_fewer_pims(self, sky):
        """A matrix too small to reach every ID bit uses fewer PIMs (§III-E)."""
        a, b = _rand(64, 1024, 2)  # 256 KiB: rank bit unreachable
        _, stats = functional_gemm(sky, PimLevel.DEVICE, a, b)
        assert stats.n_active_pims == 2
        assert stats.complete


@settings(max_examples=12, deadline=None)
@given(
    m_exp=st.integers(min_value=4, max_value=6),
    k_exp=st.integers(min_value=5, max_value=9),
    n=st.integers(min_value=1, max_value=5),
    mid=st.integers(min_value=0, max_value=4),
    level=st.sampled_from(list(PimLevel)),
)
def test_functional_property(m_exp, k_exp, n, mid, level):
    """Property: the distributed flow always reproduces A @ B exactly."""
    rng = np.random.default_rng(m_exp * 100 + k_exp * 10 + n)
    m, k = 1 << m_exp, 1 << k_exp
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    c, stats = functional_gemm(mapping_by_id(mid), level, a, b)
    ref = a.astype(np.float64) @ b.astype(np.float64)
    np.testing.assert_allclose(c, ref, rtol=1e-9, atol=1e-9)
    assert stats.complete
