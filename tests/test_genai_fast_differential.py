"""Differential harness pinning the genai macro-stepped decode path.

``repro.genai.fast`` collapses every constant-composition run of decode
boundaries into one kernel event; this file is the contract that makes
that rewrite safe.  Every seeded scenario runs the *same* generation
stream twice — once through the token-at-a-time reference loop, once
through the macro-stepped path — and asserts the two reports agree
bit-for-bit: same completions in the same order with the same first- and
last-token instants, same preemption counts, same KV high-water, same
busy seconds, same ITL/TTFT means *and percentiles* (both paths feed the
PR 6 sketches identical ``(gap, count)`` runs), same
``events_processed``.  Anything weaker would let a reassociated float
add or an off-by-one segment bound slip through; exact equality is cheap
because both paths are deterministic.

Scenarios are generated from small integer seeds so CI can throw fresh
ones at the harness on every push (``FAST_DIFF_SEEDS=a,b,c``, see the
``genai-fast-differential`` job in ``.github/workflows/ci.yml``).  The
default matrix — seeds 0..9 across both schedulers — is 20 scenarios
before CI adds any: continuous and static batching, wide and narrow
length mixes, and KV budgets squeezed tight enough to preempt.

The bottom sections pin the segment *seams* specifically: KV overflow
landing exactly on a segment's last boundary, recompute-on-resume after
preemption, the never-empty-batch invariant under single-sequence
saturation, the golden trace captured from the pre-fast-path loop, and
one test per labeled ``fast_fallback`` telemetry cause across all five
serving loops.

Regenerate the golden fixture (only on a *deliberate* behavior change):

    PYTHONPATH=src python tests/test_genai_fast_differential.py --capture
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys

import pytest

from repro.genai import (
    ContinuousBatcher,
    GenerativeEngine,
    StaticBatcher,
    gen_requests,
)
from repro.genai import fast as gfast
from repro.obs import RunObserver
from repro.obs.telemetry import BUS
from repro.serving import STEPSTONE_NODE

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

SCHEDULERS = ("continuous", "static")
PCTS = (50.0, 90.0, 95.0, 99.0)


def _seeds():
    """Default seed matrix, plus any fresh ones injected by CI."""
    seeds = list(range(10))
    extra = os.environ.get("FAST_DIFF_SEEDS", "")
    for tok in extra.replace(",", " ").split():
        s = int(tok)
        if s not in seeds:
            seeds.append(s)
    return seeds


SEEDS = _seeds()


def _f(x):
    """NaN-safe float (NaN != NaN would poison equality asserts)."""
    if x is None or x != x:
        return None
    return float(x)


class Scenario:
    """One seeded random generative scenario.

    Everything the macro-stepper could get wrong is a dimension here:
    scheduler choice (static charges padded width and forbids joins;
    continuous joins at boundaries), batch slots, prompt/output length
    spreads (which set segment lengths and finish staggering), and —
    on every third seed — a KV budget squeezed to around the worst-case
    sequence so segments end at overflow boundaries and preemption,
    readmission, and (when the budget dips *below* worst case) arrival
    rejection all churn the batch composition.
    """

    def __init__(self, seed, scheduler):
        rng = random.Random(f"genai-fast-{scheduler}-{seed}")
        self.seed = seed
        self.scheduler = scheduler
        self.rate_rps = rng.uniform(15.0, 80.0)
        self.duration_s = rng.uniform(2.0, 5.0)
        lo_p = rng.randint(4, 24)
        self.prompt_range = (lo_p, lo_p + rng.randint(0, 40))
        lo_o = rng.randint(4, 16)
        self.output_range = (lo_o, lo_o + rng.randint(0, 48))
        self.max_batch = rng.randint(2, 12)
        worst = self.prompt_range[1] + self.output_range[1]
        if seed % 6 == 0:
            # Below worst case: the largest requests reject at arrival.
            self.kv_capacity = worst - 1 - rng.randint(0, worst // 4)
        elif seed % 3 == 0:
            # At or above worst case: everything admits, decode preempts.
            self.kv_capacity = worst + rng.randint(0, 2 * worst)
        else:
            self.kv_capacity = None

    def stream(self):
        return gen_requests(
            self.rate_rps,
            self.duration_s,
            self.prompt_range,
            self.output_range,
            seed=self.seed,
        )

    def engine(self):
        sched = (
            ContinuousBatcher()
            if self.scheduler == "continuous"
            else StaticBatcher()
        )
        return GenerativeEngine(
            scheduler=sched,
            max_batch=self.max_batch,
            engine=_shared_engine(),
            kv_capacity_tokens=self.kv_capacity,
        )


_SHARED = None


def _shared_engine():
    """One OnlineServingEngine (the GEMM latency memo) for every run —
    pricing is pure, so sharing it only saves wall time."""
    global _SHARED
    if _SHARED is None:
        from repro.serving import OnlineServingEngine

        _SHARED = OnlineServingEngine()
    return _SHARED


# --------------------------------------------------------------------------
# The exact comparator.  The fingerprint includes every user-visible
# aggregate plus (in full mode) every completion's identity and float
# timestamps — a fast path that drops one ITL sample or shifts a finish
# by one ULP fails here, not in some downstream percentile.
# --------------------------------------------------------------------------


def fingerprint(rep):
    fp = {
        "served": rep.served,
        "rejected": rep.rejected_count,
        "tokens_out": rep.tokens_out,
        "preemptions": rep.preemptions,
        "peak_waiting": rep.peak_waiting,
        "kv_high_water": rep.kv_high_water_tokens,
        "kv_capacity": rep.kv_capacity_tokens,
        "events_processed": rep.events_processed,
        "sim_end_s": _f(rep.sim_end_s),
        "busy_prefill_s": _f(rep.busy_prefill_s),
        "busy_decode_s": _f(rep.busy_decode_s),
        "mean_ttft_s": _f(rep.mean_ttft_s),
        "mean_itl_s": _f(rep.mean_itl_s),
        "itl_samples": rep.itl_samples,
        "cost_per_1k": _f(rep.cost_per_1k_tokens(STEPSTONE_NODE)),
        "ttft_pct": tuple(_f(rep.ttft_percentile(q)) for q in PCTS),
        "itl_pct": tuple(_f(rep.itl_percentile(q)) for q in PCTS),
    }
    if rep.record == "full":
        fp["completions"] = [
            (
                c.request.req_id,
                _f(c.first_token_s),
                _f(c.finish_s),
                c.tokens_out,
                c.preemptions,
            )
            for c in rep.completions
        ]
    return fp


def run_both(scn, record="full"):
    """Run the scenario slow then fast; the fast run must actually
    engage the macro-stepped path (FAST_RUNS counter bumps)."""
    slow = scn.engine().run(scn.stream(), record=record)
    before = gfast.FAST_RUNS
    fast = scn.engine().run(scn.stream(), record=record, fast=True)
    assert gfast.FAST_RUNS == before + 1, (
        "fast=True fell back to the reference path",
        scn.seed,
        scn.scheduler,
    )
    return slow, fast


# --------------------------------------------------------------------------
# The seed matrix: 10 seeds x both schedulers = 20 scenarios, plus
# whatever CI injects.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_fast_matches_slow(seed, scheduler):
    scn = Scenario(seed, scheduler)
    slow, fast = run_both(scn)
    assert fingerprint(slow) == fingerprint(fast)


def test_matrix_exercises_preemption_and_rejection():
    """The tight-budget seeds must actually churn: at least one default
    scenario preempts and at least one rejects, or the matrix is not
    covering the overflow seams it claims to."""
    preempted = rejected = 0
    for seed in (0, 3, 6):
        scn = Scenario(seed, "continuous")
        rep = scn.engine().run(scn.stream())
        preempted += rep.preemptions
        rejected += rep.rejected_count
    assert preempted > 0
    assert rejected > 0


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_streaming_record_engages_and_matches(scheduler):
    """Both record modes take the macro-stepped path; streaming
    aggregates must equal the slow streaming run's exactly."""
    scn = Scenario(1, scheduler)
    slow, fast = run_both(scn, record="streaming")
    assert fingerprint(slow) == fingerprint(fast)


# --------------------------------------------------------------------------
# Segment-seam edge cases (deterministic, hand-sized KV budgets).
#
# Two sequences (prompt 4, 20 output tokens each) under a 24-token
# budget: both prefill (5 reserved each), decode grows the cache by 2
# per boundary, so boundary 7 lands the cache exactly on capacity — the
# fast path's segment must end precisely there, the next composition
# point preempts the younger sequence, the survivor finishes with the
# cache again landing exactly on capacity, and the victim re-prefills
# its recomputed context and finishes alone.
# --------------------------------------------------------------------------


def _overflow_requests():
    from repro.genai.workload import GenRequest

    return [
        GenRequest(req_id=0, arrival_s=0.0, prompt_tokens=4, max_new_tokens=20),
        GenRequest(req_id=1, arrival_s=0.0, prompt_tokens=4, max_new_tokens=20),
    ]


def _overflow_engine():
    return GenerativeEngine(
        scheduler=ContinuousBatcher(), max_batch=2, kv_capacity_tokens=24
    )


def test_overflow_at_exact_segment_boundary():
    """KV saturation on the segment's *last* boundary: the high-water
    mark must equal capacity exactly on both paths (an off-by-one in
    ``(capacity - used) // width`` would overshoot or stop early)."""
    slow = _overflow_engine().run(_overflow_requests())
    before = gfast.FAST_RUNS
    fast = _overflow_engine().run(_overflow_requests(), fast=True)
    assert gfast.FAST_RUNS == before + 1
    assert slow.kv_high_water_tokens == 24 == slow.kv_capacity_tokens
    assert slow.preemptions >= 1
    assert fingerprint(slow) == fingerprint(fast)


def test_recompute_on_resume_matches():
    """The preempted sequence re-prefills its recomputed context and
    still finishes with its full token budget; its completion record
    (first token, finish, tokens, preemption count) must be identical
    across paths — the resume seam re-enters the slow admission path
    mid-run, so this pins the fast/slow interleaving."""
    slow = _overflow_engine().run(_overflow_requests())
    fast = _overflow_engine().run(_overflow_requests(), fast=True)
    victims = [c for c in slow.completions if c.preemptions > 0]
    assert victims, "scenario no longer preempts; rebuild it"
    for c in victims:
        assert c.tokens_out == c.request.max_new_tokens
    assert [
        (c.request.req_id, c.first_token_s, c.finish_s, c.tokens_out, c.preemptions)
        for c in slow.completions
    ] == [
        (c.request.req_id, c.first_token_s, c.finish_s, c.tokens_out, c.preemptions)
        for c in fast.completions
    ]


def test_never_empty_batch_under_saturation():
    """Sequences sized at the full KV budget: admission lets several in,
    decode growth preempts down to one — but never to zero (a lone
    survivor always fits, because arrival guarded its worst case).  The
    macro-stepper must clamp its KV bound to >= 1 boundary in exactly
    the same spots, every sequence must still emit its full budget, and
    the thrash-heavy run must stay bit-identical."""
    from repro.genai.workload import GenRequest

    reqs = [
        GenRequest(
            req_id=i, arrival_s=0.1 * i, prompt_tokens=4, max_new_tokens=20
        )
        for i in range(4)
    ]

    def build():
        return GenerativeEngine(
            scheduler=ContinuousBatcher(), max_batch=4, kv_capacity_tokens=24
        )

    slow = build().run(list(reqs))
    before = gfast.FAST_RUNS
    fast = build().run(list(reqs), fast=True)
    assert gfast.FAST_RUNS == before + 1
    assert slow.served == len(reqs)
    assert slow.preemptions > 0
    assert all(c.tokens_out == 20 for c in slow.completions)
    assert fingerprint(slow) == fingerprint(fast)


# --------------------------------------------------------------------------
# Fallback-reason telemetry: every cause that declines a fast path, in
# every serving loop, must land one labeled increment on the bus — a
# sweep that silently fell back should be a readable counter, not a
# mystery slowdown.
# --------------------------------------------------------------------------


def _assert_fallback(loop, reason, run):
    BUS.enable()
    try:
        before = BUS.counter("fast_fallback", loop=loop, reason=reason)
        run()
        after = BUS.counter("fast_fallback", loop=loop, reason=reason)
        assert after == before + 1, (loop, reason)
    finally:
        BUS.disable()
        BUS.reset()


def _gen_stream():
    return gen_requests(30.0, 1.0, (8, 16), (4, 8), seed=3)


def test_genai_fallback_reasons():
    for reason, obs in [
        ("spans", RunObserver.tracing()),
        ("profiler", RunObserver.profiling()),
    ]:
        eng = GenerativeEngine(scheduler=ContinuousBatcher(), max_batch=4)
        _assert_fallback(
            "genai", reason, lambda: eng.run(_gen_stream(), obs=obs, fast=True)
        )


def _serving_stream():
    from repro.serving import poisson_requests

    return poisson_requests("BERT", 50.0, 1.0, seed=3)


def test_engine_fallback_reasons():
    from repro.serving import OnlineServingEngine

    eng = OnlineServingEngine()
    cases = [
        ("streaming-record", dict(record="streaming")),
        ("spans", dict(obs=RunObserver.tracing())),
        ("profiler", dict(obs=RunObserver.profiling())),
    ]
    for reason, kw in cases:
        _assert_fallback(
            "engine",
            reason,
            lambda: eng.run(_serving_stream(), "hybrid", fast=True, **kw),
        )
    _assert_fallback(
        "engine", "empty-stream", lambda: eng.run([], "hybrid", fast=True)
    )


class _CustomRouter:
    """A router make_chooser has no fast twin for."""

    def __new__(cls):
        from repro.cluster.router import RoundRobinRouter

        class Custom(RoundRobinRouter):
            name = "custom"

        return Custom()


def test_cluster_fallback_reasons():
    from repro.cluster import Cluster

    cases = [
        ("streaming-record", dict(record="streaming"), dict()),
        ("spans", dict(), dict(obs=RunObserver.tracing())),
        ("custom-router", dict(router=_CustomRouter()), dict()),
    ]
    for reason, ctor_kw, run_kw in cases:
        cl = Cluster(n_nodes=2, **ctor_kw)
        _assert_fallback(
            "cluster",
            reason,
            lambda: cl.run(_serving_stream(), fast=True, **run_kw),
        )


def _elastic_policy(engine, models):
    from repro.autoscale.policies import (
        TargetUtilizationPolicy,
        node_capacity_rps,
    )

    return TargetUtilizationPolicy(
        capacity_rps=node_capacity_rps(engine, {m: 1.0 for m in models}, "hybrid"),
        target=0.7,
    )


def test_elastic_fallback_reasons():
    from repro.autoscale import ElasticCluster

    cases = [
        ("presorted-stream", dict(), dict(presorted=True, horizon_s=1.0)),
        ("streaming-record", dict(record="streaming"), dict()),
        ("spans", dict(), dict(obs=RunObserver.tracing())),
        ("custom-router", dict(router=_CustomRouter()), dict()),
    ]
    for reason, ctor_kw, run_kw in cases:
        el = ElasticCluster(
            models=["BERT"], initial_nodes=1, max_nodes=2, **ctor_kw
        )
        pol = _elastic_policy(el.engine, ["BERT"])
        _assert_fallback(
            "elastic",
            reason,
            lambda: el.run(_serving_stream(), pol, fast=True, **run_kw),
        )


def test_hetero_fallback_reasons():
    from repro.autoscale import HeteroElasticCluster, NodePool
    from repro.autoscale.policies import node_capacity_rps
    from repro.autoscale import BaselineBurstPolicy
    from repro.serving import GPU_NODE

    cases = [
        ("streaming-record", dict(record="streaming"), dict()),
        ("spans", dict(), dict(obs=RunObserver.tracing())),
        ("custom-router", dict(router=_CustomRouter()), dict()),
    ]
    for reason, ctor_kw, run_kw in cases:
        hc = HeteroElasticCluster(
            pools={
                "stepstone": NodePool(
                    STEPSTONE_NODE, min_nodes=1, max_nodes=2, initial_nodes=1
                ),
                "gpu": NodePool(
                    GPU_NODE, min_nodes=0, max_nodes=1, initial_nodes=0
                ),
            },
            models=["BERT"],
            **ctor_kw,
        )
        pol = BaselineBurstPolicy(
            baseline="stepstone",
            burst="gpu",
            baseline_nodes=1,
            baseline_capacity_rps=node_capacity_rps(
                hc.engine, {"BERT": 1.0}, "hybrid", spec=STEPSTONE_NODE
            ),
            burst_capacity_rps=node_capacity_rps(
                hc.engine, {"BERT": 1.0}, "hybrid", spec=GPU_NODE
            ),
        )
        _assert_fallback(
            "hetero",
            reason,
            lambda: hc.run(_serving_stream(), pol, fast=True, **run_kw),
        )


# --------------------------------------------------------------------------
# Golden genai traces: fixtures captured from the token-at-a-time loop
# *before* the macro-stepped path landed.  Both paths must reproduce
# them token-for-token — this pins the fast path to history, not just
# to the current slow loop (which a shared bug could drift).
# --------------------------------------------------------------------------


def _golden_scenarios():
    return {
        "genai_continuous": Scenario(0, "continuous"),
        "genai_static": Scenario(0, "static"),
    }


def _golden_payload(rep):
    return {
        "aggregates": {
            k: v if not isinstance(v, tuple) else list(v)
            for k, v in fingerprint(rep).items()
            if k != "completions"
        },
        "completions": [
            [
                c.request.req_id,
                c.request.prompt_tokens,
                c.request.max_new_tokens,
                _f(c.request.arrival_s),
                _f(c.first_token_s),
                _f(c.finish_s),
                c.tokens_out,
                c.preemptions,
            ]
            for c in rep.completions
        ],
    }


@pytest.mark.parametrize("name", sorted(_golden_scenarios()))
@pytest.mark.parametrize("fast", [False, True])
def test_golden_genai_trace(name, fast):
    path = FIXTURES / f"golden_{name}.json"
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        "`PYTHONPATH=src python tests/test_genai_fast_differential.py --capture`"
    )
    scn = _golden_scenarios()[name]
    rep = scn.engine().run(scn.stream(), fast=fast)
    assert _golden_payload(rep) == json.loads(path.read_text())


def _capture() -> None:
    FIXTURES.mkdir(exist_ok=True)
    for name, scn in _golden_scenarios().items():
        rep = scn.engine().run(scn.stream())
        path = FIXTURES / f"golden_{name}.json"
        path.write_text(json.dumps(_golden_payload(rep), indent=1))
        print(f"captured {path} ({rep.served} seqs, {rep.tokens_out} tokens)")


if __name__ == "__main__":
    if "--capture" in sys.argv:
        _capture()
    else:
        sys.exit(pytest.main([__file__, "-q"]))
