"""Preset mappings reproduce the paper's documented structural properties."""

import numpy as np
import pytest

from repro.mapping.analysis import analyze_footprint
from repro.mapping.presets import (
    ADDRESS_MAPPINGS,
    make_skylake,
    mapping_by_id,
    pae_randomized,
)
from repro.mapping.xor_mapping import PimLevel


class TestRegistry:
    def test_five_mappings(self):
        assert sorted(ADDRESS_MAPPINGS) == [0, 1, 2, 3, 4]

    def test_mapping_by_id_names(self):
        assert mapping_by_id(4).name == "skylake"
        assert mapping_by_id(0).name == "exynos-like"

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            mapping_by_id(9)

    @pytest.mark.parametrize("mid", range(5))
    def test_all_invertible(self, mid):
        mapping_by_id(mid)  # constructor runs the GF(2) rank check


class TestPaperProperties:
    """Structural facts the evaluation section depends on."""

    def test_group_counts_1024x4096(self):
        """Baseline matrix: 16 BG groups, 4 DV groups, 2 CH groups."""
        sky = make_skylake()
        expect = {PimLevel.BANKGROUP: 16, PimLevel.DEVICE: 4, PimLevel.CHANNEL: 2}
        for lvl, n in expect.items():
            fa = analyze_footprint(sky, lvl, 1024, 4096)
            assert fa.n_groups == n
            assert fa.n_active_pims == sky.geometry.num_pims(lvl)

    def test_fig12_half_group_anomaly(self):
        """2048 x 8192 has half the BG groups of the other Fig. 12 shapes."""
        sky = make_skylake()
        groups = {
            (1024, 4096): 16,
            (4096, 1024): 16,
            (8192, 2048): 16,
            (2048, 8192): 8,
        }
        for (m, k), n in groups.items():
            fa = analyze_footprint(sky, PimLevel.BANKGROUP, m, k)
            assert fa.n_groups == n, (m, k)

    def test_fig11_sharing_ratios_128x8192(self):
        """§V-E: mappings 1,2 share 2x more than 3,4 and 4x more than 0."""
        counts = {}
        for mid in range(5):
            fa = analyze_footprint(mapping_by_id(mid), PimLevel.BANKGROUP, 128, 8192)
            counts[mid] = fa.n_groups
        assert counts[1] == counts[2]
        assert counts[3] == counts[4]
        assert counts[1] == 2 * counts[3]
        assert counts[1] == 4 * counts[0]

    def test_fig4_example_16x512(self):
        """Paper Fig. 4: 4 active PIMs, 4 groups, lowest ID bit 7."""
        fa = analyze_footprint(make_skylake(), PimLevel.BANKGROUP, 16, 512)
        assert fa.n_active_pims == 4
        assert fa.n_groups == 4
        assert fa.lowest_id_bit == 7

    @pytest.mark.parametrize("mid", [2, 3])
    def test_coarse_bankgroup_interleave(self, mid):
        """Mappings 2,3 keep long same-BG runs (the §V-E tCCD_L penalty)."""
        m = mapping_by_id(mid)
        addrs = np.arange(256, dtype=np.uint64) * np.uint64(64)
        bgs = m.field_values(addrs, "bankgroup")
        # All 256 consecutive blocks stay in one bank group.
        assert len(np.unique(bgs)) == 1

    def test_skylake_fine_bankgroup_interleave(self):
        sky = make_skylake()
        addrs = np.arange(8, dtype=np.uint64) * np.uint64(64)
        bgs = sky.field_values(addrs, "bankgroup")
        assert len(np.unique(bgs)) > 1


class TestPae:
    def test_randomized_invertible_many_seeds(self):
        base = make_skylake()
        for seed in range(10):
            m = pae_randomized(base, seed)
            assert m.name.endswith(f"pae{seed}")

    def test_randomization_changes_grouping(self):
        base = make_skylake()
        changed = 0
        for seed in range(8):
            m = pae_randomized(base, seed)
            fa = analyze_footprint(m, PimLevel.BANKGROUP, 128, 8192)
            fb = analyze_footprint(base, PimLevel.BANKGROUP, 128, 8192)
            if fa.n_groups != fb.n_groups:
                changed += 1
        assert changed >= 1  # at least some seeds perturb the structure
