"""End-to-end integration: allocate -> analyze -> execute -> reduce -> energy.

These tests exercise whole pipelines across subsystem boundaries, the way a
deployment would: real allocator bases feed the footprint analysis and the
functional simulator; plans feed the executor, energy model, and serving
policies; and the property tests tie the stream model to the exact
controller on randomized traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.functional import functional_gemm
from repro.core.gemm import GemmShape
from repro.dram.commands import BankCoord, Request
from repro.dram.controller import ChannelController
from repro.dram.stream import StreamAccess, stream_cycles
from repro.energy.model import EnergyModel
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel
from repro.osmem.allocator import ColoredFrameAllocator
from repro.serving.scheduler import BatchServer


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestDeploymentPipeline:
    def test_allocated_base_functional_gemm(self, sky):
        """The distributed flow is exact at a real (non-zero) allocator base."""
        alloc = ColoredFrameAllocator(sky, reserve_low=1 << 20)
        m, k, n = 64, 1024, 3
        region = alloc.allocate("w", m * k * 4)
        assert region.base != 0
        rng = np.random.default_rng(11)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        c, stats = functional_gemm(
            sky, PimLevel.BANKGROUP, a, b, base=region.base
        )
        np.testing.assert_allclose(
            c, a.astype(np.float64) @ b.astype(np.float64), rtol=1e-9, atol=1e-9
        )
        assert stats.complete

    def test_base_shifts_pim_assignment_not_cost(self, cfg, sky):
        """Different aligned bases permute PIM ownership but leave the
        latency structure unchanged (XOR linearity)."""
        shape = GemmShape(256, 4096, 4)
        r0 = execute_gemm(cfg, sky, shape, PimLevel.BANKGROUP, base=0)
        r1 = execute_gemm(
            cfg, sky, shape, PimLevel.BANKGROUP, base=shape.m * shape.k * 4 * 3
        )
        assert r1.breakdown.total == pytest.approx(r0.breakdown.total, rel=0.02)

    def test_plan_execute_energy_serve_chain(self, cfg, sky):
        """Plan -> execute -> energy -> serving on one shape, no surprises."""
        shape = GemmShape(1024, 4096, 8)
        res = execute_gemm(cfg, sky, shape, PimLevel.DEVICE)
        e = EnergyModel().evaluate(res)
        assert 0 < e.pj_per_op < 1000
        srv = BatchServer()
        point = srv.serve(1024, 4096, 8)
        assert point.backend == "pim"
        assert point.latency_s <= res.breakdown.total / 1.2e9 * 1.01

    def test_functional_matches_plan_coverage(self, cfg, sky):
        """The plan's block accounting equals the functional coverage."""
        from repro.core.gemm import plan_gemm

        m, k = 64, 2048
        plan = plan_gemm(cfg, sky, GemmShape(m, k, 2), PimLevel.BANKGROUP)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, 2)).astype(np.float32)
        _, stats = functional_gemm(sky, PimLevel.BANKGROUP, a, b)
        assert stats.blocks_per_pim == {
            p: plan.gemm_blocks_per_pim[p] for p in stats.blocks_per_pim
        }


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=200, max_value=800),
    rows=st.integers(min_value=2, max_value=16),
)
def test_stream_model_tracks_controller(seed, n, rows):
    """Property: on random traces in the PIM operating regime (row runs of
    at least a cache-block handful, as group execution produces) the
    vectorized stream model stays within a tolerance band of the exact
    FR-FCFS simulator."""
    rng = np.random.default_rng(seed)
    bg = rng.integers(0, 4, n)
    bank = rng.integers(0, 4, n)
    run = max(24, n // rows)
    row = np.repeat(np.arange(rows + 1), run)[:n]
    assert len(row) == n
    acc = StreamAccess(
        rank=np.zeros(n, dtype=np.int64),
        bankgroup=bg,
        bank=bg * 4 + bank,
        row=row,
    )
    model = stream_cycles(acc, refresh=False)
    reqs = [
        Request(
            arrival=0,
            coord=BankCoord(0, int(bg[i]), int(bank[i])),
            row=int(row[i]),
            column=i % 128,
            request_id=i,
        )
        for i in range(n)
    ]
    exact = ChannelController(refresh=False, queue_depth=4).run(reqs)
    ratio = model.cycles / exact.total_cycles
    assert 0.7 < ratio < 1.35, (seed, n, rows, ratio)
