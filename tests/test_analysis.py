"""Tests for footprint analysis / block grouping invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.analysis import analyze_footprint
from repro.mapping.presets import make_skylake, mapping_by_id
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestValidation:
    def test_non_pow2_rejected(self, sky):
        with pytest.raises(ValueError, match="powers of two"):
            analyze_footprint(sky, PimLevel.BANKGROUP, 100, 4096)

    def test_small_row_rejected(self, sky):
        with pytest.raises(ValueError, match="multiple of"):
            analyze_footprint(sky, PimLevel.BANKGROUP, 16, 8)

    def test_misaligned_base_rejected(self, sky):
        with pytest.raises(ValueError, match="aligned"):
            analyze_footprint(sky, PimLevel.BANKGROUP, 64, 1024, base=4096)

    def test_oversized_matrix_rejected(self, sky):
        with pytest.raises(ValueError, match="capacity"):
            analyze_footprint(sky, PimLevel.BANKGROUP, 2**20, 2**16)

    def test_bad_pinned_bits_rejected(self, sky):
        with pytest.raises(ValueError, match="pinned_id_bits"):
            analyze_footprint(sky, PimLevel.BANKGROUP, 64, 1024, pinned_id_bits=4)


class TestPartition:
    """Each cache block belongs to exactly one (PIM, group)."""

    @pytest.mark.parametrize("level", list(PimLevel))
    @pytest.mark.parametrize("m,k", [(64, 1024), (16, 512), (128, 256)])
    def test_blocks_partition(self, sky, level, m, k):
        fa = analyze_footprint(sky, level, m, k)
        seen = set()
        for pim in fa.active_pim_ids():
            for grp in range(fa.n_groups):
                for a in fa.blocks_of(int(pim), grp):
                    assert a not in seen
                    seen.add(int(a))
        assert len(seen) == fa.total_blocks

    def test_blocks_per_pim_sums(self, sky):
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 64, 1024)
        assert sum(fa.blocks_per_pim().values()) == fa.total_blocks

    def test_balanced_distribution(self, sky):
        """Power-of-two footprints distribute exactly evenly."""
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 256, 4096)
        counts = list(fa.blocks_per_pim().values())
        assert len(set(counts)) == 1


class TestGroupInvariant:
    """The defining property: within a group, every row has the same
    column -> PIM striping (the reuse StepStone exploits)."""

    @pytest.mark.parametrize("level", list(PimLevel))
    def test_cols_identical_across_group_rows(self, sky, level):
        fa = analyze_footprint(sky, level, 64, 2048)
        g = sky.geometry
        for grp in range(fa.n_groups):
            rows = fa.rows_of_group(grp)
            for pim in fa.active_pim_ids()[:4]:
                expected = fa.cols_of(int(pim), grp)
                for r in rows[:5]:
                    cols = np.arange(fa.blocks_per_row, dtype=np.uint64)
                    addrs = (
                        np.uint64(int(r) * fa.row_bytes)
                        + cols * np.uint64(g.block_bytes)
                    )
                    ids = fa._pim_ids(addrs)
                    got = np.nonzero(ids == np.uint64(int(pim)))[0]
                    assert np.array_equal(got, expected)

    def test_rows_partition_into_groups(self, sky):
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 128, 1024)
        all_rows = np.concatenate(
            [fa.rows_of_group(g) for g in range(fa.n_groups)]
        )
        assert sorted(all_rows.tolist()) == list(range(128))

    def test_group_sizes_equal(self, sky):
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 128, 1024)
        sizes = {len(fa.rows_of_group(g)) for g in range(fa.n_groups)}
        assert len(sizes) == 1


class TestConstraints:
    def test_constraints_match_membership(self, sky):
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 32, 512)
        for pim in fa.active_pim_ids()[:6]:
            for grp in range(fa.n_groups):
                cons = fa.constraints_for(int(pim), grp)
                blocks = fa.blocks_of(int(pim), grp)
                for a in blocks[:20]:
                    off = int(a) - fa.base
                    assert all(c.satisfied_by(off) for c in cons)

    def test_infeasible_pairs_flagged(self, sky):
        """With 16 PIMs and few row-reachable IDs, some (pim, group) pairs
        own nothing; owns_blocks must agree with the enumeration."""
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 64, 1024)
        for pim in fa.active_pim_ids():
            for grp in range(fa.n_groups):
                owns = fa.owns_blocks(int(pim), grp)
                assert owns == (len(fa.cols_of(int(pim), grp)) > 0)


class TestPinning:
    def test_pinning_halves_active_pims(self, sky):
        fa0 = analyze_footprint(sky, PimLevel.BANKGROUP, 256, 4096)
        fa1 = analyze_footprint(sky, PimLevel.BANKGROUP, 256, 4096, pinned_id_bits=1)
        assert fa1.n_active_pims * 2 == fa0.n_active_pims

    def test_pinning_reduces_groups(self, sky):
        fa0 = analyze_footprint(sky, PimLevel.BANKGROUP, 1024, 4096)
        fa1 = analyze_footprint(sky, PimLevel.BANKGROUP, 1024, 4096, pinned_id_bits=1)
        assert fa1.n_groups < fa0.n_groups

    def test_pinned_partition_still_complete(self, sky):
        fa = analyze_footprint(sky, PimLevel.BANKGROUP, 64, 1024, pinned_id_bits=1)
        assert sum(fa.blocks_per_pim().values()) == fa.total_blocks


@settings(max_examples=20, deadline=None)
@given(
    m_exp=st.integers(min_value=4, max_value=8),
    k_exp=st.integers(min_value=4, max_value=11),
    mid=st.integers(min_value=0, max_value=4),
    level=st.sampled_from(list(PimLevel)),
)
def test_partition_property_random(m_exp, k_exp, mid, level):
    """Property: blocks always partition across (PIM, group) pairs."""
    mapping = mapping_by_id(mid)
    fa = analyze_footprint(mapping, level, 1 << m_exp, 1 << k_exp)
    total = 0
    for pim in fa.active_pim_ids():
        for grp in range(fa.n_groups):
            total += len(fa.cols_of(int(pim), grp)) * len(fa.rows_of_group(grp))
    assert total == fa.total_blocks
