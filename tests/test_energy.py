"""Tests for the Table II energy model (Fig. 14)."""

import pytest

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.energy.model import ENERGY_TABLE2, EnergyModel, EnergyTable
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


def _energy(cfg, sky, n, level):
    r = execute_gemm(cfg, sky, GemmShape(1024, 4096, n), level)
    return EnergyModel().evaluate(r)


class TestTable:
    def test_table2_constants(self):
        t = ENERGY_TABLE2
        assert t.in_device_pj_per_bit == 11.3
        assert t.off_chip_pj_per_bit == 25.7
        assert t.scratchpad_nj_per_access[PimLevel.BANKGROUP] == 0.03

    def test_custom_table(self):
        t = EnergyTable(in_device_pj_per_bit=5.0)
        assert t.in_device_pj_per_bit == 5.0
        assert t.scratchpad_nj_per_access is not None


class TestEnergyModel:
    def test_components_positive(self, cfg, sky):
        e = _energy(cfg, sky, 4, PimLevel.BANKGROUP)
        assert e.simd_j > 0 and e.scratchpad_j > 0
        assert e.dram_j > 0 and e.loc_red_j > 0
        assert e.total_j == pytest.approx(
            e.simd_j + e.scratchpad_j + e.dram_j + e.loc_red_j
        )

    def test_dram_dominates_simd(self, cfg, sky):
        """Fig. 14: DRAM access power dominates the SIMD units."""
        for n in (1, 4, 16):
            for lvl in (PimLevel.BANKGROUP, PimLevel.DEVICE):
                e = _energy(cfg, sky, n, lvl)
                assert e.dram_j + e.loc_red_j > e.simd_j

    def test_bg_wins_small_n_dv_wins_large_n(self, cfg, sky):
        """Fig. 14 crossover: in-device I/O favours BG at N=1; loc/red
        growth favours DV by N=16."""
        assert (
            _energy(cfg, sky, 1, PimLevel.BANKGROUP).pj_per_op
            < _energy(cfg, sky, 1, PimLevel.DEVICE).pj_per_op
        )
        assert (
            _energy(cfg, sky, 16, PimLevel.DEVICE).pj_per_op
            < _energy(cfg, sky, 16, PimLevel.BANKGROUP).pj_per_op
        )

    def test_pj_per_op_falls_with_batch(self, cfg, sky):
        """Arithmetic amortizes the weight streaming energy."""
        e1 = _energy(cfg, sky, 1, PimLevel.DEVICE).pj_per_op
        e16 = _energy(cfg, sky, 16, PimLevel.DEVICE).pj_per_op
        assert e16 < e1

    def test_power_envelope(self, cfg, sky):
        for n in (1, 16):
            for lvl in (PimLevel.BANKGROUP, PimLevel.DEVICE):
                e = _energy(cfg, sky, n, lvl)
                assert 0.05 < e.watts_per_device < 2.0

    def test_channel_level_pays_offchip_rates(self, cfg, sky):
        bg = _energy(cfg, sky, 4, PimLevel.BANKGROUP)
        ch = _energy(cfg, sky, 4, PimLevel.CHANNEL)
        # Same A traffic, but CH reads cross the pins at 25.7 pJ/b.
        assert ch.dram_j > 1.5 * bg.dram_j

    def test_as_dict_keys(self, cfg, sky):
        d = _energy(cfg, sky, 4, PimLevel.DEVICE).as_dict()
        assert {"simd_j", "dram_j", "loc_red_j", "watts_per_device", "pj_per_op"} <= set(d)

    def test_zero_time_guard(self):
        from repro.energy.model import EnergyBreakdown

        e = EnergyBreakdown(0, 0, 0, 0, seconds=0.0, flops=0.0, n_devices=0)
        assert e.watts_total == 0.0
        assert e.watts_per_device == 0.0
        assert e.pj_per_op == 0.0
