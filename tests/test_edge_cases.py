"""Edge-case coverage across subsystems: write paths, tFAW, tiny shapes,
randomized mappings, and executor corner configurations."""

import numpy as np
import pytest

from repro.core.agen import ExactStepStoneAGEN, solve_constraints
from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape, plan_gemm
from repro.dram.commands import BankCoord, Request
from repro.dram.controller import ChannelController
from repro.dram.stream import StreamAccess, stream_cycles
from repro.dram.timing import DDR4_2400R
from repro.mapping.analysis import Constraint, analyze_footprint
from repro.mapping.presets import make_skylake, pae_randomized
from repro.mapping.xor_mapping import PimLevel


@pytest.fixture(scope="module")
def cfg():
    return StepStoneConfig.default()


@pytest.fixture(scope="module")
def sky():
    return make_skylake()


class TestControllerWritePath:
    def test_write_stream_completes(self):
        ctl = ChannelController(refresh=False)
        reqs = [
            Request(arrival=0, coord=BankCoord(0, 0, 0), row=1, column=i, is_write=True, request_id=i)
            for i in range(64)
        ]
        stats = ctl.run(reqs)
        assert stats.writes == 64
        assert stats.total_cycles > 64 * DDR4_2400R.tCCDL * 0.9

    def test_read_write_mix(self):
        ctl = ChannelController(refresh=False)
        reqs = [
            Request(
                arrival=0,
                coord=BankCoord(0, i % 4, 0),
                row=2,
                column=i,
                is_write=(i % 3 == 0),
                request_id=i,
            )
            for i in range(90)
        ]
        stats = ctl.run(reqs)
        assert stats.reads + stats.writes == 90

    def test_rank_interleaving_completes(self):
        ctl = ChannelController(refresh=False)
        reqs = [
            Request(arrival=0, coord=BankCoord(i % 2, 0, 0), row=3, column=i, request_id=i)
            for i in range(64)
        ]
        stats = ctl.run(reqs)
        # Rank switches cost tBL + tRTRS per hop, slower than one rank's hits.
        assert stats.total_cycles > 64 * (DDR4_2400R.tBL + DDR4_2400R.tRTRS) * 0.9

    def test_late_arrivals_respected(self):
        ctl = ChannelController(refresh=False)
        reqs = [
            Request(arrival=5000, coord=BankCoord(0, 0, 0), row=1, column=0, request_id=0)
        ]
        stats = ctl.run(reqs)
        assert reqs[0].completion > 5000


class TestStreamTfaw:
    def test_faw_floor_applies(self):
        """All-miss single-bank-group stream: ACT rate capped at 4/tFAW."""
        n = 400
        acc = StreamAccess(
            rank=np.zeros(n, dtype=int),
            bankgroup=np.zeros(n, dtype=int),
            bank=np.arange(n) % 4,
            row=np.arange(n),  # every access a new row
        )
        s = stream_cycles(acc, refresh=False)
        assert s.cycles >= n / 4.0 * DDR4_2400R.tFAW * 0.99
        assert s.row_misses == n


class TestTinyShapes:
    def test_one_block_matrix(self, cfg, sky):
        """The smallest legal GEMM (one cache block of weights)."""
        r = execute_gemm(cfg, sky, GemmShape(1, 16, 1), PimLevel.CHANNEL)
        assert r.breakdown.total > 0
        assert r.plan.direct_scratchpad

    def test_single_row_matrix(self, cfg, sky):
        r = execute_gemm(cfg, sky, GemmShape(1, 4096, 4), PimLevel.DEVICE)
        assert r.plan.shape.m == 1

    def test_tall_one_col_block(self, cfg, sky):
        r = execute_gemm(cfg, sky, GemmShape(4096, 16, 2), PimLevel.BANKGROUP)
        assert r.breakdown.total > 0

    def test_plan_single_pim_case(self, cfg, sky):
        """A matrix small enough to live entirely in one PIM's slice."""
        plan = plan_gemm(cfg, sky, GemmShape(1, 16, 1), PimLevel.CHANNEL)
        assert plan.n_active_pims >= 1
        total = sum(w.n_cols * w.n_rows for ws in plan.work.values() for w in ws)
        assert total == plan.analysis.total_blocks


class TestRandomizedMappings:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_pae_mapping_full_pipeline(self, cfg, seed):
        """PAE-randomized mappings run the whole stack correctly."""
        mapping = pae_randomized(make_skylake(), seed)
        r = execute_gemm(cfg, mapping, GemmShape(256, 2048, 4), PimLevel.BANKGROUP)
        assert r.breakdown.total > 0
        fa = analyze_footprint(mapping, PimLevel.BANKGROUP, 64, 1024)
        pim = int(fa.active_pim_ids()[0])
        agen = ExactStepStoneAGEN(fa, pim, 0)
        oracle = np.sort(fa.blocks_of(pim, 0))
        assert np.array_equal(agen.trace(), oracle)


class TestSolverEdges:
    def test_empty_system_full_space(self):
        s = solve_constraints([], 1)
        assert s.size == 2

    def test_all_bits_pinned(self):
        cons = [Constraint(1 << i, 1) for i in range(4)]
        s = solve_constraints(cons, 4)
        assert s.size == 1
        assert s.element(0) == 0b1111

    def test_redundant_constraints_collapse(self):
        cons = [Constraint(0b11, 0), Constraint(0b11, 0)]
        s = solve_constraints(cons, 4)
        assert s.size == 8

    def test_element_out_of_range(self):
        s = solve_constraints([Constraint(0b1, 0)], 3)
        with pytest.raises(IndexError):
            s.element(s.size)


class TestExecutorCorners:
    def test_channel_level_all_batches(self, cfg, sky):
        for n in (1, 8, 64, 256):
            r = execute_gemm(cfg, sky, GemmShape(512, 1024, n), PimLevel.CHANNEL)
            assert r.breakdown.total > 0

    def test_large_batch_compute_bound_growth(self, cfg, sky):
        """Beyond the SIMD saturation point, GEMM time grows with N."""
        t64 = execute_gemm(cfg, sky, GemmShape(512, 1024, 64), PimLevel.DEVICE)
        t256 = execute_gemm(cfg, sky, GemmShape(512, 1024, 256), PimLevel.DEVICE)
        assert t256.breakdown.gemm > 2.0 * t64.breakdown.gemm

    def test_echo_with_pinning(self, cfg, sky):
        from repro.baselines.chopim import echo_gemm

        r = echo_gemm(cfg, sky, GemmShape(512, 2048, 8), PimLevel.BANKGROUP, pinned_id_bits=1)
        assert r.plan.n_active_pims == 8

    def test_deterministic_results(self, cfg, sky):
        a = execute_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        b = execute_gemm(cfg, sky, GemmShape(1024, 4096, 4), PimLevel.BANKGROUP)
        assert a.breakdown.total == b.breakdown.total
