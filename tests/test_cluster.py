"""Tests for the multi-node fleet layer (`repro.cluster`)."""

import math

import pytest

from repro.cluster import (
    AffinityRouter,
    CapacityPlanner,
    Cluster,
    ClusterNode,
    LeastLoadedRouter,
    ModelPlacement,
    PlacementError,
    ROUTER_POLICIES,
    RoundRobinRouter,
    make_router,
)
from repro.experiments.serve_cluster import skew_placement, skew_stream
from repro.serving import (
    OnlineServingEngine,
    Request,
    poisson_requests,
    uniform_requests,
)


@pytest.fixture(scope="module")
def eng():
    return OnlineServingEngine()


def _skew(eng, duration_s=1.0):
    """The canonical BERT-heavy mix over the overlapping 3-node placement."""
    return skew_stream(eng, duration_s)


class TestPlacement:
    def test_replication_and_no_duplicate_homes(self):
        p = ModelPlacement.plan(n_nodes=4, replication=2)
        for model, homes in p.replicas.items():
            assert len(homes) == 2, model
            assert len(set(homes)) == 2, model

    def test_capacity_respected(self):
        p = ModelPlacement.plan(n_nodes=4, replication=2, capacity_bytes=128e9)
        for nid, used in p.used_bytes.items():
            assert used <= 128e9

    def test_infeasible_capacity_raises(self):
        # GPT2 weighs ~47 GB; a 10 GB node can never host it.
        with pytest.raises(PlacementError, match="cannot place"):
            ModelPlacement.plan(n_nodes=8, replication=1, capacity_bytes=10e9)

    def test_replication_beyond_nodes_raises(self):
        with pytest.raises(PlacementError, match="replication"):
            ModelPlacement.plan(n_nodes=2, replication=3)

    def test_invalid_counts_raise(self):
        with pytest.raises(PlacementError):
            ModelPlacement.plan(n_nodes=0)
        with pytest.raises(PlacementError):
            ModelPlacement.plan(n_nodes=2, replication=0)

    def test_deterministic_plan(self):
        a = ModelPlacement.plan(n_nodes=5, replication=2)
        b = ModelPlacement.plan(n_nodes=5, replication=2)
        assert a.replicas == b.replicas

    def test_largest_first_spreads_heavy_models(self):
        # GPT2 (~47 GB) and XLM (~19 GB) land on different nodes before
        # the small models fill in.
        p = ModelPlacement.plan(n_nodes=2, replication=1, capacity_bytes=60e9)
        assert p.replicas["GPT2"][0] != p.replicas["XLM"][0]

    def test_models_on_and_unknown_model(self):
        p = ModelPlacement.plan(n_nodes=2, replication=2)
        assert "BERT" in p.models_on(0)
        with pytest.raises(KeyError, match="no placed replica"):
            p.nodes_for("LLAMA")


class TestRouters:
    def _nodes(self, eng, n=3):
        return [ClusterNode(i, eng, "cpu") for i in range(n)]

    def test_round_robin_cycles(self, eng):
        nodes = self._nodes(eng)
        r = RoundRobinRouter()
        req = Request(0, "BERT", 0.0)
        picks = [r.route(req, nodes, 0.0).node_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_counters_are_per_model(self, eng):
        nodes = self._nodes(eng)
        r = RoundRobinRouter()
        assert r.route(Request(0, "BERT", 0.0), nodes, 0.0).node_id == 0
        assert r.route(Request(1, "DLRM", 0.0), nodes, 0.0).node_id == 0
        assert r.route(Request(2, "BERT", 0.0), nodes, 0.0).node_id == 1

    def test_least_loaded_picks_min_backlog(self, eng):
        nodes = self._nodes(eng)
        nodes[0].enqueue(Request(0, "BERT", 0.0))
        nodes[0].enqueue(Request(1, "BERT", 0.0))
        nodes[1].enqueue(Request(2, "BERT", 0.0))
        r = LeastLoadedRouter()
        assert r.route(Request(3, "BERT", 0.0), nodes, 0.0).node_id == 2

    def test_least_loaded_ties_break_low_id(self, eng):
        nodes = self._nodes(eng)
        r = LeastLoadedRouter()
        assert r.route(Request(0, "BERT", 0.0), nodes, 0.0).node_id == 0

    def test_affinity_prefers_primary_then_spills(self, eng):
        nodes = self._nodes(eng)
        r = AffinityRouter(spill_backlog=2)
        req = Request(0, "BERT", 0.0)
        assert r.route(req, nodes, 0.0).node_id == 0
        nodes[0].enqueue(Request(1, "BERT", 0.0))
        nodes[0].enqueue(Request(2, "BERT", 0.0))
        # primary at the spill threshold -> shortest queue wins
        assert r.route(req, nodes, 0.0).node_id == 1

    def test_make_router_and_unknown_policy(self):
        for name in ROUTER_POLICIES:
            assert make_router(name).name == name
        with pytest.raises(ValueError, match="unknown router"):
            make_router("random")


class TestClusterNode:
    def test_rejects_unhosted_model(self, eng):
        node = ClusterNode(0, eng, "cpu", models={"BERT"})
        with pytest.raises(ValueError, match="does not host"):
            node.enqueue(Request(0, "DLRM", 0.0))

    def test_dispatch_batches_head_model_only(self, eng):
        node = ClusterNode(0, eng, "cpu")
        node.enqueue(Request(0, "BERT", 0.0))
        node.enqueue(Request(1, "DLRM", 0.0))
        node.enqueue(Request(2, "BERT", 0.0))
        finish = node.try_dispatch(0.0)
        assert finish == pytest.approx(eng.batch_latency("BERT", "cpu", 2))
        assert [r.model for r in node.in_flight] == ["BERT", "BERT"]
        assert [r.model for r in node.queue] == ["DLRM"]

    def test_fully_rejected_batch_moves_to_next_model(self, eng):
        node = ClusterNode(0, eng, "cpu")
        # an impossible SLO: service alone exceeds it at any batch size
        node.enqueue(Request(0, "BERT", 0.0, slo_s=1e-9))
        node.enqueue(Request(1, "DLRM", 0.0))
        finish = node.try_dispatch(0.0)
        assert len(node.report.rejected) == 1
        assert [r.model for r in node.in_flight] == ["DLRM"]
        assert finish is not None


class TestClusterRuns:
    def test_single_node_matches_engine(self, eng):
        """A 1-node fleet is exactly the single-node serving engine."""
        slo = 20 * eng.min_latency("BERT", "cpu")
        reqs = poisson_requests("BERT", 200, 1.0, seed=3, slo_s=slo)
        ref = eng.run(reqs, "hybrid")
        rep = Cluster(1, policy="hybrid", engine=eng).run(reqs)
        assert [c.request.req_id for c in ref.completed] == [
            c.request.req_id for c in rep.completed
        ]
        assert [(c.dispatch_s, c.finish_s, c.batch) for c in ref.completed] == [
            (c.dispatch_s, c.finish_s, c.batch) for c in rep.completed
        ]
        assert [r.request.req_id for r in ref.rejected] == [
            r.request.req_id for r in rep.rejected
        ]
        assert rep.sim_end_s == ref.sim_end_s

    def test_deterministic_under_fixed_seed(self, eng):
        stream = _skew(eng)
        a = Cluster(3, engine=eng, placement=skew_placement()).run(stream)
        b = Cluster(3, engine=eng, placement=skew_placement()).run(_skew(eng))
        assert a.served == b.served
        assert len(a.rejected) == len(b.rejected)
        assert (a.p50_s, a.p99_s, a.goodput_rps) == (b.p50_s, b.p99_s, b.goodput_rps)
        assert a.served_per_node() == b.served_per_node()

    def test_jsq_beats_round_robin_under_skew(self, eng):
        """Load-aware routing sheds less of the skewed traffic."""
        stream = _skew(eng)
        reports = {
            router: Cluster(
                3,
                policy="hybrid",
                router=router,
                engine=eng,
                placement=skew_placement(),
            ).run(stream)
            for router in ("round-robin", "least-loaded")
        }
        assert (
            reports["least-loaded"].goodput_rps
            >= reports["round-robin"].goodput_rps - 1e-9
        )
        assert reports["least-loaded"].served >= reports["round-robin"].served

    def test_hybrid_fleet_beats_cpu_fleet(self, eng):
        stream = _skew(eng)
        reports = {
            policy: Cluster(
                3, policy=policy, engine=eng, placement=skew_placement()
            ).run(stream)
            for policy in ("cpu", "hybrid")
        }
        assert reports["hybrid"].goodput_rps >= reports["cpu"].goodput_rps - 1e-9

    def test_requests_only_served_by_replica_nodes(self, eng):
        stream = _skew(eng)
        rep = Cluster(3, engine=eng, placement=skew_placement()).run(stream)
        placement = skew_placement()
        for nid, node_report in enumerate(rep.node_reports):
            hosted = set(placement.models_on(nid))
            for c in node_report.completed:
                assert c.request.model in hosted

    def test_all_offered_accounted_for(self, eng):
        stream = _skew(eng)
        rep = Cluster(3, engine=eng, placement=skew_placement()).run(stream)
        assert rep.offered == len(stream)
        assert rep.served + len(rep.rejected) == len(stream)

    def test_empty_stream(self, eng):
        rep = Cluster(2, engine=eng, replication=2).run([])
        assert rep.served == 0 and rep.offered == 0
        assert math.isnan(rep.p50_s)
        assert rep.throughput_rps == 0.0 and rep.goodput_rps == 0.0

    def test_invalid_configs(self, eng):
        with pytest.raises(ValueError):
            Cluster(0, engine=eng)
        with pytest.raises(ValueError, match="unknown policy"):
            Cluster(1, policy="tpu", engine=eng)
        with pytest.raises(ValueError, match="unknown router"):
            Cluster(1, router="random", engine=eng)

    def test_two_replicas_split_uniform_load(self, eng):
        """JSQ over two identical replicas serves both nodes evenly."""
        placement = ModelPlacement(replicas={"BERT": [0, 1]}, used_bytes={})
        reqs = uniform_requests("BERT", rate_rps=100, duration_s=1.0)
        rep = Cluster(2, engine=eng, placement=placement).run(reqs)
        a, b = rep.served_per_node()
        assert a + b == len(reqs)
        assert abs(a - b) <= rep.node_reports[0].mean_batch * 2

    def test_report_percentile_validation(self, eng):
        rep = Cluster(1, engine=eng).run([])
        with pytest.raises(ValueError):
            rep.latency_percentile(0)
        with pytest.raises(ValueError):
            rep.latency_percentile(101)
        with pytest.raises(ValueError):
            rep.window_percentile(0, 0.0, 1.0)

    def test_window_percentile_edge_cases(self, eng):
        """Empty window, single-completion window, and all-rejected window
        on the fleet report (the helpers AutoscaleReport reuses)."""
        stream = _skew(eng)
        rep = Cluster(3, engine=eng, placement=skew_placement()).run(stream)
        # a window before any finish has no signal
        assert math.isnan(rep.window_percentile(99, -1.0, 0.0))
        # the full window reproduces the run-wide percentile
        assert rep.window_percentile(99, 0.0, rep.sim_end_s + 1.0) == rep.p99_s
        # a window holding exactly the earliest completion
        first = min(c.finish_s for c in rep.completed)
        only = [c.latency_s for c in rep.completed if c.finish_s == first]
        got = rep.window_percentile(99, first, first + 1e-12)
        assert got in only

    def test_all_rejected_window_is_nan(self, eng):
        """A fleet that sheds everything reports NaN, not a number."""
        floor = eng.min_latency("BERT", "pim")
        reqs = [Request(i, "BERT", 0.0, slo_s=floor / 10) for i in range(6)]
        placement = ModelPlacement(replicas={"BERT": [0, 1]}, used_bytes={})
        rep = Cluster(2, policy="pim", engine=eng, placement=placement).run(reqs)
        assert rep.served == 0 and len(rep.rejected) == 6
        assert math.isnan(rep.window_percentile(99, 0.0, 100.0))
        assert math.isnan(rep.p99_s)


class TestCapacityPlanner:
    def test_invalid_mix(self, eng):
        with pytest.raises(ValueError):
            CapacityPlanner({})
        with pytest.raises(ValueError):
            CapacityPlanner({"BERT": -1.0, "DLRM": 2.0}, engine=eng)
        with pytest.raises(KeyError, match="unknown to the engine"):
            CapacityPlanner({"LLAMA": 1.0}, engine=eng)

    def test_mix_normalized(self, eng):
        p = CapacityPlanner({"BERT": 3.0, "DLRM": 1.0}, engine=eng)
        assert p.mix == {"BERT": 0.75, "DLRM": 0.25}

    def test_stream_rate_and_determinism(self, eng):
        p = CapacityPlanner({"BERT": 0.9, "DLRM": 0.1}, engine=eng, n_requests=300)
        a = p.stream(300.0)
        b = p.stream(300.0)
        assert [r.req_id for r in a] == [r.req_id for r in b]
        assert 150 < len(a) < 600  # ~300 expected
        models = {r.model for r in a}
        assert models == {"BERT", "DLRM"}

    def test_min_nodes_monotone_probes(self, eng):
        p = CapacityPlanner(
            {"BERT": 0.9, "DLRM": 0.1},
            engine=eng,
            n_requests=150,
            window_slos=2.0,
            seed=5,
        )
        plan = p.min_nodes("hybrid", target_rps=300, p99_slo_s=1.0, max_nodes=16)
        assert plan.nodes >= 1
        # the found count is feasible and one fewer is not (when probed)
        assert any(n == plan.nodes and ok for n, ok, _ in plan.probes)
        below = [ok for n, ok, _ in plan.probes if n < plan.nodes]
        assert not any(below)

    def test_min_nodes_raises_when_impossible(self, eng):
        p = CapacityPlanner(
            {"XLM": 1.0}, engine=eng, n_requests=60, window_slos=1.0, seed=5
        )
        # XLM batch-1 cpu latency (~1.6 s) alone exceeds a 50 ms SLO.
        with pytest.raises(ValueError, match="miss the"):
            p.min_nodes("cpu", target_rps=20, p99_slo_s=0.05, max_nodes=2)

    def test_throughput_curve_shapes(self, eng):
        p = CapacityPlanner(
            {"BERT": 0.9, "DLRM": 0.1}, engine=eng, n_requests=200, seed=5
        )
        curve = p.throughput_curve([1, 2], "hybrid", offered_rps=600, slo_s=1.0)
        assert [n for n, _ in curve] == [1, 2]
        assert curve[1][1].goodput_rps >= curve[0][1].goodput_rps - 1e-9
