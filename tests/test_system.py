"""Tests for the StepStoneSystem facade and package-level API."""

import numpy as np
import pytest

import repro
from repro import PimLevel, StepStoneSystem
from repro.core.config import StepStoneConfig
from repro.mapping.presets import make_exynos_like, make_toy_mapping


class TestConstruction:
    def test_default(self):
        s = StepStoneSystem.default()
        assert s.config.geometry.capacity_bytes == 16 * 2**30
        assert s.mapping.name == "skylake"

    def test_custom_mapping(self):
        s = StepStoneSystem(mapping=make_exynos_like())
        assert s.mapping.mapping_id == 0

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError, match="geometries disagree"):
            StepStoneSystem(
                config=StepStoneConfig.default(), mapping=make_toy_mapping()
            )

    def test_package_exports(self):
        assert repro.__version__
        assert repro.StepStoneSystem is StepStoneSystem
        with pytest.raises(AttributeError):
            repro.not_a_thing


class TestApi:
    @pytest.fixture(scope="class")
    def system(self):
        return StepStoneSystem.default()

    def test_analyze_pads(self, system):
        fa = system.analyze(1000, 3000, PimLevel.BANKGROUP)
        assert fa.m_rows == 1024 and fa.k_cols == 4096

    def test_run_gemm_auto_level(self, system):
        r = system.run_gemm(1024, 4096, 1)
        assert r.plan.level is PimLevel.BANKGROUP  # scheduler picks BG at N=1

    def test_run_gemm_explicit_level(self, system):
        r = system.run_gemm(1024, 4096, 1, level=PimLevel.CHANNEL)
        assert r.plan.level is PimLevel.CHANNEL

    def test_compare_levels(self, system):
        res = system.compare_levels(512, 2048, 4)
        assert set(res) == set(PimLevel)
        assert all(r.breakdown.total > 0 for r in res.values())

    def test_functional_roundtrip(self, system):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((32, 512)).astype(np.float32)
        b = rng.standard_normal((512, 2)).astype(np.float32)
        c, stats = system.run_gemm_functional(a, b, level=PimLevel.DEVICE)
        np.testing.assert_allclose(
            c, a.astype(np.float64) @ b.astype(np.float64), rtol=1e-9
        )
        assert stats.complete

    def test_describe(self, system):
        text = system.describe()
        assert "StepStone system" in text
        assert "BG" in text and "DV" in text and "CH" in text

    def test_non_pow2_inputs_handled(self, system):
        r = system.run_gemm(1000, 3000, 3, level=PimLevel.DEVICE)
        assert r.plan.shape.m == 1024 and r.plan.shape.k == 4096
        assert r.plan.orig_shape.m == 1000
