"""Energy/power model for StepStone PIM executions (Fig. 14).

Components follow Table II:

* in-device DRAM read/write: 11.3 pJ/bit (PIM-side accesses at BG/DV level);
* off-chip read/write: 25.7 pJ/bit (localization/reduction and CH-level PIM
  traffic, which crosses the device I/O);
* SIMD arithmetic and scratchpad access energies per Table II.  The table
  lists scratchpad energies "CH/DV/BG (0.03/0.1/0.3 nJ/access)"; we assign
  them size-consistently (the 8 KB BG array is the cheapest per access:
  0.03 nJ, the 256 KB CH array the most expensive: 0.3 nJ) and note the
  table's ordering ambiguity here.  SIMD energy is normalized per FLOP so
  that total PIM power lands in the ~1 W/device envelope the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.executor import GemmResult
from repro.mapping.xor_mapping import PimLevel

__all__ = ["EnergyTable", "EnergyBreakdown", "EnergyModel", "ENERGY_TABLE2"]


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energy constants."""

    in_device_pj_per_bit: float = 11.3
    off_chip_pj_per_bit: float = 25.7
    simd_pj_per_flop: float = 11.3
    scratchpad_nj_per_access: Dict[PimLevel, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.scratchpad_nj_per_access is None:
            object.__setattr__(
                self,
                "scratchpad_nj_per_access",
                {
                    PimLevel.BANKGROUP: 0.03,
                    PimLevel.DEVICE: 0.1,
                    PimLevel.CHANNEL: 0.3,
                },
            )


ENERGY_TABLE2 = EnergyTable()


@dataclass
class EnergyBreakdown:
    """Joules per component for one GEMM execution (Fig. 14 stacks)."""

    simd_j: float
    scratchpad_j: float
    dram_j: float  # PIM-side DRAM access
    loc_red_j: float  # off-chip localization/reduction traffic
    seconds: float
    flops: float
    n_devices: int

    @property
    def total_j(self) -> float:
        return self.simd_j + self.scratchpad_j + self.dram_j + self.loc_red_j

    @property
    def watts_total(self) -> float:
        return self.total_j / self.seconds if self.seconds > 0 else 0.0

    @property
    def watts_per_device(self) -> float:
        """Power per DRAM chip (Fig. 14, left)."""
        return self.watts_total / self.n_devices if self.n_devices else 0.0

    @property
    def pj_per_op(self) -> float:
        """Energy per floating-point operation (Fig. 14, right)."""
        return self.total_j / self.flops * 1e12 if self.flops else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "simd_j": self.simd_j,
            "scratchpad_j": self.scratchpad_j,
            "dram_j": self.dram_j,
            "loc_red_j": self.loc_red_j,
            "total_j": self.total_j,
            "watts_per_device": self.watts_per_device,
            "pj_per_op": self.pj_per_op,
        }


class EnergyModel:
    """Maps a :class:`GemmResult` to the Fig. 14 energy/power metrics."""

    def __init__(self, table: EnergyTable = ENERGY_TABLE2, clock_hz: float = 1.2e9) -> None:
        self.table = table
        self.clock_hz = clock_hz

    def evaluate(self, result: GemmResult, n_devices: int = 32) -> EnergyBreakdown:
        """Energy for one GEMM execution.

        ``n_devices`` is the DRAM chip population (Table II system:
        2 channels x 2 ranks x 8 x8-devices = 32 chips).
        """
        t = self.table
        level = result.plan.level
        block_bits = 64 * 8

        # PIM-side DRAM accesses: only the bank-group PIM lives inside the
        # DRAM die; device-level (buffer-chip) and channel-level PIMs pull
        # data across the device I/O pins — the paper's Fig. 14 point that
        # "IO energy is much smaller within a device".
        pim_pj_per_bit = (
            t.in_device_pj_per_bit
            if level is PimLevel.BANKGROUP
            else t.off_chip_pj_per_bit
        )
        dram_j = result.pim_dram_blocks * block_bits * pim_pj_per_bit * 1e-12
        loc_red_j = result.offchip_blocks * block_bits * t.off_chip_pj_per_bit * 1e-12
        flops = 2.0 * result.simd_mac_ops
        simd_j = flops * t.simd_pj_per_flop * 1e-12
        scratchpad_j = (
            result.scratchpad_accesses * t.scratchpad_nj_per_access[level] * 1e-9
        )
        return EnergyBreakdown(
            simd_j=simd_j,
            scratchpad_j=scratchpad_j,
            dram_j=dram_j,
            loc_red_j=loc_red_j,
            seconds=result.breakdown.total / self.clock_hz,
            flops=flops,
            n_devices=n_devices,
        )
