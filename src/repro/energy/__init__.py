"""Energy and power model (Table II components, Fig. 14)."""

from repro.energy.model import EnergyBreakdown, EnergyModel, ENERGY_TABLE2

__all__ = ["EnergyBreakdown", "EnergyModel", "ENERGY_TABLE2"]
