"""CPU memory-traffic generators for the colocation study (§V-G).

The paper colocates mcf, lbm, omnetpp, and gemsFDTD (SPEC CPU 2017) on gem5
OOO cores.  We substitute parameterized traffic generators: each workload is
characterized by its last-level-cache misses per kilo-instruction (MPKI,
from published SPEC characterizations [34]) and IPC, which together yield a
demand request rate and, hence, a command-bus utilization per channel.
Every demand miss occupies command-bus slots (RD plus its share of ACT/PRE)
and a data-bus burst.

A synthetic request-stream generator is also provided so the contention
model (and tests) can run the traffic through the command-level DRAM
simulator for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.dram.commands import BankCoord, Request

__all__ = ["CpuWorkload", "SPEC_WORKLOADS", "SPEC_MIX", "TrafficGenerator"]


@dataclass(frozen=True)
class CpuWorkload:
    """One colocated CPU application's memory behaviour.

    PIM kernel launches are writes to memory-mapped PIM registers, so they
    ride the same channel as CPU demand *data* traffic; the utilization that
    delays a launch packet is therefore channel (data-bus) occupancy, not
    just command-slot occupancy.  ``prefetch_factor`` folds in hardware
    prefetcher over-fetch, which inflates demand traffic on OOO cores.
    """

    name: str
    llc_mpki: float  # LLC misses per kilo-instruction
    ipc: float  # committed instructions per core cycle
    row_hit_rate: float = 0.5
    core_ghz: float = 4.0  # gem5 config of §IV
    prefetch_factor: float = 1.3

    def misses_per_second(self) -> float:
        return self.llc_mpki / 1000.0 * self.ipc * self.core_ghz * 1e9

    def bandwidth_gbps(self) -> float:
        return self.misses_per_second() * 64.0 * self.prefetch_factor / 1e9

    def command_bus_utilization(
        self, channels: int = 2, channel_gbps: float = 19.2
    ) -> float:
        """Fraction of channel capacity this workload holds against a
        PIM launch packet (data-bus framing, see class docstring)."""
        return min(0.95, self.bandwidth_gbps() / (channels * channel_gbps))


#: Memory-intensive SPEC CPU 2017 applications; MPKI/IPC follow published
#: characterizations of aggressive OOO cores [34] (all four form the §IV
#: colocation mix, which saturates a large fraction of the two channels).
SPEC_WORKLOADS: Dict[str, CpuWorkload] = {
    "mcf": CpuWorkload("mcf", llc_mpki=65.0, ipc=0.40, row_hit_rate=0.35),
    "lbm": CpuWorkload("lbm", llc_mpki=32.0, ipc=0.65, row_hit_rate=0.65),
    "omnetpp": CpuWorkload("omnetpp", llc_mpki=22.0, ipc=0.50, row_hit_rate=0.45),
    "gemsFDTD": CpuWorkload("gemsFDTD", llc_mpki=28.0, ipc=0.55, row_hit_rate=0.60),
}


def SPEC_MIX(channels: int = 2) -> float:
    """Aggregate channel utilization of the 4-core §IV mix."""
    bw = sum(w.bandwidth_gbps() for w in SPEC_WORKLOADS.values())
    return min(0.85, bw / (channels * 19.2))


class TrafficGenerator:
    """Synthetic request streams with workload-like locality (validation)."""

    def __init__(self, workload: CpuWorkload, seed: int = 0) -> None:
        self.workload = workload
        self.rng = np.random.default_rng(seed)

    def requests(
        self,
        n: int,
        ranks: int = 2,
        bankgroups: int = 4,
        banks: int = 4,
        rows: int = 1024,
        mean_gap_cycles: float = 20.0,
    ) -> List[Request]:
        """Generate *n* requests with the workload's row-hit behaviour."""
        w = self.workload
        gaps = self.rng.exponential(mean_gap_cycles, n)
        arrivals = np.cumsum(gaps).astype(np.int64)
        reqs: List[Request] = []
        cur_bank: Tuple[int, int, int] = (0, 0, 0)
        cur_row = 0
        for i in range(n):
            if self.rng.random() > w.row_hit_rate:
                cur_bank = (
                    int(self.rng.integers(ranks)),
                    int(self.rng.integers(bankgroups)),
                    int(self.rng.integers(banks)),
                )
                cur_row = int(self.rng.integers(rows))
            reqs.append(
                Request(
                    arrival=int(arrivals[i]),
                    coord=BankCoord(*cur_bank),
                    row=cur_row,
                    column=int(self.rng.integers(128)),
                    is_write=bool(self.rng.random() < 0.3),
                    request_id=i,
                )
            )
        return reqs
