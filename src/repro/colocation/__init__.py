"""Concurrent CPU/PIM execution: traffic generators + command-bus contention."""

from repro.colocation.traffic import (
    CpuWorkload,
    SPEC_MIX,
    SPEC_WORKLOADS,
    TrafficGenerator,
)
from repro.colocation.contention import (
    ColocationResult,
    CommandBusModel,
    colocation_speedup,
)

__all__ = [
    "CpuWorkload",
    "SPEC_MIX",
    "SPEC_WORKLOADS",
    "TrafficGenerator",
    "ColocationResult",
    "CommandBusModel",
    "colocation_speedup",
]
