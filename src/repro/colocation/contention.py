"""Command-channel contention between CPU traffic and PIM kernel launches.

§V-G: when the CPU runs memory-intensive work concurrently with the PIMs,
both contend for the command channel.  StepStone's long-running kernels
need a handful of launch packets per GEMM; eCHO needs one per dot-product
row, and each launch must win command-bus slots against the CPU's demand
stream.  PEI is worst: one packet per cache block.

The model treats the per-channel command bus as an M/D/1-like server: CPU
traffic holds utilization ``u``; a PIM launch packet of ``P`` slots then
sees an effective service time of ``P / (1 - u)`` plus a queueing wait of
``u / (2 (1 - u))`` slots — the standard mean-wait expression with
deterministic service.  The extra delay per launch is fed back into the
GEMM executor, which serializes launches on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.chopim import echo_gemm
from repro.core.config import StepStoneConfig
from repro.core.executor import GemmResult, execute_gemm
from repro.core.gemm import GemmShape
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["CommandBusModel", "ColocationResult", "colocation_speedup"]


@dataclass(frozen=True)
class CommandBusModel:
    """Shared command-bus arbitration with CPU-priority service."""

    cpu_utilization: float
    packet_slots: float = 16.0  # slots per kernel-launch packet

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_utilization < 1.0:
            raise ValueError("cpu_utilization must be in [0, 1)")

    @property
    def launch_delay_cycles(self) -> float:
        """Extra cycles one kernel launch waits due to CPU contention."""
        u = self.cpu_utilization
        if u == 0.0:
            return 0.0
        service_stretch = self.packet_slots * (1.0 / (1.0 - u) - 1.0)
        queue_wait = u / (2.0 * (1.0 - u)) * self.packet_slots
        return service_stretch + queue_wait


@dataclass
class ColocationResult:
    """GEMM-under-colocation outcome for one flow."""

    flow: str
    level: PimLevel
    shape: GemmShape
    cpu_utilization: float
    result: GemmResult
    launch_delay_cycles: float

    @property
    def gemm_cycles(self) -> float:
        return self.result.breakdown.gemm

    @property
    def total_cycles(self) -> float:
        return self.result.breakdown.total


def run_colocated(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    flow: str,
    cpu_utilization: float,
    packet_slots: Optional[float] = None,
) -> ColocationResult:
    """Execute one GEMM with command-channel contention applied."""
    bus = CommandBusModel(
        cpu_utilization=cpu_utilization,
        packet_slots=packet_slots
        if packet_slots is not None
        else config.dma.kernel_launch_cycles,
    )
    delay = bus.launch_delay_cycles
    if flow == "stepstone":
        res = execute_gemm(
            config, mapping, shape, level, flow="stepstone", launch_delay_cycles=delay
        )
    elif flow == "echo":
        res = echo_gemm(config, mapping, shape, level, launch_delay_cycles=delay)
    else:
        raise ValueError(f"unknown flow {flow!r}")
    return ColocationResult(
        flow=flow,
        level=level,
        shape=shape,
        cpu_utilization=cpu_utilization,
        result=res,
        launch_delay_cycles=delay,
    )


def colocation_speedup(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    cpu_utilization: float,
) -> Dict[str, float]:
    """Fig. 13 metric: STP speedup over eCHO for GEMM execution only.

    The paper isolates the long-running-kernel benefit by running the same
    StepStone GEMM flow on both and "reporting results corresponding only
    to GEMM execution", so the speedup compares the GEMM components.
    """
    stp = run_colocated(config, mapping, shape, level, "stepstone", cpu_utilization)
    echo = run_colocated(config, mapping, shape, level, "echo", cpu_utilization)
    return {
        "stp_gemm_cycles": stp.gemm_cycles,
        "echo_gemm_cycles": echo.gemm_cycles,
        "speedup": echo.gemm_cycles / stp.gemm_cycles,
        "launch_delay_cycles": stp.launch_delay_cycles,
        "echo_launches": float(echo.result.kernel_launches),
        "stp_launches": float(stp.result.kernel_launches),
    }
