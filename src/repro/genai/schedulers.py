"""Batching schedulers: who joins the running batch, and when.

The decode-GEMM cost model makes wider batches cheaper per token, so a
generative server always wants to batch — the question is *when a slot can
change hands*, and the two answers here bracket the design space:

* :class:`StaticBatcher` — the classic server: a batch is formed at
  prefill, runs until its **longest** sequence finishes, and only then
  does the next batch form.  Slots freed by short sequences are wasted as
  padding (the decode GEMM stays at the admitted width), and every arrival
  waits for the full drain — which is what mixed output lengths do to TTFT;
* :class:`ContinuousBatcher` — iteration-level scheduling (Orca/vLLM
  style): sequences leave at the token boundary where they finish and
  waiting sequences join at any boundary with a free slot, paying a
  prefill that briefly stalls the running batch.  Slots never idle, so
  TTFT tracks prefill time instead of batch-drain time.

Both admit in **strict FIFO order** — a sequence that does not fit the
KV-cache budget blocks everything behind it rather than being skipped.
That is the fairness contract that also makes the two schedulers provably
identical when every sequence has the same output length and batches close
together (the ``tests/test_genai.py`` equivalence invariant).
"""

from __future__ import annotations

from typing import Deque, List, Sequence

from repro.genai.kvcache import KVCacheBudget

__all__ = ["StaticBatcher", "ContinuousBatcher"]


def _fifo_fit(
    waiting: Sequence, slots: int, kv: KVCacheBudget
) -> List:
    """The shared admission loop: a FIFO prefix bounded by slots and KV.

    Walks ``waiting`` in order, accumulating each sequence's admission
    reservation, and stops at the first sequence that does not fit —
    never skipping ahead (strict FIFO).
    """
    joiners: List = []
    need = 0
    for seq in waiting:
        if len(joiners) >= slots:
            break
        tokens = seq.admit_tokens
        if not kv.fits(need + tokens):
            break
        joiners.append(seq)
        need += tokens
    return joiners


class StaticBatcher:
    """Batch fixed at prefill; runs to the longest sequence.

    ``fixed_width = True`` tells the engine to charge every decode step
    at the *admitted* batch width even after short sequences finish —
    the padding waste that makes static batching lose tokens/s under
    mixed output lengths.
    """

    name = "static"
    #: Decode steps are charged at the admitted width (padding).
    fixed_width = True

    def select(
        self, waiting: Deque, running: List, max_batch: int, kv: KVCacheBudget
    ) -> List:
        """Admit a fresh batch only once the previous one fully drained.

        Args:
            waiting: Admission queue (FIFO).
            running: Sequences still decoding.
            max_batch: Slot count of a batch.
            kv: The KV budget admissions reserve against.

        Returns:
            The FIFO prefix forming the next batch, or ``[]`` while any
            sequence is still running.
        """
        if running:
            return []
        return _fifo_fit(waiting, max_batch, kv)

    def segment_join_blocked(
        self, waiting: Deque, running: List, max_batch: int
    ) -> bool:
        """No arrival can join while ``running`` decodes — a static
        batch admits only after a full drain, so a decode segment never
        needs to stop at an arrival instant.  Always ``True`` (the fast
        path only plans segments with a non-empty running batch)."""
        return True


class ContinuousBatcher:
    """Sequences join and leave the batch at token boundaries.

    ``fixed_width = False``: decode steps are charged at the *live*
    width, so a slot freed by a finishing sequence immediately stops
    costing — and is immediately offered to the queue.
    """

    name = "continuous"
    #: Decode steps are charged at the live width (no padding).
    fixed_width = False

    def select(
        self, waiting: Deque, running: List, max_batch: int, kv: KVCacheBudget
    ) -> List:
        """Fill every free slot at this boundary, strict-FIFO.

        Args:
            waiting: Admission queue (FIFO).
            running: Sequences still decoding.
            max_batch: Slot count of a batch.
            kv: The KV budget admissions reserve against.

        Returns:
            The FIFO prefix that fits the free slots and the KV budget.
        """
        return _fifo_fit(waiting, max_batch - len(running), kv)

    def segment_join_blocked(
        self, waiting: Deque, running: List, max_batch: int
    ) -> bool:
        """Whether joins stay impossible while the current batch holds.

        The macro-step invariant the fast path relies on: during one
        decode segment the running set is fixed and KV usage only grows,
        so an admission blocked now stays blocked at every boundary of
        the segment.  That is the case when the slots are full, or when
        a FIFO head is already waiting — it was passed over because it
        did not fit the (only-tightening) budget, and strict FIFO means
        nothing behind it may skip ahead.  Only an *empty* queue with
        free slots can change composition mid-segment (a new arrival
        joins at the next boundary), so only then must a segment stop at
        the next event instant.
        """
        return len(running) >= max_batch or bool(waiting)
