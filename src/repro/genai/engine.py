"""The generative serving engine: prefill/decode phases on the sim kernel.

One request used to be one FINISH event; a generative sequence is a
*lifecycle*.  The engine splits service into the two phases whose cost
structures the paper's thesis separates:

* **PREFILL** — one batched GEMM pass over the admitted sequences'
  prompts (activation dimension = total prompt tokens, the compute-dense
  regime where GPUs shine), plus per-sequence quadratic attention.
  Completion emits each sequence's first token (the TTFT instant) and
  merges it into the running batch;
* **DECODE_STEP** — one token boundary for the whole running batch: the
  four decoder GEMMs at activation dimension = batch width (the
  bandwidth-bound GEMV regime where StepStone wins), KV-cached linear
  attention over each sequence's grown context, and sampling.  Every
  boundary emits one token per active sequence; finished sequences leave.

Both phases are priced by the **existing** backend latency models: the
engine registers the config's one-token step spec in an
:class:`~repro.serving.engine.OnlineServingEngine` and asks
``batch_latency`` for activation dimension ``n`` — StepStone chunked PIM,
calibrated CPU, or GPU roofline per :class:`~repro.serving.nodespec.NodeSpec`,
with host-resident ops charged to the node's CPU.

KV-cache accounting threads through every transition (the
:class:`~repro.genai.kvcache.KVCacheBudget` invariant): admission reserves
``prompt + emitted + 1`` tokens, each decode boundary reserves one more per
active sequence, completion releases everything.  A boundary that cannot
grow preempts the youngest running sequence back to the queue front
(recompute semantics: cache dropped, emitted tokens kept, re-admission
re-prefills ``prompt + emitted`` and the ITL stream shows the stall);
an arrival whose worst-case footprint exceeds the whole budget is rejected
outright — queueing it could only ever deadlock or livelock the cache.

A prefill takes priority over the next decode boundary (joiners stall the
running batch briefly — the realistic ITL jitter of continuous batching);
the kernel's total order makes arrivals at a boundary visible to that
boundary's join decision, and PREFILL merge visible to a same-instant
DECODE_STEP.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.genai.kvcache import KVCacheBudget
from repro.genai.model import GPT2_XL, GenModelConfig
from repro.genai.report import GenCompletion, GenRejection, GenReport
from repro.genai.schedulers import ContinuousBatcher
from repro.genai.workload import GenRequest
from repro.models.layers import CpuOp, attention_cpu_ops, decode_attention_cpu_ops
from repro.serving.engine import OnlineServingEngine
from repro.serving.nodespec import STEPSTONE_NODE, NodeSpec
from repro.sim.kernel import DiscreteEventKernel, Event, EventKind

__all__ = ["SeqState", "GenerativeEngine"]


class SeqState:
    """One in-flight sequence: emitted-token and reservation bookkeeping."""

    __slots__ = (
        "request",
        "emitted",
        "first_token_s",
        "last_token_s",
        "reserved",
        "preemptions",
        "preempted_at",
        "done",
    )

    def __init__(self, request: GenRequest) -> None:
        self.request = request
        #: Tokens emitted so far (the first lands at prefill completion).
        self.emitted = 0
        self.first_token_s: Optional[float] = None
        self.last_token_s = 0.0
        #: KV tokens currently reserved for this sequence.
        self.reserved = 0
        self.preemptions = 0
        #: Instant of the most recent preemption while re-queued, else
        #: ``None`` — distinguishes a "preempted" wait span from the
        #: first "queued" wait when tracing.
        self.preempted_at: Optional[float] = None
        self.done = False

    @property
    def admit_tokens(self) -> int:
        """KV reservation an admission takes: the context to (re)prefill
        (``prompt + emitted``) plus the slot for the token it emits."""
        return self.request.prompt_tokens + self.emitted + 1

    def __repr__(self) -> str:
        return (
            f"SeqState(req={self.request.req_id}, emitted={self.emitted}, "
            f"reserved={self.reserved})"
        )


class GenerativeEngine:
    """Generative LLM serving on one node: phases, KV budget, schedulers."""

    def __init__(
        self,
        config: GenModelConfig = GPT2_XL,
        spec: NodeSpec = STEPSTONE_NODE,
        scheduler=None,
        policy: str = "hybrid",
        max_batch: int = 8,
        engine: Optional[OnlineServingEngine] = None,
        kv_capacity_tokens: Optional[int] = None,
    ) -> None:
        """Build an engine for one (model, node, scheduler) combination.

        Args:
            config: Decoder geometry to serve.
            spec: Node hardware — selects the GEMM latency model and,
                with the config's weights, sizes the KV budget.
            scheduler: A :class:`~repro.genai.schedulers.StaticBatcher`
                or :class:`~repro.genai.schedulers.ContinuousBatcher`
                (default: continuous).
            policy: StepStone dispatch policy for the GEMMs
                (``cpu``/``pim``/``hybrid``; ignored off-StepStone).
            max_batch: Decode batch slots.
            engine: A shared :class:`OnlineServingEngine` whose latency
                memo this engine reuses (one is built if omitted).
            kv_capacity_tokens: Explicit KV budget override in tokens;
                default sizes it from ``spec.memory_bytes`` net of the
                hosted weights.

        Raises:
            ValueError: On a non-positive ``max_batch``, or (at default
                sizing) a node too small to host the weights.
        """
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.config = config
        self.spec = spec
        self.scheduler = scheduler if scheduler is not None else ContinuousBatcher()
        self.policy = policy
        self.max_batch = max_batch
        self.engine = engine if engine is not None else OnlineServingEngine()
        self.engine.models[config.step_key] = config.step_spec()
        self.kv_capacity_tokens = (
            kv_capacity_tokens
            if kv_capacity_tokens is not None
            else KVCacheBudget.for_node(spec, config).capacity_tokens
        )
        if self.spec.backend == "cpu" and self.spec.cpu is not None:
            self._host_cfg = self.spec.cpu
        else:
            self._host_cfg = self.engine.server.cpu.config
        #: Per-context-length prefill attention seconds (pure, memoized).
        self._prefill_attn: dict = {}
        #: Per-(charged, actives, total_ctx) decode-boundary seconds.
        #: One memo shared by the reference loop and the macro-stepped
        #: fast path, so every boundary is priced by the same float.
        self._decode_cost: dict = {}

    # ------------------------------------------------------------------ #
    # Phase pricing (existing backend latency models underneath)
    # ------------------------------------------------------------------ #

    def gemm_seconds(self, n_tokens: int) -> float:
        """One decoder pass at activation dimension ``n_tokens`` on this
        node — the shared price of both phases (decode: batch width;
        prefill: total prompt tokens)."""
        return self.engine.batch_latency(
            self.config.step_key, self.policy, n_tokens, spec=self.spec
        )

    def _prefill_attn_seconds(self, context: int) -> float:
        """Quadratic prompt-pass attention for one sequence of ``context``."""
        hit = self._prefill_attn.get(context)
        if hit is None:
            cfg = self.config
            hit = sum(
                op.seconds(self._host_cfg)
                for op in attention_cpu_ops(
                    "prefill",
                    cfg.blocks,
                    1,
                    cfg.heads,
                    context,
                    cfg.head_dim,
                    cfg.d_model,
                )
            )
            self._prefill_attn[context] = hit
        return hit

    def _sampling_seconds(self, n_tokens: int) -> float:
        cfg = self.config
        return CpuOp(
            "sampling", 2.0 * n_tokens * cfg.vocab, 4.0 * n_tokens * cfg.vocab * 2
        ).seconds(self._host_cfg)

    def prefill_seconds(self, group: List[SeqState]) -> float:
        """Service time of one batched prompt pass over ``group``."""
        total = sum(s.request.prompt_tokens + s.emitted for s in group)
        t = self.gemm_seconds(max(1, total))
        for s in group:
            t += self._prefill_attn_seconds(s.request.prompt_tokens + s.emitted)
        return t + self._sampling_seconds(len(group))

    def decode_seconds(self, charged_width: int, active: List[SeqState]) -> float:
        """Service time of one token boundary.

        Args:
            charged_width: GEMM activation dimension — the live width
                under continuous batching, the admitted (padded) width
                under static.
            active: Sequences actually emitting (attention + sampling
                are charged for these only).
        """
        total_ctx = sum(s.request.prompt_tokens + s.emitted + 1 for s in active)
        return self.decode_step_seconds(charged_width, len(active), total_ctx)

    def decode_step_seconds(
        self, charged_width: int, n_active: int, total_ctx: int
    ) -> float:
        """One decode boundary priced by its integer signature.

        The cost of a boundary is a pure function of ``(charged GEMM
        width, active count, total context tokens)`` — so it is memoized
        on exactly that key.  :meth:`decode_seconds` reduces a batch to
        this signature, and the fast path walks a segment's boundaries
        by advancing ``total_ctx`` arithmetically; both read the same
        cached float for the same signature, which is what makes the
        macro-stepped run bit-identical to the event-at-a-time run.
        """
        key = (charged_width, n_active, total_ctx)
        hit = self._decode_cost.get(key)
        if hit is None:
            cfg = self.config
            t = self.gemm_seconds(charged_width)
            t += sum(
                op.seconds(self._host_cfg)
                for op in decode_attention_cpu_ops(
                    "decode",
                    cfg.blocks,
                    cfg.heads,
                    cfg.head_dim,
                    cfg.d_model,
                    n_active,
                    total_ctx,
                )
            )
            hit = t + self._sampling_seconds(n_active)
            self._decode_cost[key] = hit
        return hit

    # ------------------------------------------------------------------ #
    # The run loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        requests: Iterable[GenRequest],
        record: str = "full",
        obs=None,
        fast: bool = False,
    ) -> GenReport:
        """Serve an arrival stream; return the TTFT/ITL/goodput report.

        Args:
            requests: Generation requests in any order (sorted here).
            record: ``"full"`` or ``"streaming"`` (see
                :class:`~repro.genai.report.GenReport`).
            obs: Optional :class:`~repro.obs.RunObserver` — per-sequence
                lifecycle spans (queued / prefill / preempted /
                sequence / rejected), per-phase engine spans whose
                durations sum *exactly* to ``report.busy_s``, and kernel
                self-profiling when a profiler is attached.  Default
                off; a traced run's report is identical to an untraced
                one.
            fast: Opt into the :mod:`repro.genai.fast` macro-stepped
                decode path — bit-identical reports, one kernel event
                per constant-composition segment instead of one per
                token boundary.  Falls back here (with a labeled
                ``fast_fallback`` telemetry count) when spans or a
                profiler need per-event hooks; both record modes
                engage.

        Returns:
            The finished report, including KV high-water and peak queue
            depth — identical across runs with identical inputs (the
            engine draws no randomness).
        """
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        report = GenReport(self.scheduler.name, record=record)
        kv = KVCacheBudget(self.kv_capacity_tokens)
        report.kv_capacity_tokens = kv.capacity_tokens
        if not ordered:
            return report
        spans = obs.spans if obs is not None else None
        fastmod = None
        if fast:
            if spans is not None:
                reason = "spans"
            elif obs is not None and obs.profile is not None:
                reason = "profiler"
            else:
                reason = None
            if reason is not None:
                from repro.obs.telemetry import record_fast_fallback

                record_fast_fallback("genai", reason, obs)
            else:
                from repro.genai import fast as fastmod

                fastmod.count_run()
        model = self.config.step_key
        kernel = DiscreteEventKernel()
        kernel.preload(
            Event(r.arrival_s, EventKind.ARRIVAL, i, payload=r)
            for i, r in enumerate(ordered)
        )
        waiting: Deque[SeqState] = deque()
        running: List[SeqState] = []
        busy = False
        width = 0  # static: the admitted (charged) batch width

        def complete(s: SeqState, now: float) -> None:
            kv.release(s.reserved)
            s.reserved = 0
            s.done = True
            report.record_completion(
                GenCompletion(
                    request=s.request,
                    first_token_s=s.first_token_s,
                    finish_s=now,
                    tokens_out=s.emitted,
                    preemptions=s.preemptions,
                )
            )
            if spans is not None:
                spans.emit(
                    s.request.req_id,
                    "sequence",
                    s.request.arrival_s,
                    now - s.request.arrival_s,
                    model=model,
                    tokens=s.emitted,
                )

        def maybe_start(now: float) -> None:
            # One phase in flight at a time; joins happen at phase
            # boundaries only.  Prefill-priority: waiting sequences with
            # a free slot stall the running batch for their prompt pass.
            nonlocal busy, width
            if busy:
                return
            joiners = self.scheduler.select(waiting, running, self.max_batch, kv)
            if joiners:
                for s in joiners:
                    head = waiting.popleft()
                    assert head is s  # strict-FIFO prefix by construction
                    kv.reserve(s.admit_tokens)
                    s.reserved = s.admit_tokens
                    if spans is not None:
                        if s.preempted_at is not None:
                            spans.emit(
                                s.request.req_id,
                                "preempted",
                                s.preempted_at,
                                now - s.preempted_at,
                                batch=len(joiners),
                                model=model,
                                kv_tokens=s.admit_tokens,
                            )
                        else:
                            spans.emit(
                                s.request.req_id,
                                "queued",
                                s.request.arrival_s,
                                now - s.request.arrival_s,
                                batch=len(joiners),
                                model=model,
                                kv_tokens=s.admit_tokens,
                            )
                    s.preempted_at = None
                busy = True
                kernel.schedule(
                    now + self.prefill_seconds(joiners),
                    EventKind.PREFILL,
                    payload=(joiners, now),
                )
            elif running:
                # Each active sequence caches one more token this step;
                # preempt youngest-first until the growth fits.  The
                # arrival-time guard (worst-case footprint <= capacity)
                # means a lone survivor always fits, so this never
                # empties the batch.
                while not kv.fits(len(running)):
                    victim = running.pop()
                    kv.release(victim.reserved)
                    victim.reserved = 0
                    victim.preemptions += 1
                    victim.preempted_at = now
                    report.preemptions += 1
                    waiting.appendleft(victim)
                    if len(waiting) > report.peak_waiting:
                        report.peak_waiting = len(waiting)
                charged = width if self.scheduler.fixed_width else len(running)
                busy = True
                if fastmod is not None:
                    # Macro step: plan every boundary until the batch
                    # composition can change, reserve the whole run's KV
                    # growth arithmetically, and schedule one event at
                    # the segment's last boundary.  The skipped
                    # boundaries are credited so events_processed
                    # matches the event-at-a-time run.
                    seg = fastmod.plan_segment(
                        self, kernel, running, waiting, kv, now, max(1, charged)
                    )
                    kv.reserve_run(len(running), seg.steps)
                    for s in running:
                        s.reserved += seg.steps
                    kernel.credit_events(seg.steps - 1)
                    kernel.schedule(
                        seg.times[-1], EventKind.DECODE_STEP, payload=seg
                    )
                else:
                    kv.reserve(len(running))
                    for s in running:
                        s.reserved += 1
                    kernel.schedule(
                        now + self.decode_seconds(max(1, charged), running),
                        EventKind.DECODE_STEP,
                        payload=(list(running), now, max(1, charged)),
                    )

        def on_arrivals(now: float, events: List[Event]) -> None:
            for ev in events:
                r: GenRequest = ev.payload
                if r.total_tokens > kv.capacity_tokens:
                    # Could never run: even alone it would overflow the
                    # cache (or thrash forever under preemption).
                    report.record_rejection(GenRejection(r, rejected_at_s=now))
                    if spans is not None:
                        spans.emit(
                            r.req_id,
                            "rejected",
                            r.arrival_s,
                            now - r.arrival_s,
                            model=model,
                            kv_tokens=r.total_tokens,
                        )
                    continue
                waiting.append(SeqState(r))
            if len(waiting) > report.peak_waiting:
                report.peak_waiting = len(waiting)
            maybe_start(now)

        def on_prefill(now: float, events: List[Event]) -> None:
            nonlocal busy, width
            group, started = events[0].payload
            report.busy_prefill_s += now - started
            if spans is not None:
                # One engine span per prompt pass; its duration is the
                # *same float* busy_s just accumulated, so the recorded
                # "prefill-pass" total ties out exactly.
                spans.emit(
                    -1,
                    "prefill-pass",
                    started,
                    now - started,
                    batch=len(group),
                    model=model,
                    kv_tokens=kv.used_tokens,
                )
            fresh_batch = not running
            for s in group:
                s.emitted += 1
                if spans is not None:
                    spans.emit(
                        s.request.req_id,
                        "prefill",
                        started,
                        now - started,
                        batch=len(group),
                        model=model,
                        tokens=s.request.prompt_tokens + s.emitted,
                    )
                if s.first_token_s is None:
                    s.first_token_s = now  # TTFT: the first token streams
                else:
                    # A resumed (preempted) sequence: its next token
                    # lands here, and the gap is real ITL — the stall
                    # preemption cost it.
                    report.record_itl(now - s.last_token_s)
                s.last_token_s = now
                if s.emitted >= s.request.max_new_tokens:
                    complete(s, now)
                else:
                    running.append(s)
            if self.scheduler.fixed_width and fresh_batch:
                width = len(running)
            busy = False
            maybe_start(now)

        def on_decode(now: float, events: List[Event]) -> None:
            nonlocal busy
            payload = events[0].payload
            if fastmod is not None:
                if fastmod.apply_segment(payload, report, complete):
                    running[:] = [s for s in running if not s.done]
                busy = False
                maybe_start(now)
                return
            active, started, charged = payload
            report.busy_decode_s += now - started
            if spans is not None:
                spans.emit(
                    -1,
                    "decode-step",
                    started,
                    now - started,
                    batch=charged,
                    model=model,
                    kv_tokens=kv.used_tokens,
                    tokens=len(active),
                )
            # Collapse this boundary's equal gaps into (gap, count) runs
            # — the same sketch ingestion the macro-stepped path
            # performs per boundary, so both paths' ITL statistics see
            # identical updates in identical order.
            gap = None
            n_run = 0
            for s in active:
                g = now - s.last_token_s
                if g == gap:
                    n_run += 1
                else:
                    if n_run:
                        report.record_itl_run(gap, n_run)
                    gap = g
                    n_run = 1
            if n_run:
                report.record_itl_run(gap, n_run)
            finished = False
            for s in active:
                s.emitted += 1
                s.last_token_s = now
                if s.emitted >= s.request.max_new_tokens:
                    complete(s, now)
                    finished = True
            if finished:
                running[:] = [s for s in running if not s.done]
            busy = False
            maybe_start(now)

        end = kernel.run(
            {
                EventKind.ARRIVAL: on_arrivals,
                EventKind.PREFILL: on_prefill,
                EventKind.DECODE_STEP: on_decode,
            },
            obs=obs,
        )
        report.sim_end_s = end
        report.kv_high_water_tokens = kv.high_water_tokens
        kernel.finalize(report)
        if obs is not None and obs.telemetry is not None:
            obs.telemetry.record_counts(
                "genai",
                served=report.served,
                rejected=report.rejected_count,
                preempted=report.preemptions,
                tokens=report.tokens_out,
            )
        return report
