"""Generative model geometry: the decoder stack behind prefill and decode.

The serving layers price work through :class:`~repro.models.layers.ModelSpec`
objects, but a generative workload is not one fixed spec — its GEMM
activation dimension changes every event (prompt tokens at prefill, batch
width at decode).  A :class:`GenModelConfig` therefore carries the *geometry*
(widths, blocks, heads, vocab) and derives, on demand:

* :meth:`GenModelConfig.step_spec` — a one-token, batch-1 decoder pass as a
  GEMM-only ``ModelSpec``.  Registered in an
  :class:`~repro.serving.engine.OnlineServingEngine`, asking that spec for a
  "batch" of ``n`` prices the decoder GEMMs at activation dimension ``n`` —
  so one registered spec serves both phases: ``n = batch width`` is a decode
  step, ``n = total prompt tokens`` is a prefill pass, both priced by the
  existing backend latency models (StepStone chunked PIM, CPU, GPU roofline);
* :attr:`GenModelConfig.kv_bytes_per_token` — the KV-cache charge
  ``2 x blocks x d_model x dtype_bytes`` (a key and a value vector per
  block) that :class:`~repro.genai.kvcache.KVCacheBudget` levies per cached
  token;
* :attr:`GenModelConfig.weight_bytes` — decoder weights plus the
  vocab-projection matrix, the resident footprint a node must host before
  any KV fits.

:data:`GPT2_XL` matches the Table II GPT2 geometry the rest of the repo
calibrates against (48 blocks, 1600/6400 widths, 25 heads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.layers import ModelSpec, decoder_step_gemms

__all__ = ["GenModelConfig", "GPT2_XL"]


@dataclass(frozen=True)
class GenModelConfig:
    """Geometry of one autoregressive decoder stack.

    Args:
        name: Model label (also the engine registration key prefix).
        d_model: Residual width.
        d_ff: MLP hidden width.
        blocks: Decoder blocks.
        heads: Attention heads (``d_model`` must divide evenly).
        vocab: Vocabulary size (sampling cost and the LM-head weights).
        dtype_bytes: Bytes per weight/KV element (4 = fp32, matching the
            repo-wide calibration).
    """

    name: str
    d_model: int
    d_ff: int
    blocks: int
    heads: int
    vocab: int
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if min(self.d_model, self.d_ff, self.blocks, self.heads, self.vocab) <= 0:
            raise ValueError("all geometry dimensions must be positive")
        if self.d_model % self.heads:
            raise ValueError("heads must divide d_model")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def head_dim(self) -> int:
        """Per-head dimension (``d_model / heads``)."""
        return self.d_model // self.heads

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes one cached token occupies: a key and a value
        vector of ``d_model`` elements in every block."""
        return 2 * self.blocks * self.d_model * self.dtype_bytes

    @property
    def step_key(self) -> str:
        """The engine registration key of :meth:`step_spec`."""
        return f"{self.name}-step"

    def step_spec(self) -> ModelSpec:
        """One decoder pass over one token as a GEMM-only ``ModelSpec``.

        ``batch_size=1`` and activation dimension 1 make the engine's
        batch scaling exact: ``batch_latency(step_key, policy, n)`` runs
        the four per-block GEMMs at ``N = n``.  Attention, sampling, and
        the other CPU-resident ops are deliberately absent — they depend
        on per-sequence context lengths, so the generative engine prices
        them per event instead.
        """
        return ModelSpec(
            name=self.step_key,
            gemms=tuple(
                decoder_step_gemms(self.d_model, self.d_ff, 1, self.blocks)
            ),
            cpu_ops=(),
            batch_size=1,
        )

    @property
    def weight_bytes(self) -> float:
        """Resident weights: decoder GEMM matrices plus the LM head."""
        return (
            self.step_spec().total_weight_bytes
            + float(self.vocab) * self.d_model * self.dtype_bytes
        )


#: The Table II GPT2 geometry (GPT2-XL): the decode-serving default.
GPT2_XL = GenModelConfig(
    name="gpt2-xl",
    d_model=1600,
    d_ff=6400,
    blocks=48,
    heads=25,
    vocab=50257,
)
