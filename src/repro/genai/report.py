"""Generative serving metrics: TTFT, inter-token latency, token goodput.

Request latency is the wrong unit for generation — a sequence that streams
its first token in 300 ms and then types at 20 tokens/s *feels* fast even
if its last token lands 5 s after arrival.  A :class:`GenReport` therefore
tracks the three numbers the serving literature (and the paper's
small-batch thesis) actually argue about:

* **TTFT** — time to first token, arrival to prefill completion.  The
  queueing metric: static batching destroys it (arrivals wait for the
  running batch to drain), continuous batching protects it;
* **ITL** — inter-token latency, the gap between consecutive emitted
  tokens of one sequence.  The smoothness metric: it reflects decode-step
  cost at the running batch width, plus any stalls from prefills and
  preemptions cutting in;
* **tokens/s** — emitted tokens per simulated second, the goodput that
  divides into :meth:`GenReport.cost_per_1k_tokens` for the economics.

Accumulation rides PR 6's streaming primitives
(:class:`~repro.sim.stats.StreamStats` sketches, a
:class:`~repro.sim.stats.VersionedList` in full mode): ``record="full"``
keeps per-sequence :class:`GenCompletion` records, ``record="streaming"``
keeps only the flat-memory aggregates and raises
:class:`~repro.sim.stats.RecordingModeError` on per-sequence access —
counts, means, and TTFT answers match full mode exactly (percentiles are
sketched past the exact reservoir).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.genai.workload import GenRequest
from repro.serving.nodespec import NodeSpec
from repro.sim.stats import RecordingModeError, StreamStats, VersionedList

__all__ = ["GenCompletion", "GenRejection", "GenReport"]

_RECORD_MODES = ("full", "streaming")


@dataclass(frozen=True)
class GenCompletion:
    """One finished sequence with its phase timestamps."""

    request: GenRequest
    first_token_s: float
    finish_s: float
    tokens_out: int
    preemptions: int = 0

    @property
    def ttft_s(self) -> float:
        """Time to first token: arrival to prefill completion."""
        return self.first_token_s - self.request.arrival_s

    @property
    def e2e_s(self) -> float:
        """End-to-end latency: arrival to last token."""
        return self.finish_s - self.request.arrival_s


@dataclass(frozen=True)
class GenRejection:
    """A request refused at arrival (it could never fit the KV budget)."""

    request: GenRequest
    rejected_at_s: float
    reason: str = "exceeds-kv-capacity"


class GenReport:
    """Streaming TTFT/ITL/goodput accounting for one generative run."""

    def __init__(self, scheduler: str, record: str = "full") -> None:
        """Create an empty report.

        Args:
            scheduler: Label of the batching scheduler the run used.
            record: ``"full"`` keeps per-sequence records;
                ``"streaming"`` keeps aggregates only.

        Raises:
            ValueError: On an unknown recording mode.
        """
        if record not in _RECORD_MODES:
            raise ValueError(
                f"unknown record mode {record!r}; choose from {_RECORD_MODES}"
            )
        self.scheduler = scheduler
        self.record = record
        self.sim_end_s = 0.0
        self.tokens_out = 0
        self.preemptions = 0
        #: Peak depth of the admission queue — the saturation signal.
        self.peak_waiting = 0
        #: Peak KV tokens reserved at any event time (engine-filled).
        self.kv_high_water_tokens = 0
        #: The budget the run was admitted against (engine-filled).
        self.kv_capacity_tokens = 0
        #: Kernel events the run processed (engine-filled) — the
        #: denominator benchmarks divide wall time by.
        self.events_processed = 0
        #: Simulated seconds spent in prompt passes (engine-filled).
        #: Kept per phase so traced ``prefill-pass`` spans tie out with
        #: ``==`` — one accumulator per phase, same accumulation order.
        self.busy_prefill_s = 0.0
        #: Simulated seconds spent in decode boundaries (engine-filled).
        self.busy_decode_s = 0.0
        self._ttft = StreamStats()
        self._itl = StreamStats()
        self._rejected = 0
        self._completions: Optional[VersionedList] = (
            VersionedList() if record == "full" else None
        )

    def __repr__(self) -> str:
        return (
            f"GenReport(scheduler={self.scheduler!r}, record={self.record!r}, "
            f"served={self.served}, tokens_out={self.tokens_out}, "
            f"sim_end_s={self.sim_end_s:.3f})"
        )

    # ------------------------------------------------------------------ #
    # Recording (the engine's event paths)
    # ------------------------------------------------------------------ #

    def record_completion(self, c: GenCompletion) -> None:
        """Record one finished sequence (TTFT sample + token count)."""
        self._ttft.add(c.ttft_s)
        self.tokens_out += c.tokens_out
        if self._completions is not None:
            self._completions.append(c)

    def record_itl(self, gap_s: float) -> None:
        """Record one inter-token gap (every token after a sequence's
        first contributes exactly one)."""
        self._itl.add(gap_s)

    def record_itl_run(self, gap_s: float, n: int) -> None:
        """Record ``n`` consecutive inter-token gaps of one width.

        A decode boundary emits the same gap for every sequence that was
        active at the previous boundary, and a macro-stepped segment
        emits one gap per boundary for its whole batch — both the
        reference and fast engine paths feed the sketch the same
        ``(gap, count)`` runs, so their means and percentiles agree
        exactly (run-batched P² updates included).
        """
        self._itl.add_run(gap_s, n)

    def record_rejection(self, r: GenRejection) -> None:
        """Record one arrival-time rejection."""
        self._rejected += 1

    # ------------------------------------------------------------------ #
    # Per-sequence access (full mode; streaming raises)
    # ------------------------------------------------------------------ #

    @property
    def completions(self) -> List[GenCompletion]:
        """Per-sequence completion records (``record="full"`` only).

        Raises:
            RecordingModeError: In streaming mode.
        """
        if self._completions is None:
            raise RecordingModeError(
                "per-sequence completions are not kept in streaming mode; "
                're-run with record="full"'
            )
        return self._completions

    # ------------------------------------------------------------------ #
    # Aggregates (both modes)
    # ------------------------------------------------------------------ #

    @property
    def served(self) -> int:
        """Sequences that finished (both modes)."""
        return self._ttft.count

    @property
    def rejected_count(self) -> int:
        """Arrivals refused at admission (both modes)."""
        return self._rejected

    @property
    def mean_ttft_s(self) -> float:
        """Mean time to first token (NaN when nothing finished)."""
        return self._ttft.mean

    def ttft_percentile(self, q: float) -> float:
        """TTFT percentile: exact nearest-rank up to the sketch's
        reservoir, P² estimate beyond it."""
        return self._ttft.percentile(q)

    @property
    def p95_ttft_s(self) -> float:
        """95th-percentile time to first token."""
        return self.ttft_percentile(95)

    @property
    def mean_itl_s(self) -> float:
        """Mean inter-token gap (NaN when no sequence emitted twice)."""
        return self._itl.mean

    def itl_percentile(self, q: float) -> float:
        """Inter-token-latency percentile (sketched like TTFT)."""
        return self._itl.percentile(q)

    @property
    def itl_samples(self) -> int:
        """Inter-token gaps recorded (= tokens_out − first tokens −
        resumed-prefill emissions folded in; both modes)."""
        return self._itl.count

    @property
    def busy_s(self) -> float:
        """Simulated seconds a phase (prefill pass or decode boundary)
        was in flight — ``busy_prefill_s + busy_decode_s``, the busy
        total a traced run's engine spans reproduce bit-for-bit."""
        return self.busy_prefill_s + self.busy_decode_s

    @property
    def tokens_per_s(self) -> float:
        """Goodput: emitted tokens per simulated second."""
        if self.sim_end_s <= 0:
            return 0.0
        return self.tokens_out / self.sim_end_s

    def cost_per_1k_tokens(self, spec: NodeSpec) -> float:
        """Dollars per 1000 emitted tokens when ``spec`` ran this trace.

        Args:
            spec: The node whose hourly price paid for the run.

        Returns:
            ``hourly_cost x hours / kilotokens`` — infinity for a run
            that emitted nothing.
        """
        if self.tokens_out <= 0:
            return float("inf")
        hours = self.sim_end_s / 3600.0
        return spec.hourly_cost * hours / (self.tokens_out / 1000.0)

    def summary(self) -> str:
        """One-line human-readable digest of the run."""
        return (
            f"{self.scheduler:>10}: {self.served} seqs, "
            f"{self.tokens_out} tokens | "
            f"TTFT mean {self.mean_ttft_s * 1e3:.0f} ms "
            f"p95 {self.p95_ttft_s * 1e3:.0f} ms | "
            f"ITL mean {self.mean_itl_s * 1e3:.1f} ms | "
            f"{self.tokens_per_s:.1f} tok/s"
        )
