"""Macro-stepped decode: the generative token path without per-token events.

The generative engine's hot loop is the decode boundary: one kernel
event, one handler dispatch, one KV reservation, and one ITL sample per
active sequence — per emitted token.  But between *batch-composition
change points* nothing about a boundary is data-dependent:

* a join happens only at a prefill completion, and the schedulers prove
  (:meth:`~repro.genai.schedulers.ContinuousBatcher.segment_join_blocked`)
  when no join is even possible while the current batch holds;
* a leave happens at a sequence finish (its remaining-token count is
  known upfront) or a preemption (the exact overflow boundary solves
  from the KV budget: ``(capacity - used) // width`` more boundaries
  fit);
* an arrival/control/failure heap event can only matter from its
  timestamp on, and the kernel's :meth:`~repro.sim.kernel
  .DiscreteEventKernel.peek_time` seam exposes the next one.

So the batch width is constant across a whole *segment* of boundaries,
and each boundary's cost is one memoized lookup
(:meth:`~repro.genai.engine.GenerativeEngine.decode_step_seconds` keyed
on ``(charged width, actives, total context)`` — the context total
advances arithmetically by the width per boundary).  :func:`plan_segment`
walks the segment's boundary chain once, :func:`apply_segment` replays
its effects — busy seconds delta-by-delta, ITL samples as ``(gap,
count)`` runs into the PR 6 sketches, completions at the final boundary
— and the engine schedules **one** kernel event per segment, crediting
the collapsed boundaries so ``events_processed`` still matches.

Exactness is the contract (pinned by
``tests/test_genai_fast_differential.py``): boundary times are the same
sequential chain of float additions the reference loop performs
(``b_j = b_{j-1} + step_j``), busy/ITL deltas are the same stored
subtractions, and both paths ingest identical ``(gap, count)`` runs —
bit-for-bit equality, not tolerance.  That sequential chain is also why
the walk is a loop rather than a vectorized cumulative sum: the win is
O(1) kernel events per segment, and any reassociation of the float adds
would break the equality the differential harness asserts.
"""

from __future__ import annotations

from typing import List

__all__ = ["FAST_RUNS", "Segment", "count_run", "plan_segment", "apply_segment"]

#: Fast-path engagements since import — the differential harness and the
#: benchmarks snapshot it around a run to assert the gate actually took
#: the macro-stepped path (a silent fallback would make fast==slow
#: vacuous).
FAST_RUNS = 0


def count_run() -> None:
    """Record one fast-path engagement (called by the engine's gate)."""
    global FAST_RUNS
    FAST_RUNS += 1


class Segment:
    """One planned run of decode boundaries with constant composition.

    Scheduled as the payload of the single ``DECODE_STEP`` event at its
    last boundary; :func:`apply_segment` replays it there.
    """

    __slots__ = ("actives", "times", "deltas", "steps")

    def __init__(self, actives: List, times: List[float], deltas: List[float]):
        #: The running batch, frozen in list order for the whole segment.
        self.actives = actives
        #: Boundary instants ``b_1 .. b_k`` — each the reference loop's
        #: exact ``schedule`` float for that boundary.
        self.times = times
        #: ``b_j - b_{j-1}`` as stored subtractions — the exact floats
        #: the reference loop adds to ``busy_decode_s`` and records as
        #: continuing-member ITL gaps.
        self.deltas = deltas
        #: Boundary count ``k`` (>= 1).
        self.steps = len(times)


def plan_segment(engine, kernel, running, waiting, kv, now, charged) -> Segment:
    """Walk the boundary chain until the batch composition can change.

    The segment length is the tightest of three bounds:

    * the nearest finish — ``min(max_new - emitted)`` boundaries away;
    * KV saturation — ``(capacity - used) // width`` boundaries fit
      before the growth the reference loop would preempt on (>= 1 after
      the caller's preemption loop re-established ``fits(width)``);
    * the next pending kernel event, but only when the scheduler says a
      join is possible mid-segment
      (:meth:`~repro.genai.schedulers.ContinuousBatcher
      .segment_join_blocked`) — the segment stops at the first boundary
      at or past that instant, where the reference loop's ``maybe_start``
      would see the new arrival.

    Args:
        engine: The :class:`~repro.genai.engine.GenerativeEngine`.
        kernel: The run's kernel (peeked, never consumed).
        running: The non-empty running batch (post-preemption).
        waiting: The admission queue at this boundary.
        kv: The run's KV budget, *before* this segment's reservations.
        now: The segment's start instant (the previous boundary).
        charged: GEMM width each boundary is charged at (>= 1).

    Returns:
        The planned :class:`Segment` (always at least one boundary).
    """
    w = len(running)
    k_cap = min(s.request.max_new_tokens - s.emitted for s in running)
    j_kv = (kv.capacity_tokens - kv.used_tokens) // w
    if j_kv < k_cap:
        k_cap = j_kv
    bound_t = None
    if not engine.scheduler.segment_join_blocked(
        waiting, running, engine.max_batch
    ):
        bound_t = kernel.peek_time()
    ctx = sum(s.request.prompt_tokens + s.emitted + 1 for s in running)
    step_cost = engine.decode_step_seconds
    times: List[float] = []
    deltas: List[float] = []
    b = now
    for _ in range(k_cap):
        nb = b + step_cost(charged, w, ctx)
        times.append(nb)
        deltas.append(nb - b)
        b = nb
        ctx += w
        if bound_t is not None and nb >= bound_t:
            break
    return Segment(list(running), times, deltas)


def apply_segment(seg: Segment, report, complete) -> bool:
    """Replay a segment's effects at its final boundary.

    Reproduces exactly what ``k`` reference boundaries would have
    recorded: ``busy_decode_s`` grows delta-by-delta in boundary order;
    the first boundary's ITL gaps (which may differ between continuing
    members and fresh joiners) collapse into ``(gap, count)`` runs in
    batch order, and every later boundary is one run of the whole batch;
    finishes complete at the final boundary in batch order.

    Args:
        seg: The planned segment (the event payload).
        report: The run's :class:`~repro.genai.report.GenReport`.
        complete: The engine's completion closure.

    Returns:
        Whether any sequence finished (the caller compacts ``running``).
    """
    actives = seg.actives
    times = seg.times
    deltas = seg.deltas
    for d in deltas:
        report.busy_decode_s += d
    record_run = report.record_itl_run
    b1 = times[0]
    gap = None
    n_run = 0
    for s in actives:
        g = b1 - s.last_token_s
        if g == gap:
            n_run += 1
        else:
            if n_run:
                record_run(gap, n_run)
            gap = g
            n_run = 1
    if n_run:
        record_run(gap, n_run)
    n = len(actives)
    for j in range(1, seg.steps):
        record_run(deltas[j], n)
    k = seg.steps
    end = times[-1]
    finished = False
    for s in actives:
        s.emitted += k
        s.last_token_s = end
        if s.emitted >= s.request.max_new_tokens:
            complete(s, end)
            finished = True
    return finished
