"""The KV-cache budget: memory capacity as a bound on concurrency.

Elsewhere in the repo :attr:`NodeSpec.memory_bytes` only decides *which
models fit* a node.  Generative serving adds a second, dynamic claim on the
same memory: every cached token of every in-flight sequence holds
``2 x blocks x d_model x dtype_bytes`` of keys and values, so the memory
left after hosting the weights bounds how many sequences can decode
concurrently.  A :class:`KVCacheBudget` is that leftover, denominated in
tokens:

* the engine *reserves* tokens before the work that writes them is
  scheduled and *releases* them when a sequence finishes or is preempted —
  so ``used_tokens <= capacity_tokens`` holds at every event time, by
  construction (the saturation test drives the budget to the wall and
  observes queueing, never overflow);
* an admission that does not fit waits in the queue; a decode step that
  cannot grow preempts the youngest running sequence back to the queue
  (vLLM-style recompute semantics: its cache is dropped, its emitted
  tokens are kept, re-admission re-prefills prompt + emitted);
* ``high_water_tokens`` records the run's peak claim — the number the
  invariant tests assert against.

This is why a 128 GB StepStone socket and a 12 GB GPU are *differently
sized serving machines* even for the same model: after GPT2-XL's ~6 GB of
weights the GPU's remaining device memory holds ~10k cached tokens while
the buffered-DIMM node holds ~200k.
"""

from __future__ import annotations

from repro.genai.model import GenModelConfig
from repro.serving.nodespec import NodeSpec

__all__ = ["KVCacheBudget"]


class KVCacheBudget:
    """Token-denominated KV-cache capacity with reserve/release accounting."""

    __slots__ = ("capacity_tokens", "used_tokens", "high_water_tokens")

    def __init__(self, capacity_tokens: int) -> None:
        """Create an empty budget.

        Args:
            capacity_tokens: Cached tokens the node can hold (positive).

        Raises:
            ValueError: If the capacity is not positive.
        """
        if capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive")
        self.capacity_tokens = int(capacity_tokens)
        self.used_tokens = 0
        self.high_water_tokens = 0

    @classmethod
    def for_node(cls, spec: NodeSpec, config: GenModelConfig) -> "KVCacheBudget":
        """Size the budget from a node's memory net of hosted weights.

        Args:
            spec: The node hosting the model.
            config: The decoder geometry (weights and per-token charge).

        Returns:
            A budget of ``(memory - weights) // kv_bytes_per_token``.

        Raises:
            ValueError: If the weights alone leave no room for cache.
        """
        free = spec.memory_bytes - config.weight_bytes
        tokens = int(free // config.kv_bytes_per_token)
        if tokens <= 0:
            raise ValueError(
                f"{config.name} weights ({config.weight_bytes / 1e9:.1f} GB) "
                f"leave no KV room on {spec.name} "
                f"({spec.memory_bytes / 1e9:.1f} GB)"
            )
        return cls(tokens)

    def fits(self, tokens: int) -> bool:
        """Whether ``tokens`` more cached tokens fit right now."""
        return self.used_tokens + tokens <= self.capacity_tokens

    def reserve(self, tokens: int) -> None:
        """Claim ``tokens`` of cache; the caller must have checked ``fits``.

        Raises:
            RuntimeError: On overflow — an engine accounting bug, never a
                workload condition (workloads queue instead).
        """
        if tokens < 0:
            raise RuntimeError("cannot reserve a negative token count")
        if not self.fits(tokens):
            raise RuntimeError(
                f"KV budget overflow: {self.used_tokens} + {tokens} > "
                f"{self.capacity_tokens}"
            )
        self.used_tokens += tokens
        if self.used_tokens > self.high_water_tokens:
            self.high_water_tokens = self.used_tokens

    def reserve_run(self, tokens: int, steps: int) -> None:
        """Claim ``steps`` successive reservations of ``tokens`` each.

        The macro-step twin of calling :meth:`reserve` ``steps`` times:
        usage only grows across the run (nothing releases between the
        boundaries of one decode segment), so the high-water mark lands
        on exactly the value the per-step path records — the final
        usage.

        Raises:
            RuntimeError: On overflow — the caller must have solved for
                the largest ``steps`` that fits, so this stays an
                accounting bug, never a workload condition.
        """
        if tokens < 0 or steps < 0:
            raise RuntimeError("cannot reserve a negative token count")
        total = tokens * steps
        if not self.fits(total):
            raise RuntimeError(
                f"KV budget overflow: {self.used_tokens} + {total} > "
                f"{self.capacity_tokens}"
            )
        self.used_tokens += total
        if self.used_tokens > self.high_water_tokens:
            self.high_water_tokens = self.used_tokens

    def release(self, tokens: int) -> None:
        """Return ``tokens`` of cache (a finished or preempted sequence).

        Raises:
            RuntimeError: If more is released than was reserved.
        """
        if tokens < 0 or tokens > self.used_tokens:
            raise RuntimeError(
                f"KV release of {tokens} exceeds reservation {self.used_tokens}"
            )
        self.used_tokens -= tokens

    def __repr__(self) -> str:
        return (
            f"KVCacheBudget(used={self.used_tokens}/{self.capacity_tokens}, "
            f"high_water={self.high_water_tokens})"
        )
