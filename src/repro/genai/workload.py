"""Generative request streams: timestamped prompts with seeded output lengths.

A generative request is not one unit of work — it is ``1 + max_new_tokens``
units revealed over time, and *the server does not know the output length
in advance*.  That asymmetry is what separates the two schedulers this
package compares: a static batcher must provision every slot for the
longest sequence in the batch, a continuous batcher reclaims each slot the
moment its sequence stops.  ``max_new_tokens`` here plays the role of the
hidden EOS position: the workload draws it from a seeded RNG, the engine
discovers it token by token.

Streams come in two shapes:

* :func:`gen_requests` — open-loop Poisson arrivals at a constant rate
  (the single-regime experiments);
* :func:`trace_gen_requests` — arrival times from any
  :class:`~repro.autoscale.traces.RateTrace` (diurnal, flash-crowd, ...)
  via the same seeded Lewis-Shedler thinning the autoscale layer uses,
  with prompt/output lengths layered on deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.autoscale.traces import RateTrace, nhpp_requests

__all__ = ["GenRequest", "gen_requests", "trace_gen_requests"]


@dataclass(frozen=True)
class GenRequest:
    """One timestamped generation request.

    Args:
        req_id: Caller-chosen id (unique within a stream).
        arrival_s: Arrival instant on the simulated clock.
        prompt_tokens: Context tokens the request arrives with (processed
            in one prefill pass).
        max_new_tokens: Tokens the sequence will emit before stopping —
            drawn by the workload, unknown to the scheduler until emitted.
    """

    req_id: int
    arrival_s: float
    prompt_tokens: int
    max_new_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")

    @property
    def total_tokens(self) -> int:
        """Worst-case cached footprint: prompt plus every emitted token."""
        return self.prompt_tokens + self.max_new_tokens


def _with_lengths(
    arrivals: List[float],
    prompt_range: Tuple[int, int],
    output_range: Tuple[int, int],
    seed: int,
    start_id: int,
) -> List[GenRequest]:
    """Attach seeded prompt/output lengths to a sorted arrival list."""
    lo_p, hi_p = prompt_range
    lo_o, hi_o = output_range
    if not (0 < lo_p <= hi_p and 0 < lo_o <= hi_o):
        raise ValueError("length ranges must be positive and ordered")
    rng = random.Random(seed)
    return [
        GenRequest(
            req_id=start_id + i,
            arrival_s=t,
            prompt_tokens=rng.randint(lo_p, hi_p),
            max_new_tokens=rng.randint(lo_o, hi_o),
        )
        for i, t in enumerate(arrivals)
    ]


def gen_requests(
    rate_rps: float,
    duration_s: float,
    prompt_range: Tuple[int, int] = (16, 64),
    output_range: Tuple[int, int] = (8, 96),
    seed: int = 0,
    start_id: int = 0,
) -> List[GenRequest]:
    """Open-loop Poisson generation stream with seeded lengths.

    Args:
        rate_rps: Mean arrival rate, sequences per second.
        duration_s: Arrival window.
        prompt_range: Inclusive ``(min, max)`` prompt lengths (uniform).
        output_range: Inclusive ``(min, max)`` output lengths (uniform).
        seed: RNG seed — one seed drives both arrivals and lengths, so
            equal seeds give identical streams.
        start_id: First request id.

    Returns:
        Arrival-ordered requests.
    """
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    rng = random.Random(seed)
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_rps)
        if t >= duration_s:
            break
        arrivals.append(t)
    return _with_lengths(arrivals, prompt_range, output_range, seed + 1, start_id)


def trace_gen_requests(
    trace: RateTrace,
    duration_s: float,
    prompt_range: Tuple[int, int] = (16, 64),
    output_range: Tuple[int, int] = (8, 96),
    seed: int = 0,
    start_id: int = 0,
) -> List[GenRequest]:
    """Generation stream whose arrival *rate* follows a traffic trace.

    Arrival instants come from the autoscale layer's seeded
    Lewis-Shedler thinning of ``trace`` (so a diurnal generative day and
    a diurnal classification day share arrival statistics); prompt and
    output lengths are layered on top from a derived seed.

    Args:
        trace: The time-varying rate profile.
        duration_s: Arrival window.
        prompt_range: Inclusive prompt-length bounds (uniform).
        output_range: Inclusive output-length bounds (uniform).
        seed: Drives both the thinning and the lengths.
        start_id: First request id.

    Returns:
        Arrival-ordered requests.
    """
    arrivals = [
        r.arrival_s
        for r in nhpp_requests(trace, "gen", duration_s, seed=seed)
    ]
    return _with_lengths(arrivals, prompt_range, output_range, seed + 1, start_id)
