"""Generative LLM serving: prefill/decode phases, KV pressure, batching.

The paper's thesis — batch-1, bandwidth-bound GEMV inference is where
main-memory acceleration wins — meets its modern extreme in autoregressive
decode: every generated token re-streams the full decoder weights at an
activation dimension equal to the batch width.  This package lifts the
repo's static GPT2 ``ModelSpec`` into a first-class serving workload on
the shared sim kernel:

* :class:`GenRequest` streams (:func:`gen_requests`,
  :func:`trace_gen_requests`) carry prompts and seeded output lengths;
* a :class:`GenerativeEngine` serves them in PREFILL and DECODE_STEP
  events priced by the existing backend latency models, under a
  :class:`StaticBatcher` or :class:`ContinuousBatcher`;
* a :class:`KVCacheBudget` charges cached tokens against node memory net
  of weights — capacity bounds *concurrency*, with queueing and
  preempt-to-requeue at the wall;
* a :class:`GenReport` streams TTFT, inter-token latency, and tokens/s
  through the PR 6 statistics core.

See the ``serve-genai`` experiment for the two headline results
(continuous > static under mixed output lengths; StepStone under-pricing
the GPU on decode-heavy traffic).
"""

from repro.genai.engine import GenerativeEngine, SeqState
from repro.genai.kvcache import KVCacheBudget
from repro.genai.model import GPT2_XL, GenModelConfig
from repro.genai.report import GenCompletion, GenRejection, GenReport
from repro.genai.schedulers import ContinuousBatcher, StaticBatcher
from repro.genai.workload import GenRequest, gen_requests, trace_gen_requests

__all__ = [
    "GPT2_XL",
    "GenModelConfig",
    "GenRequest",
    "gen_requests",
    "trace_gen_requests",
    "KVCacheBudget",
    "StaticBatcher",
    "ContinuousBatcher",
    "GenerativeEngine",
    "SeqState",
    "GenCompletion",
    "GenRejection",
    "GenReport",
]
