"""Scattered headline claims (§I, §V-B/G) not tied to a single figure.

One runner collecting the paper's quantitative one-liners:

* StepStone GEMM flow improves 35-55% over the prior complex-mapping PIM
  (Chopim) — §I contribution 2;
* controller-side localization/reduction acceleration adds up to ~40% — §I
  contribution 3 ("accelerate ... to improve performance by up to an
  additional 40%");
* long-running kernels improve PIM performance ~5.5x under concurrent
  memory-intensive CPU execution — §I contribution 4;
* batch splitting keeps StepStone ahead of the CPU well past its batch-32
  saturation point (the §V-B "until N = 384" argument for BERT's MLP).
"""

from __future__ import annotations

from repro.colocation.contention import colocation_speedup
from repro.colocation.traffic import SPEC_MIX
from repro.core.config import StepStoneConfig
from repro.core.executor import execute_plan
from repro.core.gemm import GemmShape, plan_gemm
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel
from repro.serving.scheduler import BatchServer

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="claims",
        title="Headline claims (§I contributions, §V-B batch splitting)",
        paper_reference="§I; §V-B; §V-G",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()

    # ---- Claim 1: StepStone vs Chopim end to end (35-55%). --------------
    # The §I figure is the end-to-end STP-over-eCHO gain; the paper's own
    # Fig. 8 bars give 32-59% across the four models, which is what we
    # measure here.
    from repro.models.inference import InferenceEngine, all_models

    engine = InferenceEngine()
    models = all_models()
    if fast:
        models = {"DLRM": models["DLRM"]}
    flow_gains = []
    for name, spec in models.items():
        stp_r = engine.run(spec, "stp")
        echo_r = engine.run(spec, "echo")
        gain = (echo_r.total_s - stp_r.total_s) / stp_r.total_s
        flow_gains.append(gain)
        res.add(claim="flow-vs-chopim", config=name, improvement_pct=100 * gain)
    res.check(
        "StepStone improves on Chopim end to end by ~35-55% (paper band)",
        all(0.20 <= g <= 0.80 for g in flow_gains),
    )

    # ---- Claim 2: DMA-accelerated localization/reduction (~40%). -------
    # Same plan, flows differing only in who moves the data.
    dma_gains = []
    for m, k, n in ([(1024, 4096, 16)] if fast else [(1024, 4096, 16), (8192, 2048, 8)]):
        plan = plan_gemm(cfg, sky, GemmShape(m, k, n), PimLevel.BANKGROUP)
        accel = execute_plan(cfg, plan, flow="stepstone")
        # CPU-driven loc/red but keep the coarse kernels: compare phase sums.
        cpu_side = execute_plan(cfg, plan, flow="echo")
        overhead_accel = accel.breakdown.localization + accel.breakdown.reduction
        overhead_cpu = cpu_side.breakdown.localization + cpu_side.breakdown.reduction
        gain = (cpu_side.breakdown.total - accel.breakdown.total) / accel.breakdown.total
        dma_gains.append(gain)
        res.add(
            claim="dma-loc-red",
            config=f"{m}x{k} N={n}",
            accel_overhead=overhead_accel,
            cpu_overhead=overhead_cpu,
            improvement_pct=100 * gain,
        )
    res.check(
        "DMA loc/red acceleration gives a double-digit-% win (paper: up to 40%)",
        any(0.10 <= g <= 0.9 for g in dma_gains),
    )

    # ---- Claim 3: long-running kernels under colocation (~5.5x). -------
    u = SPEC_MIX()
    colo = colocation_speedup(cfg, sky, GemmShape(16384, 1024, 4), PimLevel.BANKGROUP, u)
    res.add(claim="long-kernels-colocated", config="16384x1024 BG", speedup=colo["speedup"])
    res.check(
        "long-running kernels ~5.5x under CPU colocation (paper: 5.5x)",
        3.5 <= colo["speedup"] <= 7.5,
    )

    # ---- Claim 4: batch splitting break-even (§V-B). --------------------
    srv = BatchServer()
    be = srv.break_even_batch(1024, 4096, n_max=1024)
    res.add(claim="split-break-even", config="1024x4096 (BERT MLP)", break_even_batch=be)
    res.check(
        "batch splitting keeps PIM ahead well past batch 32",
        be >= 2 * srv.max_pim_batch,
    )
    res.note(
        f"break-even batch {be} vs the paper's 384: the paper derives 384 "
        "from a 12x STP-vs-CPU gap at batch 32, which contradicts its own "
        "Fig. 6 (2.2-2.8x at batch 32); with the Fig. 6-consistent gap the "
        "break-even lands near 96."
    )
    return res
