"""Fleet serving: routing, node scaling, and capacity planning.

The paper positions StepStone as a datacenter substrate — cheap bandwidth
per node that a provider deploys as a fleet.  This experiment runs the
:mod:`repro.cluster` simulator over three questions the single-node
``serve`` experiment cannot ask:

* **Routing** — on a 3-node fleet with overlapping replica placement and
  skewed per-model traffic (BERT-heavy, with XLM and DLRM sharing nodes),
  does load-aware routing beat oblivious round-robin?  Join-shortest-queue
  shifts the hot model's requests away from the node that also serves XLM
  batches; round-robin splits blindly and sheds more of its SLO budget.
* **Node scaling** — sustained goodput vs node count at a fixed offered
  overload, per dispatch policy (the chart): the hybrid fleet reaches the
  offered rate with fewer nodes than cpu- or pim-only fleets.
* **Capacity planning** — the planner's binary search for the minimum
  node count holding a p99 SLO at a target rate, per policy.

Everything is seeded and simulated, so the whole experiment is exactly
reproducible: same seed, same report.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import CapacityPlanner, Cluster, ModelPlacement
from repro.experiments.common import ExperimentResult
from repro.serving.engine import (
    OnlineServingEngine,
    merge_streams,
    poisson_requests,
)

__all__ = ["run", "skew_stream", "skew_placement"]

SEED = 42
#: Skewed-traffic scenario: offered req/s per model on the 3-node fleet.
SKEW_RPS = {"BERT": 450.0, "XLM": 18.0, "DLRM": 100.0}
#: Overlapping replica placement — node 1 hosts both heavy models, which
#: is exactly where oblivious routing hurts.
SKEW_REPLICAS = {"BERT": [0, 1], "XLM": [1, 2], "DLRM": [2, 0]}
#: Per-model SLO as a multiple of batch-1 CPU latency (tight enough that
#: an overloaded node must shed).
SLO_X_CPU_BATCH1 = 4.0
ROUTERS = ("round-robin", "least-loaded", "affinity")


def skew_stream(engine: OnlineServingEngine, duration_s: float):
    """The canonical skewed-traffic stream (shared with tests/benchmarks)."""
    slos = {
        "BERT": SLO_X_CPU_BATCH1 * engine.min_latency("BERT", "cpu"),
        "XLM": SLO_X_CPU_BATCH1 * engine.min_latency("XLM", "cpu"),
        "DLRM": 0.5,  # absolute: rides along behind the big models' batches
    }
    return merge_streams(
        *(
            poisson_requests(
                model,
                rate_rps=SKEW_RPS[model],
                duration_s=duration_s,
                seed=SEED + i,
                slo_s=slos[model],
                start_id=i * 1_000_000,
            )
            for i, model in enumerate(sorted(SKEW_RPS))
        )
    )


def skew_placement() -> ModelPlacement:
    """The overlapping 3-node replica placement the skew scenario runs on."""
    return ModelPlacement(
        replicas={m: list(nids) for m, nids in SKEW_REPLICAS.items()},
        used_bytes={},
    )


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="serve-cluster",
        title="Fleet serving: placement, routing, and capacity planning",
        paper_reference="§I/§VII StepStone as a datacenter substrate (fleet view)",
    )
    engine = OnlineServingEngine()
    skew_duration = 1.2 if fast else 2.0
    placement = skew_placement()
    stream = skew_stream(engine, skew_duration)

    # ---- Routing policies on a hybrid fleet under skewed traffic ------ #
    by_router: Dict[str, object] = {}
    for router in ROUTERS:
        cluster = Cluster(
            3, policy="hybrid", router=router, engine=engine, placement=placement
        )
        rep = cluster.run(stream)
        by_router[router] = rep
        res.add(
            section="router",
            case=f"3xhybrid/{router}",
            served=rep.served,
            rejected=len(rep.rejected),
            p50_ms=rep.p50_s * 1e3,
            p99_ms=rep.p99_s * 1e3,
            goodput_rps=rep.goodput_rps,
            util=rep.mean_utilization,
        )
    res.check(
        "join-shortest-queue sustains >= round-robin under skewed traffic",
        by_router["least-loaded"].goodput_rps
        >= by_router["round-robin"].goodput_rps - 1e-9,
    )
    res.note(
        "skew: node 1 hosts both heavy models (BERT + XLM); round-robin "
        "keeps sending it half the BERT stream while node 2 idles, "
        "join-shortest-queue routes around the contention "
        f"(per-node served, RR: {by_router['round-robin'].served_per_node()}, "
        f"JSQ: {by_router['least-loaded'].served_per_node()})"
    )

    # ---- Dispatch policies at equal node count ------------------------ #
    by_policy: Dict[str, object] = {}
    for policy in ("cpu", "pim", "hybrid"):
        cluster = Cluster(
            3, policy=policy, router="least-loaded", engine=engine, placement=placement
        )
        rep = cluster.run(stream)
        by_policy[policy] = rep
        res.add(
            section="policy",
            case=f"3x{policy}/least-loaded",
            served=rep.served,
            rejected=len(rep.rejected),
            p50_ms=rep.p50_s * 1e3,
            p99_ms=rep.p99_s * 1e3,
            goodput_rps=rep.goodput_rps,
            util=rep.mean_utilization,
        )
    res.check(
        "hybrid fleet sustains >= cpu-only fleet at equal node count",
        by_policy["hybrid"].goodput_rps >= by_policy["cpu"].goodput_rps - 1e-9,
    )
    res.check(
        "hybrid fleet sustains >= pim-only fleet at equal node count",
        by_policy["hybrid"].goodput_rps >= by_policy["pim"].goodput_rps - 1e-9,
    )

    # ---- Determinism: the simulator is seeded end to end -------------- #
    again = Cluster(
        3, policy="hybrid", router="least-loaded", engine=engine, placement=placement
    ).run(skew_stream(engine, skew_duration))
    ref = by_router["least-loaded"]
    res.check(
        "deterministic: same seed reproduces the same report",
        (again.served, len(again.rejected), again.p99_s, again.goodput_rps)
        == (ref.served, len(ref.rejected), ref.p99_s, ref.goodput_rps),
    )

    # ---- Node scaling at fixed offered overload (the chart) ----------- #
    planner = CapacityPlanner(
        {"BERT": 0.9, "DLRM": 0.1},
        engine=engine,
        n_requests=240 if fast else 480,
        seed=SEED,
    )
    node_counts = [1, 2, 4] if fast else [1, 2, 4, 8]
    offered = 600.0
    scale_slo_s = 1.0
    curves = {
        policy: planner.throughput_curve(
            node_counts, policy, offered, slo_s=scale_slo_s
        )
        for policy in ("cpu", "pim", "hybrid")
    }
    scaling_rows: List[Dict[str, float]] = []
    for i, n in enumerate(node_counts):
        row = {"section": "scaling", "nodes": n}
        for policy, curve in curves.items():
            row[policy] = curve[i][1].goodput_rps
        scaling_rows.append(row)
        res.add(**row)
    res.check(
        "hybrid goodput >= cpu goodput at every node count",
        all(r["hybrid"] >= r["cpu"] - 1e-9 for r in scaling_rows),
    )
    res.check(
        "goodput scales: more hybrid nodes never serve less",
        all(
            a["hybrid"] <= b["hybrid"] + 1e-9
            for a, b in zip(scaling_rows, scaling_rows[1:])
        ),
    )

    # ---- Capacity planning: minimum nodes for a target + SLO ---------- #
    plan_policies = ("cpu", "hybrid") if fast else ("cpu", "pim", "hybrid")
    planner.n_requests = 150 if fast else 300
    planner.window_slos = 2.0 if fast else 5.0
    plans = {}
    for policy in plan_policies:
        plan = planner.min_nodes(
            policy, target_rps=offered, p99_slo_s=scale_slo_s, max_nodes=32
        )
        plans[policy] = plan
        res.add(
            section="planner",
            case=f"{policy}@{offered:.0f}rps",
            nodes=plan.nodes,
            p99_ms=plan.report.p99_s * 1e3,
            goodput_rps=plan.report.goodput_rps,
            probes=len(plan.probes),
        )
    res.check(
        "planner: hybrid needs no more nodes than cpu for the same SLO",
        plans["hybrid"].nodes <= plans["cpu"].nodes,
    )
    res.note(
        "planner mix 90% BERT / 10% DLRM at "
        f"{offered:.0f} req/s, p99 SLO {scale_slo_s * 1e3:.0f} ms: "
        + ", ".join(f"{p} -> {plans[p].nodes} nodes" for p in plan_policies)
    )

    res.chart = {
        "kind": "scaling",
        "rows": scaling_rows,
        "x_key": "nodes",
        "y_keys": ["cpu", "pim", "hybrid"],
    }
    return res
