"""Table I workloads: StepStone latency for every common inference GEMM.

Not a paper *result* table per se (Table I lists the shapes), but this
runner exercises every Table I GEMM through the scheduler, reporting the
chosen PIM configuration and latency — the per-shape behaviour that the
rest of the evaluation builds on.
"""

from __future__ import annotations

from repro.baselines.cpu import CpuGemmModel
from repro.core.config import StepStoneConfig
from repro.core.scheduler import choose_execution
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.workloads.gemm_specs import TABLE1_GEMMS

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="tab01",
        title="Table I GEMMs through the StepStone scheduler",
        paper_reference="Table I; §III-E level selection",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    cpu = CpuGemmModel()
    batch = 4
    for entry in TABLE1_GEMMS:
        shape = entry.shape(min(batch, entry.batch_range[1]))
        choice = choose_execution(cfg, sky, shape)
        cpu_cycles = cpu.gemm_cycles(shape)
        res.add(
            model=entry.model,
            layer=entry.layer,
            weights=f"{entry.m}x{entry.k}",
            batch=shape.n,
            chosen=choice.level.short + (f"/half^{choice.pinned_id_bits}" if choice.pinned_id_bits else ""),
            pim_cycles=choice.cycles,
            cpu_cycles=cpu_cycles,
            speedup_vs_cpu=cpu_cycles / choice.cycles,
        )
    big = [r for r in res.rows if r["weights"] in ("4096x1024", "1024x4096", "6400x1600", "512x2560")]
    res.check(
        "PIM wins on every large memory-resident GEMM",
        all(r["speedup_vs_cpu"] > 1.0 for r in big),
    )
    res.check(
        "tiny layers may stay on CPU or subset PIMs",
        any(r["speedup_vs_cpu"] < 1.0 or "half" in r["chosen"] for r in res.rows),
    )
    return res
