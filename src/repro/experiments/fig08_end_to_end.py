"""Fig. 8: end-to-end inference, normalized execution time.

Runs DLRM / GPT2 / XLM / BERT under the seven backends (CPU, iCPU, PEI,
nCHO, eCHO, STP*, STP) and reports the stacked components PIM_DV / PIM_BG /
CPU_GEMM / CPU_Other normalized to the idealized CPU (the paper's bar
heights: its CPU bars read 8.4 / 3.1 / 2.8 / 7.2 against iCPU = 1).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.models.inference import BACKENDS, InferenceEngine, all_models

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig08",
        title="End-to-end inference normalized to iCPU",
        paper_reference="Fig. 8; §V-B",
    )
    engine = InferenceEngine()
    models = all_models()
    if fast:
        models = {k: models[k] for k in ("DLRM", "BERT")}
    summary = {}
    for name, spec in models.items():
        results = engine.run_all(spec)
        icpu = results["icpu"]
        for backend in BACKENDS:
            r = results[backend]
            norm = r.normalized_to(icpu)
            res.add(
                model=name,
                backend=backend,
                PIM_DV=norm["PIM_DV"],
                PIM_BG=norm["PIM_BG"],
                CPU_GEMM=norm["CPU_GEMM"],
                CPU_Other=norm["CPU_Other"],
                total=norm["total"],
            )
        summary[name] = results

    for name, results in summary.items():
        t = {b: results[b].total_s for b in BACKENDS}
        res.check(f"{name}: STP fastest PIM backend", t["stp"] <= min(t["pei"], t["ncho"], t["echo"]) * 1.001)
        res.check(f"{name}: STP beats CPU", t["stp"] < t["cpu"])
        res.check(f"{name}: eCHO beats nCHO (grouping recovers locality)", t["echo"] < t["ncho"])
        res.note(
            f"{name}: CPU/STP = {t['cpu'] / t['stp']:.1f}x "
            f"(paper: up to 16x; BERT 12x)"
        )
    res.check(
        "XLM switches PIM levels as N grows",
        summary.get("XLM", summary[list(summary)[0]])
        and (fast or summary["XLM"]["stp"].level_switches == 1),
    )
    res.note(
        "Normalization deltas vs the paper are expected: the measured-CPU "
        "substitute is calibrated to the 12x batch-1 claim of SV-A, which "
        "implies smaller CPU/iCPU bars than Fig. 8 shows (see EXPERIMENTS.md)."
    )
    res.chart = {
        "kind": "stacked",
        "category_key": "backend",
        "component_keys": ["PIM_DV", "PIM_BG", "CPU_GEMM", "CPU_Other"],
    }
    return res
