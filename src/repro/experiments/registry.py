"""Experiment registry: id -> runner."""

from __future__ import annotations

import inspect
from typing import Callable, Dict

from repro.experiments.common import ExperimentResult
from repro.experiments import (
    ablations,
    claims,
    fig01_roofline,
    tab01_workloads,
    fig06_latency,
    fig07_roofline_pim,
    fig08_end_to_end,
    fig09_agen,
    fig10_parallelism,
    fig11_mapping,
    fig12_scratchpad,
    fig13_colocation,
    fig14_energy,
    serve_autoscale,
    serve_chaos,
    serve_cluster,
    serve_fast,
    serve_genai,
    serve_hetero,
    serve_observe,
    serve_online,
    serve_scale,
)

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig01": fig01_roofline.run,
    "tab01": tab01_workloads.run,
    "fig06": fig06_latency.run,
    "fig07": fig07_roofline_pim.run,
    "fig08": fig08_end_to_end.run,
    "fig09": fig09_agen.run,
    "fig10": fig10_parallelism.run,
    "fig11": fig11_mapping.run,
    "fig12": fig12_scratchpad.run,
    "fig13": fig13_colocation.run,
    "fig14": fig14_energy.run,
    "claims": claims.run,
    "ablations": ablations.run,
    "serve": serve_online.run,
    "serve-cluster": serve_cluster.run,
    "serve-autoscale": serve_autoscale.run,
    "serve-genai": serve_genai.run,
    "serve-hetero": serve_hetero.run,
    "serve-scale": serve_scale.run,
    "serve-chaos": serve_chaos.run,
    "serve-fast": serve_fast.run,
    "serve-observe": serve_observe.run,
}


def run_experiment(
    experiment_id: str, fast: bool = False, obs=None
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig06"``).

    Args:
        experiment_id: Registry key of the experiment.
        fast: Shrink workloads for smoke runs.
        obs: Optional :class:`~repro.obs.RunObserver` forwarded to
            runners that accept one (currently ``serve-observe``) so the
            CLI can export the trace / print the profile afterwards;
            silently ignored by runners that take no ``obs`` argument.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from exc
    if obs is not None and "obs" in inspect.signature(runner).parameters:
        return runner(fast=fast, obs=obs)
    return runner(fast=fast)
