"""Fig. 14: power per DRAM device and energy per operation.

StepStone-BG vs -DV for the 1024 x 4096 weight matrix at N in {1, 4, 16}.
Paper claims checked: DRAM access power dominates SIMD power; BG is more
energy-efficient than DV at small N (in-device I/O is cheap); as N grows the
localization/reduction energy dominates and DV becomes the efficient choice.
"""

from __future__ import annotations

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.energy.model import EnergyModel
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig14",
        title="Power per DRAM device and pJ/op (1024x4096)",
        paper_reference="Fig. 14; §V-H",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    em = EnergyModel()
    batches = (1, 16) if fast else (1, 4, 16)
    data = {}
    for n in batches:
        for lvl in (PimLevel.BANKGROUP, PimLevel.DEVICE):
            r = execute_gemm(cfg, sky, GemmShape(1024, 4096, n), lvl)
            e = em.evaluate(r)
            data[(lvl, n)] = e
            res.add(
                level=lvl.short,
                batch=n,
                simd_j=e.simd_j,
                scratchpad_j=e.scratchpad_j,
                dram_j=e.dram_j,
                loc_red_j=e.loc_red_j,
                watts_per_device=e.watts_per_device,
                pj_per_op=e.pj_per_op,
            )
    bg, dv = PimLevel.BANKGROUP, PimLevel.DEVICE
    res.check(
        "DRAM access energy dominates SIMD energy",
        all(e.dram_j + e.loc_red_j > e.simd_j for e in data.values()),
    )
    res.check(
        "BG more energy-efficient than DV at N=1",
        data[(bg, 1)].pj_per_op < data[(dv, 1)].pj_per_op,
    )
    res.check(
        "DV more energy-efficient than BG at N=16 (loc/red dominates)",
        data[(dv, 16)].pj_per_op < data[(bg, 16)].pj_per_op,
    )
    res.check(
        "loc/red energy share grows with N",
        data[(bg, batches[-1])].loc_red_j / data[(bg, batches[-1])].total_j
        > data[(bg, 1)].loc_red_j / data[(bg, 1)].total_j,
    )
    res.check(
        "per-device power in a plausible DRAM envelope (<2 W)",
        all(e.watts_per_device < 2.0 for e in data.values()),
    )
    res.chart = {
        "kind": "stacked",
        "category_key": "level",
        "component_keys": ["simd_j", "scratchpad_j", "dram_j", "loc_red_j"],
    }
    return res
