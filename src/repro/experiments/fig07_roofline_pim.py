"""Fig. 7: rooflines including StepStone-BG and -DV.

Adds the two main-memory PIM levels to the Fig. 1 roofline: measured points
come from the timing executor; rooflines use each level's aggregate internal
bandwidth.  Paper claims checked: StepStone beats CPU/GPU-host at all
reasonable batch sizes, beats even device-resident GPU for N <= 16, and the
CPU/GPU only win at N >= ~256.
"""

from __future__ import annotations

from repro.baselines.cpu import CpuGemmModel
from repro.baselines.gpu import GpuGemmModel
from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm

from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel
from repro.roofline.model import gemm_operational_intensity
from repro.workloads.gemm_specs import batch_sweep

__all__ = ["run"]


def _pim_gflops(cfg, sky, shape, level) -> float:
    r = execute_gemm(cfg, sky, shape, level)
    return shape.flops / (r.breakdown.total / 1.2e9) / 1e9


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig07",
        title="Rooflines with StepStone-BG/DV (1024x4096 weights)",
        paper_reference="Fig. 7; §V-A 'Throughput rooflines'",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    cpu = CpuGemmModel()
    gpu = GpuGemmModel()
    n_max = 64 if fast else 512
    for shape in batch_sweep(n_max=n_max):
        row = dict(
            batch=shape.n,
            oi=gemm_operational_intensity(shape),
            cpu_gflops=cpu.gflops(shape),
            gpu_dev_gflops=gpu.gflops(shape, True),
            gpu_host_gflops=gpu.gflops(shape, False),
        )
        for lvl, key in ((PimLevel.BANKGROUP, "bg_gflops"), (PimLevel.DEVICE, "dv_gflops")):
            try:
                row[key] = _pim_gflops(cfg, sky, shape, lvl)
            except ValueError:
                row[key] = float("nan")  # batch too large for scratchpad
        row["stepstone_gflops"] = max(
            v for k, v in row.items() if k in ("bg_gflops", "dv_gflops") and v == v
        )
        res.add(**row)
    rows = {r["batch"]: r for r in res.rows}
    res.check(
        "StepStone beats CPU and host-GPU for all N<=32",
        all(
            rows[n]["stepstone_gflops"] > rows[n]["cpu_gflops"]
            and rows[n]["stepstone_gflops"] > rows[n]["gpu_host_gflops"]
            for n in (1, 2, 4, 8, 16, 32)
        ),
    )
    res.check(
        "StepStone beats device-resident GPU for N<=16",
        all(rows[n]["stepstone_gflops"] > rows[n]["gpu_dev_gflops"] for n in (1, 4, 16)),
    )
    if not fast:
        res.check(
            "CPU/GPU overtake StepStone only at large batch (>=128)",
            rows[256]["cpu_gflops"] > rows[256]["stepstone_gflops"]
            and rows[32]["cpu_gflops"] < rows[32]["stepstone_gflops"],
        )
    res.chart = {
        "kind": "line",
        "x_key": "oi",
        "y_keys": ["cpu_gflops", "gpu_dev_gflops", "bg_gflops", "dv_gflops"],
    }
    return res
