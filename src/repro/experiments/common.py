"""Shared experiment plumbing: result container and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Rows + metadata regenerating one paper table/figure."""

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    paper_reference: str = ""
    notes: List[str] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    #: Optional chart spec: {"kind": "stacked"|"grouped"|"line", ...kwargs}.
    chart: Optional[Dict[str, Any]] = None

    def add(self, **kwargs: Any) -> None:
        self.rows.append(kwargs)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def check(self, name: str, ok: bool) -> None:
        """Record a paper-shape assertion (who wins / crossover / direction)."""
        self.checks[name] = bool(ok)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for k in row:
                if k not in cols:
                    cols.append(k)
        return cols

    def to_table(self, max_rows: Optional[int] = None) -> str:
        """Render the rows as a fixed-width text table."""
        cols = self.columns()
        rows = self.rows if max_rows is None else self.rows[:max_rows]

        def fmt(v: Any) -> str:
            if isinstance(v, float):
                if v == 0:
                    return "0"
                if abs(v) >= 1e5 or abs(v) < 1e-3:
                    return f"{v:.3e}"
                return f"{v:.3f}"
            return str(v)

        table = [[fmt(r.get(c, "")) for c in cols] for r in rows]
        widths = [
            max(len(c), *(len(t[i]) for t in table)) if table else len(c)
            for i, c in enumerate(cols)
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
        ]
        if self.paper_reference:
            lines.append(f"   (paper: {self.paper_reference})")
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for t in table:
            lines.append("  ".join(v.ljust(w) for v, w in zip(t, widths)))
        for n in self.notes:
            lines.append(f"note: {n}")
        for name, ok in self.checks.items():
            lines.append(f"check[{'PASS' if ok else 'FAIL'}]: {name}")
        return "\n".join(lines)

    def render_chart(self) -> str:
        """Render this result's figure-shaped ASCII chart (if declared)."""
        if not self.chart:
            return "(no chart declared for this experiment)"
        from repro.reporting import (
            cost_bars,
            grouped_bars,
            line_plot,
            phase_breakdown,
            scaling_plot,
            stacked_bars,
            timeline_plot,
        )

        spec = dict(self.chart)
        kind = spec.pop("kind")
        spec.setdefault("title", f"{self.experiment_id}: {self.title}")
        rows = spec.pop("rows", None) or self.rows
        if kind == "stacked":
            return stacked_bars(rows, **spec)
        if kind == "grouped":
            return grouped_bars(rows, **spec)
        if kind == "line":
            return line_plot(rows, **spec)
        if kind == "scaling":
            return scaling_plot(rows, **spec)
        if kind == "timeline":
            return timeline_plot(rows, **spec)
        if kind == "cost":
            return cost_bars(rows, **spec)
        if kind == "phases":
            return phase_breakdown(rows, **spec)
        raise ValueError(f"unknown chart kind {kind!r}")
