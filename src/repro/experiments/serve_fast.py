"""The fast event path earns its keep — and changes no answer.

``repro.sim.fast`` rebuilds the serving hot loop as batched
struct-of-arrays sweeps, and ``repro.sim.analytic`` replaces whole
simulations with closed-form M/G/k arithmetic.  Both are only usable
if they are *boring*: the fast path must reproduce the reference loop
request for request, and the analytic planner must never hand back a
smaller fleet than the simulation would.  This experiment measures the
speedups and re-asserts both contracts in one artifact:

* **differential** — the single-engine and hetero-elastic loops run the
  same seeded diurnal stream through both paths; completions,
  rejections, ``events_processed`` and ``sim_end_s`` must agree
  exactly (the full permutation harness lives in
  ``tests/test_fast_differential.py``; this section is the
  experiment-shaped witness).
* **throughput** — wall time and kernel events/s for both paths on the
  same runs; the fast path must win on the loop-dominated hetero
  scenario.
* **analytic** — ``CapacityPlanner(mode="analytic")`` sizes a fleet in
  milliseconds of arithmetic instead of seconds of simulation; the
  check is the conservatism contract (never fewer nodes than the DES
  answer) plus the probe-cost gap.
"""

from __future__ import annotations

from time import perf_counter

from repro.autoscale import (
    BaselineBurstPolicy,
    DiurnalTrace,
    HeteroElasticCluster,
    NodePool,
    mix_requests,
)
from repro.autoscale.policies import node_capacity_rps
from repro.cluster.planner import CapacityPlanner
from repro.experiments.common import ExperimentResult
from repro.serving import GPU_NODE, STEPSTONE_NODE, OnlineServingEngine

__all__ = ["run"]

SEED = 42
MIX = {"BERT": 0.9, "DLRM": 0.1}


def _timed(fn):
    t0 = perf_counter()
    out = fn()
    return out, perf_counter() - t0


def _report_key(rep):
    """The exact-equality fingerprint of a serving run."""
    return (
        rep.served,
        [(c.request.req_id, c.dispatch_s, c.finish_s) for c in rep.completed],
        [(r.request.req_id, r.rejected_at_s) for r in rep.rejected],
        rep.events_processed,
        rep.sim_end_s,
    )


def run(fast: bool = False) -> ExperimentResult:
    """Run the fast-path/analytic experiment.

    Args:
        fast: Shrink the streams for smoke runs.
    """
    res = ExperimentResult(
        experiment_id="serve-fast",
        title="Struct-of-arrays event path: same answers, one order of "
        "magnitude less Python",
        paper_reference="infrastructure (no paper figure): repro.sim.fast "
        "+ repro.sim.analytic",
    )
    engine = OnlineServingEngine()

    # -------------------------------------------------------------- #
    # 1 + 2. Differential witness and throughput, engine loop
    # -------------------------------------------------------------- #
    duration = 30.0 if fast else 200.0
    stream = mix_requests(
        DiurnalTrace(trough_rps=100.0, peak_rps=160.0, period_s=60.0),
        MIX,
        duration,
        seed=SEED,
        slos={m: 1.0 for m in MIX},
    )
    engine.run(stream, "hybrid", fast=True)  # warm the latency cache
    slow_rep, slow_s = _timed(lambda: engine.run(stream, "hybrid"))
    fast_rep, fast_s = _timed(lambda: engine.run(stream, "hybrid", fast=True))
    res.add(
        section="throughput",
        loop="engine",
        path="reference",
        wall_s=round(slow_s, 4),
        events_per_s=round(slow_rep.events_processed / slow_s),
    )
    res.add(
        section="throughput",
        loop="engine",
        path="fast",
        wall_s=round(fast_s, 4),
        events_per_s=round(fast_rep.events_processed / fast_s),
    )
    res.check(
        "engine: fast path reproduces the reference run exactly",
        _report_key(slow_rep) == _report_key(fast_rep),
    )
    res.note(
        f"engine {len(stream)} requests: reference {slow_s:.3f}s, fast "
        f"{fast_s:.3f}s ({fast_rep.events_processed / fast_s:,.0f} events/s)"
    )

    # -------------------------------------------------------------- #
    # Hetero-elastic loop: the heaviest, loop-dominated scenario
    # -------------------------------------------------------------- #
    def hetero():
        return HeteroElasticCluster(
            pools={
                "stepstone": NodePool(
                    STEPSTONE_NODE, min_nodes=2, max_nodes=12, initial_nodes=8
                ),
                "gpu": NodePool(
                    GPU_NODE, min_nodes=0, max_nodes=4, initial_nodes=0
                ),
            },
            engine=engine,
            policy="hybrid",
            router="backend-affinity",
            models=sorted(MIX),
            control_interval_s=0.5,
        )

    policy = BaselineBurstPolicy(
        baseline="stepstone",
        burst="gpu",
        baseline_nodes=8,
        baseline_capacity_rps=node_capacity_rps(
            engine, MIX, "hybrid", spec=STEPSTONE_NODE
        ),
        burst_capacity_rps=node_capacity_rps(
            engine, MIX, "hybrid", spec=GPU_NODE
        ),
    )
    hstream = mix_requests(
        DiurnalTrace(trough_rps=1200.0, peak_rps=2800.0, period_s=25.0),
        MIX,
        10.0 if fast else 50.0,
        seed=SEED,
        slos={m: 1.0 for m in MIX},
    )
    hc = hetero()
    hc.run(hstream, policy, fast=True)  # warm
    hslow, hslow_s = _timed(lambda: hetero().run(hstream, policy))
    hfast, hfast_s = _timed(lambda: hetero().run(hstream, policy, fast=True))
    res.add(
        section="throughput",
        loop="hetero",
        path="reference",
        wall_s=round(hslow_s, 4),
        events_per_s=round(hslow.events_processed / hslow_s),
    )
    res.add(
        section="throughput",
        loop="hetero",
        path="fast",
        wall_s=round(hfast_s, 4),
        events_per_s=round(hfast.events_processed / hfast_s),
    )
    res.check(
        "hetero: fast path reproduces the reference run exactly "
        "(per-node completions, drops, pool timeline)",
        (
            {
                nid: _report_key(r)
                for nid, r in hslow.node_reports.items()
            },
            hslow.pool_timeline,
            hslow.events_processed,
            hslow.sim_end_s,
        )
        == (
            {
                nid: _report_key(r)
                for nid, r in hfast.node_reports.items()
            },
            hfast.pool_timeline,
            hfast.events_processed,
            hfast.sim_end_s,
        ),
    )
    res.check(
        "hetero: the fast path is faster on the loop-dominated scenario",
        hfast_s < hslow_s,
    )
    res.note(
        f"hetero {len(hstream)} requests: reference {hslow_s:.3f}s, fast "
        f"{hfast_s:.3f}s ({hslow_s / hfast_s:.1f}x)"
    )

    # -------------------------------------------------------------- #
    # 3. Analytic capacity planning: arithmetic instead of simulation
    # -------------------------------------------------------------- #
    target_rps, slo_s = 600.0, 1.0
    kwargs = dict(engine=engine, n_requests=200 if fast else 300, seed=SEED)
    for pol in ("cpu", "hybrid"):
        sim_plan, sim_s = _timed(
            lambda: CapacityPlanner(MIX, **kwargs).min_nodes(
                pol, target_rps, slo_s, max_nodes=32
            )
        )
        an_plan, an_s = _timed(
            lambda: CapacityPlanner(MIX, mode="analytic", **kwargs).min_nodes(
                pol, target_rps, slo_s, max_nodes=32
            )
        )
        res.add(
            section="analytic",
            policy=pol,
            sim_nodes=sim_plan.nodes,
            sim_plan_s=round(sim_s, 3),
            analytic_nodes=an_plan.nodes,
            analytic_plan_s=round(an_s, 4),
            analytic_p99_s=round(an_plan.analytic.p99_s, 4),
            rho=round(an_plan.analytic.rho, 3),
        )
        res.check(
            f"{pol}: analytic plan is never smaller than the DES plan",
            an_plan.nodes >= sim_plan.nodes,
        )
        res.check(
            f"{pol}: analytic planning is cheaper than simulation",
            an_s < sim_s,
        )
    res.note(
        "analytic mode trades nodes for time: conservative fleet sizes "
        "(never below the DES answer) from microsecond M/G/k probes"
    )

    res.chart = {
        "kind": "grouped",
        "rows": [
            {"label": f"{r['loop']} {r['path']}", "events_per_s": r["events_per_s"]}
            for r in res.rows
            if r["section"] == "throughput"
        ],
        "category_key": "label",
        "value_key": "events_per_s",
    }
    return res
