"""Fig. 12: impact of scratchpad capacity (StepStone-BG).

Four matrices x scratchpad {16, 32, 64} KiB x batches {4, 8, 16}.  Paper
claims checked: larger matrices amortize buffer fill/drain better; overheads
grow with batch size; and 2048 x 8192 — whose block-group count is half that
of the other shapes under the Skylake mapping — sees its overhead grow at
half the rate.
"""

from __future__ import annotations

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel

__all__ = ["run"]

_MATRICES = ((1024, 4096), (4096, 1024), (2048, 8192), (8192, 2048))
_CAPS_KB = (16, 32, 64)


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig12",
        title="Scratchpad capacity sweep (StepStone-BG)",
        paper_reference="Fig. 12; §V-F",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    base_unit = cfg.unit(PimLevel.BANKGROUP)
    matrices = _MATRICES[:2] if fast else _MATRICES
    batches = (4, 16) if fast else (4, 8, 16)
    data = {}
    for m, k in matrices:
        for cap in _CAPS_KB:
            unit = base_unit.with_scratchpad(cap * 1024)
            for n in batches:
                r = execute_gemm(
                    cfg, sky, GemmShape(m, k, n), PimLevel.BANKGROUP, unit=unit
                )
                b = r.breakdown
                data[(m, k, cap, n)] = b
                res.add(
                    matrix=f"{m}x{k}",
                    scratchpad_kb=cap,
                    batch=n,
                    n_groups=r.plan.analysis.n_groups,
                    gemm=b.gemm,
                    buffer=b.fill_b + b.fill_c + b.drain_c,
                    localization=b.localization,
                    reduction=b.reduction,
                    total=b.total,
                )
    res.check(
        "larger scratchpad never hurts",
        all(
            data[(m, k, 64, n)].total <= data[(m, k, 16, n)].total * 1.001
            for (m, k) in matrices
            for n in batches
        ),
    )
    res.check(
        "overheads grow with batch size",
        all(
            data[(m, k, 16, batches[-1])].overhead > data[(m, k, 16, batches[0])].overhead
            for (m, k) in matrices
        ),
    )
    if not fast:
        groups = {r["matrix"]: r["n_groups"] for r in res.rows}
        res.check(
            "2048x8192 has half the block groups of the other shapes",
            groups["2048x8192"] * 2
            == groups["1024x4096"]
            == groups["4096x1024"]
            == groups["8192x2048"],
        )
        # Same consequence the paper describes: despite 2x the K of
        # 1024x4096, the halved group count keeps the replicated-B volume
        # (and so localization) identical.
        res.check(
            "halved groups cancel the 2x K in localization volume",
            abs(
                data[(2048, 8192, 16, 16)].localization
                - data[(1024, 4096, 16, 16)].localization
            )
            < 1e-6 * data[(1024, 4096, 16, 16)].localization,
        )
        res.check(
            "larger matrices amortize buffer traffic better",
            (data[(2048, 8192, 16, 4)].fill_b / data[(2048, 8192, 16, 4)].gemm)
            < (data[(1024, 4096, 16, 4)].fill_b / data[(1024, 4096, 16, 4)].gemm)
            * 1.2,
        )
        res.note(
            "The paper attributes the slower overhead growth of 2048x8192 to "
            "its halved block-group count; here that manifests as unchanged "
            "localization volume despite doubled K (buffer-fill traffic "
            "dominates the growth in our partitioning)."
        )
    res.chart = {
        "kind": "stacked",
        "category_key": "scratchpad_kb",
        "component_keys": ["gemm", "buffer", "localization", "reduction"],
    }
    return res
