"""Fig. 6: GEMM latency breakdown across PIM levels vs. the CPU.

Reproduces the stacked-bar data: 1024 x 4096 weights, batches {1, 4, 16, 32},
StepStone-BG / -DV / -CH (plus the relaxed-area '*' variants at batch 32)
and the CPU, with components GEMM / buffer fill (B) / buffer fill (C) /
buffer drain (C) / localization / reduction.

Also evaluates the §V-A throughput claims: minimum-latency advantage of
StepStone-BG over the CPU (12x in the paper) and throughput under latency
constraints (77x at the CPU's batch-1 latency; ~3x when the CPU gets a
1.2x budget admitting batch 32).
"""

from __future__ import annotations

from repro.baselines.cpu import CpuGemmModel
from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel

__all__ = ["run"]

_LEVELS = (PimLevel.BANKGROUP, PimLevel.DEVICE, PimLevel.CHANNEL)


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig06",
        title="GEMM latency breakdown: StepStone levels vs CPU (1024x4096)",
        paper_reference="Fig. 6; §V-A",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    cpu = CpuGemmModel()
    batches = (1, 32) if fast else (1, 4, 16, 32)
    totals = {}
    for n in batches:
        shape = GemmShape(1024, 4096, n)
        for lvl in _LEVELS:
            r = execute_gemm(cfg, sky, shape, lvl)
            b = r.breakdown
            totals[(lvl.short, n)] = b.total
            res.add(
                config=f"{lvl.short}-{n}",
                gemm=b.gemm,
                fill_b=b.fill_b,
                fill_c=b.fill_c,
                drain_c=b.drain_c,
                localization=b.localization,
                reduction=b.reduction,
                total=b.total,
            )
            if n == 32 and lvl in (PimLevel.BANKGROUP, PimLevel.DEVICE):
                rr = execute_gemm(cfg, sky, shape, lvl, unit=cfg.unit(lvl).relaxed())
                bb = rr.breakdown
                totals[(lvl.short + "*", n)] = bb.total
                res.add(
                    config=f"{lvl.short}*-{n}",
                    gemm=bb.gemm,
                    fill_b=bb.fill_b,
                    fill_c=bb.fill_c,
                    drain_c=bb.drain_c,
                    localization=bb.localization,
                    reduction=bb.reduction,
                    total=bb.total,
                )
        cpu_cycles = cpu.gemm_cycles(shape)
        totals[("CPU", n)] = cpu_cycles
        res.add(config=f"CPU-{n}", gemm=0.0, total=cpu_cycles)

    # §V-A claims.
    min_lat_ratio = totals[("CPU", 1)] / totals[("BG", 1)]
    res.note(f"minimum-latency advantage BG vs CPU: {min_lat_ratio:.1f}x (paper: 12x)")
    res.check("BG minimum latency >=8x better than CPU", min_lat_ratio >= 8.0)
    bg_dv = totals[("DV", 1)] / totals[("BG", 1)]
    res.note(f"batch-1 BG vs DV: {bg_dv:.2f}x (paper: 2.8x)")
    res.check("BG ~2-4x better than DV at batch 1", 2.0 <= bg_dv <= 4.0)

    if not fast:
        # Throughput under the CPU's batch-1 latency constraint.
        constraint = totals[("CPU", 1)]
        best_thpt, best_cfg = 0.0, ""
        for (lbl, n), t in totals.items():
            if lbl in ("CPU",) or t > constraint:
                continue
            if n / t > best_thpt:
                best_thpt, best_cfg = n / t, f"{lbl}-{n}"
        cpu_thpt = 1.0 / totals[("CPU", 1)]
        gain = best_thpt / cpu_thpt
        res.note(
            f"throughput under CPU batch-1 latency: {gain:.0f}x via {best_cfg} "
            "(paper: 77x, 96x with relaxed area)"
        )
        res.check("throughput gain >=20x under strict constraint", gain >= 20.0)
        # Relaxed constraint: CPU allowed 1.2x latency -> batch 32 on CPU.
        cpu32_thpt = 32.0 / totals[("CPU", 32)]
        best32 = max(
            (n / t)
            for (lbl, n), t in totals.items()
            if lbl != "CPU" and t <= totals[("CPU", 32)]
        )
        gain32 = best32 / cpu32_thpt
        res.note(
            f"throughput vs CPU batch-32 budget: {gain32:.1f}x (paper: ~3x, 3.5x relaxed)"
        )
        res.check("throughput gain 1.5-6x under relaxed constraint", 1.5 <= gain32 <= 6.0)
    res.chart = {
        "kind": "stacked",
        "category_key": "config",
        "component_keys": ["gemm", "fill_b", "fill_c", "drain_c", "localization", "reduction"],
    }
    return res
