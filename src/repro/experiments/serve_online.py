"""Online serving: request-level latency/throughput per dispatch policy.

The paper's §V-A/§V-B claims are batch-level; this experiment replays them
in the online setting they imply: Poisson request streams against one
StepStone node, served under the ``cpu``, ``pim``, and ``hybrid`` policies
of :mod:`repro.serving.engine` with a latency SLO.  Two operating points per
model — "low" (quarter of the best single-backend capacity, the
latency-bound regime where PIM's batch-1 advantage shows) and "high" (2x
that capacity, the throughput-bound regime where the concurrent CPU+PIM
split sustains more than either backend alone).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import ExperimentResult
from repro.serving.engine import OnlineServingEngine, ServingReport, poisson_requests

__all__ = ["run"]

#: (tag, multiple of the best single-backend capacity) operating points.
LOADS: Tuple[Tuple[str, float], ...] = (("low", 0.25), ("high", 2.0))
#: SLO as a multiple of the batch-1 CPU latency (generous: admission only
#: rejects requests that queueing has made hopeless).
SLO_X_CPU_BATCH1 = 20.0
SEED = 42


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="serve",
        title="Online request-level serving: CPU vs PIM vs hybrid",
        paper_reference="§V-A latency-constrained throughput, §V-B splitting, §I hybrid",
    )
    engine = OnlineServingEngine()
    models = ["BERT"] if fast else ["BERT", "DLRM", "XLM"]
    n_target = 300 if fast else 600

    for model in models:
        single_caps = {
            p: engine.max_batch / engine.batch_latency(model, p, engine.max_batch)
            for p in ("cpu", "pim")
        }
        best_single_cap = max(single_caps.values())
        slo_s = SLO_X_CPU_BATCH1 * engine.min_latency(model, "cpu")
        by_load: Dict[str, Dict[str, ServingReport]] = {}
        for tag, mult in LOADS:
            rate = mult * best_single_cap
            requests = poisson_requests(
                model, rate_rps=rate, duration_s=n_target / rate, seed=SEED, slo_s=slo_s
            )
            reports = engine.run_policies(requests)
            by_load[tag] = reports
            for policy, rep in reports.items():
                res.add(
                    case=f"{model}/{tag}/{policy}",
                    model=model,
                    load=tag,
                    policy=policy,
                    offered_rps=rate,
                    served=len(rep.completed),
                    rejected=len(rep.rejected),
                    p50_ms=rep.p50_s * 1e3,
                    p95_ms=rep.p95_s * 1e3,
                    p99_ms=rep.p99_s * 1e3,
                    mean_batch=rep.mean_batch,
                    throughput_rps=rep.throughput_rps,
                )

        low, high = by_load["low"], by_load["high"]
        res.check(
            f"{model}: hybrid sustains >= best single backend under overload",
            high["hybrid"].throughput_rps
            >= max(high["cpu"].throughput_rps, high["pim"].throughput_rps) - 1e-9,
        )
        res.check(
            f"{model}: PIM p50 <= CPU p50 in the latency-bound regime",
            low["pim"].p50_s <= low["cpu"].p50_s,
        )
        worst = max(
            (c.latency_s for rep in high.values() for c in rep.completed),
            default=0.0,
        )
        res.check(f"{model}: SLO admission bounds completed latency", worst <= slo_s)
        res.note(
            f"{model}: best single-backend capacity {best_single_cap:.0f} req/s "
            f"({max(single_caps, key=single_caps.get)}), SLO {slo_s * 1e3:.1f} ms; "
            f"overload throughput cpu/pim/hybrid = "
            f"{high['cpu'].throughput_rps:.0f}/{high['pim'].throughput_rps:.0f}/"
            f"{high['hybrid'].throughput_rps:.0f} req/s"
        )

    res.note(
        "hybrid >= max(cpu, pim) is structural: the per-GEMM split search "
        "includes both all-CPU and all-PIM endpoints, so its batch service "
        "time lower-bounds either backend alone."
    )
    res.chart = {
        "kind": "grouped",
        "category_key": "case",
        "value_key": "throughput_rps",
    }
    return res
