"""``python -m repro.experiments`` dispatches to the CLI."""

from repro.experiments.cli import main

raise SystemExit(main())
