"""Generative LLM serving: prefill/decode economics on one sim kernel.

Autoregressive decode is the modern extreme of the paper's thesis: every
generated token re-streams the full decoder weights at an activation
dimension equal to the batch width — batch-1 GEMV, the bandwidth-bound
regime where main-memory acceleration wins (§I, §V-B).  This experiment
drives ``repro.genai`` through four sections:

* **Phases** — per-event anatomy: a batch-1 decode step on StepStone vs
  the GPU roofline (the 10x+ gap of Figs. 1/6 re-emerging per token) and
  the prefill pass where the compute-dense GPU pulls back ahead.
* **Batching** — the serving headline: under mixed output lengths and
  open Poisson arrivals, a :class:`~repro.genai.ContinuousBatcher` beats
  a :class:`~repro.genai.StaticBatcher` on TTFT (no waiting for the
  batch drain) while matching-or-beating its tokens/s (no padding waste).
* **Economics** — $/1k emitted tokens per substrate: on interactive
  decode-heavy traffic (modest concurrency) the StepStone socket
  undercuts the GPU; on a bulk closed-batch wave (width-64 decode) the
  GPU's wide-batch throughput wins the dollars back — the honest
  crossover, same shape as the serve-hetero regimes.
* **KV pressure** — the cache budget driven to saturation: queueing and
  preempt-to-requeue at the wall, high-water exactly at capacity, never
  overflow, and bit-identical reports across repeated runs.
"""

from __future__ import annotations

import random
import time
from typing import List

from repro.experiments.common import ExperimentResult
from repro.genai import (
    ContinuousBatcher,
    GenerativeEngine,
    GenRequest,
    StaticBatcher,
    gen_requests,
)
from repro.serving import GPU_NODE, STEPSTONE_NODE, OnlineServingEngine

__all__ = ["run"]

SEED = 7


def _engine(shared: OnlineServingEngine, **kw) -> GenerativeEngine:
    kw.setdefault("engine", shared)
    return GenerativeEngine(**kw)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _report_key(rep):
    """Every user-visible field of a run, for exact fast==slow witness."""
    return (
        rep.served,
        rep.rejected_count,
        rep.tokens_out,
        rep.preemptions,
        rep.peak_waiting,
        rep.kv_high_water_tokens,
        rep.events_processed,
        rep.sim_end_s,
        rep.busy_prefill_s,
        rep.busy_decode_s,
        rep.mean_ttft_s,
        rep.mean_itl_s,
        rep.itl_samples,
        tuple(
            (c.request.req_id, c.first_token_s, c.finish_s, c.tokens_out,
             c.preemptions)
            for c in rep.completions
        ),
    )


def run(fast: bool = False) -> ExperimentResult:
    """Run the generative-serving experiment (``--fast`` shrinks traces)."""
    res = ExperimentResult(
        experiment_id="serve-genai",
        title="Generative serving: prefill/decode split, KV pressure, batching",
        paper_reference="§I / §V-B (batch-1 GEMV thesis), Figs. 1 and 6 (substrate gap)",
    )
    shared = OnlineServingEngine()

    # -------------------------------------------------------------- #
    # 1. Phase anatomy: what one event costs per substrate
    # -------------------------------------------------------------- #
    ss = _engine(shared, max_batch=8)
    gpu = _engine(shared, spec=GPU_NODE, max_batch=8)
    for label, eng in (("stepstone", ss), ("gpu", gpu)):
        res.add(
            section="phases",
            backend=label,
            decode_b1_ms=eng.gemm_seconds(1) * 1e3,
            decode_b8_ms=eng.gemm_seconds(8) * 1e3,
            decode_b64_ms=eng.gemm_seconds(64) * 1e3,
            prefill_t256_ms=eng.gemm_seconds(256) * 1e3,
        )
    res.check(
        "batch-1 decode: StepStone-class bandwidth beats the GPU roofline 10x+",
        ss.gemm_seconds(1) * 10 < gpu.gemm_seconds(1),
    )
    res.check(
        "prefill (N=256): the compute-dense pass flips back to the GPU",
        gpu.gemm_seconds(256) < ss.gemm_seconds(256),
    )

    # -------------------------------------------------------------- #
    # 2. Static vs continuous batching under mixed output lengths
    # -------------------------------------------------------------- #
    duration = 70.0 if fast else 180.0
    mixed = gen_requests(
        rate_rps=0.6,
        duration_s=duration,
        prompt_range=(16, 32),
        output_range=(8, 96),
        seed=SEED,
    )
    reports = {}
    for sched in (StaticBatcher(), ContinuousBatcher()):
        rep = _engine(shared, scheduler=sched, max_batch=8).run(mixed)
        reports[sched.name] = rep
        res.add(
            section="batching",
            scheduler=sched.name,
            served=rep.served,
            mean_ttft_s=rep.mean_ttft_s,
            p95_ttft_s=rep.ttft_percentile(95),
            mean_itl_ms=rep.mean_itl_s * 1e3,
            tokens_per_s=rep.tokens_per_s,
        )
    static, cont = reports["static"], reports["continuous"]
    res.check(
        "continuous batching strictly beats static on mean and p95 TTFT",
        cont.mean_ttft_s < static.mean_ttft_s
        and cont.ttft_percentile(95) < static.ttft_percentile(95),
    )
    res.check(
        "continuous tokens/s >= static (slots reclaimed, no padding waste)",
        cont.tokens_per_s >= static.tokens_per_s,
    )
    res.note(
        f"mixed lengths ({len(mixed)} seqs, outputs 8-96): TTFT "
        f"{static.mean_ttft_s:.1f}s static -> {cont.mean_ttft_s:.1f}s "
        f"continuous; {static.tokens_per_s:.1f} -> {cont.tokens_per_s:.1f} tok/s"
    )

    # -------------------------------------------------------------- #
    # 3. Substrate economics: $/1k tokens, two regimes
    # -------------------------------------------------------------- #
    cost_rows: List[dict] = []
    econ = {}
    for label, spec in (("stepstone", STEPSTONE_NODE), ("gpu", GPU_NODE)):
        rep = _engine(shared, spec=spec, max_batch=8).run(mixed)
        econ[label] = rep.cost_per_1k_tokens(spec)
        res.add(
            section="economics",
            regime="interactive decode-heavy",
            backend=label,
            tokens_per_s=rep.tokens_per_s,
            mean_itl_ms=rep.mean_itl_s * 1e3,
            cost_per_1k_tokens=econ[label],
        )
    cost_rows.append({"regime": "interactive decode-heavy", **econ})
    res.check(
        "interactive decode-heavy: the StepStone socket undercuts the GPU on $/1k tokens",
        econ["stepstone"] < econ["gpu"],
    )

    rng = random.Random(SEED)
    n_bulk = 96 if fast else 256
    bulk = [GenRequest(i, 0.0, rng.randint(8, 16), 32) for i in range(n_bulk)]
    econ_bulk = {}
    for label, spec in (("stepstone", STEPSTONE_NODE), ("gpu", GPU_NODE)):
        rep = _engine(shared, spec=spec, max_batch=64).run(bulk)
        econ_bulk[label] = rep.cost_per_1k_tokens(spec)
        res.add(
            section="economics",
            regime="bulk closed-batch",
            backend=label,
            tokens_per_s=rep.tokens_per_s,
            mean_itl_ms=rep.mean_itl_s * 1e3,
            cost_per_1k_tokens=econ_bulk[label],
        )
    cost_rows.append({"regime": "bulk closed-batch", **econ_bulk})
    res.check(
        "bulk width-64 decode: the GPU wins the dollars back (the honest crossover)",
        econ_bulk["gpu"] < econ_bulk["stepstone"],
    )
    res.note(
        f"$/1k tokens — interactive: stepstone {econ['stepstone']:.4f} vs gpu "
        f"{econ['gpu']:.4f}; bulk: stepstone {econ_bulk['stepstone']:.4f} vs "
        f"gpu {econ_bulk['gpu']:.4f}"
    )

    # -------------------------------------------------------------- #
    # 4. KV pressure: saturation queues, never overflows
    # -------------------------------------------------------------- #
    pressure = [GenRequest(i, 0.05 * i, 32, 32) for i in range(20)]
    sat = _engine(shared, max_batch=8, kv_capacity_tokens=200)
    rep = sat.run(pressure)
    rep2 = sat.run(pressure)
    res.add(
        section="kv-pressure",
        kv_capacity_tokens=rep.kv_capacity_tokens,
        kv_high_water=rep.kv_high_water_tokens,
        peak_waiting=rep.peak_waiting,
        preemptions=rep.preemptions,
        served=rep.served,
    )
    res.check(
        "KV admission bounds concurrency: high-water <= capacity with queueing observed",
        rep.kv_high_water_tokens <= rep.kv_capacity_tokens
        and rep.peak_waiting > 0
        and rep.served == len(pressure),
    )
    res.check(
        "seeded determinism: identical runs produce identical reports",
        (rep.served, rep.tokens_out, rep.sim_end_s, rep.mean_ttft_s)
        == (rep2.served, rep2.tokens_out, rep2.sim_end_s, rep2.mean_ttft_s),
    )
    res.note(
        f"saturation at {rep.kv_capacity_tokens} KV tokens: high-water "
        f"{rep.kv_high_water_tokens}, peak queue {rep.peak_waiting}, "
        f"{rep.preemptions} preemptions, 0 overflows"
    )

    # -------------------------------------------------------------- #
    # 5. Fast path: the macro-stepped decode witness
    # -------------------------------------------------------------- #
    heavy = gen_requests(
        rate_rps=100.0,
        duration_s=20.0 if fast else 50.0,
        prompt_range=(16, 16),
        output_range=(32, 32),
        seed=11,
    )
    _engine(shared, max_batch=8).run(heavy[:100], fast=True)  # warm memos
    slow_rep, slow_wall = _timed(lambda: _engine(shared, max_batch=8).run(heavy))
    fast_rep, fast_wall = _timed(
        lambda: _engine(shared, max_batch=8).run(heavy, fast=True)
    )
    speedup = slow_wall / fast_wall
    res.add(
        section="fast-path",
        path="reference",
        wall_s=slow_wall,
        tokens_per_s=slow_rep.tokens_out / slow_wall,
        events_per_s=slow_rep.events_processed / slow_wall,
    )
    res.add(
        section="fast-path",
        path="fast",
        wall_s=fast_wall,
        tokens_per_s=fast_rep.tokens_out / fast_wall,
        events_per_s=fast_rep.events_processed / fast_wall,
        speedup=speedup,
    )
    res.check(
        "the macro-stepped fast path reproduces the reference run token-for-token",
        _report_key(slow_rep) == _report_key(fast_rep),
    )
    res.note(
        f"fast path: {len(heavy)} seqs, {fast_rep.tokens_out} tokens in "
        f"{fast_wall:.3f}s vs {slow_wall:.3f}s reference ({speedup:.1f}x), "
        "reports bit-identical"
    )

    res.chart = {
        "kind": "cost",
        "rows": cost_rows,
        "category_key": "regime",
        "series_keys": ["stepstone", "gpu"],
        "unit": "$/1k tok",
    }
    return res
