"""Experiment runners: one module per paper table/figure.

Each runner returns an :class:`~repro.experiments.common.ExperimentResult`
whose rows regenerate the corresponding artifact's data series.  Run them
from the CLI::

    python -m repro.experiments fig06
    python -m repro.experiments all

or programmatically::

    from repro.experiments import run_experiment
    result = run_experiment("fig09")
    print(result.to_table())
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]
