"""Fig. 13: StepStone vs eCHO under concurrent CPU memory traffic.

Fixed-size (16M-element) weight matrix with aspect ratio swept from
[2K, 8K] to [16K, 1K], device- and bank-group-level PIMs, with the §IV
SPEC mix (mcf + lbm + omnetpp + gemsFDTD) generating CPU channel traffic.
Paper claims checked: the speedup grows as the matrix gets tall-thin (more
eCHO kernel launches), BG suffers more than DV, and the peak is several-x.
"""

from __future__ import annotations

from repro.colocation.contention import colocation_speedup
from repro.colocation.traffic import SPEC_MIX, SPEC_WORKLOADS
from repro.core.config import StepStoneConfig
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel
from repro.workloads.gemm_specs import aspect_ratio_sweep

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig13",
        title="STP speedup over eCHO with concurrent CPU access",
        paper_reference="Fig. 13; §V-G",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    u = SPEC_MIX()
    res.note(
        "CPU mix channel utilization: "
        + ", ".join(
            f"{n}={w.command_bus_utilization():.2f}" for n, w in SPEC_WORKLOADS.items()
        )
        + f"; total u={u:.2f}"
    )
    shapes = aspect_ratio_sweep()
    if fast:
        shapes = [shapes[0], shapes[-1]]
    speedups = {}
    for lvl in (PimLevel.DEVICE, PimLevel.BANKGROUP):
        for shape in shapes:
            r = colocation_speedup(cfg, sky, shape, lvl, u)
            speedups[(lvl, shape.m)] = r["speedup"]
            res.add(
                level=lvl.short,
                matrix=f"{shape.m}x{shape.k}",
                speedup=r["speedup"],
                echo_launches=r["echo_launches"],
                stp_launches=r["stp_launches"],
                launch_delay=r["launch_delay_cycles"],
            )
    res.check(
        "speedup grows toward tall-thin matrices",
        all(
            speedups[(lvl, shapes[-1].m)] > speedups[(lvl, shapes[0].m)]
            for lvl in (PimLevel.DEVICE, PimLevel.BANKGROUP)
        ),
    )
    res.check(
        "BG-level PIMs suffer more from command contention than DV",
        all(
            speedups[(PimLevel.BANKGROUP, s.m)] > speedups[(PimLevel.DEVICE, s.m)]
            for s in shapes
        ),
    )
    res.check(
        "peak speedup is several-x (paper: up to ~6x)",
        max(speedups.values()) >= 3.0,
    )
    res.chart = {"kind": "grouped", "category_key": "matrix", "value_key": "speedup"}
    return res
