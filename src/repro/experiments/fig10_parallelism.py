"""Fig. 10: parallelism vs. distribution-overhead tradeoff.

All 16 bank-group PIMs vs. half of them (one pinned PIM-ID bit, §III-E),
on small (512 x 2048, 2048 x 512) and large (1024 x 4096, 4096 x 1024)
matrices, batches {16, 32}.  Paper claims: halving the PIMs halves
localization/reduction but doubles arithmetic time — a win for small
matrices and a loss (or wash) for large ones.
"""

from __future__ import annotations

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel

__all__ = ["run"]

_SMALL = ((512, 2048), (2048, 512))
_LARGE = ((1024, 4096), (4096, 1024))


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig10",
        title="All vs half bank-group PIMs",
        paper_reference="Fig. 10; §V-D",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    batches = (16,) if fast else (16, 32)
    wins = {}
    for m, k in _SMALL + _LARGE:
        for n in batches:
            shape = GemmShape(m, k, n)
            full = execute_gemm(cfg, sky, shape, PimLevel.BANKGROUP)
            half = execute_gemm(cfg, sky, shape, PimLevel.BANKGROUP, pinned_id_bits=1)
            wins[(m, k, n)] = half.breakdown.total < full.breakdown.total
            for tag, r in (("all", full), ("half", half)):
                b = r.breakdown
                res.add(
                    matrix=f"{m}x{k}",
                    batch=n,
                    pims=tag,
                    gemm=b.gemm,
                    fill_b=b.fill_b,
                    fill_c=b.fill_c,
                    drain_c=b.drain_c,
                    localization=b.localization,
                    reduction=b.reduction,
                    total=b.total,
                )
    res.check(
        "half PIMs win on small matrices",
        all(wins[(m, k, n)] for (m, k) in _SMALL for n in batches),
    )
    res.check(
        "full PIMs competitive on large matrices (GEMM-dominated)",
        any(not wins[(m, k, n)] for (m, k) in _LARGE for n in batches),
    )
    halves = [r for r in res.rows if r["pims"] == "half"]
    fulls = [r for r in res.rows if r["pims"] == "all"]
    res.check(
        "halving PIMs roughly halves localization+reduction",
        all(
            0.35 <= (h["localization"] + h["reduction"]) / (f["localization"] + f["reduction"]) <= 0.75
            for h, f in zip(halves, fulls)
        ),
    )
    res.check(
        "halving PIMs roughly doubles arithmetic",
        all(1.5 <= h["gemm"] / f["gemm"] <= 2.5 for h, f in zip(halves, fulls)),
    )
    res.chart = {
        "kind": "stacked",
        "category_key": "pims",
        "component_keys": ["gemm", "fill_b", "fill_c", "drain_c", "localization", "reduction"],
    }
    return res
