"""Availability under node failures: goodput when machines die mid-run.

The fleet layers answer "what latency at what cost" for *healthy*
machines; a datacenter also loses machines.  This experiment injects
node outages (:class:`~repro.sim.failures.FailureTrace` — the event type
the shared :mod:`repro.sim` kernel made expressible) into the same
serving stack and measures **availability**: the fraction of offered
requests that complete, surviving both SLO shedding and failure losses.

* **Inertness anchor** — an empty failure trace reproduces the clean run
  request for request: the chaos machinery costs nothing when unused.
* **Static fleet under an outage** — a pinned outage takes one of three
  nodes down for the middle of the run.  The survivors overload, the
  victim's queue and in-flight batch are lost, and goodput drops until
  the node returns — a static fleet has no answer beyond waiting.
* **Elastic recovery** — the same stream, the same outage, but an
  :class:`~repro.autoscale.ElasticCluster`: the failed node leaves the
  owned set, the next control tick sees the loss, and the autoscaler
  orders a replacement that lands a provisioning delay later.  The
  elastic fleet's availability must beat the static fleet's under the
  *same* failure trace.
* **Seeded MTBF/MTTR** — exponential up/down cycling on every node
  (the textbook availability model), elastic vs static, to show the
  ranking is not an artifact of one scripted outage.

Everything is seeded: same seed, same outages, same report.
"""

from __future__ import annotations

from typing import Tuple

from repro.autoscale import (
    ElasticCluster,
    TargetUtilizationPolicy,
    node_capacity_rps,
)
from repro.cluster import Cluster
from repro.experiments.common import ExperimentResult
from repro.models.inference import all_models
from repro.serving import OnlineServingEngine, merge_streams, uniform_requests
from repro.sim import FailureTrace

__all__ = ["run", "MIX", "SLO_S", "DISPATCH", "FLEET", "make_stream", "outage_trace"]

SEED = 42
#: Traffic mix every scenario serves (the serving-stack planner mix).
MIX = {"BERT": 0.9, "DLRM": 0.1}
#: Per-request latency SLO (seconds).
SLO_S = 1.0
#: Per-node dispatch policy (the paper's concurrent CPU+PIM split).
DISPATCH = "hybrid"
#: Healthy fleet size; sized so the fleet is comfortable at the offered
#: rate but overloads when one node dies.
FLEET = 3
#: Offered load, req/s across the mix.
RATE_RPS = 480.0
CONTROL_INTERVAL_S = 0.5


def _engine() -> OnlineServingEngine:
    """An engine hosting only the served mix (so every node replicates it)."""
    zoo = all_models()
    return OnlineServingEngine(models={m: zoo[m] for m in MIX})


def make_stream(horizon_s: float):
    """The experiment's request stream: merged uniform per-model arrivals.

    Deliberately noise-free (evenly spaced, exactly ``RATE_RPS`` req/s):
    the healthy fleet then sits rock-steady at :data:`FLEET` nodes, so
    any fleet-size change during the run is *failure response*, not
    Poisson flap — which also keeps the scripted outage's victim alive
    to be struck.

    Args:
        horizon_s: Arrival window length, seconds.

    Returns:
        One arrival-ordered list of SLO-tagged requests.
    """
    streams = []
    for i, (model, share) in enumerate(sorted(MIX.items())):
        streams.append(
            uniform_requests(
                model,
                RATE_RPS * share,
                horizon_s,
                slo_s=SLO_S,
                start_id=i * 1_000_000,
            )
        )
    return merge_streams(*streams)


def outage_trace(horizon_s: float) -> FailureTrace:
    """One node down for the middle of the run (node 0, 1/4 to 2/3)."""
    return FailureTrace.scripted(
        [(0, horizon_s / 4.0, horizon_s * 2.0 / 3.0)]
    )


def _static_cluster(engine: OnlineServingEngine) -> Cluster:
    return Cluster(
        n_nodes=FLEET,
        policy=DISPATCH,
        engine=engine,
        replication=FLEET,  # full replication: every node serves the mix
    )


def _elastic_cluster(engine: OnlineServingEngine) -> ElasticCluster:
    return ElasticCluster(
        engine=engine,
        policy=DISPATCH,
        models=sorted(MIX),
        initial_nodes=FLEET,
        min_nodes=1,
        max_nodes=FLEET + 3,
        control_interval_s=CONTROL_INTERVAL_S,
        provision_base_s=0.15,
        copy_gbps=10.0,
    )


def _reactive(engine: OnlineServingEngine) -> TargetUtilizationPolicy:
    # target 0.8 sizes the healthy fleet at exactly FLEET nodes for the
    # offered rate, so any growth during the run is failure response.
    capacity = node_capacity_rps(engine, MIX, DISPATCH)
    return TargetUtilizationPolicy(capacity, target=0.8)


def _chaos_row(
    res: ExperimentResult, section: str, case: str, rep, extra: Tuple = ()
) -> None:
    res.add(
        section=section,
        case=case,
        offered=rep.offered,
        served=rep.served,
        rejected=len(rep.rejected),
        failed=len(rep.failed),
        availability=rep.availability,
        p99_ms=rep.p99_s * 1e3,
        **dict(extra),
    )


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="serve-chaos",
        title="Goodput under node failures: static fleets vs elastic recovery",
        paper_reference="§I/§VII datacenter serving — availability when machines die",
    )
    engine = _engine()
    horizon = 12.0 if fast else 24.0
    stream = make_stream(horizon)
    trace = outage_trace(horizon)
    outage = trace.outages[0]

    # ---- Inertness anchor: empty trace == no trace ------------------- #
    static = _static_cluster(engine)
    clean = static.run(stream)
    inert = static.run(stream, failures=FailureTrace.scripted([]))
    same = [
        (c.request.req_id, c.finish_s) for c in clean.completed
    ] == [(c.request.req_id, c.finish_s) for c in inert.completed]
    res.check(
        "no failures: the chaos machinery is inert (request-for-request)",
        same and not clean.failed,
    )
    _chaos_row(res, "static", "clean", clean)

    # ---- Static fleet under the scripted outage ---------------------- #
    chaos = static.run(stream, failures=trace)
    _chaos_row(res, "static", "outage", chaos)
    served_after_recovery = sum(
        1 for c in chaos.node_reports[0].completed if c.finish_s > outage.end_s
    )
    res.check(
        "outage hurts: static availability drops below the clean run",
        chaos.availability < clean.availability,
    )
    res.check(
        "losses are recorded: queued and in-flight requests count as failed",
        len(chaos.failed) > 0
        and any(f.reason == "in-flight-lost" for f in chaos.failed),
    )
    res.check(
        "repair works: the failed node completes requests after recovery",
        served_after_recovery > 0,
    )
    res.note(
        f"node 0 down {outage.start_s:.1f}-{outage.end_s:.1f} s of "
        f"{horizon:.0f} s: static fleet availability "
        f"{clean.availability * 100:.2f}% -> {chaos.availability * 100:.2f}% "
        f"({len(chaos.failed)} lost, {len(chaos.rejected)} shed)"
    )

    # ---- Elastic recovery under the same failure trace --------------- #
    elastic = _elastic_cluster(engine)
    erep = elastic.run(stream, _reactive(engine), failures=trace)
    _chaos_row(
        res,
        "elastic",
        "outage",
        erep,
        extra=(
            ("node_s", erep.node_seconds),
            ("peak_nodes", erep.peak_fleet_size),
        ),
    )
    grew = any(
        s.failed > 0 and s.active + s.provisioning > FLEET - 1
        for s in erep.samples
    )
    res.check(
        "elastic recovery: a replacement is ordered while the failure is live",
        grew and erep.peak_fleet_size > FLEET - 1,
    )
    res.check(
        "elastic beats static availability under the same failure trace",
        erep.availability > chaos.availability,
    )
    res.note(
        f"same outage, elastic fleet: availability "
        f"{erep.availability * 100:.2f}% vs static "
        f"{chaos.availability * 100:.2f}% — the replacement lands "
        f"~{elastic.provision_delay_s + CONTROL_INTERVAL_S:.2f} s after the "
        f"failure instead of waiting {outage.duration_s:.0f} s for repair"
    )

    # ---- Seeded MTBF/MTTR: the ranking is not one lucky outage ------- #
    mtbf = FailureTrace.poisson(
        n_nodes=FLEET,
        mtbf_s=horizon / 2.0,
        mttr_s=horizon / 8.0,
        horizon_s=horizon,
        seed=SEED + 99,
    )
    static_mtbf = static.run(stream, failures=mtbf)
    elastic_mtbf = _elastic_cluster(engine).run(
        stream, _reactive(engine), failures=mtbf
    )
    _chaos_row(res, "mtbf", "static", static_mtbf)
    _chaos_row(
        res,
        "mtbf",
        "elastic",
        elastic_mtbf,
        extra=(
            ("node_s", elastic_mtbf.node_seconds),
            ("peak_nodes", elastic_mtbf.peak_fleet_size),
        ),
    )
    res.check(
        "MTBF/MTTR cycling: elastic availability still beats static",
        elastic_mtbf.availability > static_mtbf.availability,
    )
    again = _elastic_cluster(engine).run(
        stream, _reactive(engine), failures=mtbf
    )
    res.check(
        "deterministic: same seed reproduces the same chaos run",
        (again.served, len(again.failed), again.availability)
        == (
            elastic_mtbf.served,
            len(elastic_mtbf.failed),
            elastic_mtbf.availability,
        ),
    )
    res.note(
        f"{len(mtbf)} sampled outages (MTBF {horizon / 2.0:.1f} s, MTTR "
        f"{horizon / 8.0:.1f} s): elastic "
        f"{elastic_mtbf.availability * 100:.2f}% vs static "
        f"{static_mtbf.availability * 100:.2f}% availability"
    )

    res.chart = {
        "kind": "timeline",
        "rows": erep.timeline_rows(),
        "x_key": "t_s",
        "y_keys": ["nodes", "failed", "goodput_rps"],
    }
    return res
