"""Elastic fleet serving under time-varying traffic.

The paper's fleet pitch (§I, §VII) is serving real datacenter inference
load — diurnal and bursty, not a stationary Poisson stream.  This
experiment drives the :mod:`repro.autoscale` elastic cluster with the
trace zoo and asks the provisioning questions the static
``serve-cluster`` planner cannot:

* **Diurnal elasticity** — a day/night rate swing served by a static
  fleet sized for the *peak* (the :class:`CapacityPlanner` answer) versus
  elastic fleets under the reactive and predictive policies.  The
  autoscalers must hold the p99 SLO while paying fewer node-seconds (and
  joules) than peak provisioning.
* **Planner anchor** — under a *constant* trace the SLO-feedback
  autoscaler probes down until its floor memory pins the minimum feasible
  fleet; that converged count must equal the static planner's binary
  search for the same SLO (the correctness cross-check tying the dynamic
  and static layers together).
* **Flash crowd** — a traffic spike outruns the provisioning delay, so
  admission sheds for a moment; the fleet must grow and stop shedding
  once the new capacity lands.

Everything is seeded: same seed, same traces, same report.
"""

from __future__ import annotations

from typing import Dict

from repro.autoscale import (
    AutoscaleReport,
    ConstantTrace,
    DiurnalTrace,
    ElasticCluster,
    OnOffTrace,
    PredictiveTracePolicy,
    RampTrace,
    SLOFeedbackPolicy,
    SpikeTrace,
    StaticPolicy,
    TargetUtilizationPolicy,
    mix_requests,
    node_capacity_rps,
)
from repro.cluster import CapacityPlanner
from repro.experiments.common import ExperimentResult
from repro.serving.engine import OnlineServingEngine

__all__ = ["run", "MIX", "SLO_S", "DISPATCH", "make_cluster", "diurnal_trace"]

SEED = 42
#: Traffic mix every scenario serves (the serve-cluster planner mix).
MIX: Dict[str, float] = {"BERT": 0.9, "DLRM": 0.1}
#: Fleet-wide p99 latency SLO (seconds).
SLO_S = 1.0
#: Per-node dispatch policy (the paper's concurrent CPU+PIM split).
DISPATCH = "hybrid"
CONTROL_INTERVAL_S = 0.5


def make_cluster(
    engine: OnlineServingEngine,
    initial_nodes: int = 1,
    max_nodes: int = 12,
) -> ElasticCluster:
    """The canonical elastic fleet (shared with tests/benchmarks)."""
    return ElasticCluster(
        engine=engine,
        policy=DISPATCH,
        models=sorted(MIX),
        initial_nodes=initial_nodes,
        min_nodes=1,
        max_nodes=max_nodes,
        control_interval_s=CONTROL_INTERVAL_S,
        provision_base_s=0.15,
        copy_gbps=10.0,
    )


def diurnal_trace(fast: bool = False) -> DiurnalTrace:
    """The day/night swing scenario (two periods; one in fast mode)."""
    if fast:
        return DiurnalTrace(trough_rps=60.0, peak_rps=500.0, period_s=8.0)
    return DiurnalTrace(trough_rps=60.0, peak_rps=700.0, period_s=12.0)


def _quality_row(res: ExperimentResult, section: str, name: str, rep: AutoscaleReport) -> None:
    res.add(
        section=section,
        case=name,
        served=rep.served,
        rejected=len(rep.rejected),
        shed=rep.shed_fraction,
        p99_ms=rep.p99_s * 1e3,
        goodput_rps=rep.goodput_rps,
        node_s=rep.node_seconds,
        mean_nodes=rep.mean_fleet_size,
        peak_nodes=rep.peak_fleet_size,
        energy_kj=rep.energy_j() / 1e3,
    )


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="serve-autoscale",
        title="Elastic fleet scaling under time-varying traffic",
        paper_reference="§I/§VII datacenter serving under real (diurnal, bursty) load",
    )
    engine = OnlineServingEngine()
    capacity = node_capacity_rps(engine, MIX, DISPATCH)
    slos = {m: SLO_S for m in MIX}

    # ---- The trace zoo (for the record: shapes and magnitudes) -------- #
    horizon = 8.0 if fast else 24.0
    diurnal = diurnal_trace(fast)
    zoo = {
        "diurnal": diurnal,
        "burst-mmpp": OnOffTrace(
            base_rps=80.0,
            burst_rps=400.0,
            mean_base_s=2.0,
            mean_burst_s=1.0,
            horizon_s=horizon,
            seed=SEED,
        ),
        "flash-crowd": SpikeTrace(
            base_rps=120.0, spike_rps=600.0, spike_at_s=horizon / 3
        ),
        "ramp": RampTrace(start_rps=60.0, end_rps=400.0, ramp_s=horizon),
        "constant": ConstantTrace(300.0),
    }
    for name, trace in zoo.items():
        res.add(
            section="traces",
            case=name,
            mean_rps=trace.mean_rate(0.0, horizon),
            peak_rps=trace.peak_rate(0.0, horizon),
        )

    # ---- Diurnal: static peak fleet vs elastic policies --------------- #
    peak = diurnal.peak_rps
    planner = CapacityPlanner(
        MIX, engine=engine, n_requests=150 if fast else 300, seed=SEED
    )
    peak_plan = planner.min_nodes(
        DISPATCH, target_rps=peak, p99_slo_s=SLO_S, max_nodes=16
    )
    stream = mix_requests(diurnal, MIX, horizon, seed=SEED, slos=slos)
    lookahead = (
        make_cluster(engine).provision_delay_s + CONTROL_INTERVAL_S
    )
    contenders = {
        "static-peak": (StaticPolicy(peak_plan.nodes), peak_plan.nodes),
        "reactive": (TargetUtilizationPolicy(capacity, target=0.7), 1),
        "predictive": (
            PredictiveTracePolicy(diurnal, capacity, lookahead_s=lookahead),
            1,
        ),
    }
    reports: Dict[str, AutoscaleReport] = {}
    for name, (policy, start_nodes) in contenders.items():
        cluster = make_cluster(engine, initial_nodes=start_nodes)
        rep = cluster.run(stream, policy)
        reports[name] = rep
        _quality_row(res, "diurnal", name, rep)
    static, reactive, predictive = (
        reports["static-peak"],
        reports["reactive"],
        reports["predictive"],
    )
    res.check(
        "reactive holds the p99 SLO on the diurnal trace",
        reactive.p99_s <= SLO_S,
    )
    res.check(
        "reactive sheds under 2% of offered load",
        reactive.shed_fraction < 0.02,
    )
    res.check(
        "reactive pays fewer node-seconds than the static peak fleet",
        reactive.node_seconds < static.node_seconds,
    )
    res.check(
        "reactive pays less energy than the static peak fleet",
        reactive.energy_j() < static.energy_j(),
    )
    res.check(
        "predictive holds the p99 SLO with fewer node-seconds than static",
        predictive.p99_s <= SLO_S
        and predictive.node_seconds < static.node_seconds,
    )
    res.note(
        f"diurnal {diurnal.trough_rps:.0f}->{diurnal.peak_rps:.0f} req/s over "
        f"{horizon:.0f} s: static peak fleet = {peak_plan.nodes} nodes "
        f"({static.node_seconds:.0f} node-s), reactive averages "
        f"{reactive.mean_fleet_size:.2f} nodes ({reactive.node_seconds:.0f} "
        f"node-s, {reactive.shed_fraction * 100:.2f}% shed), predictive "
        f"{predictive.mean_fleet_size:.2f} ({predictive.node_seconds:.0f} node-s)"
    )

    # ---- Planner anchor: constant trace converges to min_nodes -------- #
    anchor_rate = 300.0
    anchor_plan = planner.min_nodes(
        DISPATCH, target_rps=anchor_rate, p99_slo_s=SLO_S, max_nodes=16
    )
    anchor_horizon = 14.0 if fast else 20.0
    # No per-request SLO: the planner's feasibility probe measures the raw
    # queueing tail, so the autoscaler must see the same signal.
    anchor_stream = mix_requests(
        ConstantTrace(anchor_rate), MIX, anchor_horizon, seed=SEED
    )
    anchor_cluster = make_cluster(
        engine, initial_nodes=min(12, anchor_plan.nodes + 2)
    )
    anchor_rep = anchor_cluster.run(
        anchor_stream,
        SLOFeedbackPolicy(SLO_S, down_margin=0.6, patience=2, settle_s=3.0),
    )
    converged = anchor_rep.converged_nodes()
    _quality_row(res, "anchor", f"slo-feedback@{anchor_rate:.0f}rps", anchor_rep)
    res.add(
        section="anchor",
        case="planner",
        nodes=anchor_plan.nodes,
        p99_ms=anchor_plan.report.p99_s * 1e3,
        probes=len(anchor_plan.probes),
    )
    res.check(
        "constant trace: autoscaler converges to the planner's min_nodes",
        converged == anchor_plan.nodes,
    )
    res.note(
        f"anchor at {anchor_rate:.0f} req/s, p99 SLO {SLO_S * 1e3:.0f} ms: "
        f"planner binary search -> {anchor_plan.nodes} nodes, SLO-feedback "
        f"probe ladder converges to {converged} "
        f"(floor memory pins the failed {anchor_plan.nodes - 1}-node probe)"
    )

    # ---- Flash crowd: shed during the gap, recover after -------------- #
    spike_horizon = 8.0 if fast else 12.0
    spike = SpikeTrace(
        base_rps=120.0,
        spike_rps=500.0 if fast else 700.0,
        spike_at_s=spike_horizon / 3,
        rise_s=0.5,
        decay_s=2.0,
    )
    spike_stream = mix_requests(spike, MIX, spike_horizon, seed=SEED + 7, slos=slos)
    spike_cluster = make_cluster(engine, initial_nodes=1)
    spike_rep = spike_cluster.run(
        spike_stream, TargetUtilizationPolicy(capacity, target=0.7)
    )
    _quality_row(res, "spike", "reactive", spike_rep)
    late_rejects = [
        r
        for r in spike_rep.rejected
        if r.rejected_at_s > spike.spike_at_s + 4.0
    ]
    res.check(
        "flash crowd: the fleet grows past its pre-spike size",
        spike_rep.peak_fleet_size > 1,
    )
    res.check(
        "flash crowd: shedding stops once provisioned capacity lands",
        not late_rejects,
    )
    res.check(
        "flash crowd: completed requests never exceed their SLO",
        all(
            c.latency_s <= c.request.slo_s + 1e-12
            for c in spike_rep.completed
            if c.request.slo_s is not None
        ),
    )
    res.note(
        f"flash crowd {spike.base_rps:.0f}->{spike.spike_rps:.0f} req/s at "
        f"t={spike.spike_at_s:.1f} s: {len(spike_rep.rejected)} shed during "
        f"the provisioning gap (delay {spike_cluster.provision_delay_s:.2f} s), "
        f"fleet peaks at {spike_rep.peak_fleet_size} nodes"
    )

    # ---- Determinism ------------------------------------------------- #
    again = make_cluster(engine, initial_nodes=1).run(
        mix_requests(diurnal, MIX, horizon, seed=SEED, slos=slos),
        TargetUtilizationPolicy(capacity, target=0.7),
    )
    res.check(
        "deterministic: same seed reproduces the same elastic run",
        (again.served, len(again.rejected), again.node_seconds, again.p99_s)
        == (
            reactive.served,
            len(reactive.rejected),
            reactive.node_seconds,
            reactive.p99_s,
        ),
    )

    res.chart = {
        "kind": "timeline",
        "rows": reactive.timeline_rows(),
        "x_key": "t_s",
        "y_keys": ["nodes", "offered_rps", "p99_ms"],
    }
    return res
