"""Fig. 9: naive vs. StepStone AGEN GEMM latency.

Two matrices (1024 x 4096 and 2048 x 8192, batch 4) at all three PIM levels;
the naive generator walks +1 cache block per iteration, so its per-access
bubbles equal the actual block gaps; StepStone's increment-correct-and-check
stays within the pipeline window.  Paper claims: AGEN wins by up to ~4x,
and the gap grows with the number of active PIMs.
"""

from __future__ import annotations

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig09",
        title="Naive vs StepStone AGEN (batch 4)",
        paper_reference="Fig. 9; §V-C",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    shapes = [(1024, 4096)] if fast else [(1024, 4096), (2048, 8192)]
    gaps = {}
    for m, k in shapes:
        shape = GemmShape(m, k, 4)
        for lvl in (PimLevel.BANKGROUP, PimLevel.DEVICE, PimLevel.CHANNEL):
            agen = execute_gemm(cfg, sky, shape, lvl, agen="stepstone")
            naive = execute_gemm(cfg, sky, shape, lvl, agen="naive")
            ratio = naive.breakdown.total / agen.breakdown.total
            gaps[(m, k, lvl)] = ratio
            res.add(
                matrix=f"{m}x{k}",
                level=lvl.short,
                naive_cycles=naive.breakdown.total,
                agen_cycles=agen.breakdown.total,
                speedup=ratio,
                agen_bubble_stall=agen.bubble_stall_cycles,
                naive_bubble_stall=naive.bubble_stall_cycles,
            )
    res.check(
        "AGEN gap grows with active PIM count (BG > DV >= CH)",
        all(
            gaps[(m, k, PimLevel.BANKGROUP)]
            > gaps[(m, k, PimLevel.DEVICE)]
            >= gaps[(m, k, PimLevel.CHANNEL)] * 0.95
            for (m, k) in shapes
        ),
    )
    res.check(
        "BG-level speedup in the paper's 3-8x band",
        all(3.0 <= gaps[(m, k, PimLevel.BANKGROUP)] <= 8.0 for (m, k) in shapes),
    )
    res.check(
        "StepStone AGEN bubbles fully hidden",
        all(r["agen_bubble_stall"] < 0.01 * r["agen_cycles"] for r in res.rows),
    )
    res.chart = {"kind": "grouped", "category_key": "level", "value_key": "speedup"}
    return res
