"""Flat-memory fleet serving at datacenter scale.

The elastic-fleet experiments so far materialize every request and every
completion record in memory — fine for the seconds-long traces the other
``serve-*`` experiments replay, hopeless for the day-long, ~10M-request
traces real datacenter provisioning studies need (§I: inference queries
at internet-service scale).  This experiment proves the streaming
metrics refactor end to end:

* **Exactness cross-check** — the same diurnal prefix served three
  ways: eager ``record="full"`` (per-request records, the pre-refactor
  behavior), eager ``record="streaming"`` (P² sketches + windowed
  sub-sketches), and lazy ``record="streaming"`` with generator
  arrivals.  All three must agree on every count and every control
  decision; streaming percentiles must sit within the documented sketch
  tolerance of the exact ranks.
* **Memory contract** — a streaming report holds *no* per-request list:
  accessing ``latencies_s`` raises :class:`RecordingModeError` instead
  of silently re-materializing, while counts and percentiles keep
  working.
* **The scale run** — a full 24-hour diurnal day (~10M requests at a
  ~116 req/s mean; a 5-minute slice in fast mode) served lazily with
  streaming stats: arrivals are generated one at a time, completions
  fold into O(1) sketches, and the run completes with bounded memory no
  matter the trace length.

Everything is seeded: same seed, same traces, same report.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.autoscale import (
    AutoscaleReport,
    DiurnalTrace,
    ElasticCluster,
    TargetUtilizationPolicy,
    mix_request_stream,
    mix_requests,
    node_capacity_rps,
)
from repro.experiments.common import ExperimentResult
from repro.serving.engine import OnlineServingEngine
from repro.sim import RecordingModeError

__all__ = [
    "run",
    "MIX",
    "SLO_S",
    "DISPATCH",
    "DAY_S",
    "scale_trace",
    "make_scale_cluster",
    "run_streaming_day",
]

SEED = 42
#: Traffic mix every scenario serves (the serve-cluster planner mix).
MIX: Dict[str, float] = {"BERT": 0.9, "DLRM": 0.1}
#: Fleet-wide p99 latency SLO (seconds).
SLO_S = 1.0
#: Per-node dispatch policy (the paper's concurrent CPU+PIM split).
DISPATCH = "hybrid"
#: One simulated day — the scale run's horizon (~10M requests).
DAY_S = 86_400.0
#: Control tick spacing for day-long runs (coarser than the seconds-long
#: experiments so a day is ~17k ticks, not ~173k).
CONTROL_INTERVAL_S = 5.0
#: Relative tolerance for sketch percentiles against exact ranks (the
#: measured P² error on these latency distributions is well under this).
SKETCH_RTOL = 0.05


def scale_trace(period_s: float = DAY_S) -> DiurnalTrace:
    """The day/night swing sized so one :data:`DAY_S` period carries
    ~10M requests (mean (40+192)/2 = 116 req/s)."""
    return DiurnalTrace(trough_rps=40.0, peak_rps=192.0, period_s=period_s)


def make_scale_cluster(
    engine: OnlineServingEngine,
    record: str = "streaming",
    control_interval_s: float = CONTROL_INTERVAL_S,
) -> ElasticCluster:
    """The canonical scale fleet (shared with tests/benchmarks)."""
    return ElasticCluster(
        engine=engine,
        policy=DISPATCH,
        models=sorted(MIX),
        initial_nodes=1,
        min_nodes=1,
        max_nodes=12,
        control_interval_s=control_interval_s,
        provision_base_s=0.15,
        copy_gbps=10.0,
        record=record,
    )


def run_streaming_day(
    horizon_s: float,
    engine: Optional[OnlineServingEngine] = None,
    record: str = "streaming",
    seed: int = SEED,
    period_s: Optional[float] = None,
) -> AutoscaleReport:
    """One lazy streaming diurnal run over ``[0, horizon_s)``.

    The single entry point the experiment, the scale benchmark, and the
    CI smoke all share: generator arrivals (one request in flight at a
    time) into an elastic fleet under the reactive policy, with the
    requested recording mode.  ``period_s`` defaults to :data:`DAY_S`;
    benchmarks pass ``period_s=horizon_s`` so a sliced run still sweeps
    one full day/night swing (and so carries the trace's ~116 req/s
    mean rather than a trough-only prefix).
    """
    engine = engine or OnlineServingEngine()
    capacity = node_capacity_rps(engine, MIX, DISPATCH)
    cluster = make_scale_cluster(engine, record=record)
    stream = mix_request_stream(
        scale_trace(period_s or DAY_S),
        MIX,
        horizon_s,
        seed=seed,
        slos={m: SLO_S for m in MIX},
    )
    return cluster.run(
        stream,
        TargetUtilizationPolicy(capacity, target=0.7),
        presorted=True,
        horizon_s=horizon_s,
    )


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="serve-scale",
        title="Flat-memory streaming fleet runs at datacenter scale",
        paper_reference="§I/§VII day-long datacenter traces (~10M queries/day)",
    )
    engine = OnlineServingEngine()
    capacity = node_capacity_rps(engine, MIX, DISPATCH)
    slos = {m: SLO_S for m in MIX}

    # ---- Exactness: full vs streaming vs lazy on one prefix ----------- #
    cross_h = 60.0 if fast else 240.0
    # A short period so the cross-check prefix still sees a full swing.
    cross = scale_trace(period_s=cross_h)
    stream = mix_requests(cross, MIX, cross_h, seed=SEED, slos=slos)
    policy = TargetUtilizationPolicy(capacity, target=0.7)
    runs: Dict[str, AutoscaleReport] = {}
    for mode in ("full", "streaming"):
        cluster = make_scale_cluster(engine, record=mode)
        runs[mode] = cluster.run(stream, policy)
    lazy_cluster = make_scale_cluster(engine, record="streaming")
    runs["lazy"] = lazy_cluster.run(
        mix_request_stream(cross, MIX, cross_h, seed=SEED, slos=slos),
        policy,
        presorted=True,
        horizon_s=cross_h,
    )
    full, streaming, lazy = runs["full"], runs["streaming"], runs["lazy"]
    for name, rep in runs.items():
        res.add(
            section="cross-check",
            case=name,
            served=rep.served,
            rejected=rep.rejected_count,
            p99_ms=rep.latency_percentile(99) * 1e3,
            peak_nodes=rep.peak_fleet_size,
            node_s=rep.node_seconds,
        )
    res.check(
        "streaming and full runs agree on every count",
        (streaming.served, streaming.rejected_count, streaming.failed_count)
        == (full.served, full.rejected_count, full.failed_count),
    )
    res.check(
        "streaming and full runs make identical control decisions",
        [s.desired for s in streaming.samples] == [s.desired for s in full.samples],
    )
    # The lazy run schedules control ticks through the declared horizon,
    # so it may carry a trailing tick or two past the eager run's last
    # arrival — the decision *prefix* must match exactly.
    n = len(streaming.samples)
    res.check(
        "lazy generator arrivals reproduce the eager run exactly",
        lazy.served == streaming.served
        and [s.desired for s in lazy.samples[:n]]
        == [s.desired for s in streaming.samples],
    )
    p99_exact = full.latency_percentile(99)
    p99_sketch = streaming.latency_percentile(99)
    rel = abs(p99_sketch - p99_exact) / p99_exact if p99_exact else 0.0
    res.check(
        f"sketch p99 within {SKETCH_RTOL:.0%} of the exact rank",
        rel <= SKETCH_RTOL,
    )
    res.note(
        f"cross-check over {cross_h:.0f} s ({full.served} served): exact "
        f"p99 {p99_exact * 1e3:.2f} ms vs sketch {p99_sketch * 1e3:.2f} ms "
        f"({rel * 100:.2f}% off), identical counts and control decisions"
    )

    # ---- Memory contract: streaming keeps no per-request list --------- #
    try:
        streaming.latencies_s
        raised = False
    except RecordingModeError:
        raised = True
    res.check(
        "streaming report refuses per-request access instead of "
        "re-materializing",
        raised,
    )
    res.check(
        "full report still exposes the per-request records",
        len(full.latencies_s) == full.served,
    )

    # ---- The scale run: a (fast: sliced) day, lazily, streaming ------- #
    scale_h = 300.0 if fast else DAY_S
    t0 = time.perf_counter()
    day = run_streaming_day(scale_h, engine=engine)
    wall_s = time.perf_counter() - t0
    offered = day.served + day.rejected_count + day.failed_count
    res.add(
        section="scale",
        case="streaming-day" if not fast else "streaming-slice",
        horizon_s=scale_h,
        offered=offered,
        served=day.served,
        shed=day.shed_fraction,
        p99_ms=day.latency_percentile(99) * 1e3,
        peak_nodes=day.peak_fleet_size,
        mean_nodes=day.mean_fleet_size,
        events=day.events_processed,
        wall_s=round(wall_s, 2),
        events_per_s=round(day.events_processed / wall_s) if wall_s else 0,
    )
    res.check("scale run serves the whole horizon", day.sim_end_s >= scale_h)
    res.check("scale run sheds under 2% of offered load", day.shed_fraction < 0.02)
    res.check(
        "scale run holds the p99 SLO", day.latency_percentile(99) <= SLO_S
    )
    res.check(
        "scale report is streaming (no per-request storage)",
        day.record == "streaming",
    )
    res.note(
        f"{scale_h / 3600:.2f} h diurnal day: {offered} offered, "
        f"{day.served} served in {wall_s:.1f} s wall "
        f"({day.events_processed / wall_s:,.0f} events/s), p99 "
        f"{day.latency_percentile(99) * 1e3:.1f} ms, fleet "
        f"{day.mean_fleet_size:.2f} nodes mean / {day.peak_fleet_size} peak "
        "— memory stays flat because arrivals are generated lazily and "
        "completions fold into fixed-size sketches "
        "(see benchmarks/BENCH_scale.json for the measured RSS curve)"
    )

    res.chart = {
        "kind": "timeline",
        "rows": day.timeline_rows()[:: max(1, len(day.samples) // 288)],
        "x_key": "t_s",
        "y_keys": ["nodes", "offered_rps", "p99_ms"],
    }
    return res
