"""Ablations of StepStone's design choices (DESIGN.md index).

Each ablation disables one mechanism and reports the slowdown on
representative GEMMs, isolating that mechanism's contribution:

* **AGEN** — increment-correct-and-check vs naive block probing (Fig. 9's
  mechanism, here across more shapes);
* **activation lookahead** — the deep AGEN pipeline pre-activating DRAM
  rows vs paying full row-miss penalties;
* **DMA localization/reduction** — controller engine vs CPU-driven moves;
* **kernel granularity** — one long-running kernel vs per-dot-product
  launches (idle command channel, i.e. the granularity cost *without*
  colocation);
* **PIM-level choice** — the scheduler's dynamic level selection vs pinning
  everything to one level (the §III-E optimization XLM depends on).
"""

from __future__ import annotations

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm, execute_plan
from repro.core.gemm import GemmShape, plan_gemm
from repro.core.scheduler import choose_execution
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel

__all__ = ["run"]

_SHAPES = ((1024, 4096, 4), (4096, 1024, 4), (2048, 8192, 16))


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations",
        paper_reference="§III mechanisms; DESIGN.md",
    )
    cfg = StepStoneConfig.default()
    sky = make_skylake()
    shapes = _SHAPES[:1] if fast else _SHAPES

    agen_slow, look_slow, dma_slow, gran_slow = [], [], [], []
    for m, k, n in shapes:
        shape = GemmShape(m, k, n)
        base = execute_gemm(cfg, sky, shape, PimLevel.BANKGROUP)

        naive = execute_gemm(cfg, sky, shape, PimLevel.BANKGROUP, agen="naive")
        s = naive.breakdown.total / base.breakdown.total
        agen_slow.append(s)
        res.add(ablation="no-AGEN", config=f"{m}x{k} N={n}", slowdown=s)

        # Lookahead off: naive generator without even loop-assisted rows is
        # the closest "blind" configuration; isolate via full-gap naive at
        # the DV level too (fewer PIMs -> purer row-miss effect).
        blind = execute_gemm(
            cfg, sky, shape, PimLevel.DEVICE, agen="naive", naive_full_gaps=True
        )
        dv = execute_gemm(cfg, sky, shape, PimLevel.DEVICE)
        s = blind.breakdown.total / dv.breakdown.total
        look_slow.append(s)
        res.add(ablation="no-lookahead(DV)", config=f"{m}x{k} N={n}", slowdown=s)

        plan = plan_gemm(cfg, sky, shape, PimLevel.BANKGROUP)
        accel = execute_plan(cfg, plan, flow="stepstone")
        cpu_moved = execute_plan(cfg, plan, flow="echo")
        s = cpu_moved.breakdown.total / accel.breakdown.total
        dma_slow.append(s)
        res.add(ablation="no-DMA-loc-red", config=f"{m}x{k} N={n}", slowdown=s)

        fine = execute_gemm(
            cfg, sky, shape, PimLevel.BANKGROUP, flow="echo", launch_delay_cycles=0.0
        )
        # Isolate granularity: compare kernel-launch overheads only.
        gran = 1.0 + (fine.kernel_launches - base.kernel_launches) * (
            cfg.dma.kernel_launch_cycles / cfg.channels
        ) / base.breakdown.total
        gran_slow.append(gran)
        res.add(
            ablation="per-dot-kernels(idle)",
            config=f"{m}x{k} N={n}",
            slowdown=gran,
        )

    # Kernel fusion for non-pow2 matrices (§III-E): savings vs per-tile.
    from repro.core.fusion import fused_execute

    fusion_savings = []
    for m, k, n in ([(1600, 1600, 4)] if fast else [(1600, 1600, 4), (6400, 1600, 4)]):
        fr = fused_execute(cfg, sky, GemmShape(m, k, n), PimLevel.BANKGROUP)
        fusion_savings.append(fr.savings_fraction)
        res.add(
            ablation="no-fusion(non-pow2)",
            config=f"{m}x{k} N={n}",
            slowdown=fr.unfused_breakdown.total / fr.breakdown.total,
        )

    # Dynamic level selection vs pinned levels, over an N sweep.
    sweep_ns = (1, 32) if fast else (1, 4, 16, 32)
    dyn, bg_only, dv_only = 0.0, 0.0, 0.0
    for n in sweep_ns:
        shape = GemmShape(1024, 4096, n)
        dyn += choose_execution(cfg, sky, shape, max_pinned_bits=0).cycles
        bg_only += execute_gemm(cfg, sky, shape, PimLevel.BANKGROUP).breakdown.total
        dv_only += execute_gemm(cfg, sky, shape, PimLevel.DEVICE).breakdown.total
    res.add(ablation="pin-level-BG", config=f"N sweep {sweep_ns}", slowdown=bg_only / dyn)
    res.add(ablation="pin-level-DV", config=f"N sweep {sweep_ns}", slowdown=dv_only / dyn)

    res.check("AGEN contributes >2x on BG GEMMs", all(s > 2.0 for s in agen_slow))
    res.check("lookahead/naive costs are visible at DV", all(s > 1.1 for s in look_slow))
    res.check("DMA loc/red contributes >=10%", any(s > 1.1 for s in dma_slow))
    res.check(
        "kernel granularity is a secondary cost without colocation (<2x, "
        "vs up to ~5.5x with it)",
        all(s < 2.0 for s in gran_slow),
    )
    res.check(
        "dynamic level choice beats both pinned levels over the sweep",
        bg_only > dyn and dv_only > dyn,
    )
    res.check(
        "kernel fusion saves >=10% on non-pow2 GPT2 shapes",
        all(s >= 0.10 for s in fusion_savings),
    )
    res.note(
        "Granularity costs little on an idle command channel — its value "
        "appears under colocation (fig13), which is the paper's point about "
        "long-running kernels."
    )
    res.chart = {"kind": "grouped", "category_key": "ablation", "value_key": "slowdown"}
    return res
