"""Fig. 11: sensitivity to address mapping and weight-matrix aspect ratio.

Mappings 0-4 (Table II) x {512 x 2048, 128 x 8192, 8192 x 128} at batch 4,
per PIM level, with GEMM / localization / reduction components.  Paper
claims checked: localization overhead tracks the block-group (sharing)
count, which differs 4x across mappings for the short-fat matrix; tall-thin
matrices suffer high reduction overhead everywhere; mappings 2 and 3
penalize the channel-level PIM through coarse bank-group interleaving
(tCCD_L); StepStone-BG is the most mapping-sensitive level.
"""

from __future__ import annotations

from repro.core.config import StepStoneConfig
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.experiments.common import ExperimentResult
from repro.mapping.presets import mapping_by_id
from repro.mapping.xor_mapping import PimLevel

__all__ = ["run"]

_MATRICES = ((512, 2048), (128, 8192), (8192, 128))


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig11",
        title="Address-mapping and aspect-ratio sensitivity (batch 4)",
        paper_reference="Fig. 11; §V-E",
    )
    cfg = StepStoneConfig.default()
    levels = (
        (PimLevel.BANKGROUP,)
        if fast
        else (PimLevel.BANKGROUP, PimLevel.DEVICE, PimLevel.CHANNEL)
    )
    data = {}
    for mid in range(5):
        mapping = mapping_by_id(mid)
        for m, k in _MATRICES:
            for lvl in levels:
                r = execute_gemm(cfg, mapping, GemmShape(m, k, 4), lvl)
                b = r.breakdown
                data[(mid, m, k, lvl)] = b
                res.add(
                    mapping=mid,
                    matrix=f"{m}x{k}",
                    level=lvl.short,
                    n_groups=r.plan.analysis.n_groups,
                    gemm=b.gemm + b.fill_b + b.fill_c + b.drain_c,
                    localization=b.localization,
                    reduction=b.reduction,
                    total=b.total,
                )

    bg = PimLevel.BANKGROUP
    loc = {mid: data[(mid, 128, 8192, bg)].localization for mid in range(5)}
    res.check(
        "short-fat localization: mappings 1,2 highest; 0 lowest (4x span)",
        loc[0] < loc[3] <= loc[4] * 1.05 and loc[4] < loc[1] * 1.05 and loc[1] >= 3.0 * loc[0],
    )
    res.check(
        "tall-thin suffers high reduction for all mappings",
        all(
            data[(mid, 8192, 128, bg)].reduction
            > 2.0 * data[(mid, 128, 8192, bg)].reduction
            for mid in range(5)
        ),
    )
    if not fast:
        ch = PimLevel.CHANNEL
        res.check(
            "mappings 2,3 penalize StepStone-CH (coarse BG interleave)",
            all(
                data[(mid, 512, 2048, ch)].gemm
                > 1.2 * data[(4, 512, 2048, ch)].gemm
                for mid in (2, 3)
            ),
        )
        # Sensitivity: spread of totals across mappings, relative to mean.
        def spread(lvl):
            import statistics

            spreads = []
            for m, k in _MATRICES:
                ts = [data[(mid, m, k, lvl)].total for mid in range(5)]
                spreads.append((max(ts) - min(ts)) / statistics.mean(ts))
            return max(spreads)

        res.check(
            "BG most mapping-sensitive level",
            spread(bg) > spread(PimLevel.DEVICE) and spread(bg) > spread(ch),
        )
    res.chart = {
        "kind": "stacked",
        "category_key": "mapping",
        "component_keys": ["gemm", "localization", "reduction"],
    }
    return res
