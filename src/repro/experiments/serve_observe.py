"""Observability: span accounting ties out exactly, profiling explains cost.

Tracing that *approximately* matches the reports it shadows is worse than
no tracing — every disagreement becomes a debugging session about the
debugger.  This experiment holds ``repro.obs`` to the exact standard:

* **genai-trace** — a generative continuous-batching run under KV
  pressure, traced end to end: the engine-level phase spans
  (``prefill-pass`` + ``decode-step``) sum to ``GenReport.busy_s`` with
  ``==`` (the recorder accumulates the *same floats* in the *same
  order*), per-sequence span counts equal the report's served/rejected
  counts, the Chrome ``trace_event`` export validates against the
  schema, and the traced report is identical to an untraced one (tracing
  observes, never perturbs).
* **serving-tie** — the single-node engine: summed ``serve``/``queued``
  span durations equal the report's summed service/queue seconds
  bit-for-bit.
* **cluster-tie** — a failure-free fleet: each node's ``batch`` spans
  sum to that node's ``busy_s`` exactly (per-node emission order matches
  per-node accumulation order; cross-node sums are *not* compared —
  float addition is not associative).
* **profile** — the kernel self-profile on a chaos run (all six event
  kinds live): per-:class:`~repro.sim.kernel.EventKind` counts and
  handler wall-shares, handler-time share of total run wall — the
  measurement behind ROADMAP's "per-event Python churn" claim — and the
  heap-vs-preloaded delivery split.
* **telemetry** — the :class:`~repro.obs.Telemetry` counters the run
  loops publish agree with the reports they summarize.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.experiments.common import ExperimentResult
from repro.genai import ContinuousBatcher, GenerativeEngine, gen_requests
from repro.obs import RunObserver
from repro.obs.trace import validate_chrome_trace
from repro.serving import OnlineServingEngine
from repro.serving.engine import poisson_requests
from repro.sim import FailureTrace

__all__ = ["run"]

SEED = 7


def run(fast: bool = False, obs: RunObserver = None) -> ExperimentResult:
    """Run the observability experiment.

    Args:
        fast: Shrink traces for smoke runs.
        obs: An externally built observer to trace the headline genai
            section into (the CLI passes one to export ``--trace-out``
            / print ``--profile``); one is built internally when omitted.
    """
    res = ExperimentResult(
        experiment_id="serve-observe",
        title="Span tracing ties out exactly; the kernel profiles itself",
        paper_reference="infrastructure (no paper figure): repro.obs",
    )

    # -------------------------------------------------------------- #
    # 1. Generative trace: exact busy tie-out + Chrome export
    # -------------------------------------------------------------- #
    if obs is None:
        obs = RunObserver.full(cap=200_000)
    if obs.telemetry is not None:
        obs.telemetry.enable()
    duration = 40.0 if fast else 120.0
    reqs = gen_requests(
        rate_rps=0.8,
        duration_s=duration,
        prompt_range=(16, 48),
        output_range=(8, 64),
        seed=SEED,
    )
    shared = OnlineServingEngine()

    def mk() -> GenerativeEngine:
        # A tight KV budget so preemption spans appear in the trace.
        return GenerativeEngine(
            engine=shared,
            scheduler=ContinuousBatcher(),
            max_batch=4,
            kv_capacity_tokens=700,
        )
    prof_before = obs.profile.events if obs.profile is not None else 0
    rep = mk().run(reqs, obs=obs)
    plain = mk().run(reqs)
    sp = obs.spans
    engine_busy = sp.total_s("prefill-pass") + sp.total_s("decode-step")
    for phase in sp.phases():
        res.add(
            section="genai-trace",
            phase=phase,
            count=sp.count(phase),
            total_s=sp.total_s(phase),
        )
    res.check(
        "engine phase spans sum to GenReport.busy_s with == (not approx)",
        sp.total_s("prefill-pass") == rep.busy_prefill_s
        and sp.total_s("decode-step") == rep.busy_decode_s
        and engine_busy == rep.busy_s,
    )
    res.check(
        "span counts == report counts (sequence/served, rejected, preempted)",
        sp.count("sequence") == rep.served
        and sp.count("rejected") == rep.rejected_count
        and sp.count("preempted") == rep.preemptions,
    )
    res.check(
        "tracing observes, never perturbs: traced report == untraced report",
        (rep.served, rep.tokens_out, rep.sim_end_s, rep.busy_s, rep.events_processed)
        == (
            plain.served,
            plain.tokens_out,
            plain.sim_end_s,
            plain.busy_s,
            plain.events_processed,
        ),
    )
    n_events = validate_chrome_trace(sp.chrome_trace())
    res.check(
        "Chrome trace_event export validates (ph/ts/dur/pid/tid, monotonic ts)",
        n_events == len(sp.spans) and n_events > 0,
    )
    if obs.profile is not None:
        res.check(
            "the profiler accounted every kernel event of the traced run",
            obs.profile.events - prof_before == rep.events_processed,
        )
    res.note(
        f"genai trace: {sp.n_emitted} spans ({rep.served} seqs, "
        f"{rep.preemptions} preemptions), engine busy {engine_busy:.3f}s "
        f"== report.busy_s exactly; {n_events} Chrome events validate"
    )
    for line in sp.waterfall(n=5).splitlines():
        res.note(line)

    # -------------------------------------------------------------- #
    # 2. Single-node serving: service/queue seconds tie bit-for-bit
    # -------------------------------------------------------------- #
    serve_obs = RunObserver.tracing(cap=200_000)
    engine = OnlineServingEngine()
    stream = poisson_requests(
        "BERT",
        rate_rps=150.0,
        duration_s=2.0 if fast else 6.0,
        seed=SEED,
        slo_s=engine.min_latency("BERT", "cpu") * 20.0,
    )
    srep = engine.run(stream, "hybrid", obs=serve_obs)
    ssp = serve_obs.spans
    serve_sum = sum(c.service_s for c in srep.completed)
    queue_sum = sum(c.queue_s for c in srep.completed)
    res.add(
        section="serving-tie",
        served=srep.served,
        serve_span_s=ssp.total_s("serve"),
        report_service_s=serve_sum,
        queued_span_s=ssp.total_s("queued"),
        report_queue_s=queue_sum,
    )
    res.check(
        "serve spans == summed service_s and queued spans == summed queue_s (==)",
        ssp.total_s("serve") == serve_sum and ssp.total_s("queued") == queue_sum,
    )
    res.check(
        "span count == completed + rejected (every request left a span)",
        ssp.count("serve") == srep.served
        and ssp.count("rejected") == srep.rejected_count,
    )

    # -------------------------------------------------------------- #
    # 3. Cluster: per-node batch spans reproduce per-node busy_s
    # -------------------------------------------------------------- #
    cl_obs = RunObserver.tracing(cap=200_000)
    cluster = Cluster(n_nodes=3, replication=3)
    cstream = poisson_requests(
        "BERT", rate_rps=300.0, duration_s=2.0 if fast else 5.0, seed=SEED + 1
    )
    crep = cluster.run(cstream, obs=cl_obs)
    per_node_ok = True
    for node in cluster.nodes:
        batch_sum = sum(
            s.dur_s
            for s in cl_obs.spans.spans
            if s.phase == "batch" and s.node == node.node_id
        )
        res.add(
            section="cluster-tie",
            node=node.node_id,
            batch_span_s=batch_sum,
            node_busy_s=node.busy_s,
        )
        per_node_ok = per_node_ok and batch_sum == node.busy_s
    res.check(
        "per-node batch spans == per-node busy_s with == (failure-free fleet)",
        per_node_ok and crep.served > 0,
    )

    # -------------------------------------------------------------- #
    # 4. Kernel self-profile on a chaos run (all event kinds live)
    # -------------------------------------------------------------- #
    prof_obs = RunObserver.profiling()
    horizon = 20.0 if fast else 60.0
    chaos = Cluster(n_nodes=4, replication=4)
    chaos_stream = poisson_requests(
        "BERT", rate_rps=200.0, duration_s=horizon, seed=SEED + 2
    )
    chaos_failures = FailureTrace.poisson(
        n_nodes=4, mtbf_s=horizon / 3.0, mttr_s=2.0, horizon_s=horizon, seed=SEED
    )
    chaos_rep = chaos.run(chaos_stream, failures=chaos_failures, obs=prof_obs)
    profile = prof_obs.profile.profile()
    for row in profile.rows():
        res.add(section="profile", **row)
    res.check(
        "the profile accounts every kernel event exactly",
        profile.events == chaos_rep.events_processed,
    )
    res.check(
        "chaos run exercises failure kinds (FAIL/RECOVER counted)",
        profile.counts.get("FAIL", 0) > 0 and profile.counts.get("RECOVER", 0) > 0,
    )
    res.note(
        f"kernel profile: {profile.events} events at "
        f"{profile.events_per_s:,.0f} events/s; handler share "
        f"{profile.handler_share * 100:.1f}% of run wall (ROADMAP's "
        f"'per-event Python churn' claim, measured), "
        f"{profile.stream_share * 100:.1f}% stream-delivered"
    )

    # -------------------------------------------------------------- #
    # 5. Telemetry counters agree with the reports
    # -------------------------------------------------------------- #
    if obs.telemetry is not None:
        bus = obs.telemetry
        res.add(
            section="telemetry",
            served=bus.counter("served", scope="genai"),
            rejected=bus.counter("rejected", scope="genai"),
            tokens=bus.counter("tokens", scope="genai"),
        )
        res.check(
            "telemetry counters == report aggregates",
            bus.counter("served", scope="genai") == float(rep.served)
            and bus.counter("tokens", scope="genai") == float(rep.tokens_out),
        )

    res.chart = {
        "kind": "phases",
        "rows": [r for r in res.rows if r["section"] == "genai-trace"],
        "phase_key": "phase",
        "count_key": "count",
        "total_key": "total_s",
    }
    return res
