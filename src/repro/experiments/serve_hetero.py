"""Heterogeneous fleets: mixed CPU/GPU/StepStone serving economics.

The paper's headline figures are *cross-substrate* comparisons — StepStone
PIM vs. CPU vs. GPU at small batch (Figs. 1, 6, 8) — and its cost argument
is a datacenter one.  This experiment lifts that comparison to fleet
scale, a Fig. 8 analogue over whole clusters:

* **Substrate** — per-backend batch service times for BERT (the Fig. 8
  shape at the node level): StepStone wins small batches, the GPU wins
  once batching amortizes its staging and occupancy overheads.
* **Anchor** — a fleet of all-StepStone :class:`~repro.serving.NodeSpec`
  nodes reproduces the homogeneous :class:`~repro.cluster.Cluster`
  request for request — heterogeneity is additive, not a new simulator.
* **Planning** — :class:`~repro.cluster.HeteroCapacityPlanner` sizes the
  cheapest fleet (in $/hr) for three traffic regimes at equal p99 SLOs:
  a tight-latency interactive regime (StepStone-only wins — the paper's
  small-batch case), a bulk mid-rate regime (GPU-only wins), and a
  just-past-one-GPU peak regime where the *mixed* fleet strictly beats
  both homogeneous options.  J/request rides along via the specs' power
  models.
* **Elastic** — :class:`~repro.autoscale.HeteroElasticCluster` under a
  diurnal swing: a fixed StepStone baseline plus a demand-sized GPU
  burst pool (:class:`~repro.autoscale.BaselineBurstPolicy`) holds the
  SLO while paying less per hour than the peak-sized static mix, renting
  the GPU only around the peak.

Everything is seeded and simulated: same seed, same report.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.autoscale import (
    BaselineBurstPolicy,
    HeteroElasticCluster,
    NodePool,
    StaticMixPolicy,
)
from repro.autoscale.policies import node_capacity_rps
from repro.autoscale.traces import DiurnalTrace, mix_requests
from repro.cluster import Cluster, HeteroCapacityPlanner, ModelPlacement
from repro.experiments.common import ExperimentResult
from repro.serving import (
    CPU_NODE,
    GPU_NODE,
    STEPSTONE_NODE,
    OnlineServingEngine,
    merge_streams,
    poisson_requests,
)

__all__ = ["run", "REGIMES", "MIX", "hetero_planner"]

SEED = 42
#: Traffic mix of every fleet question in this experiment.
MIX = {"BERT": 0.9, "DLRM": 0.1}
#: (name, offered req/s, p99 SLO seconds) — the three regimes of the
#: planning section.  Tight-SLO interactive favors StepStone's batch-1
#: latency, bulk favors the GPU's amortized throughput, and the peak sits
#: just past one GPU's capacity, where topping up with cheap nodes beats
#: buying a second GPU.
REGIMES = (
    ("interactive", 120.0, 0.15),
    ("bulk", 1000.0, 1.0),
    ("peak", 1700.0, 1.0),
)
CATALOG = (STEPSTONE_NODE, CPU_NODE, GPU_NODE)


def hetero_planner(
    engine: OnlineServingEngine, fast: bool = False
) -> HeteroCapacityPlanner:
    """The canonical mixed-fleet planner (shared with tests/benchmarks)."""
    # window_slos stays at 4 even in fast mode: the peak regime's
    # feasibility frontier (one GPU is ~27% overloaded) only shows up
    # once the probe window is a few SLOs long.
    return HeteroCapacityPlanner(
        MIX,
        catalog=CATALOG,
        engine=engine,
        n_requests=200 if fast else 300,
        window_slos=4.0,
        seed=SEED,
    )


def _anchor_stream(duration_s: float) -> List:
    """Seeded BERT+DLRM stream for the equivalence anchor."""
    return merge_streams(
        poisson_requests("BERT", 300.0, duration_s, seed=SEED, slo_s=1.0),
        poisson_requests(
            "DLRM", 40.0, duration_s, seed=SEED + 1, slo_s=0.5, start_id=1_000_000
        ),
    )


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="serve-hetero",
        title="Heterogeneous fleets: mixed CPU/GPU/StepStone cost planning",
        paper_reference="Figs. 1/6/8 cross-substrate comparison, at fleet scale",
    )
    engine = OnlineServingEngine()

    # ---- Substrate: per-backend batch latency (Fig. 8 shape) ---------- #
    lat: Dict[str, Dict[int, float]] = {}
    batches = (1, 8, 64)
    for spec in CATALOG:
        lat[spec.name] = {
            b: engine.batch_latency("BERT", "hybrid", b, spec=spec)
            for b in batches
        }
        res.add(
            section="substrate",
            backend=spec.name,
            **{f"b{b}_ms": lat[spec.name][b] * 1e3 for b in batches},
            hourly_cost=spec.hourly_cost,
        )
    res.check(
        "StepStone serves batch 1 faster than CPU and GPU (small-batch win)",
        lat["stepstone"][1] < lat["cpu"][1] and lat["stepstone"][1] < lat["gpu"][1],
    )
    res.check(
        "GPU serves batch 64 fastest (large-batch amortization)",
        lat["gpu"][64] < lat["stepstone"][64] and lat["gpu"][64] < lat["cpu"][64],
    )

    # ---- Anchor: all-StepStone NodeSpec fleet == homogeneous fleet ---- #
    placement = ModelPlacement(
        replicas={"BERT": [0, 1, 2], "DLRM": [0, 1, 2]}, used_bytes={}
    )
    stream = _anchor_stream(0.8 if fast else 1.5)
    legacy = Cluster(3, engine=engine, placement=placement).run(stream)
    spec_fleet = Cluster(
        engine=engine, placement=placement, specs=[STEPSTONE_NODE] * 3
    ).run(stream)
    anchor_ok = (
        [(c.request.req_id, c.dispatch_s, c.finish_s, c.batch) for c in legacy.completed]
        == [
            (c.request.req_id, c.dispatch_s, c.finish_s, c.batch)
            for c in spec_fleet.completed
        ]
        and [r.request.req_id for r in legacy.rejected]
        == [r.request.req_id for r in spec_fleet.rejected]
    )
    res.check(
        "anchor: stepstone-only NodeSpec fleet == Cluster, request for request",
        anchor_ok,
    )
    res.add(
        section="anchor",
        case="3x stepstone specs vs legacy",
        served=spec_fleet.served,
        rejected=len(spec_fleet.rejected),
        p99_ms=spec_fleet.p99_s * 1e3,
        hourly_cost=spec_fleet.hourly_cost,
    )

    # ---- Planning: cheapest fleet per traffic regime ------------------ #
    planner = hetero_planner(engine, fast=fast)
    cost_rows: List[Dict[str, object]] = []
    plans = {}
    for name, rate, slo_s in REGIMES:
        plan = planner.min_cost_fleet(
            "hybrid", target_rps=rate, p99_slo_s=slo_s, max_nodes_per_type=16
        )
        plans[name] = plan
        homo = {n: plan.homogeneous_cost(n) for n in plan.specs}
        res.add(
            section="plan",
            regime=name,
            rate_rps=rate,
            slo_ms=slo_s * 1e3,
            fleet=" + ".join(f"{c}x{n}" for n, c in sorted(plan.counts.items())),
            mix_cost=plan.hourly_cost,
            stepstone_cost=homo["stepstone"],
            cpu_cost=homo["cpu"],
            gpu_cost=homo["gpu"],
            p99_ms=plan.report.p99_s * 1e3,
            j_per_req=plan.joules_per_request,
        )
        cost_rows.append(
            {
                "regime": f"{name} ({rate:.0f} req/s, {slo_s * 1e3:.0f} ms p99)",
                "stepstone-only": homo["stepstone"]
                if math.isfinite(homo["stepstone"])
                else math.nan,
                "cpu-only": homo["cpu"] if math.isfinite(homo["cpu"]) else math.nan,
                "gpu-only": homo["gpu"] if math.isfinite(homo["gpu"]) else math.nan,
                "optimal mix": plan.hourly_cost,
            }
        )
    res.check(
        "planner: the optimal fleet never costs more than any homogeneous "
        "fleet (all regimes)",
        all(
            plans[name].hourly_cost
            <= min(plans[name].homogeneous_cost(n) for n in plans[name].specs) + 1e-9
            for name, _, _ in REGIMES
        ),
    )
    res.check(
        "interactive regime: StepStone-only is the cheapest fleet "
        "(the paper's small-batch, tight-SLO case)",
        set(plans["interactive"].counts) == {"stepstone"},
    )
    res.check(
        "bulk regime: GPU-only is the cheapest fleet (batching amortizes)",
        set(plans["bulk"].counts) == {"gpu"},
    )
    peak = plans["peak"]
    res.check(
        "peak regime: the mixed fleet strictly beats BOTH homogeneous "
        "fleets in $/hr at the same p99 SLO",
        len(peak.counts) >= 2
        and peak.hourly_cost < peak.homogeneous_cost("stepstone") - 1e-9
        and peak.hourly_cost < peak.homogeneous_cost("gpu") - 1e-9,
    )
    res.note(
        "peak mix "
        + " + ".join(f"{c}x{n}" for n, c in sorted(peak.counts.items()))
        + f" at ${peak.hourly_cost:.2f}/hr vs stepstone-only "
        f"${peak.homogeneous_cost('stepstone'):.2f}/hr and gpu-only "
        f"${peak.homogeneous_cost('gpu'):.2f}/hr"
    )

    # Determinism: re-simulating the winning composition reproduces it.
    ok2, again = planner.sustains_fleet(
        peak.counts, "hybrid", peak.target_rps, peak.p99_slo_s
    )
    res.check(
        "deterministic: re-simulating the peak mix reproduces its report",
        ok2 and again.p99_s == peak.report.p99_s and again.served == peak.report.served,
    )

    # ---- Elastic: StepStone baseline + GPU burst on a diurnal swing --- #
    period = 8.0 if fast else 12.0
    trace = DiurnalTrace(trough_rps=150.0, peak_rps=1400.0, period_s=period)
    slo_s = 1.0
    reqs = mix_requests(
        trace, MIX, duration_s=period, seed=SEED, slos={m: slo_s for m in MIX}
    )
    cap_ss = node_capacity_rps(engine, MIX, "hybrid", spec=STEPSTONE_NODE)
    cap_gpu = node_capacity_rps(engine, MIX, "hybrid", spec=GPU_NODE)
    pools = {
        "stepstone": NodePool(
            spec=STEPSTONE_NODE, min_nodes=1, max_nodes=4, initial_nodes=2
        ),
        "gpu": NodePool(spec=GPU_NODE, min_nodes=0, max_nodes=3, initial_nodes=0),
    }
    cluster = HeteroElasticCluster(
        pools, engine=engine, models=list(MIX), control_interval_s=0.5
    )
    elastic = cluster.run(
        reqs,
        BaselineBurstPolicy(
            "stepstone",
            "gpu",
            baseline_nodes=2,
            baseline_capacity_rps=cap_ss,
            burst_capacity_rps=cap_gpu,
            target=0.85,
        ),
    )
    static = cluster.run(reqs, StaticMixPolicy({"stepstone": 2, "gpu": 1}))
    for name, rep in (("baseline+burst", elastic), ("static peak mix", static)):
        res.add(
            section="elastic",
            case=name,
            served=rep.served,
            shed=rep.shed_fraction,
            p99_ms=rep.p99_s * 1e3,
            violations=rep.violation_fraction(slo_s),
            mean_cost_per_hr=rep.mean_hourly_cost,
            energy_kj=rep.energy_j() / 1e3,
        )
    res.check(
        "elastic baseline+burst pays less per hour than the static peak mix",
        elastic.mean_hourly_cost < static.mean_hourly_cost - 1e-9,
    )
    res.check(
        "elastic baseline+burst holds the SLO (no violated windows, <1% shed)",
        elastic.violation_fraction(slo_s) == 0.0 and elastic.shed_fraction < 0.01,
    )
    gpu_counts = [row["gpu_nodes"] for row in elastic.pool_timeline]
    res.check(
        "the GPU pool is rented only around the peak (scales to zero and back)",
        min(gpu_counts) == 0 and max(gpu_counts) >= 1,
    )
    res.note(
        f"diurnal {trace.trough_rps:.0f}->{trace.peak_rps:.0f} req/s: "
        f"baseline+burst ${elastic.mean_hourly_cost:.2f}/hr vs static mix "
        f"${static.mean_hourly_cost:.2f}/hr; gpu node-seconds "
        f"{elastic.node_seconds_by_pool()['gpu']:.1f} of {elastic.sim_end_s:.1f}"
    )

    res.chart = {
        "kind": "cost",
        "rows": cost_rows,
        "category_key": "regime",
        "series_keys": ["stepstone-only", "cpu-only", "gpu-only", "optimal mix"],
    }
    return res
