"""Fig. 1: CPU/GPU roofline for bandwidth-bound inference GEMMs.

Sweeps the batch dimension of a memory-resident 1024 x 4096 weight GEMM and
reports operational intensity plus achieved GFLOP/s for: the CPU (weights in
main memory), the GPU with weights in device memory, and the GPU with
weights in host memory (PCIe staging).  The paper's claims: all three are
bandwidth-bound for N <~ 32, and the host-memory GPU falls below the CPU at
small batch.
"""

from __future__ import annotations

from repro.baselines.cpu import CpuGemmModel
from repro.baselines.gpu import GpuGemmModel
from repro.experiments.common import ExperimentResult
from repro.roofline.model import Roofline, gemm_operational_intensity
from repro.workloads.gemm_specs import batch_sweep

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    res = ExperimentResult(
        experiment_id="fig01",
        title="Roofline: bandwidth-bound GEMMs on CPU and GPU",
        paper_reference="Fig. 1; §II 'Bandwidth-bound GEMMs'",
    )
    cpu = CpuGemmModel()
    gpu = GpuGemmModel()
    cpu_roof = Roofline("cpu", cpu.config.peak_flops / 1e9, cpu.config.peak_bw_gbps)
    gpu_roof = Roofline("gpu", gpu.config.peak_flops / 1e9, gpu.config.device_bw_gbps)
    n_max = 64 if fast else 1024
    for shape in batch_sweep(n_max=n_max):
        oi = gemm_operational_intensity(shape)
        res.add(
            batch=shape.n,
            oi_flops_per_byte=oi,
            cpu_gflops=cpu.gflops(shape),
            gpu_dev_gflops=gpu.gflops(shape, weights_in_device=True),
            gpu_host_gflops=gpu.gflops(shape, weights_in_device=False),
            cpu_roof_gflops=cpu_roof.attainable_gflops(oi),
            gpu_roof_gflops=gpu_roof.attainable_gflops(oi),
        )
    rows = {r["batch"]: r for r in res.rows}
    res.check(
        "all platforms bandwidth-bound at batch<=32",
        all(
            rows[n]["cpu_gflops"] < 0.5 * cpu_roof.peak_gflops
            and rows[n]["gpu_dev_gflops"] < 0.5 * gpu_roof.peak_gflops
            for n in (1, 4, 16, 32)
            if n in rows
        ),
    )
    res.check(
        "host-memory GPU below CPU at batch 1",
        rows[1]["gpu_host_gflops"] < rows[1]["cpu_gflops"],
    )
    res.note(
        "CPU/GPU points are analytic models calibrated to the paper's "
        "reported ratios (see DESIGN.md substitutions)."
    )
    res.chart = {
        "kind": "line",
        "x_key": "oi_flops_per_byte",
        "y_keys": ["cpu_gflops", "gpu_dev_gflops", "gpu_host_gflops"],
    }
    return res
