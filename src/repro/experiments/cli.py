"""Command-line entry point: ``python -m repro.experiments [ids...]``."""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="stepstone-experiments",
        description="Regenerate the paper's tables and figures (data series).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=["all"],
        help=f"experiment ids ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument(
        "--fast", action="store_true", help="reduced sweeps for smoke runs"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each experiment's figure-shaped ASCII chart",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="trace obs-aware experiments (serve-observe) and write the "
        "Chrome trace_event JSON here (chrome://tracing / Perfetto)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the kernel during obs-aware experiments and print "
        "the per-EventKind handler breakdown afterwards",
    )
    args = parser.parse_args(argv)
    ids = sorted(EXPERIMENTS) if args.ids == ["all"] else args.ids
    obs = None
    if args.trace_out or args.profile:
        from repro.obs import RunObserver

        obs = RunObserver.full() if args.trace_out else RunObserver.profiling()
    failed = []
    for eid in ids:
        t0 = time.time()
        try:
            result = run_experiment(eid, fast=args.fast, obs=obs)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        print(result.to_table())
        if args.chart and result.chart:
            print()
            print(result.render_chart())
        print(f"[{eid} finished in {time.time() - t0:.1f}s]\n")
        if not result.all_checks_pass:
            failed.append(eid)
    if obs is not None and args.trace_out and obs.spans is not None:
        n = obs.spans.write_chrome_trace(args.trace_out)
        print(f"wrote {n} trace events to {args.trace_out}")
    if obs is not None and args.profile and obs.profile is not None:
        print(obs.profile.profile().summary())
    if failed:
        print(f"shape checks FAILED for: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
