"""Hardware node specifications for heterogeneous serving fleets.

The paper's headline results (Figs. 6 and 8) are *cross-substrate*
comparisons — StepStone PIM vs. CPU vs. GPU at small batch — and its cost
argument is a datacenter one: which substrate serves a given traffic mix
cheapest?  A :class:`NodeSpec` makes the substrate an explicit, first-class
property of a fleet node so the cluster and autoscale layers can mix them:

* ``backend`` selects the latency model one node charges per batch —
  ``stepstone`` (the §V-B chunked PIM path, with ``cpu``/``pim``/``hybrid``
  dispatch), ``cpu`` (the calibrated Xeon substitute), or ``gpu`` (the
  Titan Xp roofline of Figs. 1 and 7, weights resident in device memory);
* ``memory_bytes`` bounds which model weights the node can host (a GPU's
  device memory is an order of magnitude smaller than a buffered-DIMM
  StepStone socket — placement must know);
* ``hourly_cost`` and the idle/busy power pair turn fleet reports into
  the paper's economics: $/hr for a fleet and J/request for its service.

The default specs (:data:`STEPSTONE_NODE`, :data:`CPU_NODE`,
:data:`GPU_NODE`) are calibrated to public server pricing ratios and TDPs,
not measured invoices — like the CPU latency model, the *ratios* carry the
argument, not the absolute dollars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.baselines.cpu import CpuConfig
from repro.baselines.gpu import GpuConfig, TITAN_XP

__all__ = [
    "BACKENDS",
    "NodeSpec",
    "STEPSTONE_NODE",
    "CPU_NODE",
    "GPU_NODE",
    "DEFAULT_CATALOG",
]

#: Hardware backends a fleet node can be built on.
BACKENDS: Tuple[str, ...] = ("cpu", "gpu", "stepstone")


@dataclass(frozen=True)
class NodeSpec:
    """One node type: hardware backend, capacity, cost, and power.

    Args:
        backend: One of :data:`BACKENDS` — selects the batch-latency model.
        name: Catalog label; defaults to the backend name.
        memory_bytes: Weight capacity (DRAM for cpu/stepstone, device
            memory for gpu) — the placement layer's per-node budget.
        hourly_cost: Machine price in $/hr, the capacity planner's
            objective.
        idle_w: Power floor of the powered-on node, watts.
        busy_w: Power while serving a batch, watts (``>= idle_w``).
        gpu: GPU hardware override for ``backend="gpu"`` (default
            :data:`~repro.baselines.gpu.TITAN_XP`).
        cpu: CPU hardware override for ``backend="cpu"`` (default: the
            engine's shared :class:`~repro.serving.scheduler.BatchServer`
            CPU model).
    """

    backend: str
    name: str = ""
    memory_bytes: float = 128e9
    hourly_cost: float = 1.85
    idle_w: float = 90.0
    busy_w: float = 194.0
    gpu: Optional[GpuConfig] = None
    cpu: Optional[CpuConfig] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if not self.name:
            object.__setattr__(self, "name", self.backend)
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.hourly_cost < 0:
            raise ValueError("hourly_cost must be non-negative")
        if self.idle_w < 0 or self.busy_w < self.idle_w:
            raise ValueError("need 0 <= idle_w <= busy_w")

    @property
    def latency_key(self) -> Tuple:
        """Hashable identity of everything that shapes this spec's latency.

        Two specs sharing a ``latency_key`` are guaranteed the same batch
        latencies, so the engine's memo cache may share entries between
        them; two specs with different hardware never share (the cache-key
        contract of :meth:`OnlineServingEngine.batch_latency`).  Memory,
        cost, and power are deliberately excluded — they do not change
        service time.
        """
        if self.backend == "gpu":
            return ("gpu", self.gpu or TITAN_XP)
        if self.backend == "cpu":
            return ("cpu", self.cpu)
        # StepStone latency comes from the engine's shared BatchServer.
        return ("stepstone",)

    def effective_policy(self, policy: str) -> str:
        """The dispatch policy this node actually runs.

        Args:
            policy: The fleet-level StepStone dispatch policy
                (``cpu``/``pim``/``hybrid``).

        Returns:
            ``policy`` unchanged on a StepStone node; the backend name on
            cpu/gpu nodes, whose hardware admits exactly one dispatch.
        """
        if self.backend == "stepstone":
            return policy
        return self.backend

    def fits(self, weight_bytes: float) -> bool:
        """Whether ``weight_bytes`` of model weights fit in node memory."""
        return weight_bytes <= self.memory_bytes

    def energy_j(self, node_seconds: float, busy_seconds: float) -> float:
        """Joules one node consumes over its lifetime.

        Args:
            node_seconds: Total powered-on (paid) seconds.
            busy_seconds: Seconds of that spent serving batches.

        Returns:
            ``idle_w`` over the idle share plus ``busy_w`` over the busy
            share, in joules.
        """
        idle_s = max(0.0, node_seconds - busy_seconds)
        return idle_s * self.idle_w + min(busy_seconds, node_seconds) * self.busy_w


#: A StepStone socket: buffered DIMMs in main memory, host CPU included.
#: Busy power is the platform floor + the host CPU's active share + ~38 W
#: of DRAM weight streaming (Table II off-chip pJ/bit at 2 channels of
#: DDR4-2400 — the same grounding as
#: :class:`repro.autoscale.report.FleetPowerModel`).
STEPSTONE_NODE = NodeSpec(
    backend="stepstone",
    name="stepstone",
    memory_bytes=128e9,
    hourly_cost=1.85,
    idle_w=90.0,
    busy_w=194.0,
)

#: A plain Xeon server (the measured-CPU substitute): same platform floor,
#: busy power at the socket TDP, slightly cheaper than the StepStone node
#: (no buffered-DIMM premium).
CPU_NODE = NodeSpec(
    backend="cpu",
    name="cpu",
    memory_bytes=128e9,
    hourly_cost=1.60,
    idle_w=90.0,
    busy_w=295.0,
)

#: A Titan Xp host: 12 GB of device memory bounds what it can host, the
#: card's TDP (plus the host's active share) dominates busy power, and the
#: hourly price carries the accelerated-instance premium (~4x the plain
#: host — the low end of public cloud GPU/CPU instance price ratios).
GPU_NODE = NodeSpec(
    backend="gpu",
    name="gpu",
    memory_bytes=TITAN_XP.device_memory_bytes,
    hourly_cost=6.40,
    idle_w=105.0,
    busy_w=420.0,
)

#: The default three-substrate catalog heterogeneous planners search over.
DEFAULT_CATALOG: Tuple[NodeSpec, ...] = (STEPSTONE_NODE, CPU_NODE, GPU_NODE)
