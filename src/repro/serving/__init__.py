"""Query serving on a StepStone system: batch splitting, hybrid dispatch,
request-level online serving on a simulated clock, and the hardware node
specs (`NodeSpec`) heterogeneous fleets are built from."""

from repro.serving.nodespec import (
    BACKENDS,
    CPU_NODE,
    DEFAULT_CATALOG,
    GPU_NODE,
    STEPSTONE_NODE,
    NodeSpec,
)
from repro.serving.engine import (
    POLICIES,
    CompletedRequest,
    FailedRequest,
    OnlineServingEngine,
    RejectedRequest,
    Request,
    ServingReport,
    merge_streams,
    nearest_rank,
    poisson_requests,
    slo_admit,
    uniform_requests,
    window_latencies,
)
from repro.serving.scheduler import (
    BatchServer,
    HybridSplit,
    ServingPoint,
)

__all__ = [
    "BatchServer",
    "HybridSplit",
    "ServingPoint",
    "POLICIES",
    "BACKENDS",
    "NodeSpec",
    "STEPSTONE_NODE",
    "CPU_NODE",
    "GPU_NODE",
    "DEFAULT_CATALOG",
    "Request",
    "CompletedRequest",
    "RejectedRequest",
    "FailedRequest",
    "ServingReport",
    "OnlineServingEngine",
    "slo_admit",
    "nearest_rank",
    "window_latencies",
    "poisson_requests",
    "uniform_requests",
    "merge_streams",
]
