"""Query serving on a StepStone system: batch splitting, hybrid dispatch,
and request-level online serving on a simulated clock."""

from repro.serving.engine import (
    POLICIES,
    CompletedRequest,
    OnlineServingEngine,
    RejectedRequest,
    Request,
    ServingReport,
    merge_streams,
    poisson_requests,
    slo_admit,
    uniform_requests,
)
from repro.serving.scheduler import (
    BatchServer,
    HybridSplit,
    ServingPoint,
)

__all__ = [
    "BatchServer",
    "HybridSplit",
    "ServingPoint",
    "POLICIES",
    "Request",
    "CompletedRequest",
    "RejectedRequest",
    "ServingReport",
    "OnlineServingEngine",
    "slo_admit",
    "poisson_requests",
    "uniform_requests",
    "merge_streams",
]
