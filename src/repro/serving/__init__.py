"""Query serving on a StepStone system: batch splitting, hybrid dispatch,
and request-level online serving on a simulated clock."""

from repro.serving.engine import (
    POLICIES,
    CompletedRequest,
    OnlineServingEngine,
    RejectedRequest,
    Request,
    ServingReport,
    merge_streams,
    nearest_rank,
    poisson_requests,
    slo_admit,
    uniform_requests,
    window_latencies,
)
from repro.serving.scheduler import (
    BatchServer,
    HybridSplit,
    ServingPoint,
)

__all__ = [
    "BatchServer",
    "HybridSplit",
    "ServingPoint",
    "POLICIES",
    "Request",
    "CompletedRequest",
    "RejectedRequest",
    "ServingReport",
    "OnlineServingEngine",
    "slo_admit",
    "nearest_rank",
    "window_latencies",
    "poisson_requests",
    "uniform_requests",
    "merge_streams",
]
