"""Query serving on a StepStone system: batch splitting and hybrid dispatch."""

from repro.serving.scheduler import (
    BatchServer,
    HybridSplit,
    ServingPoint,
)

__all__ = ["BatchServer", "HybridSplit", "ServingPoint"]
