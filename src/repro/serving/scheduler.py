"""Batch-level serving policies on top of the GEMM engines.

The paper's §V-B observation: StepStone saturates around batch 32 (scratch-
pad and SIMD limits), but larger request batches can be *split* into
batch-32 GEMMs — "StepStone PIM outperforms the CPU until N = 12 x 32 =
384" for BERT.  §I adds that the CPU stays free for "larger-batch and
colocated tasks", which enables a *hybrid* dispatch: run part of a large
batch on the CPU concurrently with the PIM sweep.

This module implements both policies and the latency-constrained throughput
search used by the §V-A claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.cpu import CpuGemmModel
from repro.core.gemm import GemmShape
from repro.core.scheduler import choose_execution
from repro.core.system import StepStoneSystem

__all__ = ["ServingPoint", "HybridSplit", "BatchServer"]

_DRAM_HZ = 1.2e9


@dataclass(frozen=True)
class ServingPoint:
    """Latency/throughput of serving one batch."""

    batch: int
    latency_s: float
    backend: str

    @property
    def throughput(self) -> float:
        return self.batch / self.latency_s


@dataclass(frozen=True)
class HybridSplit:
    """A concurrent CPU+PIM split of one large batch."""

    cpu_batch: int
    pim_batch: int
    latency_s: float

    @property
    def total(self) -> int:
        return self.cpu_batch + self.pim_batch


class BatchServer:
    """Serving policies for one weight matrix on one StepStone system."""

    def __init__(
        self,
        system: Optional[StepStoneSystem] = None,
        cpu: Optional[CpuGemmModel] = None,
        max_pim_batch: int = 32,
    ) -> None:
        if max_pim_batch <= 0:
            raise ValueError("max_pim_batch must be positive")
        self.system = system or StepStoneSystem.default()
        self.cpu = cpu or CpuGemmModel()
        self.max_pim_batch = max_pim_batch
        self._chunk_cache: Dict[Tuple[int, int, int], float] = {}

    # ------------------------------------------------------------------ #
    # Primitive latencies
    # ------------------------------------------------------------------ #

    def _pim_chunk_seconds(self, m: int, k: int, n: int) -> float:
        key = (m, k, n)
        hit = self._chunk_cache.get(key)
        if hit is None:
            choice = choose_execution(
                self.system.config, self.system.mapping, GemmShape(m, k, n)
            )
            hit = choice.cycles / _DRAM_HZ
            self._chunk_cache[key] = hit
        return hit

    def pim_latency(self, m: int, k: int, n: int) -> float:
        """Latency of batch *n* on the PIMs, split into <=max_pim_batch
        chunks executed back to back (the §V-B splitting policy)."""
        full, rem = divmod(n, self.max_pim_batch)
        t = full * self._pim_chunk_seconds(m, k, self.max_pim_batch)
        if rem:
            t += self._pim_chunk_seconds(m, k, rem)
        return t

    def cpu_latency(self, m: int, k: int, n: int) -> float:
        return self.cpu.gemm_seconds(GemmShape(m, k, n))

    def serve(self, m: int, k: int, n: int) -> ServingPoint:
        """Best single-engine dispatch for one batch."""
        pim = self.pim_latency(m, k, n)
        cpu = self.cpu_latency(m, k, n)
        if pim <= cpu:
            return ServingPoint(batch=n, latency_s=pim, backend="pim")
        return ServingPoint(batch=n, latency_s=cpu, backend="cpu")

    # ------------------------------------------------------------------ #
    # Paper-claim searches
    # ------------------------------------------------------------------ #

    def break_even_batch(self, m: int, k: int, n_max: int = 4096) -> int:
        """Largest batch (multiple of max_pim_batch) where PIM still beats
        the CPU — the §V-B "until N = 384" quantity for BERT's MLP."""
        best = 0
        n = self.max_pim_batch
        while n <= n_max:
            if self.pim_latency(m, k, n) < self.cpu_latency(m, k, n):
                best = n
            n += self.max_pim_batch
        return best

    def _candidate_batches(self, n_max: int) -> Tuple[int, ...]:
        """Batch sizes worth probing: powers of two (the classic sweep) plus
        every multiple of ``max_pim_batch``, where PIM chunking is exact."""
        cands = set()
        n = 1
        while n <= n_max:
            cands.add(n)
            n *= 2
        cands.update(range(self.max_pim_batch, n_max + 1, self.max_pim_batch))
        return tuple(sorted(cands))

    def throughput_under_latency(
        self, m: int, k: int, constraint_s: float, n_max: int = 1024
    ) -> ServingPoint:
        """Max-throughput batch meeting a latency constraint (§V-A).

        Probes powers of two *and* multiples of ``max_pim_batch``: chunk
        multiples are where PIM splitting is exact, and on the CPU side the
        fixed weight-streaming cost amortizes further at every extra sample,
        so the best feasible batch is often not a power of two.
        """
        best: Optional[ServingPoint] = None
        for n in self._candidate_batches(n_max):
            for backend, t in (
                ("pim", self.pim_latency(m, k, n)),
                ("cpu", self.cpu_latency(m, k, n)),
            ):
                if t <= constraint_s:
                    p = ServingPoint(batch=n, latency_s=t, backend=backend)
                    if best is None or p.throughput > best.throughput:
                        best = p
        if best is None:
            raise ValueError(f"no batch meets the {constraint_s:.2e}s constraint")
        return best

    def hybrid_split(self, m: int, k: int, n: int) -> HybridSplit:
        """Split one large batch across CPU and PIMs running concurrently.

        Searches CPU shares in PIM-chunk quanta and minimizes
        ``max(t_cpu(share), t_pim(n - share))`` — the §I colocation benefit
        expressed as a scheduling policy.
        """
        if n <= 0:
            raise ValueError("batch must be positive")
        step = self.max_pim_batch
        # CPU shares in chunk quanta, the *remainder* shares that leave the
        # PIM side an exact multiple of the chunk, and always both endpoints
        # (0 = all-PIM, n = all-CPU) — so a batch smaller than one chunk, or
        # one whose tail chunk is slow, can still fall back to pure CPU.
        shares = {0, n}
        shares.update(range(step, n, step))
        shares.update(n - j for j in range(step, n, step))
        best: Optional[HybridSplit] = None
        for cpu_share in sorted(shares):
            pim_share = n - cpu_share
            t_cpu = self.cpu_latency(m, k, cpu_share) if cpu_share else 0.0
            t_pim = self.pim_latency(m, k, pim_share) if pim_share else 0.0
            t = max(t_cpu, t_pim)
            if best is None or t < best.latency_s:
                best = HybridSplit(cpu_batch=cpu_share, pim_batch=pim_share, latency_s=t)
        assert best is not None
        return best
