"""Request-level online serving engine on a simulated clock.

The batch policies in :mod:`repro.serving.scheduler` answer "how fast is one
batch"; this module answers the paper's *online* question (§V-A: throughput
under a latency constraint, §I: the CPU stays free for concurrent work):
given a stream of timestamped inference requests, what latency distribution
and sustained throughput does each dispatch policy deliver?

The engine is a deterministic discrete-event simulator:

* requests arrive on a simulated clock (Poisson or uniform streams, seeded);
* while the memory system is busy serving one batch, later arrivals queue;
* when it frees up, the engine forms the next batch FIFO from the oldest
  pending request's model (batches never mix models), capped at
  ``max_batch`` requests;
* requests that can no longer meet their latency SLO — queueing delay plus
  the predicted batch service time — are rejected at admission, shrinking
  the batch until every admitted request fits its SLO;
* the batch dispatches under one of three policies: ``cpu`` (all GEMMs on
  the measured-CPU model), ``pim`` (StepStone chunked splitting, §V-B), or
  ``hybrid`` (the per-GEMM concurrent CPU+PIM split of
  :meth:`~repro.serving.scheduler.BatchServer.hybrid_split`).

Batch service time composes per-GEMM latencies across a model's invocations
(via :func:`repro.models.layers.pow2_partition`, like the Fig. 8 engine) and
adds the model's CPU-resident ops; everything is memoized so long streams
cost O(requests), not O(requests x GEMMs).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.gpu import GpuGemmModel
from repro.core.gemm import GemmShape
from repro.models.inference import all_models
from repro.models.layers import ModelSpec, pow2_partition
from repro.serving.nodespec import NodeSpec
from repro.serving.scheduler import BatchServer
from repro.sim.kernel import DiscreteEventKernel, Event, EventKind

# Back-compat re-exports: these helpers moved to the simulation substrate
# (`repro.sim.metrics`) but remain importable from here, where every
# pre-kernel caller found them.
from repro.sim.metrics import nearest_rank, window_latencies
from repro.sim.stats import MetricsRecorder

__all__ = [
    "POLICIES",
    "Request",
    "CompletedRequest",
    "RejectedRequest",
    "FailedRequest",
    "ServingReport",
    "OnlineServingEngine",
    "slo_admit",
    "nearest_rank",
    "window_latencies",
    "poisson_requests",
    "uniform_requests",
    "merge_streams",
]

#: Dispatch policies understood by :meth:`OnlineServingEngine.run`.
POLICIES: Tuple[str, ...] = ("cpu", "pim", "hybrid")


# ---------------------------------------------------------------------- #
# Requests and outcomes
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Request:
    """One timestamped inference request for one model."""

    req_id: int
    model: str
    arrival_s: float
    #: End-to-end latency bound (queueing + service); ``None`` = best effort.
    slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("SLO must be positive when given")


@dataclass(frozen=True)
class CompletedRequest:
    """A served request with its queueing/service accounting."""

    request: Request
    dispatch_s: float
    finish_s: float
    batch: int

    @property
    def queue_s(self) -> float:
        return self.dispatch_s - self.request.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.dispatch_s

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.request.arrival_s


@dataclass(frozen=True)
class RejectedRequest:
    """A request dropped at admission because its SLO became infeasible."""

    request: Request
    rejected_at_s: float


@dataclass(frozen=True)
class FailedRequest:
    """A request lost to a node failure (or dropped with no node to take it).

    ``reason`` distinguishes how it was lost: ``"in-flight-lost"`` (its
    batch was running on the node that died), ``"queue-dropped"`` (it was
    waiting on the dead node), or ``"unrouted"`` (it arrived while every
    replica of its model was down).
    """

    request: Request
    failed_at_s: float
    node_id: Optional[int] = None
    reason: str = "queue-dropped"


class ServingReport:
    """Latency distribution and sustained throughput of one policy run.

    All accumulation goes through one shared
    :class:`~repro.sim.stats.MetricsRecorder`: ``record="full"`` (the
    default) keeps exact per-request lists, ``record="streaming"`` keeps
    only flat-memory aggregates — the per-request list properties
    (``completed``, ``latencies_s``, ...) then raise
    :class:`~repro.sim.stats.RecordingModeError` instead of silently
    returning nothing.
    """

    def __init__(
        self,
        policy: str,
        sim_end_s: float = 0.0,
        record: str = "full",
        stats: Optional[MetricsRecorder] = None,
    ) -> None:
        """Create an empty report.

        Args:
            policy: Dispatch policy label the run used.
            sim_end_s: Simulated end time (set by the engine after a run).
            record: ``"full"`` or ``"streaming"`` (ignored when ``stats``
                is given).
            stats: An externally built recorder — fleets pass recorders
                chained to a fleet-level parent here.
        """
        self.policy = policy
        self.sim_end_s = sim_end_s
        self.stats = stats if stats is not None else MetricsRecorder(record=record)
        #: Kernel events the run processed (set by the engine via
        #: :meth:`~repro.sim.kernel.DiscreteEventKernel.finalize`) — the
        #: denominator benchmarks divide wall time by.
        self.events_processed = 0

    @property
    def record(self) -> str:
        """The recording mode: ``"full"`` or ``"streaming"``."""
        return self.stats.record

    def __repr__(self) -> str:
        return (
            f"ServingReport(policy={self.policy!r}, record={self.record!r}, "
            f"served={self.served}, rejected={self.rejected_count}, "
            f"failed={self.failed_count}, sim_end_s={self.sim_end_s})"
        )

    # ------------------------------------------------------------------ #
    # Recording (the kernel's FINISH/admission/failure paths)
    # ------------------------------------------------------------------ #

    def record_completion(self, c: "CompletedRequest") -> None:
        """Record one served request."""
        self.stats.record_completion(c)

    def record_rejection(self, r: "RejectedRequest") -> None:
        """Record one admission-rejected request."""
        self.stats.record_rejection(r)

    def record_failure(self, f: "FailedRequest") -> None:
        """Record one failure-lost request."""
        self.stats.record_failure(f)

    # ------------------------------------------------------------------ #
    # Per-request access (full mode; streaming raises)
    # ------------------------------------------------------------------ #

    @property
    def completed(self) -> List[CompletedRequest]:
        """Per-request completion records (``record="full"`` only)."""
        return self.stats.completed

    @property
    def rejected(self) -> List[RejectedRequest]:
        """Per-request rejection records (``record="full"`` only)."""
        return self.stats.rejected

    @property
    def failed(self) -> List[FailedRequest]:
        """Per-request failure records (``record="full"`` only)."""
        return self.stats.failed

    @property
    def latencies_s(self) -> List[float]:
        """Completed-request latencies, sorted (memoized per mutation;
        ``record="full"`` only — streaming mode answers percentiles from
        the sketch instead)."""
        return self.stats.latencies_s

    # ------------------------------------------------------------------ #
    # Aggregates (both modes)
    # ------------------------------------------------------------------ #

    @property
    def served(self) -> int:
        """Requests completed (works in both recording modes)."""
        return self.stats.completed_count

    @property
    def rejected_count(self) -> int:
        """Requests rejected at admission (works in both modes)."""
        return self.stats.rejected_count

    @property
    def failed_count(self) -> int:
        """Requests lost to failures (works in both modes)."""
        return self.stats.failed_count

    @property
    def offered(self) -> int:
        """Total requests that reached this node (served + shed + lost)."""
        return self.served + self.rejected_count + self.failed_count

    def latency_percentile(self, q: float) -> float:
        """Percentile of completed-request latency (seconds): exact
        nearest-rank in full mode, sketch estimate in streaming mode."""
        return self.stats.percentile(q)

    def window_percentile(self, q: float, start_s: float, end_s: float) -> float:
        """Latency percentile over completions finishing in
        ``[start_s, end_s)`` — NaN when the window saw none (empty stream,
        all-rejected interval, or a window before the first finish).
        Exact in full mode; in streaming mode answered from the window
        ring (snapped to rolled window boundaries)."""
        return self.stats.window_percentile(q, start_s, end_s)

    @property
    def p50_s(self) -> float:
        """Median completed latency (seconds)."""
        return self.latency_percentile(50)

    @property
    def p95_s(self) -> float:
        """95th-percentile completed latency (seconds)."""
        return self.latency_percentile(95)

    @property
    def p99_s(self) -> float:
        """99th-percentile completed latency (seconds)."""
        return self.latency_percentile(99)

    @property
    def mean_queue_s(self) -> float:
        """Mean queueing delay (NaN when nothing completed)."""
        return self.stats.mean_queue_s

    @property
    def mean_service_s(self) -> float:
        """Mean batch service time (NaN when nothing completed)."""
        return self.stats.mean_service_s

    @property
    def mean_batch(self) -> float:
        """Mean dispatched batch size (NaN when nothing completed)."""
        return self.stats.mean_batch

    @property
    def throughput_rps(self) -> float:
        """Sustained rate: completed requests per simulated second."""
        if self.sim_end_s <= 0:
            return 0.0
        return self.served / self.sim_end_s

    def summary(self) -> str:
        """One-line human-readable digest of the run."""
        return (
            f"{self.policy:>6}: {self.served} served, "
            f"{self.rejected_count} rejected | "
            f"p50 {self.p50_s * 1e3:.2f} ms, p99 {self.p99_s * 1e3:.2f} ms | "
            f"{self.throughput_rps:.0f} req/s "
            f"(mean batch {self.mean_batch:.1f})"
        )


# ---------------------------------------------------------------------- #
# Arrival streams (seeded, deterministic)
# ---------------------------------------------------------------------- #


def poisson_requests(
    model: str,
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
    slo_s: Optional[float] = None,
    start_id: int = 0,
) -> List[Request]:
    """Open-loop Poisson arrivals at ``rate_rps`` over ``duration_s``."""
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    rng = random.Random(seed)
    out: List[Request] = []
    t = 0.0
    i = start_id
    while True:
        t += rng.expovariate(rate_rps)
        if t >= duration_s:
            return out
        out.append(Request(req_id=i, model=model, arrival_s=t, slo_s=slo_s))
        i += 1


def uniform_requests(
    model: str,
    rate_rps: float,
    duration_s: float,
    slo_s: Optional[float] = None,
    start_id: int = 0,
) -> List[Request]:
    """Evenly spaced arrivals at ``rate_rps`` over ``duration_s``.

    Delivers exactly ``round(rate_rps * duration_s)`` requests, the first
    at t=0 — so ``len(requests) / duration_s`` matches the asked-for rate.
    """
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    gap = 1.0 / rate_rps
    n = int(round(duration_s * rate_rps))
    return [
        Request(req_id=start_id + i, model=model, arrival_s=i * gap, slo_s=slo_s)
        for i in range(n)
    ]


def merge_streams(*streams: Sequence[Request]) -> List[Request]:
    """Merge per-model streams into one arrival-ordered stream."""
    merged = [r for s in streams for r in s]
    merged.sort(key=lambda r: (r.arrival_s, r.req_id))
    return merged


# ---------------------------------------------------------------------- #
# SLO admission
# ---------------------------------------------------------------------- #


def slo_admit(
    batch: Sequence[Request],
    clock: float,
    service_for_size: Callable[[int], float],
) -> Tuple[List[Request], List[Request], float]:
    """Shrink ``batch`` until every admitted request meets its SLO.

    A smaller batch serves faster (``service_for_size`` is non-decreasing in
    size), so requests are dropped one at a time, least SLO headroom first
    (``slo - wait``) — and whenever any request violates, the one with the
    least headroom violates too.  That makes a single pass over the batch
    sorted by headroom equivalent to re-scanning for violators after every
    drop, turning the O(b^2) shrink into O(b log b).

    Returns ``(admitted, rejected, service_s)``; ``admitted`` preserves the
    input order, ``rejected`` is in drop order (ascending headroom), and
    ``service_s`` is the service time of the admitted batch (0.0 when every
    request was rejected).  Requests without an SLO are never rejected.
    """

    def headroom(r: Request) -> float:
        if r.slo_s is None:
            return math.inf
        return r.slo_s - (clock - r.arrival_s)

    order = sorted(batch, key=headroom)  # stable: ties keep batch order
    drop = 0
    service = 0.0
    while drop < len(order):
        service = service_for_size(len(order) - drop)
        if headroom(order[drop]) >= service:
            break
        drop += 1
    rejected = order[:drop]
    if drop == len(order):
        return [], rejected, 0.0
    if drop == 0:
        return list(batch), [], service
    dropped = {id(r) for r in rejected}
    admitted = [r for r in batch if id(r) not in dropped]
    return admitted, rejected, service


# ---------------------------------------------------------------------- #
# The engine
# ---------------------------------------------------------------------- #


class OnlineServingEngine:
    """Simulated-clock online serving of model inference request streams."""

    def __init__(
        self,
        server: Optional[BatchServer] = None,
        models: Optional[Dict[str, ModelSpec]] = None,
        max_batch: int = 64,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.server = server or BatchServer()
        self.models = dict(models) if models is not None else all_models()
        self.max_batch = max_batch
        # Memoized batch service times.  The key includes the node spec's
        # hardware identity (`NodeSpec.latency_key`), not just
        # (model, policy, batch): two node specs with different hardware
        # must never share cached latencies, while any number of StepStone
        # specs share this engine's one BatchServer and therefore one cache
        # line per (model, policy, batch).
        self._latency_cache: Dict[Tuple[str, str, int, Tuple], float] = {}

    # ------------------------------------------------------------------ #
    # Batch service-time model
    # ------------------------------------------------------------------ #

    def batch_latency(
        self,
        model: str,
        policy: str,
        batch: int,
        spec: Optional[NodeSpec] = None,
    ) -> float:
        """Service seconds for one batch of ``batch`` requests of ``model``.

        Per-GEMM latencies compose across the model's invocations, tiled to
        powers of two like the Fig. 8 engine; the activation dimension scales
        with the request batch.  CPU-resident ops (attention, softmax, ...)
        always run on the host and are charged to every backend.

        Args:
            model: A model name known to this engine.
            policy: StepStone dispatch policy (one of :data:`POLICIES`).
                Non-StepStone specs admit exactly one dispatch, so the
                backend name itself is also accepted there.
            batch: Number of requests in the batch (positive).
            spec: Hardware the batch runs on; ``None`` means the default
                StepStone node backed by this engine's ``BatchServer``.
                GPU specs charge the device-resident Titan-Xp-class
                roofline (note: *not* monotone in ``batch`` at tiny sizes,
                where occupancy dominates); CPU specs charge the
                calibrated Xeon model.

        Returns:
            Seconds to serve the batch on that hardware.
        """
        backend = spec.backend if spec is not None else "stepstone"
        if backend == "stepstone":
            if policy not in POLICIES:
                raise ValueError(
                    f"unknown policy {policy!r}; choose from {POLICIES}"
                )
            eff_policy = policy
        else:
            if policy not in POLICIES and policy != backend:
                raise ValueError(
                    f"unknown policy {policy!r}; choose from "
                    f"{POLICIES + (backend,)}"
                )
            eff_policy = backend
        if batch <= 0:
            raise ValueError("batch must be positive")
        key = (
            model,
            eff_policy,
            batch,
            spec.latency_key if spec is not None else ("stepstone",),
        )
        hit = self._latency_cache.get(key)
        if hit is not None:
            return hit
        try:
            mspec = self.models[model]
        except KeyError as exc:
            raise KeyError(
                f"unknown model {model!r}; available: {sorted(self.models)}"
            ) from exc
        srv = self.server
        gpu_model: Optional[GpuGemmModel] = None
        if backend == "gpu":
            gpu_model = GpuGemmModel(spec.gpu) if spec.gpu is not None else GpuGemmModel()
        cpu_model = None
        if backend == "cpu" and spec is not None and spec.cpu is not None:
            from repro.baselines.cpu import CpuGemmModel

            cpu_model = CpuGemmModel(spec.cpu)
        total = 0.0
        for inv in mspec.gemms:
            n = max(1, (inv.shape.n * batch) // mspec.batch_size)
            for tile in pow2_partition(inv.shape):
                if gpu_model is not None:
                    t = gpu_model.gemm_seconds(GemmShape(tile.m, tile.k, n))
                elif cpu_model is not None:
                    t = cpu_model.gemm_seconds(GemmShape(tile.m, tile.k, n))
                elif eff_policy == "cpu":
                    t = srv.cpu_latency(tile.m, tile.k, n)
                elif eff_policy == "pim":
                    t = srv.pim_latency(tile.m, tile.k, n)
                else:
                    t = srv.hybrid_split(tile.m, tile.k, n).latency_s
                total += t * inv.count
        # Host-resident ops run on the node's own CPU when the spec
        # overrides it; otherwise on the engine's shared CPU model.
        host_cfg = cpu_model.config if cpu_model is not None else srv.cpu.config
        total += mspec.cpu_other_seconds(host_cfg) * batch / mspec.batch_size
        self._latency_cache[key] = total
        return total

    def mix_capacity_rps(
        self,
        mix: Dict[str, float],
        policy: str,
        batch: Optional[int] = None,
        spec: Optional[NodeSpec] = None,
    ) -> float:
        """Optimistic steady-state req/s one node sustains on a traffic mix.

        Full-batch service of the share-weighted mix (harmonic mean over
        per-request service time).  With a ``spec``, mix models that do
        not fit the node's memory are excluded — the node will never host
        them — so the estimate covers only the traffic share the node can
        absorb.  This is the single capacity formula shared by the
        heterogeneous capacity planner's pruning bound and the autoscale
        policies' demand sizing.

        Args:
            mix: Model name -> traffic share (normalized internally).
            policy: StepStone dispatch policy (``cpu``/``pim``/``hybrid``).
            batch: Batch size the estimate assumes; defaults to
                ``max_batch``.
            spec: Node hardware; ``None`` means the default StepStone node.

        Returns:
            Requests per second at steady state; ``0.0`` when no mix
            model fits the spec's memory.

        Raises:
            ValueError: If the shares do not sum positive.
        """
        total = float(sum(mix.values()))
        if total <= 0:
            raise ValueError("traffic mix shares must sum > 0")
        b = batch if batch is not None else self.max_batch
        per_req_s = 0.0
        served_share = 0.0
        for model, share in mix.items():
            if share <= 0:
                continue
            if spec is not None and not spec.fits(
                self.models[model].total_weight_bytes
            ):
                continue
            served_share += share / total
            per_req_s += (
                (share / total) * self.batch_latency(model, policy, b, spec=spec) / b
            )
        if served_share <= 0 or per_req_s <= 0:
            return 0.0
        # Requests the node can serve arrive at served_share of the total
        # rate and cost per_req_s / served_share each once renormalized to
        # the hosted sub-mix, so its request capacity is
        # served_share / per_req_s.
        return served_share / per_req_s

    def min_latency(
        self, model: str, policy: str, spec: Optional[NodeSpec] = None
    ) -> float:
        """Best-case (batch-1, zero-queue) latency — the SLO feasibility floor.

        On GPU specs batch 1 is a *conservative* floor, not the true
        minimum: occupancy roll-off makes tiny batches slower per batch
        than slightly larger ones.
        """
        return self.batch_latency(model, policy, 1, spec=spec)

    # ------------------------------------------------------------------ #
    # Simulation loop
    # ------------------------------------------------------------------ #

    def run(
        self,
        requests: Iterable[Request],
        policy: str,
        record: str = "full",
        obs=None,
        fast: bool = False,
    ) -> ServingReport:
        """Serve an arrival-ordered request stream under one policy.

        A 1-entity simulation on the shared :mod:`repro.sim` kernel: the
        arrival stream is preloaded, each dispatched batch schedules its
        own ``FINISH`` event, and the kernel's total order (arrivals
        before finishes at equal instants) makes a request landing
        exactly at a batch boundary join the next batch — the same
        contract the fleet simulators obey.

        ``record="streaming"`` accumulates flat-memory aggregates instead
        of per-request lists (see :class:`~repro.sim.stats.MetricsRecorder`).

        ``obs`` takes an optional :class:`~repro.obs.RunObserver`: spans
        land as ``queued``/``serve``/``rejected`` per request plus one
        ``batch`` execution span per dispatch, carrying the exact floats
        this report accounts with (span sums tie out with ``==``).  The
        default runs the original untraced path.

        ``fast=True`` opts into the :mod:`repro.sim.fast` vectorized
        path — bit-identical reports, no per-event kernel churn.  It
        engages only for full recording without span tracing (the exact
        configurations it can replay); anything else falls back here.
        """
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        spans = obs.spans if obs is not None else None
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        if fast:
            if record != "full":
                reason = "streaming-record"
            elif spans is not None:
                reason = "spans"
            elif obs is not None and obs.profile is not None:
                reason = "profiler"
            elif not ordered:
                reason = "empty-stream"
            else:
                reason = None
            if reason is None:
                from repro.sim import fast as _fast

                report = ServingReport(policy=policy, stats=_fast.FastRecorder())
                _fast.run_engine_fast(self, ordered, policy, report)
                if obs is not None and obs.telemetry is not None:
                    obs.telemetry.record_counts(
                        "engine",
                        served=report.served,
                        rejected=report.rejected_count,
                        failed=report.failed_count,
                    )
                return report
            from repro.obs.telemetry import record_fast_fallback

            record_fast_fallback("engine", reason, obs)
        report = ServingReport(policy=policy, record=record)
        if not ordered:
            return report
        kernel = DiscreteEventKernel()
        kernel.preload(
            Event(r.arrival_s, EventKind.ARRIVAL, i, payload=r)
            for i, r in enumerate(ordered)
        )
        queue: List[Request] = []
        busy = False
        last_finish = 0.0

        def try_dispatch(now: float) -> None:
            # FIFO batch from the oldest request's model only.  SLO
            # admission drops requests whose wait + predicted service
            # exceeds their bound, least headroom first, in a single
            # sorted pass — a smaller batch serves faster, so a violator
            # at this size may fit at the next, and mass rejection would
            # overshoot.  A fully rejected batch moves on to the next
            # head-of-queue model without advancing time.
            nonlocal busy
            while not busy and queue:
                head_model = queue[0].model
                candidates = []
                for r in queue:
                    if r.model == head_model:
                        candidates.append(r)
                        if len(candidates) == self.max_batch:
                            break
                batch, rejected_now, service = slo_admit(
                    candidates,
                    now,
                    lambda size: self.batch_latency(head_model, policy, size),
                )
                for r in rejected_now:
                    report.record_rejection(
                        RejectedRequest(request=r, rejected_at_s=now)
                    )
                    if spans is not None:
                        spans.emit(
                            r.req_id,
                            "rejected",
                            r.arrival_s,
                            now - r.arrival_s,
                            model=r.model,
                        )
                # batch + rejected_now partition the candidates — the
                # first len(candidates) head-model requests in queue
                # order — so drop exactly that many matches (req_ids are
                # caller-chosen and may collide across merged streams;
                # counting sidesteps identity bookkeeping entirely).
                ncand = len(candidates)
                if ncand == len(queue):
                    queue.clear()
                else:
                    dropped = 0
                    newq = []
                    for r in queue:
                        if dropped < ncand and r.model == head_model:
                            dropped += 1
                        else:
                            newq.append(r)
                    queue[:] = newq
                if batch:
                    busy = True
                    kernel.schedule(
                        now + service, EventKind.FINISH, 0, payload=(batch, now)
                    )

        def on_arrivals(now: float, events: List[Event]) -> None:
            queue.extend(ev.payload for ev in events)
            try_dispatch(now)

        def on_finish(now: float, events: List[Event]) -> None:
            nonlocal busy, last_finish
            batch, dispatched = events[0].payload
            for r in batch:
                report.record_completion(
                    CompletedRequest(
                        request=r,
                        dispatch_s=dispatched,
                        finish_s=now,
                        batch=len(batch),
                    )
                )
                if spans is not None:
                    spans.emit(
                        r.req_id,
                        "queued",
                        r.arrival_s,
                        dispatched - r.arrival_s,
                        batch=len(batch),
                        model=r.model,
                    )
                    spans.emit(
                        r.req_id,
                        "serve",
                        dispatched,
                        now - dispatched,
                        batch=len(batch),
                        model=r.model,
                    )
            if spans is not None:
                spans.emit(
                    -1,
                    "batch",
                    dispatched,
                    now - dispatched,
                    batch=len(batch),
                    model=batch[0].model,
                )
            busy = False
            last_finish = now
            try_dispatch(now)

        kernel.run(
            {EventKind.ARRIVAL: on_arrivals, EventKind.FINISH: on_finish},
            obs=obs,
        )
        report.sim_end_s = max(last_finish, ordered[-1].arrival_s)
        kernel.finalize(report)
        if obs is not None and obs.telemetry is not None:
            obs.telemetry.record_counts(
                "engine",
                served=report.served,
                rejected=report.rejected_count,
                failed=report.failed_count,
            )
        return report

    def run_policies(
        self, requests: Sequence[Request], policies: Sequence[str] = POLICIES
    ) -> Dict[str, ServingReport]:
        """Serve the same stream under several policies (shared arrivals)."""
        return {p: self.run(list(requests), p) for p in policies}
