"""StepStone PIM — reproduction of "Accelerating Bandwidth-Bound Deep
Learning Inference with Main-Memory Accelerators" (Cho, Jung, Erez; SC 2021).

Public API highlights
---------------------
- :mod:`repro.mapping` — XOR-based DRAM address mappings and block-group analysis.
- :mod:`repro.dram` — DDR4 command-level simulator and vectorized stream timing.
- :mod:`repro.core` — StepStone PIM: AGEN, GEMM execution flow, latency executor.
- :mod:`repro.baselines` — CPU / GPU / PEI / Chopim comparison models.
- :mod:`repro.models` — DLRM / BERT / GPT2 / XLM end-to-end inference.
- :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart::

    from repro import StepStoneSystem, PimLevel

    sys_ = StepStoneSystem.default()
    result = sys_.run_gemm(m=1024, k=4096, n=4, level=PimLevel.BANKGROUP)
    print(result.breakdown)
"""

from repro.mapping import PimLevel, XORAddressMapping, mapping_by_id

__version__ = "1.0.0"

__all__ = [
    "PimLevel",
    "XORAddressMapping",
    "mapping_by_id",
    "StepStoneSystem",
    "__version__",
]


def __getattr__(name):
    # Deferred import: keeps `import repro` light and avoids import cycles.
    if name == "StepStoneSystem":
        from repro.core.system import StepStoneSystem

        return StepStoneSystem
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
