"""Heterogeneous elastic fleets: per-node-type pools scaled independently.

The homogeneous :class:`~repro.autoscale.elastic.ElasticCluster` turns one
node count into a control variable; this module turns a *vector* of
counts into one — a pool per :class:`~repro.serving.NodeSpec`, all serving
the same request stream on one simulated clock, each scaled on its own by
the autoscaler.  That is the datacenter shape the paper's cross-substrate
comparison implies: cheap StepStone sockets carry the baseline load while
expensive, high-throughput GPU nodes are rented only for the peak.

* :class:`NodePool` — bounds and initial size of one node type's pool;
* :class:`HeteroElasticCluster` — the discrete-event simulator: the same
  node lifecycle as the homogeneous elastic fleet (provisioning with a
  weight-copy delay, draining, retiring, control ticks), but membership,
  hosting, and scaling decisions are per pool.  Each pool hosts the
  served models that fit its spec's memory (largest first), so a 12 GB
  GPU pool naturally skips datacenter-scale weights;
* :class:`HeteroAutoscalePolicy` and friends — policies that answer with
  a per-pool target: a static mix, per-pool wrappers around the
  homogeneous policies, and :class:`BaselineBurstPolicy` (fixed baseline
  pool, demand-sized burst pool);
* :class:`HeteroAutoscaleReport` — the cost view: $ paid per pool
  (node-seconds times the spec's hourly price), spec-grounded energy, and
  a per-pool size timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.autoscale.policies import AutoscalePolicy, ControlObservation
from repro.autoscale.report import AutoscaleReport, ControlSample, NodeLifetime
from repro.cluster.node import ClusterNode
from repro.cluster.placement import ModelPlacement
from repro.cluster.router import Router, make_router
from repro.serving.engine import (
    POLICIES,
    FailedRequest,
    OnlineServingEngine,
    Request,
    ServingReport,
)
from repro.serving.nodespec import NodeSpec
from repro.sim.failures import FailureTrace
from repro.sim.kernel import DiscreteEventKernel, Event, EventKind
from repro.sim.metrics import BusyWindow, nearest_rank
from repro.sim.stats import MetricsRecorder

__all__ = [
    "NodePool",
    "HeteroAutoscalePolicy",
    "StaticMixPolicy",
    "PerPoolPolicy",
    "BaselineBurstPolicy",
    "HeteroAutoscaleReport",
    "HeteroElasticCluster",
]

# Node lifecycle states (shared vocabulary with the homogeneous fleet).
PROVISIONING = "provisioning"
ACTIVE = "active"
DRAINING = "draining"
FAILED = "failed"
RETIRED = "retired"


@dataclass(frozen=True)
class NodePool:
    """One node type's elastic pool.

    Args:
        spec: Hardware of every node in the pool.
        min_nodes: Lower clamp on the pool's owned size (may be 0 for a
            burst-only pool).
        max_nodes: Upper clamp on the pool's owned size.
        initial_nodes: Pool size at t=0 (within the clamps).
    """

    spec: NodeSpec
    min_nodes: int = 0
    max_nodes: int = 16
    initial_nodes: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 0 <= min_nodes <= max_nodes")
        if not self.min_nodes <= self.initial_nodes <= self.max_nodes:
            raise ValueError("initial_nodes must lie in [min_nodes, max_nodes]")


class HeteroAutoscalePolicy:
    """Interface: per-pool desired sizes from per-pool observations."""

    name = "hetero-base"

    def desired_by_pool(
        self, obs: Mapping[str, ControlObservation]
    ) -> Dict[str, int]:
        """Desired owned size per pool.

        Args:
            obs: Pool name -> that pool's windowed observation (its
                ``arrivals`` count the requests routed to the pool).

        Returns:
            Pool name -> desired node count (clamped by the cluster).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear run-local state (called once at the start of each run)."""


class StaticMixPolicy(HeteroAutoscalePolicy):
    """A fixed composition — the baseline every elastic mix is judged
    against (e.g. the peak-sized plan of
    :class:`~repro.cluster.planner.HeteroCapacityPlanner`).

    Args:
        counts: Pool name -> fixed node count.
    """

    name = "static-mix"

    def __init__(self, counts: Mapping[str, int]) -> None:
        if not counts or any(c < 0 for c in counts.values()):
            raise ValueError("counts must be non-negative, at least one pool")
        self.counts = dict(counts)

    def desired_by_pool(
        self, obs: Mapping[str, ControlObservation]
    ) -> Dict[str, int]:
        """Return the fixed composition regardless of the observation."""
        return dict(self.counts)


class PerPoolPolicy(HeteroAutoscalePolicy):
    """Run one homogeneous autoscale policy per pool, independently.

    Args:
        policies: Pool name -> an
            :class:`~repro.autoscale.policies.AutoscalePolicy` that sees
            only that pool's observation.  Pools without a policy hold
            their current size.
    """

    name = "per-pool"

    def __init__(self, policies: Mapping[str, AutoscalePolicy]) -> None:
        if not policies:
            raise ValueError("need at least one pool policy")
        self.policies = dict(policies)

    def reset(self) -> None:
        """Reset every wrapped policy."""
        for p in self.policies.values():
            p.reset()

    def desired_by_pool(
        self, obs: Mapping[str, ControlObservation]
    ) -> Dict[str, int]:
        """Delegate each pool's sizing to its wrapped policy."""
        out: Dict[str, int] = {}
        for pool, ob in obs.items():
            policy = self.policies.get(pool)
            out[pool] = policy.desired_nodes(ob) if policy else ob.fleet
        return out


class BaselineBurstPolicy(HeteroAutoscalePolicy):
    """Fixed cheap baseline, demand-sized expensive burst capacity.

    The heterogeneous division of labor: the baseline pool (e.g.
    StepStone sockets) stays at a fixed size covering trough traffic, and
    the burst pool (e.g. GPU nodes) is sized every tick for whatever
    *total* offered rate exceeds the baseline's capacity.  Upward moves
    apply immediately (the ramp must be caught within a window);
    downward moves release one burst node per tick after ``patience``
    consecutive windows sized below the current pool, so Poisson noise
    does not flap the expensive nodes.

    Args:
        baseline: Pool name of the always-on capacity.
        burst: Pool name of the elastic capacity.
        baseline_nodes: Fixed baseline pool size.
        baseline_capacity_rps: Steady-state req/s one baseline node
            sustains (see
            :func:`~repro.autoscale.policies.node_capacity_rps`).
        burst_capacity_rps: Steady-state req/s one burst node sustains.
        target: Capacity fraction each node is sized to run at.
        patience: Consecutive down-sized windows before releasing one
            burst node.
    """

    name = "baseline-burst"

    def __init__(
        self,
        baseline: str,
        burst: str,
        baseline_nodes: int,
        baseline_capacity_rps: float,
        burst_capacity_rps: float,
        target: float = 0.75,
        patience: int = 2,
    ) -> None:
        if baseline == burst:
            raise ValueError("baseline and burst must be different pools")
        if baseline_nodes < 1:
            raise ValueError("need at least one baseline node")
        if baseline_capacity_rps <= 0 or burst_capacity_rps <= 0:
            raise ValueError("per-node capacities must be positive")
        if not 0 < target <= 1:
            raise ValueError("target capacity fraction must be in (0, 1]")
        if patience < 1:
            raise ValueError("patience must be at least one window")
        self.baseline = baseline
        self.burst = burst
        self.baseline_nodes = baseline_nodes
        self.baseline_capacity_rps = baseline_capacity_rps
        self.burst_capacity_rps = burst_capacity_rps
        self.target = target
        self.patience = patience
        self._down_streak = 0

    def reset(self) -> None:
        """Forget the scale-down streak."""
        self._down_streak = 0

    def desired_by_pool(
        self, obs: Mapping[str, ControlObservation]
    ) -> Dict[str, int]:
        """Hold the baseline; size the burst pool for the excess demand."""
        offered = sum(ob.offered_rps for ob in obs.values())
        excess = offered - self.baseline_nodes * self.baseline_capacity_rps * self.target
        sized = max(0, math.ceil(excess / (self.burst_capacity_rps * self.target)))
        current = obs[self.burst].fleet if self.burst in obs else 0
        out = {pool: ob.fleet for pool, ob in obs.items()}
        out[self.baseline] = self.baseline_nodes
        if sized >= current:
            self._down_streak = 0
            out[self.burst] = sized
        else:
            self._down_streak += 1
            if self._down_streak >= self.patience:
                self._down_streak = 0
                out[self.burst] = current - 1
            else:
                out[self.burst] = current
        return out


@dataclass
class HeteroAutoscaleReport(AutoscaleReport):
    """An :class:`~repro.autoscale.report.AutoscaleReport` plus the
    per-pool cost view of a mixed fleet."""

    #: node id -> pool name.
    node_pool: Dict[int, str] = field(default_factory=dict)
    #: pool name -> hardware spec.
    pool_specs: Dict[str, NodeSpec] = field(default_factory=dict)
    #: One row per control tick: ``{"t_s": ..., "<pool>_nodes": owned}``.
    pool_timeline: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-pool recorders of a streaming run (empty on full runs) — each
    #: is the parent of that pool's node recorders, so pool-level
    #: percentiles survive without per-request records.
    pool_stats: Dict[str, MetricsRecorder] = field(default_factory=dict)

    def node_seconds_by_pool(self) -> Dict[str, float]:
        """Paid machine seconds per pool (provisioning included)."""
        out = {pool: 0.0 for pool in self.pool_specs}
        for nid, life in self.lifetimes.items():
            out[self.node_pool[nid]] += life.seconds(self.sim_end_s)
        return out

    @property
    def cost_usd(self) -> float:
        """Dollars paid over the run: each node's lifetime at its pool's
        hourly price."""
        return sum(
            sec * self.pool_specs[pool].hourly_cost / 3600.0
            for pool, sec in self.node_seconds_by_pool().items()
        )

    @property
    def mean_hourly_cost(self) -> float:
        """Average fleet price in $/hr over the horizon (scale-free: a
        static mix reports exactly its catalog price)."""
        if self.sim_end_s <= 0:
            return 0.0
        return self.cost_usd * 3600.0 / self.sim_end_s

    def energy_j(self, power=None) -> float:
        """Fleet energy; with ``power=None`` each node is charged its own
        spec's idle/busy watts (the heterogeneous grounding), otherwise
        the given :class:`~repro.autoscale.report.FleetPowerModel` is
        applied fleet-wide like the homogeneous report."""
        if power is not None:
            return super().energy_j(power)
        total = 0.0
        for nid, life in self.lifetimes.items():
            spec = self.pool_specs[self.node_pool[nid]]
            total += spec.energy_j(
                life.seconds(self.sim_end_s), self.node_busy_s.get(nid, 0.0)
            )
        return total

    def summary(self) -> str:
        """One-line outcome: serving quality plus dollars."""
        base = super().summary()
        return f"{base}, ${self.cost_usd:.4f} (${self.mean_hourly_cost:.2f}/hr)"


@dataclass
class _PoolSlot:
    """One node plus its lifecycle and window bookkeeping."""

    node: ClusterNode
    pool: str
    state: str
    life: NodeLifetime
    busy_window: BusyWindow = field(default_factory=BusyWindow)
    completed_seen: int = 0
    rejected_seen: int = 0


class HeteroElasticCluster:
    """A mixed-substrate fleet whose per-pool sizes an autoscaler drives.

    Event ordering matches the homogeneous fleets exactly (arrivals
    before finishes at equal timestamps, finishes tie-broken by node id),
    and a run under :class:`StaticMixPolicy` with a single all-StepStone
    pool reproduces the homogeneous
    :class:`~repro.autoscale.elastic.ElasticCluster` under a static
    policy.

    Args:
        pools: Pool name -> :class:`NodePool` (name keys the policies and
            reports).
        engine: Shared latency model; a default one when omitted.
        policy: StepStone dispatch policy for StepStone pools.
        router: Routing policy name or instance (``backend-affinity``
            pairs naturally with mixed pools).
        models: Served model names; ``None`` serves the engine's zoo.
            Each pool hosts the served models that fit its spec's memory,
            largest first; every model must fit some pool with
            ``min_nodes >= 1`` so routing never goes dark.
        control_interval_s: Autoscaler tick period.
        provision_base_s: Spin-up seconds before the weight copy.
        copy_gbps: Weight-copy bandwidth into a provisioning node.
        max_batch: Per-node batch cap; defaults to the engine's.
    """

    def __init__(
        self,
        pools: Mapping[str, NodePool],
        engine: Optional[OnlineServingEngine] = None,
        policy: str = "hybrid",
        router: "Router | str" = "least-loaded",
        models: Optional[Iterable[str]] = None,
        control_interval_s: float = 1.0,
        provision_base_s: float = 0.15,
        copy_gbps: float = 10.0,
        max_batch: Optional[int] = None,
        record: str = "full",
    ) -> None:
        if not pools:
            raise ValueError("need at least one pool")
        if record not in ("full", "streaming"):
            raise ValueError(
                f"unknown record mode {record!r}; choose 'full' or 'streaming'"
            )
        self.record = record
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        if control_interval_s <= 0:
            raise ValueError("control interval must be positive")
        if provision_base_s < 0 or copy_gbps <= 0:
            raise ValueError("provision_base_s >= 0 and copy_gbps > 0 required")
        self.engine = engine or OnlineServingEngine()
        self.policy = policy
        self.router = make_router(router) if isinstance(router, str) else router
        names = sorted(models) if models is not None else sorted(self.engine.models)
        unknown = [m for m in names if m not in self.engine.models]
        if unknown:
            raise KeyError(f"models unknown to the engine: {unknown}")
        if not names:
            raise ValueError("need at least one served model")
        self.models = names
        self.pools: Dict[str, NodePool] = dict(pools)
        self.control_interval_s = control_interval_s
        self.provision_base_s = provision_base_s
        self.copy_gbps = copy_gbps
        self.max_batch = max_batch
        # Each pool hosts the served models that fit its spec's memory —
        # the same saturating rule the hetero capacity planner places by.
        pool_order = list(self.pools)
        placement = ModelPlacement.saturate(
            {m: self.engine.models[m] for m in names},
            [self.pools[p].spec for p in pool_order],
        )
        self.hosted: Dict[str, List[str]] = {
            p: placement.models_on(i) for i, p in enumerate(pool_order)
        }
        for m in names:
            anchors = [
                p
                for p, pool in self.pools.items()
                if m in self.hosted[p] and pool.min_nodes >= 1
            ]
            if not anchors:
                raise ValueError(
                    f"model {m!r} is not hosted by any pool with "
                    "min_nodes >= 1; routing could go dark"
                )
        if sum(p.initial_nodes for p in self.pools.values()) <= 0:
            raise ValueError("need at least one initial node across pools")
        # Run-local state, rebuilt by _fresh().
        self._slots: Dict[int, _PoolSlot] = {}
        self._next_id = 0
        self._arrived_window: Dict[str, int] = {}
        self._kernel: Optional[DiscreteEventKernel] = None
        self._run_stats: Optional[MetricsRecorder] = None
        self._pool_stats: Dict[str, MetricsRecorder] = {}
        self._obs_spans = None
        # True while a fast-path run is live: _spawn then equips every
        # node (including mid-run provisions) with a FastRecorder.
        self._fast_run = False

    # ------------------------------------------------------------------ #
    # Provisioning model
    # ------------------------------------------------------------------ #

    def pool_weight_bytes(self, pool: str) -> float:
        """Bytes a new node of ``pool`` copies before serving."""
        return float(
            sum(self.engine.models[m].total_weight_bytes for m in self.hosted[pool])
        )

    def provision_delay_s(self, pool: str) -> float:
        """Spin-up plus weight-copy seconds for one new ``pool`` node."""
        return self.provision_base_s + self.pool_weight_bytes(pool) / (
            self.copy_gbps * 1e9
        )

    # ------------------------------------------------------------------ #
    # Fleet membership
    # ------------------------------------------------------------------ #

    def _fresh(self) -> None:
        self._slots = {}
        self._next_id = 0
        self._arrived_window = {p: 0 for p in self.pools}
        self._kernel = DiscreteEventKernel()
        self._run_stats = None
        self._pool_stats = {}
        if self.record == "streaming":
            # Three aggregation levels, one chain: node recorder ->
            # pool recorder -> run recorder.  Pool rings answer the
            # per-pool windowed p99 the policies observe; all rings are
            # rolled at every control tick.
            self._run_stats = MetricsRecorder(record="streaming")
            self._pool_stats = {
                p: MetricsRecorder(record="streaming", parent=self._run_stats)
                for p in sorted(self.pools)
            }
        self.router.reset()
        for pool_name in sorted(self.pools):
            for _ in range(self.pools[pool_name].initial_nodes):
                self._spawn(pool_name, 0.0, ready_now=True)

    def _spawn(self, pool: str, clock: float, ready_now: bool) -> _PoolSlot:
        nid = self._next_id
        self._next_id += 1
        node = ClusterNode(
            node_id=nid,
            engine=self.engine,
            policy=self.policy,
            models=set(self.hosted[pool]),
            max_batch=self.max_batch,
            spec=self.pools[pool].spec,
        )
        if self.record == "streaming":
            node.report = ServingReport(
                policy=node.policy,
                stats=MetricsRecorder(
                    record="streaming", parent=self._pool_stats[pool]
                ),
            )
        elif self._fast_run:
            from repro.sim.fast import FastRecorder

            node.report = ServingReport(policy=node.policy, stats=FastRecorder())
        node.obs_spans = self._obs_spans
        life = NodeLifetime(node_id=nid, ordered_s=clock)
        slot = _PoolSlot(
            node=node,
            pool=pool,
            state=ACTIVE if ready_now else PROVISIONING,
            life=life,
        )
        if ready_now:
            life.ready_s = clock
        self._slots[nid] = slot
        return slot

    def _pool_state(self, pool: str, state: str) -> List[_PoolSlot]:
        return [
            s for s in self._slots.values() if s.pool == pool and s.state == state
        ]

    def replicas_for(self, model: str) -> List[ClusterNode]:
        """Routable (active) nodes hosting ``model``, id order."""
        return [
            s.node
            for nid, s in sorted(self._slots.items())
            if s.state == ACTIVE and model in s.node.models
        ]

    def _retire(self, slot: _PoolSlot, clock: float) -> None:
        slot.state = RETIRED
        if slot.life.retired_s is None:
            slot.life.retired_s = clock

    def _apply_pool_target(self, pool: str, target: int, clock: float) -> None:
        """Order, cancel, reactivate, or drain one pool toward ``target``."""
        owned = self._pool_state(pool, ACTIVE) + self._pool_state(pool, PROVISIONING)
        delta = target - len(owned)
        if delta > 0:
            # Cheapest capacity first: un-drain nodes still finishing
            # their backlog (they re-enter routing instantly, no copy).
            draining = sorted(
                self._pool_state(pool, DRAINING), key=lambda s: -s.node.node_id
            )
            for slot in draining[:delta]:
                slot.state = ACTIVE
                slot.life.drain_s = None
                delta -= 1
            for _ in range(delta):
                self._spawn(pool, clock, ready_now=False)
                self._kernel.schedule(
                    clock + self.provision_delay_s(pool),
                    EventKind.READY,
                    self._next_id - 1,
                )
        elif delta < 0:
            shed = -delta
            # Cancel provisioning nodes first (never held traffic).
            provisioning = sorted(
                self._pool_state(pool, PROVISIONING), key=lambda s: -s.node.node_id
            )
            for slot in provisioning[:shed]:
                self._retire(slot, clock)
                shed -= 1
            if shed > 0:
                active = sorted(
                    self._pool_state(pool, ACTIVE),
                    key=lambda s: (s.node.backlog(), -s.node.node_id),
                )
                # A pool with a hosting anchor (min_nodes >= 1) keeps at
                # least one active node routable at all times; burst
                # pools may drain to zero.
                floor = 1 if self.pools[pool].min_nodes >= 1 else 0
                can_drain = max(0, len(active) - floor)
                for slot in active[: min(shed, can_drain)]:
                    slot.state = DRAINING
                    slot.life.drain_s = clock
                    if slot.node.idle and not slot.node.queue:
                        self._retire(slot, clock)

    # ------------------------------------------------------------------ #
    # The simulation
    # ------------------------------------------------------------------ #

    def run(
        self,
        requests: Iterable[Request],
        autoscaler: HeteroAutoscalePolicy,
        failures: Optional[FailureTrace] = None,
        obs=None,
        fast: bool = False,
    ) -> HeteroAutoscaleReport:
        """Serve an arrival-ordered stream while ``autoscaler`` resizes
        every pool each control interval.

        Args:
            requests: Timestamped requests (sorted internally).
            autoscaler: A per-pool policy.
            failures: Optional outage schedule (node ids are spawn
                order) — failed nodes drop their work, leave their
                pool's owned set, and rejoin on recovery.
            obs: Optional :class:`~repro.obs.RunObserver` — every node
                (across all pools, including mid-run spawns) emits
                request lifecycle spans, and the kernel self-profiles
                when a profiler is attached.  Default off.
            fast: Opt into the :mod:`repro.sim.fast` struct-of-arrays
                path (bit-identical reports).  Engages for full
                recording without span tracing on a builtin router;
                falls back to the event-at-a-time path otherwise.

        Returns:
            The :class:`HeteroAutoscaleReport` for the run.
        """
        self._obs_spans = obs.spans if obs is not None else None
        _fast = None
        chooser = None
        if fast:
            if self.record != "full":
                fb_reason = "streaming-record"
            elif self._obs_spans is not None:
                fb_reason = "spans"
            else:
                from repro.sim import fast as _fast_mod

                chooser = _fast_mod.make_chooser(self.router, self.replicas_for)
                if chooser is not None:
                    _fast = _fast_mod
                    fb_reason = None
                else:
                    fb_reason = "custom-router"
            if _fast is None:
                from repro.obs.telemetry import record_fast_fallback

                record_fast_fallback("hetero", fb_reason, obs)
        self._fast_run = _fast is not None
        self._fresh()
        autoscaler.reset()
        kernel = self._kernel
        run_stats = self._run_stats
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        last_arrival = ordered[-1].arrival_s if ordered else 0.0
        report = HeteroAutoscaleReport(
            policy=self.policy,
            autoscaler=autoscaler.name,
            control_interval_s=self.control_interval_s,
            last_arrival_s=last_arrival,
            pool_specs={p: pool.spec for p, pool in self.pools.items()},
        )
        if _fast is None:
            kernel.preload(
                Event(r.arrival_s, EventKind.ARRIVAL, i, payload=r)
                for i, r in enumerate(ordered)
            )
        if ordered:
            t_tick = self.control_interval_s
            tick = 1
            while t_tick <= last_arrival + self.control_interval_s:
                kernel.schedule(t_tick, EventKind.CONTROL, tick)
                tick += 1
                t_tick += self.control_interval_s
        if failures is not None:
            failures.schedule_on(kernel)
        state = {"last_service_end": 0.0, "prev_tick_t": 0.0, "n_dropped": 0}

        def dispatch(slot: _PoolSlot, now: float) -> None:
            finish = slot.node.try_dispatch(now)
            if finish is not None:
                kernel.schedule(
                    finish, EventKind.FINISH, slot.node.node_id,
                    payload=slot.node.epoch,
                )

        def on_arrivals(now: float, events: List[Event]) -> None:
            touched: Dict[int, ClusterNode] = {}
            for ev in events:
                r = ev.payload
                replicas = self.replicas_for(r.model)
                if not replicas:
                    f = FailedRequest(
                        request=r, failed_at_s=now, reason="unrouted"
                    )
                    if run_stats is not None:
                        run_stats.record_failure(f)
                        state["n_dropped"] += 1
                    else:
                        report.dropped.append(f)
                    continue
                node = self.router.route(r, replicas, now)
                node.enqueue(r)
                self._arrived_window[self._slots[node.node_id].pool] += 1
                touched[node.node_id] = node
            for nid in sorted(touched):
                if touched[nid].idle:
                    dispatch(self._slots[nid], now)

        def on_finishes(now: float, events: List[Event]) -> None:
            for ev in events:
                slot = self._slots[ev.entity]
                if ev.payload != slot.node.epoch:
                    continue  # batch was lost to a failure; stale event
                slot.node.finish_batch(now)
                state["last_service_end"] = now
                dispatch(slot, now)
                if (
                    slot.state == DRAINING
                    and slot.node.idle
                    and not slot.node.queue
                ):
                    self._retire(slot, now)

        def on_readies(now: float, events: List[Event]) -> None:
            for ev in events:
                slot = self._slots[ev.entity]
                if slot.state == PROVISIONING:
                    slot.state = ACTIVE
                    slot.life.ready_s = now

        def on_fails(now: float, events: List[Event]) -> None:
            for ev in events:
                slot = self._slots.get(ev.entity)
                if slot is None:
                    continue
                if slot.state == ACTIVE:
                    slot.node.fail(now)
                    slot.state = FAILED
                elif slot.state == DRAINING:
                    slot.node.fail(now)
                    self._retire(slot, now)

        def on_recovers(now: float, events: List[Event]) -> None:
            for ev in events:
                slot = self._slots.get(ev.entity)
                if slot is not None and slot.state == FAILED:
                    slot.state = ACTIVE

        def on_control(now: float, events: List[Event]) -> None:
            obs = self._observe(state["prev_tick_t"], now)
            state["prev_tick_t"] = now
            desired = autoscaler.desired_by_pool(obs)
            unknown = sorted(set(desired) - set(self.pools))
            if unknown:
                raise ValueError(
                    f"policy {autoscaler.name!r} targets unknown pools "
                    f"{unknown}; cluster pools: {sorted(self.pools)}"
                )
            timeline_row: Dict[str, Any] = {"t_s": round(now, 6)}
            targets: Dict[str, int] = {}
            for pool_name in sorted(self.pools):
                pool = self.pools[pool_name]
                want = desired.get(pool_name, obs[pool_name].fleet)
                target = max(pool.min_nodes, min(pool.max_nodes, want))
                targets[pool_name] = target
                self._apply_pool_target(pool_name, target, now)
                timeline_row[f"{pool_name}_nodes"] = (
                    len(self._pool_state(pool_name, ACTIVE))
                    + len(self._pool_state(pool_name, PROVISIONING))
                )
            report.pool_timeline.append(timeline_row)
            agg = self._aggregate(obs)
            report.samples.append(
                ControlSample(
                    t=now,
                    active=agg.active,
                    provisioning=agg.provisioning,
                    draining=agg.draining,
                    desired=sum(targets.values()),
                    arrivals=agg.arrivals,
                    completions=agg.completions,
                    rejections=agg.rejections,
                    window_p99_s=agg.window_p99_s,
                    utilization=agg.utilization,
                    backlog=agg.backlog,
                    failed=agg.failed,
                )
            )

        if _fast is not None:
            _fast.count_run()
            route = chooser.route
            slots = self._slots
            arrived = self._arrived_window
            dropped = report.dropped

            def dispatch_fast(slot: _PoolSlot, now: float) -> bool:
                finish = slot.node.try_dispatch(now)
                chooser.invalidate_backlogs()
                if finish is not None:
                    kernel.schedule(
                        finish, EventKind.FINISH, slot.node.node_id,
                        payload=slot.node.epoch,
                    )
                    return True
                return False

            def on_epoch(now: float, lo: int, hi: int) -> bool:
                if hi - lo == 1:
                    r = ordered[lo]
                    node = route(r, now)
                    if node is None:
                        dropped.append(
                            FailedRequest(
                                request=r, failed_at_s=now, reason="unrouted"
                            )
                        )
                        return False
                    node.queue.append(r)
                    slot = slots[node.node_id]
                    arrived[slot.pool] += 1
                    if not node.in_flight:
                        return dispatch_fast(slot, now)
                    return False
                touched: Dict[int, _PoolSlot] = {}
                for r in ordered[lo:hi]:
                    node = route(r, now)
                    if node is None:
                        dropped.append(
                            FailedRequest(
                                request=r, failed_at_s=now, reason="unrouted"
                            )
                        )
                        continue
                    node.queue.append(r)
                    slot = slots[node.node_id]
                    arrived[slot.pool] += 1
                    touched[node.node_id] = slot
                scheduled = False
                for nid in sorted(touched):
                    if touched[nid].node.idle and dispatch_fast(
                        touched[nid], now
                    ):
                        scheduled = True
                return scheduled

            def on_finishes_fast(now: float, events: List[Event]) -> None:
                for ev in events:
                    slot = slots[ev.entity]
                    node = slot.node
                    if ev.payload != node.epoch:
                        continue  # batch was lost to a failure; stale event
                    node.report.stats.record_batch(
                        node._dispatch_s, now, node.in_flight
                    )
                    node.in_flight = []
                    state["last_service_end"] = now
                    dispatch_fast(slot, now)
                    if (
                        slot.state == DRAINING
                        and node.idle
                        and not node.queue
                    ):
                        self._retire(slot, now)

            def cold(handler):
                def wrapped(now: float, events: List[Event]) -> None:
                    handler(now, events)
                    chooser.invalidate_all()

                return wrapped

            _fast.drain(
                kernel,
                _fast.arrival_times(ordered),
                on_epoch,
                {
                    int(EventKind.FINISH): on_finishes_fast,
                    int(EventKind.READY): cold(on_readies),
                    int(EventKind.CONTROL): cold(on_control),
                    int(EventKind.FAIL): cold(on_fails),
                    int(EventKind.RECOVER): cold(on_recovers),
                },
                profiler=getattr(obs, "profile", None) if obs is not None else None,
            )
        else:
            kernel.run(
                {
                    EventKind.ARRIVAL: on_arrivals,
                    EventKind.FINISH: on_finishes,
                    EventKind.READY: on_readies,
                    EventKind.CONTROL: on_control,
                    EventKind.FAIL: on_fails,
                    EventKind.RECOVER: on_recovers,
                },
                obs=obs,
            )
        sim_end = max(state["last_service_end"], last_arrival)
        for slot in self._slots.values():
            if slot.state != RETIRED:
                self._retire(slot, sim_end)
        report.sim_end_s = sim_end
        kernel.finalize(report)
        report.n_dropped = state["n_dropped"]
        report.stats = run_stats
        report.pool_stats = dict(self._pool_stats)
        for nid, slot in sorted(self._slots.items()):
            slot.node.report.sim_end_s = sim_end
            report.node_reports[nid] = slot.node.report
            report.lifetimes[nid] = slot.life
            report.node_busy_s[nid] = slot.node.busy_s
            report.node_pool[nid] = slot.pool
        if obs is not None and obs.telemetry is not None:
            obs.telemetry.record_counts(
                "hetero",
                served=report.served,
                rejected=report.rejected_count,
                failed=report.failed_count,
            )
        return report

    def _observe(self, t0: float, t1: float) -> Dict[str, ControlObservation]:
        """Per-pool windowed observations over ``(t0, t1]``."""
        interval = t1 - t0
        streaming = self._run_stats is not None
        out: Dict[str, ControlObservation] = {}
        for pool_name in self.pools:
            window_lats: List[float] = []
            completions = 0
            rejections = 0
            busy_window = 0.0
            backlog = 0
            for slot in self._slots.values():
                if slot.pool != pool_name:
                    continue
                rep = slot.node.report
                served_now = rep.served
                if streaming:
                    completions += served_now - slot.completed_seen
                else:
                    new_lats = rep.stats.new_latencies(slot.completed_seen)
                    completions += len(new_lats)
                    window_lats.extend(new_lats)
                slot.completed_seen = served_now
                rejections += rep.rejected_count - slot.rejected_seen
                slot.rejected_seen = rep.rejected_count
                busy_window += slot.busy_window.observe(
                    slot.node.busy_s,
                    slot.node.busy_until,
                    bool(slot.node.in_flight),
                    t1,
                )
                if slot.state not in (RETIRED, FAILED):
                    backlog += slot.node.backlog()
            n_active = len(self._pool_state(pool_name, ACTIVE))
            n_draining = len(self._pool_state(pool_name, DRAINING))
            n_serving = n_active + n_draining
            util = 0.0
            if interval > 0 and n_serving:
                util = max(0.0, min(1.0, busy_window / (interval * n_serving)))
            window_lats.sort()
            if streaming:
                pool_rec = self._pool_stats[pool_name]
                window_p99 = pool_rec.window_percentile(99, t0, t1)
                pool_rec.roll_window(t1)
            else:
                window_p99 = nearest_rank(window_lats, 99)
            out[pool_name] = ControlObservation(
                t=t1,
                interval_s=interval,
                active=n_active,
                provisioning=len(self._pool_state(pool_name, PROVISIONING)),
                draining=n_draining,
                arrivals=self._arrived_window[pool_name],
                completions=completions,
                rejections=rejections,
                window_p99_s=window_p99,
                utilization=util,
                backlog=backlog,
                failed=len(self._pool_state(pool_name, FAILED)),
            )
            self._arrived_window[pool_name] = 0
        if streaming:
            self._run_stats.roll_window(t1)
        return out

    @staticmethod
    def _aggregate(obs: Mapping[str, ControlObservation]) -> ControlObservation:
        """Fleet-wide view of one tick (for the shared timeline format)."""
        some = next(iter(obs.values()))
        servings = sum(o.active + o.draining for o in obs.values())
        util = 0.0
        if servings:
            util = (
                sum(o.utilization * (o.active + o.draining) for o in obs.values())
                / servings
            )
        p99s = [o.window_p99_s for o in obs.values() if o.window_p99_s == o.window_p99_s]
        return ControlObservation(
            t=some.t,
            interval_s=some.interval_s,
            active=sum(o.active for o in obs.values()),
            provisioning=sum(o.provisioning for o in obs.values()),
            draining=sum(o.draining for o in obs.values()),
            arrivals=sum(o.arrivals for o in obs.values()),
            completions=sum(o.completions for o in obs.values()),
            rejections=sum(o.rejections for o in obs.values()),
            window_p99_s=max(p99s) if p99s else math.nan,
            utilization=util,
            backlog=sum(o.backlog for o in obs.values()),
            failed=sum(o.failed for o in obs.values()),
        )
