"""Autoscaler policies: map windowed fleet observations to a node target.

Every control interval the elastic cluster hands the policy one
:class:`ControlObservation` — the window's offered/completed/rejected
counts, the windowed p99, utilization, and backlog — and the policy
answers with the *desired* fleet size (active + provisioning nodes).  The
cluster clamps the answer to its ``[min_nodes, max_nodes]`` bounds and
orders or drains the difference.

Three families (plus the static baseline):

* :class:`TargetUtilizationPolicy` — classic reactive scaling: size the
  fleet so measured busy-fraction sits at a target, with a hysteresis band
  so scale-down needs real slack.
* :class:`SLOFeedbackPolicy` — windowed p99 feedback against an explicit
  latency SLO: additive-increase on violation, cautious decrease when the
  tail is comfortable, and a time-local *floor memory* of node counts that
  recently violated (so the policy converges to the minimum feasible count
  instead of oscillating around it — the property the capacity-planner
  cross-check relies on).
* :class:`PredictiveTracePolicy` — trace lookahead: provision for the peak
  rate over the next ``lookahead_s`` seconds (covering the provisioning
  delay) divided by a per-node capacity estimate.

All policies are pure state machines over observations; ``reset()``
restores the initial state before a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.autoscale.traces import RateTrace
from repro.serving.engine import OnlineServingEngine
from repro.serving.nodespec import NodeSpec

__all__ = [
    "ControlObservation",
    "AutoscalePolicy",
    "StaticPolicy",
    "TargetUtilizationPolicy",
    "SLOFeedbackPolicy",
    "PredictiveTracePolicy",
    "node_capacity_rps",
]


@dataclass(frozen=True)
class ControlObservation:
    """What the autoscaler sees at one control tick."""

    #: Tick instant (end of the observation window), seconds.
    t: float
    #: Window length, seconds.
    interval_s: float
    #: Node counts by lifecycle state at the tick.
    active: int
    provisioning: int
    draining: int
    #: Requests routed / completed / rejected during the window.
    arrivals: int
    completions: int
    rejections: int
    #: Nearest-rank p99 latency of the window's completions (NaN if none).
    window_p99_s: float
    #: Busy fraction of the serving set (active + draining nodes) over the
    #: window, clamped to [0, 1]; approximate while membership changes.
    utilization: float
    #: Queued + in-flight requests across the fleet at the tick.
    backlog: int
    #: Nodes down with an injected failure at the tick (they left the
    #: owned set, so a fixed desired size orders a replacement).
    failed: int = 0

    @property
    def fleet(self) -> int:
        """Nodes owned at the tick (active + still provisioning)."""
        return self.active + self.provisioning

    @property
    def offered_rps(self) -> float:
        """Arrival rate measured over the window, req/s."""
        return self.arrivals / self.interval_s if self.interval_s > 0 else 0.0


class AutoscalePolicy:
    """Interface: desired fleet size from one windowed observation."""

    name = "base"

    def desired_nodes(self, obs: ControlObservation) -> int:
        """Desired fleet size (active + provisioning) after one tick.

        Args:
            obs: The windowed fleet observation at this control tick.

        Returns:
            The desired node count (the cluster clamps it to bounds).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear run-local state (called once at the start of each run)."""


class StaticPolicy(AutoscalePolicy):
    """A fixed fleet — the baseline every elastic policy is judged against."""

    name = "static"

    def __init__(self, nodes: int) -> None:
        if nodes <= 0:
            raise ValueError("static fleet needs at least one node")
        self.nodes = nodes

    def desired_nodes(self, obs: ControlObservation) -> int:
        """The fixed fleet size, regardless of the observation."""
        return self.nodes


class TargetUtilizationPolicy(AutoscalePolicy):
    """Reactive demand-based scaling toward a target capacity fraction.

    Busy-fraction is a *broken* scaling signal under batched serving:
    spreading the same offered load over more nodes shrinks each node's
    batches, and smaller batches cost more service time per request (the
    weight-streaming economy of §V-A), so lightly loaded nodes still look
    nearly 100% busy and a busy-fraction controller rides straight into
    its node cap.  This policy therefore measures *demand*: the window's
    offered rate against a per-node capacity estimate
    (:func:`node_capacity_rps`), sized so each node runs at ``target`` of
    capacity — ``desired = ceil(offered_rps / (target x capacity_rps))``.

    Upward moves apply immediately (a ramp is caught within one window);
    downward moves release one node per tick and only after ``patience``
    consecutive windows sized below the current fleet, so Poisson noise
    does not flap the fleet.
    """

    name = "target-util"

    def __init__(
        self,
        capacity_rps: float,
        target: float = 0.70,
        patience: int = 2,
    ) -> None:
        if capacity_rps <= 0:
            raise ValueError("per-node capacity must be positive")
        if not 0 < target <= 1:
            raise ValueError("target capacity fraction must be in (0, 1]")
        if patience < 1:
            raise ValueError("patience must be at least one window")
        self.capacity_rps = capacity_rps
        self.target = target
        self.patience = patience
        self._down_streak = 0

    def reset(self) -> None:
        """Forget the scale-down streak."""
        self._down_streak = 0

    def desired_nodes(self, obs: ControlObservation) -> int:
        """Demand-sized fleet: offered rate over per-node target capacity."""
        sized = max(1, math.ceil(obs.offered_rps / (self.target * self.capacity_rps)))
        if sized >= obs.fleet:
            self._down_streak = 0
            return sized
        self._down_streak += 1
        if self._down_streak >= self.patience:
            self._down_streak = 0
            return obs.fleet - 1
        return obs.fleet


class SLOFeedbackPolicy(AutoscalePolicy):
    """Windowed-p99 feedback against an explicit latency SLO.

    * **Violation** (window p99 over the SLO, or rejections with no
      completions): remember the current fleet size as recently infeasible
      (the *floor memory*) and scale up one node.
    * **Comfort** (window p99 under ``down_margin x SLO``, or an idle
      window with no rejections) held for ``patience`` consecutive
      windows: *probe* one node fewer — unless that count violated within
      the last ``floor_ttl_s`` seconds, in which case hold.  A failed
      probe costs a brief violation, but its floor mark is what turns
      hunt-and-oscillate into convergence on the minimum feasible count;
      the TTL keeps the memory time-local so a count that was infeasible
      at the diurnal peak can be retried at the trough.
    * For ``settle_s`` seconds after an *upward* move the policy holds and
      marks nothing: the violating backlog inherited from the smaller fleet
      is still draining, and blaming (or growing) the new count on it would
      overshoot.  Downward probes get no such grace — a violation right
      after trying ``n - 1`` is exactly the evidence the floor memory
      needs.
    """

    name = "slo-feedback"

    def __init__(
        self,
        p99_slo_s: float,
        down_margin: float = 0.75,
        patience: int = 2,
        settle_s: float = 2.0,
        floor_ttl_s: float = math.inf,
    ) -> None:
        if p99_slo_s <= 0:
            raise ValueError("p99 SLO must be positive")
        if not 0 < down_margin <= 1:
            raise ValueError("down_margin must be in (0, 1]")
        if patience < 1:
            raise ValueError("patience must be at least one window")
        self.p99_slo_s = p99_slo_s
        self.down_margin = down_margin
        self.patience = patience
        self.settle_s = settle_s
        self.floor_ttl_s = floor_ttl_s
        self._violated_at: Dict[int, float] = {}
        self._comfort_streak = 0
        self._last_up_t = -math.inf

    def reset(self) -> None:
        """Clear the floor memory, comfort streak, and settle timer."""
        self._violated_at.clear()
        self._comfort_streak = 0
        self._last_up_t = -math.inf

    def _floor(self, t: float) -> int:
        """Largest fleet size with a live (un-expired) violation mark."""
        live = [
            n
            for n, when in self._violated_at.items()
            if t - when <= self.floor_ttl_s
        ]
        return max(live, default=0)

    def desired_nodes(self, obs: ControlObservation) -> int:
        """One up on violation, one probed down after sustained comfort."""
        settling = obs.t - self._last_up_t < self.settle_s
        p99 = obs.window_p99_s
        violated = (p99 == p99 and p99 > self.p99_slo_s) or (
            obs.completions == 0 and obs.rejections > 0
        )
        comfortable = not violated and (
            p99 != p99 or p99 <= self.down_margin * self.p99_slo_s
        )
        if violated:
            self._comfort_streak = 0
            if settling:
                return obs.fleet  # inherited backlog is still draining
            self._violated_at[obs.fleet] = obs.t
            self._last_up_t = obs.t
            return obs.fleet + 1
        if comfortable:
            self._comfort_streak += 1
        else:
            self._comfort_streak = 0
        if (
            self._comfort_streak >= self.patience
            and obs.fleet - 1 > self._floor(obs.t)
            and obs.fleet > 1
        ):
            self._comfort_streak = 0
            return obs.fleet - 1
        return obs.fleet


class PredictiveTracePolicy(AutoscalePolicy):
    """Trace-lookahead provisioning: cover the worst rate coming up.

    Knows the offered :class:`~repro.autoscale.traces.RateTrace` (a
    provider forecasting its own diurnal pattern) and a per-node capacity
    estimate; each tick it provisions ``ceil(headroom x peak_rate(t, t +
    lookahead_s) / capacity)`` nodes.  ``lookahead_s`` should be at least
    the provisioning delay, so capacity is ready *before* the ramp
    arrives.
    """

    name = "predictive"

    def __init__(
        self,
        trace: RateTrace,
        capacity_rps: float,
        lookahead_s: float,
        headroom: float = 1.2,
    ) -> None:
        if capacity_rps <= 0:
            raise ValueError("per-node capacity must be positive")
        if lookahead_s < 0:
            raise ValueError("lookahead must be non-negative")
        if headroom < 1.0:
            raise ValueError("headroom must be at least 1.0")
        self.trace = trace
        self.capacity_rps = capacity_rps
        self.lookahead_s = lookahead_s
        self.headroom = headroom

    def desired_nodes(self, obs: ControlObservation) -> int:
        """Provision for the trace's peak over the lookahead window."""
        peak = self.trace.peak_rate(obs.t, obs.t + self.lookahead_s)
        return max(1, math.ceil(self.headroom * peak / self.capacity_rps))


def node_capacity_rps(
    engine: OnlineServingEngine,
    mix: Mapping[str, float],
    policy: str,
    batch: Optional[int] = None,
    spec: Optional["NodeSpec"] = None,
) -> float:
    """Steady-state req/s one node sustains on a traffic mix.

    At full batches the node serves ``batch / batch_latency`` of each model;
    a mix costs the share-weighted harmonic combination (time to serve one
    request averaged over the mix).  This is the per-node capacity estimate
    the predictive and baseline-burst policies divide by.

    With a ``spec``, mix models that do not fit the node's memory are
    excluded — the node will never host them (the elastic pools and the
    saturating placement both skip them), so its capacity covers only the
    traffic share it can actually absorb, mirroring
    :meth:`~repro.cluster.planner.HeteroCapacityPlanner.capacity_rps`.

    Args:
        engine: The shared latency model.
        mix: Model name -> traffic share (normalized internally).
        policy: StepStone dispatch policy (``cpu``/``pim``/``hybrid``).
        batch: Batch size the estimate assumes; defaults to the engine cap.
        spec: Node hardware; ``None`` means the default StepStone node.

    Returns:
        Requests per second at steady state.

    Raises:
        ValueError: If the shares do not sum positive, or no mix model
            fits the spec's memory.
    """
    capacity = engine.mix_capacity_rps(mix, policy, batch=batch, spec=spec)
    if capacity <= 0:
        raise ValueError(
            f"no mix model fits the {spec.name if spec else 'node'} memory"
        )
    return capacity
