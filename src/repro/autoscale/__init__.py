"""Trace-driven time-varying traffic and elastic fleet scaling.

The layer above :mod:`repro.cluster` for the load real services see (§I:
inference behind "diverse internet services" is diurnal and bursty, not a
stationary Poisson stream):

* :mod:`~repro.autoscale.traces` — deterministic request-rate traces
  (diurnal, MMPP on-off bursts, flash-crowd spikes, ramps, file replay)
  and seeded non-homogeneous Poisson stream generation via thinning;
* :mod:`~repro.autoscale.elastic` — the elastic fleet simulator: nodes
  provision (weight-copy delay), drain, and retire mid-run under a
  control loop;
* :mod:`~repro.autoscale.policies` — autoscaler policies behind one
  protocol: reactive target-utilization, windowed p99-SLO feedback with
  floor memory, predictive trace lookahead, and the static baseline;
* :mod:`~repro.autoscale.report` — cost/SLO accounting: node-seconds,
  Table II-grounded fleet energy, windowed goodput/violation timelines;
* :mod:`~repro.autoscale.hetero` — heterogeneous elasticity: one pool
  per :class:`~repro.serving.NodeSpec` (e.g. StepStone baseline + GPU
  burst), scaled independently on one clock, with per-pool $ accounting.
"""

from repro.autoscale.elastic import ElasticCluster, NodeState
from repro.autoscale.hetero import (
    BaselineBurstPolicy,
    HeteroAutoscalePolicy,
    HeteroAutoscaleReport,
    HeteroElasticCluster,
    NodePool,
    PerPoolPolicy,
    StaticMixPolicy,
)
from repro.autoscale.policies import (
    AutoscalePolicy,
    ControlObservation,
    PredictiveTracePolicy,
    SLOFeedbackPolicy,
    StaticPolicy,
    TargetUtilizationPolicy,
    node_capacity_rps,
)
from repro.autoscale.report import (
    AutoscaleReport,
    ControlSample,
    FleetPowerModel,
    NodeLifetime,
)
from repro.autoscale.traces import (
    ConstantTrace,
    DiurnalTrace,
    OnOffTrace,
    RampTrace,
    RateTrace,
    ReplayTrace,
    ScaledTrace,
    SpikeTrace,
    mix_request_stream,
    mix_requests,
    nhpp_requests,
    nhpp_stream,
)

__all__ = [
    "ElasticCluster",
    "NodeState",
    "NodePool",
    "HeteroElasticCluster",
    "HeteroAutoscalePolicy",
    "HeteroAutoscaleReport",
    "StaticMixPolicy",
    "PerPoolPolicy",
    "BaselineBurstPolicy",
    "AutoscalePolicy",
    "ControlObservation",
    "StaticPolicy",
    "TargetUtilizationPolicy",
    "SLOFeedbackPolicy",
    "PredictiveTracePolicy",
    "node_capacity_rps",
    "AutoscaleReport",
    "ControlSample",
    "FleetPowerModel",
    "NodeLifetime",
    "RateTrace",
    "ConstantTrace",
    "DiurnalTrace",
    "OnOffTrace",
    "SpikeTrace",
    "RampTrace",
    "ReplayTrace",
    "ScaledTrace",
    "nhpp_requests",
    "nhpp_stream",
    "mix_requests",
    "mix_request_stream",
]
