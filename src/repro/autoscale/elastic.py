"""The elastic fleet simulator: nodes join and drain mid-run.

Extends the :mod:`repro.cluster` fleet with a node lifecycle and a
control loop, all expressed as events on the shared :mod:`repro.sim`
kernel:

* **provisioning** — a newly ordered node becomes routable only after a
  provisioning delay modeling weight-copy time (a ``READY`` event): a
  base spin-up plus the hosted models' total weight bytes over a copy
  bandwidth (the placement's per-model bytes are exactly what must
  stream into the node's PIM-enabled DRAM before it can serve);
* **draining** — a node picked for scale-down leaves the routing set
  immediately, finishes its queued work, then retires; it can be
  *reactivated* for free if the autoscaler changes its mind before the
  drain completes (and nodes still provisioning are cancelled first,
  since they never held traffic);
* **control ticks** — every ``control_interval_s`` (a ``CONTROL``
  event) the :class:`~repro.autoscale.policies.AutoscalePolicy` sees a
  windowed observation (arrivals, completions, rejections, exact
  busy-time utilization via :class:`~repro.sim.metrics.BusyWindow`,
  windowed p99) and answers with a desired fleet size, clamped to
  ``[min_nodes, max_nodes]``;
* **failures** — an optional :class:`~repro.sim.failures.FailureTrace`
  injects ``FAIL``/``RECOVER`` events: a failed node drops its queue
  and in-flight batch (counted as failed requests), leaves the owned
  set (so the policy's next tick sees the loss and can order a
  replacement), and rejoins empty on recovery.

Every node replicates the full served-model set — the same convention the
static :class:`~repro.cluster.planner.CapacityPlanner` uses, since a model
pinned to fewer replicas than nodes would cap elasticity regardless of
fleet size.  Event ordering is the kernel's documented total order
(arrivals before control ticks before finishes at equal timestamps,
ties by node id), so an :class:`ElasticCluster` run under a static
policy with the same node count reproduces a
:class:`~repro.cluster.fleet.Cluster` run request for request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.autoscale.policies import AutoscalePolicy, ControlObservation
from repro.autoscale.report import AutoscaleReport, ControlSample, NodeLifetime
from repro.cluster.node import ClusterNode
from repro.cluster.router import Router, make_router
from repro.serving.engine import (
    POLICIES,
    FailedRequest,
    OnlineServingEngine,
    Request,
    ServingReport,
)
from repro.sim.failures import FailureTrace
from repro.sim.kernel import DiscreteEventKernel, Event, EventKind
from repro.sim.metrics import BusyWindow, nearest_rank
from repro.sim.stats import MetricsRecorder

__all__ = ["ElasticCluster", "NodeState"]

# Node lifecycle states.
PROVISIONING = "provisioning"
ACTIVE = "active"
DRAINING = "draining"
FAILED = "failed"
RETIRED = "retired"

#: Exposed for introspection/tests.
NodeState = (PROVISIONING, ACTIVE, DRAINING, FAILED, RETIRED)


@dataclass
class _NodeSlot:
    """One node plus its lifecycle bookkeeping."""

    node: ClusterNode
    state: str
    life: NodeLifetime
    # Exact busy-time integration per control tick.
    busy_window: BusyWindow = field(default_factory=BusyWindow)
    completed_seen: int = 0
    rejected_seen: int = 0


class ElasticCluster:
    """A routed fleet whose size an autoscaler adjusts while it serves."""

    def __init__(
        self,
        engine: Optional[OnlineServingEngine] = None,
        policy: str = "hybrid",
        router: "Router | str" = "least-loaded",
        models: Optional[Iterable[str]] = None,
        initial_nodes: int = 1,
        min_nodes: int = 1,
        max_nodes: int = 64,
        control_interval_s: float = 1.0,
        provision_base_s: float = 0.15,
        copy_gbps: float = 10.0,
        max_batch: Optional[int] = None,
        record: str = "full",
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        if record not in ("full", "streaming"):
            raise ValueError(
                f"unknown record mode {record!r}; choose 'full' or 'streaming'"
            )
        self.record = record
        if initial_nodes <= 0:
            raise ValueError("need at least one initial node")
        if not 1 <= min_nodes <= max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if not min_nodes <= initial_nodes <= max_nodes:
            raise ValueError("initial_nodes must lie in [min_nodes, max_nodes]")
        if control_interval_s <= 0:
            raise ValueError("control interval must be positive")
        if provision_base_s < 0 or copy_gbps <= 0:
            raise ValueError("provision_base_s >= 0 and copy_gbps > 0 required")
        self.engine = engine or OnlineServingEngine()
        self.policy = policy
        self.router = make_router(router) if isinstance(router, str) else router
        names = sorted(models) if models is not None else sorted(self.engine.models)
        unknown = [m for m in names if m not in self.engine.models]
        if unknown:
            raise KeyError(f"models unknown to the engine: {unknown}")
        if not names:
            raise ValueError("need at least one served model")
        self.models = names
        self.initial_nodes = initial_nodes
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.control_interval_s = control_interval_s
        self.provision_base_s = provision_base_s
        self.copy_gbps = copy_gbps
        self.max_batch = max_batch
        # Run-local state, rebuilt by _fresh().
        self._slots: Dict[int, _NodeSlot] = {}
        self._next_id = 0
        self._arrived_window = 0
        self._kernel: Optional[DiscreteEventKernel] = None
        self._run_stats: Optional[MetricsRecorder] = None
        self._obs_spans = None
        # True while a fast-path run is live: _spawn then equips every
        # node (including mid-run provisions) with a FastRecorder.
        self._fast_run = False

    # ------------------------------------------------------------------ #
    # Provisioning model
    # ------------------------------------------------------------------ #

    @property
    def weight_bytes(self) -> float:
        """Bytes a new node must copy before serving (all hosted models)."""
        return float(
            sum(self.engine.models[m].total_weight_bytes for m in self.models)
        )

    @property
    def provision_delay_s(self) -> float:
        """Spin-up plus weight-copy time for one new node."""
        return self.provision_base_s + self.weight_bytes / (self.copy_gbps * 1e9)

    # ------------------------------------------------------------------ #
    # Fleet membership
    # ------------------------------------------------------------------ #

    def _fresh(self) -> None:
        self._slots = {}
        self._next_id = 0
        self._arrived_window = 0
        self._kernel = DiscreteEventKernel()
        self._run_stats = None
        if self.record == "streaming":
            # One run-wide recorder every node recorder chains to; its
            # window ring is rolled at each control tick, so a streaming
            # window query sees exactly the completions of that tick.
            self._run_stats = MetricsRecorder(record="streaming")
        self.router.reset()
        for _ in range(self.initial_nodes):
            self._spawn(0.0, ready_now=True)

    def _spawn(self, clock: float, ready_now: bool) -> _NodeSlot:
        nid = self._next_id
        self._next_id += 1
        node = ClusterNode(
            node_id=nid,
            engine=self.engine,
            policy=self.policy,
            models=set(self.models),
            max_batch=self.max_batch,
        )
        if self.record == "streaming":
            node.report = ServingReport(
                policy=node.policy,
                stats=MetricsRecorder(
                    record="streaming", parent=self._run_stats
                ),
            )
        elif self._fast_run:
            from repro.sim.fast import FastRecorder

            node.report = ServingReport(policy=node.policy, stats=FastRecorder())
        node.obs_spans = self._obs_spans
        life = NodeLifetime(node_id=nid, ordered_s=clock)
        slot = _NodeSlot(
            node=node,
            state=ACTIVE if ready_now else PROVISIONING,
            life=life,
        )
        if ready_now:
            life.ready_s = clock
        self._slots[nid] = slot
        return slot

    def _by_state(self, state: str) -> List[_NodeSlot]:
        return [s for s in self._slots.values() if s.state == state]

    def _active_nodes(self) -> List[ClusterNode]:
        return [
            s.node for nid, s in sorted(self._slots.items()) if s.state == ACTIVE
        ]

    def replicas_for(self, model: str) -> List[ClusterNode]:
        """Routable (active) nodes, id order — full replication, so every
        active node hosts every served model."""
        return self._active_nodes()

    def _retire(self, slot: _NodeSlot, clock: float) -> None:
        slot.state = RETIRED
        if slot.life.retired_s is None:
            slot.life.retired_s = clock

    def _apply_target(self, target: int, clock: float) -> None:
        """Order, cancel, reactivate, or drain nodes toward ``target``."""
        owned = self._by_state(ACTIVE) + self._by_state(PROVISIONING)
        delta = target - len(owned)
        if delta > 0:
            # Cheapest capacity first: un-drain nodes still finishing their
            # backlog (they re-enter routing instantly, no weight copy).
            draining = sorted(
                self._by_state(DRAINING), key=lambda s: -s.node.node_id
            )
            for slot in draining[:delta]:
                slot.state = ACTIVE
                slot.life.drain_s = None
                delta -= 1
            for _ in range(delta):
                self._spawn(clock, ready_now=False)
                self._kernel.schedule(
                    clock + self.provision_delay_s,
                    EventKind.READY,
                    self._next_id - 1,
                )
        elif delta < 0:
            shed = -delta
            # Cancel provisioning nodes first (never held traffic), newest
            # first so the earliest-ordered capacity still arrives.
            provisioning = sorted(
                self._by_state(PROVISIONING), key=lambda s: -s.node.node_id
            )
            for slot in provisioning[:shed]:
                self._retire(slot, clock)
                shed -= 1
            if shed > 0:
                # Drain the emptiest active nodes (newest on ties); keep at
                # least one active node routable at all times.
                active = sorted(
                    self._by_state(ACTIVE),
                    key=lambda s: (s.node.backlog(), -s.node.node_id),
                )
                can_drain = max(0, len(active) - 1)
                for slot in active[: min(shed, can_drain)]:
                    slot.state = DRAINING
                    slot.life.drain_s = clock
                    if slot.node.idle and not slot.node.queue:
                        self._retire(slot, clock)

    # ------------------------------------------------------------------ #
    # The simulation
    # ------------------------------------------------------------------ #

    def run(
        self,
        requests: Iterable[Request],
        autoscaler: AutoscalePolicy,
        failures: Optional[FailureTrace] = None,
        presorted: bool = False,
        horizon_s: Optional[float] = None,
        obs=None,
        fast: bool = False,
    ) -> AutoscaleReport:
        """Serve an arrival-ordered stream while ``autoscaler`` resizes the
        fleet every control interval.

        Args:
            requests: Timestamped requests (sorted internally unless
                ``presorted``).
            autoscaler: The sizing policy.
            failures: Optional outage schedule — failed nodes drop their
                work, leave the owned set (so the policy's next
                observation sees the loss), and rejoin on recovery.
            presorted: The stream is already arrival-ordered; consume it
                *lazily* through the kernel instead of materializing and
                sorting — with ``record="streaming"`` this is what keeps
                a 10M-request run's memory flat (requests exist only
                between generation and completion).  Requires
                ``horizon_s``.
            horizon_s: Arrival horizon for a presorted run — control
                ticks are scheduled up front through ``horizon_s`` plus
                one trailing interval, since a lazy stream's end is
                unknown until it drains.
            obs: Optional :class:`~repro.obs.RunObserver` — every node
                (including ones provisioned mid-run) emits request
                lifecycle spans, and the kernel self-profiles when a
                profiler is attached.  Default off.
            fast: Opt into the :mod:`repro.sim.fast` struct-of-arrays
                path (bit-identical reports).  Engages for materialized
                full-recording runs without span tracing on a builtin
                router; falls back to the event-at-a-time path
                otherwise.

        Returns:
            The :class:`~repro.autoscale.report.AutoscaleReport`.

        Raises:
            ValueError: If ``presorted`` without ``horizon_s``.
        """
        self._obs_spans = obs.spans if obs is not None else None
        _fast = None
        chooser = None
        if fast:
            if presorted:
                fb_reason = "presorted-stream"
            elif self.record != "full":
                fb_reason = "streaming-record"
            elif self._obs_spans is not None:
                fb_reason = "spans"
            else:
                from repro.sim import fast as _fast_mod

                chooser = _fast_mod.make_chooser(self.router, self.replicas_for)
                if chooser is not None:
                    _fast = _fast_mod
                    fb_reason = None
                else:
                    fb_reason = "custom-router"
            if _fast is None:
                from repro.obs.telemetry import record_fast_fallback

                record_fast_fallback("elastic", fb_reason, obs)
        self._fast_run = _fast is not None
        self._fresh()
        autoscaler.reset()
        kernel = self._kernel
        run_stats = self._run_stats
        if presorted:
            if horizon_s is None or horizon_s <= 0:
                raise ValueError("presorted runs need a positive horizon_s")
            tick_horizon = horizon_s
            last_arrival = 0.0
            kernel.preload_stream(
                Event(r.arrival_s, EventKind.ARRIVAL, i, payload=r)
                for i, r in enumerate(requests)
            )
            schedule_ticks = True
        else:
            ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
            last_arrival = ordered[-1].arrival_s if ordered else 0.0
            tick_horizon = last_arrival
            if _fast is None:
                kernel.preload(
                    Event(r.arrival_s, EventKind.ARRIVAL, i, payload=r)
                    for i, r in enumerate(ordered)
                )
            schedule_ticks = bool(ordered)
        report = AutoscaleReport(
            policy=self.policy,
            autoscaler=autoscaler.name,
            control_interval_s=self.control_interval_s,
            last_arrival_s=last_arrival,
        )
        # Control ticks cover the offered window plus one trailing interval
        # (so the controller can react to the last window of load); an
        # empty stream needs no controller at all.
        if schedule_ticks:
            # Accumulate tick times by repeated addition (not tick *
            # interval): that is bit-for-bit what the pre-kernel loop
            # did, and the golden traces pin those exact floats.
            t_tick = self.control_interval_s
            tick = 1
            while t_tick <= tick_horizon + self.control_interval_s:
                kernel.schedule(t_tick, EventKind.CONTROL, tick)
                tick += 1
                t_tick += self.control_interval_s
        if failures is not None:
            failures.schedule_on(kernel)
        state = {
            "last_service_end": 0.0,
            "prev_tick_t": 0.0,
            "last_arrival": last_arrival,
            "n_dropped": 0,
        }

        def dispatch(slot: _NodeSlot, now: float) -> None:
            finish = slot.node.try_dispatch(now)
            if finish is not None:
                kernel.schedule(
                    finish, EventKind.FINISH, slot.node.node_id,
                    payload=slot.node.epoch,
                )

        def on_arrivals(now: float, events: List[Event]) -> None:
            # Drain every arrival at this instant before any other event,
            # matching the static fleet simulator.
            touched: Dict[int, _NodeSlot] = {}
            state["last_arrival"] = now
            for ev in events:
                r = ev.payload
                replicas = self.replicas_for(r.model)
                if not replicas:
                    f = FailedRequest(
                        request=r, failed_at_s=now, reason="unrouted"
                    )
                    if run_stats is not None:
                        run_stats.record_failure(f)
                        state["n_dropped"] += 1
                    else:
                        report.dropped.append(f)
                    continue
                node = self.router.route(r, replicas, now)
                node.enqueue(r)
                self._arrived_window += 1
                touched[node.node_id] = self._slots[node.node_id]
            for nid in sorted(touched):
                if touched[nid].node.idle:
                    dispatch(touched[nid], now)

        def on_finishes(now: float, events: List[Event]) -> None:
            for ev in events:
                slot = self._slots[ev.entity]
                if ev.payload != slot.node.epoch:
                    continue  # batch was lost to a failure; stale event
                slot.node.finish_batch(now)
                state["last_service_end"] = now
                dispatch(slot, now)
                if (
                    slot.state == DRAINING
                    and slot.node.idle
                    and not slot.node.queue
                ):
                    self._retire(slot, now)

        def on_readies(now: float, events: List[Event]) -> None:
            for ev in events:
                slot = self._slots[ev.entity]
                # A node cancelled while provisioning stays retired; its
                # ready event is stale.
                if slot.state == PROVISIONING:
                    slot.state = ACTIVE
                    slot.life.ready_s = now

        def on_fails(now: float, events: List[Event]) -> None:
            for ev in events:
                slot = self._slots.get(ev.entity)
                if slot is None:
                    continue
                if slot.state == ACTIVE:
                    slot.node.fail(now)
                    slot.state = FAILED
                elif slot.state == DRAINING:
                    # It was leaving anyway; the failure just drops its
                    # backlog and retires it on the spot.
                    slot.node.fail(now)
                    self._retire(slot, now)

        def on_recovers(now: float, events: List[Event]) -> None:
            for ev in events:
                slot = self._slots.get(ev.entity)
                if slot is not None and slot.state == FAILED:
                    slot.state = ACTIVE

        def on_control(now: float, events: List[Event]) -> None:
            obs = self._observe(state["prev_tick_t"], now)
            state["prev_tick_t"] = now
            desired = autoscaler.desired_nodes(obs)
            target = max(self.min_nodes, min(self.max_nodes, desired))
            self._apply_target(target, now)
            report.samples.append(
                ControlSample(
                    t=now,
                    active=obs.active,
                    provisioning=obs.provisioning,
                    draining=obs.draining,
                    desired=target,
                    arrivals=obs.arrivals,
                    completions=obs.completions,
                    rejections=obs.rejections,
                    window_p99_s=obs.window_p99_s,
                    utilization=obs.utilization,
                    backlog=obs.backlog,
                    failed=obs.failed,
                )
            )

        if _fast is not None:
            _fast.count_run()
            route = chooser.route
            slots = self._slots
            dropped = report.dropped

            def dispatch_fast(slot: _NodeSlot, now: float) -> bool:
                finish = slot.node.try_dispatch(now)
                chooser.invalidate_backlogs()
                if finish is not None:
                    kernel.schedule(
                        finish, EventKind.FINISH, slot.node.node_id,
                        payload=slot.node.epoch,
                    )
                    return True
                return False

            def on_epoch(now: float, lo: int, hi: int) -> bool:
                state["last_arrival"] = now
                if hi - lo == 1:
                    r = ordered[lo]
                    node = route(r, now)
                    if node is None:
                        dropped.append(
                            FailedRequest(
                                request=r, failed_at_s=now, reason="unrouted"
                            )
                        )
                        return False
                    node.queue.append(r)
                    self._arrived_window += 1
                    if not node.in_flight:
                        return dispatch_fast(slots[node.node_id], now)
                    return False
                touched: Dict[int, _NodeSlot] = {}
                for r in ordered[lo:hi]:
                    node = route(r, now)
                    if node is None:
                        dropped.append(
                            FailedRequest(
                                request=r, failed_at_s=now, reason="unrouted"
                            )
                        )
                        continue
                    node.queue.append(r)
                    self._arrived_window += 1
                    touched[node.node_id] = slots[node.node_id]
                scheduled = False
                for nid in sorted(touched):
                    if touched[nid].node.idle and dispatch_fast(
                        touched[nid], now
                    ):
                        scheduled = True
                return scheduled

            def on_finishes_fast(now: float, events: List[Event]) -> None:
                for ev in events:
                    slot = slots[ev.entity]
                    node = slot.node
                    if ev.payload != node.epoch:
                        continue  # batch was lost to a failure; stale event
                    node.report.stats.record_batch(
                        node._dispatch_s, now, node.in_flight
                    )
                    node.in_flight = []
                    state["last_service_end"] = now
                    dispatch_fast(slot, now)
                    if (
                        slot.state == DRAINING
                        and node.idle
                        and not node.queue
                    ):
                        self._retire(slot, now)

            def cold(handler):
                def wrapped(now: float, events: List[Event]) -> None:
                    handler(now, events)
                    chooser.invalidate_all()

                return wrapped

            _fast.drain(
                kernel,
                _fast.arrival_times(ordered),
                on_epoch,
                {
                    int(EventKind.FINISH): on_finishes_fast,
                    int(EventKind.READY): cold(on_readies),
                    int(EventKind.CONTROL): cold(on_control),
                    int(EventKind.FAIL): cold(on_fails),
                    int(EventKind.RECOVER): cold(on_recovers),
                },
                profiler=getattr(obs, "profile", None) if obs is not None else None,
            )
        else:
            kernel.run(
                {
                    EventKind.ARRIVAL: on_arrivals,
                    EventKind.FINISH: on_finishes,
                    EventKind.READY: on_readies,
                    EventKind.CONTROL: on_control,
                    EventKind.FAIL: on_fails,
                    EventKind.RECOVER: on_recovers,
                },
                obs=obs,
            )
        # The serving horizon excludes trailing control ticks (controller
        # bookkeeping, not service) — a static-policy run matches the
        # static fleet's sim_end exactly.  Anything still draining,
        # provisioning, or failed retires here.
        last_arrival = state["last_arrival"]
        report.last_arrival_s = last_arrival
        sim_end = max(state["last_service_end"], last_arrival)
        for slot in self._slots.values():
            if slot.state != RETIRED:
                self._retire(slot, sim_end)
        report.sim_end_s = sim_end
        kernel.finalize(report)
        report.n_dropped = state["n_dropped"]
        report.stats = run_stats
        for nid, slot in sorted(self._slots.items()):
            slot.node.report.sim_end_s = sim_end
            report.node_reports[nid] = slot.node.report
            report.lifetimes[nid] = slot.life
            report.node_busy_s[nid] = slot.node.busy_s
        if obs is not None and obs.telemetry is not None:
            obs.telemetry.record_counts(
                "elastic",
                served=report.served,
                rejected=report.rejected_count,
                failed=report.failed_count,
            )
        return report

    def _observe(self, t0: float, t1: float) -> ControlObservation:
        """Windowed fleet observation over ``(t0, t1]`` (exact busy time)."""
        interval = t1 - t0
        active = self._by_state(ACTIVE)
        provisioning = self._by_state(PROVISIONING)
        draining = self._by_state(DRAINING)
        streaming = self._run_stats is not None
        window_lats: List[float] = []
        completions = 0
        rejections = 0
        busy_window = 0.0
        backlog = 0
        for slot in self._slots.values():
            rep = slot.node.report
            served_now = rep.served
            if streaming:
                completions += served_now - slot.completed_seen
            else:
                new_lats = rep.stats.new_latencies(slot.completed_seen)
                completions += len(new_lats)
                window_lats.extend(new_lats)
            slot.completed_seen = served_now
            rejections += rep.rejected_count - slot.rejected_seen
            slot.rejected_seen = rep.rejected_count
            busy_window += slot.busy_window.observe(
                slot.node.busy_s,
                slot.node.busy_until,
                bool(slot.node.in_flight),
                t1,
            )
            if slot.state not in (RETIRED, FAILED):
                backlog += slot.node.backlog()
        n_active = len(active)
        # The numerator sums busy time across every slot (draining nodes
        # keep serving their backlog), so the denominator must count the
        # serving set — active plus draining — or every scale-down tick
        # would read as a saturated fleet.  Approximate across mid-window
        # membership changes; the clamp keeps it a fraction.
        n_serving = n_active + len(draining)
        util = 0.0
        if interval > 0 and n_serving:
            util = max(0.0, min(1.0, busy_window / (interval * n_serving)))
        window_lats.sort()
        if streaming:
            # The run recorder's open window holds exactly the
            # completions since the last tick (CONTROL fires before
            # FINISH at equal instants, matching the full-mode
            # "new completions since last tick" semantics); read its
            # p99, then roll so the next tick starts a fresh window.
            window_p99 = self._run_stats.window_percentile(99, t0, t1)
            self._run_stats.roll_window(t1)
        else:
            window_p99 = nearest_rank(window_lats, 99)
        obs = ControlObservation(
            t=t1,
            interval_s=interval,
            active=n_active,
            provisioning=len(provisioning),
            draining=len(draining),
            arrivals=self._arrived_window,
            completions=completions,
            rejections=rejections,
            window_p99_s=window_p99,
            utilization=util,
            backlog=backlog,
            failed=len(self._by_state(FAILED)),
        )
        self._arrived_window = 0
        return obs
