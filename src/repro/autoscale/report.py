"""Cost and SLO accounting for one elastic-fleet run.

The static fleet's report answers "what latency at what throughput"; the
elastic question adds "at what *cost*".  :class:`AutoscaleReport` keeps
the per-node serving reports (same objects the cluster layer produces),
the node lifecycle records, and the control-tick timeline, and derives:

* **node-seconds** — machine time paid for, provisioning included (a node
  copying weights is a node on the bill);
* **energy** — via :class:`FleetPowerModel`, which grounds the busy-power
  increment in the paper's Table II energy constants
  (:data:`repro.energy.model.ENERGY_TABLE2`): a busy StepStone node
  streams weights from DRAM at channel bandwidth, so its marginal power is
  the streamed bits/s times the off-chip pJ/bit, plus the host CPU's
  active share;
* **SLO timelines** — windowed goodput and p99 per control interval
  (reusing the engine's shared nearest-rank/window helpers), and the
  fraction of offered requests shed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.energy.model import ENERGY_TABLE2, EnergyTable
from repro.serving.engine import (
    CompletedRequest,
    FailedRequest,
    RejectedRequest,
    ServingReport,
)
from repro.sim.metrics import nearest_rank, window_latencies
from repro.sim.stats import MetricsRecorder, RecordingModeError

__all__ = [
    "NodeLifetime",
    "ControlSample",
    "FleetPowerModel",
    "AutoscaleReport",
]


@dataclass
class NodeLifetime:
    """One node's lifecycle timestamps (NaN-free: None = never happened)."""

    node_id: int
    #: When the node was ordered (starts paying) — 0.0 for the initial fleet.
    ordered_s: float
    #: When it finished provisioning and joined the routing set.
    ready_s: Optional[float] = None
    #: When it stopped taking new requests.
    drain_s: Optional[float] = None
    #: When it finished its backlog and left the fleet.
    retired_s: Optional[float] = None

    def seconds(self, sim_end_s: float) -> float:
        """Paid machine time: ordered to retired (or to the end of the run)."""
        end = self.retired_s if self.retired_s is not None else sim_end_s
        return max(0.0, end - self.ordered_s)


@dataclass(frozen=True)
class ControlSample:
    """One control tick of the autoscale timeline."""

    t: float
    active: int
    provisioning: int
    draining: int
    desired: int
    arrivals: int
    completions: int
    rejections: int
    window_p99_s: float
    utilization: float
    backlog: int
    failed: int = 0

    def as_row(self, interval_s: float) -> Dict[str, Any]:
        """A chart/table row (rates in req/s, p99 in ms)."""
        return {
            "t_s": round(self.t, 6),
            "nodes": self.active,
            "provisioning": self.provisioning,
            "failed": self.failed,
            "offered_rps": self.arrivals / interval_s if interval_s > 0 else 0.0,
            "goodput_rps": self.completions / interval_s if interval_s > 0 else 0.0,
            "p99_ms": self.window_p99_s * 1e3,
            "util": self.utilization,
        }


@dataclass(frozen=True)
class FleetPowerModel:
    """Per-node power for fleet energy accounting.

    ``idle_w`` is the platform floor of a powered server.  The busy
    increment is split into the host CPU's active share (``cpu_active_w``
    — the hybrid policy keeps the CPU computing alongside the PIM sweep)
    and the DRAM streaming power, derived from the Table II energy
    constants: ``stream_gbps`` of weight traffic at the off-chip pJ/bit
    (every StepStone level at or above the device crosses the I/O pins;
    Fig. 14's in-device rate differs by ~2x, which is noise next to the
    platform floor).
    """

    idle_w: float = 90.0
    cpu_active_w: float = 65.0
    #: Streamed weight bandwidth while serving: 2 channels of DDR4-2400.
    stream_gbps: float = 38.4
    table: EnergyTable = field(default_factory=lambda: ENERGY_TABLE2)

    @property
    def dram_stream_w(self) -> float:
        """Watts of DRAM traffic at ``stream_gbps`` per Table II."""
        return self.stream_gbps * 1e9 * 8 * self.table.off_chip_pj_per_bit * 1e-12

    @classmethod
    def from_spec(cls, spec) -> "FleetPowerModel":
        """A power model matching one :class:`~repro.serving.NodeSpec`.

        Args:
            spec: The node spec whose ``idle_w``/``busy_w`` to mirror (the
                busy increment lands in ``cpu_active_w``; no separate DRAM
                stream term, since the spec's busy watts already include
                its substrate's streaming power).

        Returns:
            A :class:`FleetPowerModel` with the spec's idle/busy watts.
        """
        return cls(
            idle_w=spec.idle_w,
            cpu_active_w=spec.busy_w - spec.idle_w,
            stream_gbps=0.0,
        )

    @property
    def busy_w(self) -> float:
        """Total watts while serving a batch."""
        return self.idle_w + self.cpu_active_w + self.dram_stream_w

    def energy_j(self, node_seconds: float, busy_seconds: float) -> float:
        """Joules for a fleet that existed ``node_seconds`` and served
        batches for ``busy_seconds`` of them."""
        idle_s = max(0.0, node_seconds - busy_seconds)
        return idle_s * self.idle_w + busy_seconds * self.busy_w


@dataclass
class AutoscaleReport:
    """Outcome of one elastic run: serving quality plus machine cost.

    In ``record="full"`` runs per-request records are reachable through
    the node reports and statistics are exact; in ``record="streaming"``
    runs the ``stats`` recorder (parent of every node recorder the run
    created) answers run-wide percentiles from sketches and the
    per-request list properties raise
    :class:`~repro.sim.stats.RecordingModeError`.
    """

    policy: str
    autoscaler: str
    control_interval_s: float
    node_reports: Dict[int, ServingReport] = field(default_factory=dict)
    lifetimes: Dict[int, NodeLifetime] = field(default_factory=dict)
    samples: List[ControlSample] = field(default_factory=list)
    node_busy_s: Dict[int, float] = field(default_factory=dict)
    sim_end_s: float = 0.0
    last_arrival_s: float = 0.0
    #: Arrivals no routable node could take (failure injection); kept
    #: only in full-recording runs (streaming runs count them instead).
    dropped: List[FailedRequest] = field(default_factory=list)
    #: Unrouted-arrival drops counted without records (streaming runs).
    n_dropped: int = 0
    #: Kernel events this run processed (simulator diagnostics).
    events_processed: int = 0
    #: The run-wide recorder of a streaming run (``None`` on full runs).
    stats: Optional[MetricsRecorder] = None
    _lat_memo: tuple = field(default=(-1, ()), repr=False, compare=False)

    @property
    def record(self) -> str:
        """The recording mode this report was accumulated under."""
        if self.stats is not None:
            return self.stats.record
        return "full"

    @property
    def _streaming(self) -> bool:
        return self.stats is not None and self.stats.record == "streaming"

    # ------------------------------------------------------------------ #
    # Serving quality (same vocabulary as ClusterReport)
    # ------------------------------------------------------------------ #

    @property
    def completed(self) -> List[CompletedRequest]:
        """Every completed request across the run (node order;
        ``record="full"`` only)."""
        return [c for rep in self.node_reports.values() for c in rep.completed]

    @property
    def rejected(self) -> List[RejectedRequest]:
        """Every admission-rejected request across the run (node order;
        ``record="full"`` only)."""
        return [r for rep in self.node_reports.values() for r in rep.rejected]

    @property
    def failed(self) -> List[FailedRequest]:
        """Every request lost to node failures (node order), plus
        arrivals no surviving replica could take (``record="full"``
        only)."""
        return [
            f for rep in self.node_reports.values() for f in rep.failed
        ] + self.dropped

    @property
    def served(self) -> int:
        """Total completed requests."""
        return sum(rep.served for rep in self.node_reports.values())

    @property
    def dropped_count(self) -> int:
        """Arrivals dropped with no routable node (works in both modes)."""
        return len(self.dropped) + self.n_dropped

    @property
    def rejected_count(self) -> int:
        """Run-wide admission rejections (works in both modes)."""
        return sum(rep.rejected_count for rep in self.node_reports.values())

    @property
    def failed_count(self) -> int:
        """Run-wide failure losses, unrouted drops included (both modes)."""
        return (
            sum(rep.failed_count for rep in self.node_reports.values())
            + self.dropped_count
        )

    @property
    def offered(self) -> int:
        """Total requests the fleet saw (completed + rejected + failed)."""
        return sum(
            rep.offered for rep in self.node_reports.values()
        ) + self.dropped_count

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered requests rejected at admission."""
        return self.rejected_count / self.offered if self.offered else 0.0

    @property
    def availability(self) -> float:
        """Fraction of offered requests that completed — goodput share
        surviving both admission shedding and failure losses (1.0 for an
        empty run)."""
        if self.offered == 0:
            return 1.0
        return self.served / self.offered

    @property
    def latencies_s(self) -> List[float]:
        """Run-wide completed latencies, ascending (memoized per node
        mutation; ``record="full"`` only)."""
        if self._streaming:
            raise RecordingModeError(
                "the run-wide latency list is unavailable in streaming mode "
                "— use latency_percentile(); re-run with record='full' for "
                "per-request records"
            )
        key = (
            self.served,
            sum(rep.completed.version for rep in self.node_reports.values()),
        )
        version, memo = self._lat_memo
        if version != key:
            memo = sorted(c.latency_s for c in self.completed)
            self._lat_memo = (key, memo)
        return memo

    def latency_percentile(self, q: float) -> float:
        """Percentile of run-wide completed latency: exact nearest-rank
        on full runs, sketch estimate on streaming runs.

        Args:
            q: Percentile in (0, 100].

        Returns:
            Latency seconds (NaN when nothing completed).
        """
        if self._streaming:
            return self.stats.percentile(q)
        return nearest_rank(self.latencies_s, q)

    def window_percentile(self, q: float, start_s: float, end_s: float) -> float:
        """Run-wide latency percentile over completions finishing in the
        window — exact on full runs; answered from the run recorder's
        window ring (rolled at every control tick) on streaming runs."""
        if self._streaming:
            return self.stats.window_percentile(q, start_s, end_s)
        return nearest_rank(window_latencies(self.completed, start_s, end_s), q)

    @property
    def p50_s(self) -> float:
        """Median run-wide latency, seconds."""
        return self.latency_percentile(50)

    @property
    def p99_s(self) -> float:
        """99th-percentile run-wide latency, seconds."""
        return self.latency_percentile(99)

    @property
    def goodput_rps(self) -> float:
        """Completions per second of the offered arrival window."""
        if self.last_arrival_s <= 0:
            return 0.0
        return self.served / self.last_arrival_s

    # ------------------------------------------------------------------ #
    # Cost
    # ------------------------------------------------------------------ #

    @property
    def node_seconds(self) -> float:
        """Total machine time paid, provisioning included."""
        return sum(
            life.seconds(self.sim_end_s) for life in self.lifetimes.values()
        )

    @property
    def busy_seconds(self) -> float:
        """Seconds of the paid machine time spent serving batches."""
        return sum(self.node_busy_s.values())

    @property
    def mean_fleet_size(self) -> float:
        """Average paid nodes over the run (node-seconds / horizon)."""
        if self.sim_end_s <= 0:
            return 0.0
        return self.node_seconds / self.sim_end_s

    @property
    def peak_fleet_size(self) -> int:
        """Largest owned fleet (active + provisioning) at any tick."""
        return max((s.active + s.provisioning for s in self.samples), default=0)

    def energy_j(self, power: Optional[FleetPowerModel] = None) -> float:
        """Fleet energy under a per-node power model (defaults grounded in
        the Table II constants — see :class:`FleetPowerModel`)."""
        return (power or FleetPowerModel()).energy_j(
            self.node_seconds, self.busy_seconds
        )

    # ------------------------------------------------------------------ #
    # Timelines
    # ------------------------------------------------------------------ #

    def timeline_rows(self) -> List[Dict[str, Any]]:
        """Chart rows: one per control tick (the ``timeline`` chart kind)."""
        return [s.as_row(self.control_interval_s) for s in self.samples]

    def violation_fraction(self, p99_slo_s: float) -> float:
        """Fraction of control windows whose windowed p99 broke the SLO
        (windows that completed nothing don't count either way)."""
        scored = [s for s in self.samples if s.window_p99_s == s.window_p99_s]
        if not scored:
            return 0.0
        bad = sum(1 for s in scored if s.window_p99_s > p99_slo_s)
        return bad / len(scored)

    def converged_nodes(self, tail_fraction: float = 0.25) -> int:
        """The fleet size held longest over the trailing window of the
        arrival horizon — "where the autoscaler settled".

        Counts active + provisioning (owned nodes) per sample over the last
        ``tail_fraction`` of the offered window; ties break toward the
        *later* count, so a clean final plateau wins.
        """
        if not 0 < tail_fraction <= 1:
            raise ValueError("tail_fraction must be in (0, 1]")
        horizon = self.last_arrival_s or self.sim_end_s
        cutoff = horizon * (1.0 - tail_fraction)
        tail = [s for s in self.samples if s.t >= cutoff] or self.samples
        if not tail:
            return 0
        dwell: Dict[int, float] = {}
        latest: Dict[int, float] = {}
        for s in tail:
            fleet = s.active + s.provisioning
            dwell[fleet] = dwell.get(fleet, 0.0) + 1.0
            latest[fleet] = s.t
        return max(dwell, key=lambda n: (dwell[n], latest[n]))

    def summary(self) -> str:
        """One-line outcome: counts, tail, rate, node-seconds, energy."""
        p99 = self.p99_s
        p99_txt = f"{p99 * 1e3:.2f} ms" if p99 == p99 else "n/a"
        return (
            f"{self.autoscaler}/{self.policy}: {self.served} served, "
            f"{self.rejected_count} rejected | p99 {p99_txt} | "
            f"{self.goodput_rps:.0f} req/s | "
            f"{self.node_seconds:.1f} node-s "
            f"(mean {self.mean_fleet_size:.2f}, peak {self.peak_fleet_size}), "
            f"{self.energy_j() / 1e3:.2f} kJ"
        )
