"""Time-varying request-rate traces and their arrival-stream generators.

The single-node and fleet experiments drive everything with *stationary*
Poisson streams; real datacenter inference traffic (§I: "DL inference
queries play an important role in diverse internet services") is diurnal
and bursty.  A :class:`RateTrace` is a deterministic intensity function
``rate_at(t)`` in requests/second; :func:`nhpp_requests` turns any trace
into a seeded non-homogeneous Poisson arrival stream via Lewis-Shedler
thinning, emitting the same :class:`~repro.serving.engine.Request` objects
the serving engine and cluster simulator already consume — so every
existing layer runs unmodified under non-stationary load.

Trace zoo:

* :class:`ConstantTrace` — the stationary anchor (the capacity-planner
  cross-check runs on it);
* :class:`DiurnalTrace` — raised-cosine day/night swing between a trough
  and a peak rate;
* :class:`OnOffTrace` — a seeded two-state Markov-modulated Poisson
  process (MMPP): exponential dwell times alternating a base and a burst
  rate;
* :class:`SpikeTrace` — a flash crowd: linear rise to a spike, then
  exponential decay back to base;
* :class:`RampTrace` — linear growth/decay between two rates;
* :class:`ReplayTrace` — piecewise-linear replay of external ``(t, rate)``
  samples, loadable from a text file.

All traces are immutable after construction and all randomness is seeded,
so identical seeds reproduce identical streams bit-for-bit.
"""

from __future__ import annotations

import bisect
import heapq
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.serving.engine import Request, merge_streams

__all__ = [
    "RateTrace",
    "ConstantTrace",
    "DiurnalTrace",
    "OnOffTrace",
    "SpikeTrace",
    "RampTrace",
    "ReplayTrace",
    "ScaledTrace",
    "nhpp_requests",
    "nhpp_stream",
    "mix_requests",
    "mix_request_stream",
]


class RateTrace:
    """A deterministic request-rate intensity function (req/s over time)."""

    def rate_at(self, t: float) -> float:
        """Instantaneous offered rate at simulated second ``t``."""
        raise NotImplementedError

    def peak_rate(self, start_s: float, end_s: float) -> float:
        """The maximum of ``rate_at`` over ``[start_s, end_s]``.

        Doubles as the thinning envelope for :func:`nhpp_requests` (over
        the whole stream window) and as the provisioning target of the
        predictive autoscaler (over its lookahead window) — so it must be
        *windowed*: a global bound would make lookahead provision for the
        all-time peak forever.
        """
        raise NotImplementedError

    def mean_rate(self, start_s: float, end_s: float, samples: int = 256) -> float:
        """Trapezoidal estimate of the average rate over a window."""
        if end_s <= start_s:
            return 0.0
        step = (end_s - start_s) / samples
        pts = [self.rate_at(start_s + i * step) for i in range(samples + 1)]
        return (sum(pts) - 0.5 * (pts[0] + pts[-1])) / samples

    def scaled(self, factor: float) -> "ScaledTrace":
        """This trace with every rate multiplied by ``factor`` (mix shares)."""
        return ScaledTrace(self, factor)


@dataclass(frozen=True)
class ScaledTrace(RateTrace):
    """A trace multiplied by a constant share (per-model mix splitting)."""

    base: RateTrace
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError("scale factor must be non-negative")

    def rate_at(self, t: float) -> float:
        """The base trace's rate at ``t`` times the scale factor."""
        return self.factor * self.base.rate_at(t)

    def peak_rate(self, start_s: float, end_s: float) -> float:
        """The base trace's windowed peak times the scale factor."""
        return self.factor * self.base.peak_rate(start_s, end_s)


@dataclass(frozen=True)
class ConstantTrace(RateTrace):
    """Stationary load — the bridge back to the static capacity planner."""

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps < 0:
            raise ValueError("rate must be non-negative")

    def rate_at(self, t: float) -> float:
        """The constant rate, at every ``t``."""
        return self.rate_rps

    def peak_rate(self, start_s: float, end_s: float) -> float:
        """The constant rate, over every window."""
        return self.rate_rps


@dataclass(frozen=True)
class DiurnalTrace(RateTrace):
    """Raised-cosine diurnal swing: trough at ``phase_s``, peak half a
    period later.  ``rate(t) = trough + (peak-trough) * (1 - cos(2pi
    (t-phase)/period)) / 2`` — starts the "day" at the trough so an
    autoscaled fleet grows into the peak and shrinks back."""

    trough_rps: float
    peak_rps: float
    period_s: float
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.trough_rps < 0 or self.peak_rps < self.trough_rps:
            raise ValueError("need 0 <= trough_rps <= peak_rps")
        if self.period_s <= 0:
            raise ValueError("period must be positive")

    def rate_at(self, t: float) -> float:
        """The raised-cosine rate at ``t``."""
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * (t - self.phase_s) / self.period_s))
        return self.trough_rps + (self.peak_rps - self.trough_rps) * swing

    def peak_rate(self, start_s: float, end_s: float) -> float:
        """Exact windowed maximum of the diurnal curve."""
        # Summits sit at phase + (k + 1/2) * period; if the window holds
        # one the max is the peak, otherwise the curve is monotone between
        # extrema and an endpoint wins.
        u0 = (start_s - self.phase_s) / self.period_s - 0.5
        u1 = (end_s - self.phase_s) / self.period_s - 0.5
        if math.floor(u1) >= math.ceil(u0):
            return self.peak_rps
        return max(self.rate_at(start_s), self.rate_at(end_s))


@dataclass
class OnOffTrace(RateTrace):
    """Seeded two-state MMPP: the rate alternates between ``base_rps`` and
    ``burst_rps`` with exponentially distributed dwell times.

    The state-switch times are drawn once at construction (covering
    ``horizon_s``), so ``rate_at`` is a pure function afterwards — the same
    trace object answers lookahead queries and thinning consistently.
    Beyond the horizon the trace holds its last state.
    """

    base_rps: float
    burst_rps: float
    mean_base_s: float
    mean_burst_s: float
    horizon_s: float
    seed: int = 0
    #: Ascending switch instants; even intervals (before switch 0) are base.
    _switches: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.base_rps < 0 or self.burst_rps < 0:
            raise ValueError("rates must be non-negative")
        if self.mean_base_s <= 0 or self.mean_burst_s <= 0:
            raise ValueError("mean dwell times must be positive")
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")
        rng = random.Random(self.seed)
        t, burst = 0.0, False
        switches: List[float] = []
        while t < self.horizon_s:
            t += rng.expovariate(1.0 / (self.mean_burst_s if burst else self.mean_base_s))
            switches.append(t)
            burst = not burst
        self._switches = switches

    def rate_at(self, t: float) -> float:
        """The current MMPP state's rate (base or burst) at ``t``."""
        burst = bisect.bisect_right(self._switches, t) % 2 == 1
        return self.burst_rps if burst else self.base_rps

    def peak_rate(self, start_s: float, end_s: float) -> float:
        """Windowed maximum over the pre-drawn state switches."""
        # Both states appear in the window iff a switch falls inside it.
        if bisect.bisect_right(self._switches, end_s) != bisect.bisect_right(
            self._switches, start_s
        ):
            return max(self.base_rps, self.burst_rps)
        return self.rate_at(start_s)


@dataclass(frozen=True)
class SpikeTrace(RateTrace):
    """Flash crowd: base load, a linear rise to ``spike_rps`` starting at
    ``spike_at_s`` over ``rise_s`` seconds, then exponential decay back
    toward base with time constant ``decay_s``."""

    base_rps: float
    spike_rps: float
    spike_at_s: float
    rise_s: float = 0.5
    decay_s: float = 2.0

    def __post_init__(self) -> None:
        if self.base_rps < 0 or self.spike_rps < self.base_rps:
            raise ValueError("need 0 <= base_rps <= spike_rps")
        if self.rise_s <= 0 or self.decay_s <= 0:
            raise ValueError("rise and decay constants must be positive")

    def rate_at(self, t: float) -> float:
        """Base, linear rise, or exponential-decay rate at ``t``."""
        if t < self.spike_at_s:
            return self.base_rps
        lift = self.spike_rps - self.base_rps
        if t < self.spike_at_s + self.rise_s:
            return self.base_rps + lift * (t - self.spike_at_s) / self.rise_s
        dt = t - self.spike_at_s - self.rise_s
        return self.base_rps + lift * math.exp(-dt / self.decay_s)

    def peak_rate(self, start_s: float, end_s: float) -> float:
        """Windowed maximum of the unimodal flash-crowd curve."""
        # Unimodal with its summit at the end of the rise.
        summit = self.spike_at_s + self.rise_s
        peak_t = min(max(summit, start_s), end_s)
        return max(self.rate_at(start_s), self.rate_at(end_s), self.rate_at(peak_t))


@dataclass(frozen=True)
class RampTrace(RateTrace):
    """Linear rate change from ``start_rps`` to ``end_rps`` over
    ``ramp_s`` seconds, holding ``end_rps`` afterwards."""

    start_rps: float
    end_rps: float
    ramp_s: float

    def __post_init__(self) -> None:
        if self.start_rps < 0 or self.end_rps < 0:
            raise ValueError("rates must be non-negative")
        if self.ramp_s <= 0:
            raise ValueError("ramp duration must be positive")

    def rate_at(self, t: float) -> float:
        """The linearly interpolated ramp rate at ``t``."""
        if t <= 0:
            return self.start_rps
        if t >= self.ramp_s:
            return self.end_rps
        return self.start_rps + (self.end_rps - self.start_rps) * t / self.ramp_s

    def peak_rate(self, start_s: float, end_s: float) -> float:
        """Windowed maximum (an endpoint — the ramp is monotone)."""
        return max(self.rate_at(start_s), self.rate_at(end_s))


@dataclass(frozen=True)
class ReplayTrace(RateTrace):
    """Piecewise-linear replay of external ``(t, rate)`` samples.

    Before the first sample the trace holds the first rate; after the last
    sample, the last rate.  Samples must be strictly increasing in time.
    """

    points: Tuple[Tuple[float, float], ...]
    #: Sample instants, precomputed once — ``rate_at`` runs per thinning
    #: candidate, so rebuilding this list per call would make replayed
    #: streams O(candidates x samples).
    _times: Tuple[float, ...] = field(default=(), repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("replay trace needs at least one (t, rate) sample")
        times = tuple(t for t, _ in self.points)
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("sample times must be strictly increasing")
        if any(r < 0 for _, r in self.points):
            raise ValueError("sampled rates must be non-negative")
        object.__setattr__(self, "_times", times)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ReplayTrace":
        """Parse a trace file: one ``t rate`` pair per line (whitespace or
        comma separated); blank lines and ``#`` comments are skipped."""
        points: List[Tuple[float, float]] = []
        for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 't rate', got {raw!r}"
                )
            points.append((float(parts[0]), float(parts[1])))
        return cls(points=tuple(points))

    def rate_at(self, t: float) -> float:
        """Piecewise-linear interpolation of the samples at ``t``."""
        i = bisect.bisect_right(self._times, t)
        if i == 0:
            return self.points[0][1]
        if i == len(self.points):
            return self.points[-1][1]
        (t0, r0), (t1, r1) = self.points[i - 1], self.points[i]
        return r0 + (r1 - r0) * (t - t0) / (t1 - t0)

    def peak_rate(self, start_s: float, end_s: float) -> float:
        """Windowed maximum over interior samples and the window edges."""
        inside = [
            r for t, r in self.points if start_s <= t <= end_s
        ]
        edges = [self.rate_at(start_s), self.rate_at(end_s)]
        return max(inside + edges)


# ---------------------------------------------------------------------- #
# Non-homogeneous Poisson stream generation (thinning)
# ---------------------------------------------------------------------- #


def nhpp_requests(
    trace: RateTrace,
    model: str,
    duration_s: float,
    seed: int = 0,
    slo_s: Optional[float] = None,
    start_id: int = 0,
) -> List[Request]:
    """Seeded non-homogeneous Poisson arrivals following ``trace``.

    Lewis-Shedler thinning: draw a homogeneous Poisson stream at the
    trace's peak rate over ``[0, duration_s)`` and keep each arrival at
    ``t`` with probability ``rate_at(t) / peak`` — exact for any bounded
    intensity, and deterministic per seed.  A zero-rate trace yields an
    empty stream.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    envelope = trace.peak_rate(0.0, duration_s)
    if envelope < 0:
        raise ValueError("peak rate must be non-negative")
    if envelope == 0:
        return []
    return list(
        nhpp_stream(
            trace,
            model,
            duration_s=duration_s,
            seed=seed,
            slo_s=slo_s,
            start_id=start_id,
        )
    )


def nhpp_stream(
    trace: RateTrace,
    model: str,
    duration_s: float,
    seed: int = 0,
    slo_s: Optional[float] = None,
    start_id: int = 0,
) -> Iterator[Request]:
    """Lazy generator form of :func:`nhpp_requests` — identical output.

    Yields the exact same seeded request sequence as
    :func:`nhpp_requests` (which is now a thin ``list()`` wrapper around
    this) without materializing it: a day-long 10M-request trace costs
    one request of memory at a time.  Feed it to
    :meth:`repro.sim.kernel.DiscreteEventKernel.preload_stream` or an
    elastic run's ``presorted=True`` path.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    envelope = trace.peak_rate(0.0, duration_s)
    if envelope < 0:
        raise ValueError("peak rate must be non-negative")
    if envelope == 0:
        return
    rng = random.Random(seed)
    t = 0.0
    i = start_id
    while True:
        t += rng.expovariate(envelope)
        if t >= duration_s:
            return
        if rng.random() * envelope <= trace.rate_at(t):
            yield Request(req_id=i, model=model, arrival_s=t, slo_s=slo_s)
            i += 1


def mix_requests(
    trace: RateTrace,
    mix: Mapping[str, float],
    duration_s: float,
    seed: int = 0,
    slos: Optional[Mapping[str, Optional[float]]] = None,
    id_stride: int = 1_000_000,
) -> List[Request]:
    """One merged stream of a traffic mix riding a shared rate trace.

    ``mix`` maps model name to traffic share (normalized internally); each
    model gets an independent thinned stream of the trace scaled by its
    share (seeded ``seed + i`` in sorted-model order, ids offset by
    ``id_stride`` — the :class:`~repro.cluster.planner.CapacityPlanner`
    stream convention), then everything merges arrival-ordered.
    """
    if not mix:
        raise ValueError("traffic mix must name at least one model")
    total = float(sum(mix.values()))
    if total <= 0 or any(w < 0 for w in mix.values()):
        raise ValueError("traffic shares must be non-negative, sum > 0")
    slos = slos or {}
    streams: List[Sequence[Request]] = []
    for i, (model, share) in enumerate(sorted(mix.items())):
        if share <= 0:
            continue
        streams.append(
            nhpp_requests(
                trace.scaled(share / total),
                model,
                duration_s=duration_s,
                seed=seed + i,
                slo_s=slos.get(model),
                start_id=i * id_stride,
            )
        )
    return merge_streams(*streams)


def mix_request_stream(
    trace: RateTrace,
    mix: Mapping[str, float],
    duration_s: float,
    seed: int = 0,
    slos: Optional[Mapping[str, Optional[float]]] = None,
    id_stride: int = 1_000_000,
) -> Iterator[Request]:
    """Lazy generator form of :func:`mix_requests` — identical output.

    Same per-model seeding and id convention as :func:`mix_requests`,
    but the per-model streams are :func:`nhpp_stream` generators merged
    incrementally by ``(arrival_s, req_id)`` with :func:`heapq.merge`,
    so only one pending request per model is held in memory.  The
    arrival order matches ``mix_requests`` exactly: per-model arrival
    times are strictly increasing and ids are disjoint across models,
    making the sort key unique.
    """
    if not mix:
        raise ValueError("traffic mix must name at least one model")
    total = float(sum(mix.values()))
    if total <= 0 or any(w < 0 for w in mix.values()):
        raise ValueError("traffic shares must be non-negative, sum > 0")
    slos = slos or {}
    streams: List[Iterator[Request]] = []
    for i, (model, share) in enumerate(sorted(mix.items())):
        if share <= 0:
            continue
        streams.append(
            nhpp_stream(
                trace.scaled(share / total),
                model,
                duration_s=duration_s,
                seed=seed + i,
                slo_s=slos.get(model),
                start_id=i * id_stride,
            )
        )
    return heapq.merge(*streams, key=lambda r: (r.arrival_s, r.req_id))
