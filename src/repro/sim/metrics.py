"""Shared measurement helpers for every simulation report.

One percentile definition, one windowing rule, one busy-time integration
— so the single-node :class:`~repro.serving.engine.ServingReport`, the
fleet's ``ClusterReport``, and the autoscaler's windowed timelines all
report comparable numbers.  These helpers used to live in
``repro.serving.engine`` (which still re-exports them for callers) and
were re-imported by every fleet layer; they belong to the simulation
substrate, below all of them.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["nearest_rank", "window_latencies", "BusyWindow"]


def nearest_rank(sorted_vals: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (NaN when empty).

    Args:
        sorted_vals: Values in ascending order.
        q: Percentile in (0, 100].

    Returns:
        The nearest-rank percentile, or NaN for an empty sequence.

    Raises:
        ValueError: If ``q`` is outside (0, 100].
    """
    if not 0 < q <= 100:
        raise ValueError("percentile must be in (0, 100]")
    if not sorted_vals:
        return math.nan
    rank = max(1, math.ceil(q / 100.0 * len(sorted_vals)))
    return sorted_vals[rank - 1]


def window_latencies(
    completed: Iterable, start_s: float, end_s: float
) -> List[float]:
    """Sorted latencies of completions that *finished* in ``[start_s, end_s)``.

    Anchoring the window on finish time (not arrival) is what a live
    autoscaler can actually observe at ``end_s``: a request still in
    flight has no latency yet.  An empty or inverted window yields ``[]``
    (its percentile is NaN), matching "no signal this interval".

    Args:
        completed: Objects with ``latency_s`` and ``finish_s`` attributes
            (any layer's completed-request records).
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).

    Returns:
        Ascending latencies of the window's completions.
    """
    return sorted(
        c.latency_s for c in completed if start_s <= c.finish_s < end_s
    )


class BusyWindow:
    """Exact busy-seconds of one server across successive windows.

    A node credits a batch's full service time to ``busy_s`` at dispatch;
    a windowed observer must un-credit the part of the running batch that
    falls *past* the window edge and re-credit it once that window
    arrives.  Both elastic fleets carried this overhang bookkeeping as
    paired counters per node; this object is that accounting, stated
    once.
    """

    __slots__ = ("_total_prev", "_overhang_prev")

    def __init__(self) -> None:
        self._total_prev = 0.0
        self._overhang_prev = 0.0

    def observe(
        self, busy_total_s: float, busy_until_s: float, in_flight: bool, end_s: float
    ) -> float:
        """Busy seconds inside the window ending at ``end_s``.

        Args:
            busy_total_s: The server's cumulative credited busy seconds.
            busy_until_s: When its running batch finishes (if any).
            in_flight: Whether a batch is running at ``end_s``.
            end_s: The window's end instant.

        Returns:
            Busy seconds that actually fell inside this window: the
            credit gained since the previous call, minus the running
            batch's overhang past ``end_s``, plus the previously
            subtracted overhang that landed in this window.
        """
        overhang = max(0.0, busy_until_s - end_s) if in_flight else 0.0
        out = busy_total_s - self._total_prev - overhang + self._overhang_prev
        self._total_prev = busy_total_s
        self._overhang_prev = overhang
        return out
