"""Closed-form M/G/k capacity estimates from the calibrated latency model.

The DES answers "does this fleet hold the SLO?" by replaying a seeded
arrival stream event for event.  This module answers the same question
in microseconds with a fluid queueing approximation, so capacity
planning probes cost arithmetic instead of simulation:

* Each node is one M/G/k *server* whose per-request occupancy is
  ``L(b*) / b*`` — the calibrated batch latency at the equilibrium
  batch size ``b*``, amortized over the batch.  ``b*`` is the fixed
  point of "arrivals during one service round fill the next batch"
  (clamped to ``[1, max_batch]``), the same feedback the DES plays out
  request by request.
* Waiting time uses the Allen–Cunneen/Lee–Longton M/G/k approximation:
  ``Wq = C(k, a) * (1 + CS^2)/2 * ES / (k (1 - rho))`` with ``C`` the
  Erlang-C delay probability.  At ``k = 1`` this *is* the
  Pollaczek–Khinchine M/G/1 mean wait, exactly.
* The waiting tail is treated as conditionally exponential —
  ``P(W > t) ~ C * exp(-k (1 - rho) t / ES)`` — giving
  ``p99_wait = ES / (k (1 - rho)) * ln(C / 0.01)`` when ``C > 0.01``
  and zero otherwise; the reported ``p99_s`` adds the 99th-percentile
  *sojourn* service time (a request rides its whole batch, so that
  component is ``L_m(b*_m)``, not the amortized occupancy).
* Nonstationary traces are handled piecewise: carve the horizon into
  windows, treat each window's mean rate as stationary, and take the
  worst window as the planning answer — conservative by construction.

Error bound (measured by ``tests/test_fast_differential.py`` against
the DES on seeded constant-rate scenarios): the mean-wait and p99
estimates track the simulation within roughly a factor of two at
utilizations below ~0.85, and the :class:`~repro.cluster.planner.
CapacityPlanner` in ``mode="analytic"`` applies a safety factor on top
so its fleet sizes are never *smaller* than the DES answer on the
anchor scenarios — instant, but one notch conservative.  Near
saturation (``rho -> 1``) the formulas blow up; estimates clamp the
utilization at ``rho_clamp`` and flag themselves (with a warning), and
the planner treats clamped estimates as infeasible.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "AnalyticCapacityModel",
    "MGkEstimate",
    "erlang_c",
    "mgk_wait",
]


def erlang_c(k: int, a: float) -> float:
    """Erlang-C delay probability for ``k`` servers at offered load ``a``
    (in Erlangs, ``a = lambda * ES``).

    Computed through the numerically stable Erlang-B recurrence
    ``B(0) = 1``, ``B(i) = a B(i-1) / (i + a B(i-1))`` and the standard
    conversion ``C = k B / (k - a (1 - B))``.

    Args:
        k: Server count (>= 1).
        a: Offered load in Erlangs.

    Returns:
        ``P(wait > 0)`` in ``[0, 1]``; 0.0 at zero load, 1.0 when
        ``a >= k`` (the queue is certain in saturation).
    """
    if k < 1:
        raise ValueError("erlang_c needs at least one server")
    if a <= 0.0:
        return 0.0
    if a >= k:
        return 1.0
    b = 1.0
    for i in range(1, k + 1):
        b = a * b / (i + a * b)
    return k * b / (k - a * (1.0 - b))


def mgk_wait(lam: float, k: int, es: float, es2: float) -> float:
    """Mean M/G/k queueing delay (seconds) via Allen–Cunneen.

    ``Wq = C(k, a) * (1 + CS^2)/2 * ES / (k (1 - rho))`` — exactly the
    Pollaczek–Khinchine M/G/1 formula ``lam * ES2 / (2 (1 - rho))`` at
    ``k = 1``, since there ``C(1, a) = rho`` and
    ``ES2 = ES^2 (1 + CS^2)``.

    Args:
        lam: Arrival rate, requests per second.
        k: Server count.
        es: Mean per-request service (occupancy) seconds.
        es2: Second moment of the same distribution.

    Returns:
        Mean wait in seconds; ``inf`` at or beyond saturation.
    """
    if lam <= 0.0 or es <= 0.0:
        return 0.0
    a = lam * es
    rho = a / k
    if rho >= 1.0:
        return math.inf
    cs2 = max(0.0, es2 / (es * es) - 1.0)
    return erlang_c(k, a) * (1.0 + cs2) / 2.0 * es / (k * (1.0 - rho))


@dataclass(frozen=True)
class MGkEstimate:
    """One closed-form capacity probe: an M/G/k fleet at one rate."""

    lam_rps: float
    k: int
    #: Mean per-request occupancy seconds (``L(b*)/b*`` mix-weighted).
    es_s: float
    #: Second moment of the occupancy distribution.
    es2_s: float
    #: Utilization ``lam * ES / k`` — *before* any clamp.
    rho: float
    #: Erlang-C delay probability at the (possibly clamped) load.
    erlang_c: float
    mean_wait_s: float
    p99_wait_s: float
    #: 99th-percentile sojourn service seconds (full batch latency).
    service_p99_s: float
    #: ``p99_wait_s + service_p99_s`` — the planner's SLO comparator.
    p99_s: float
    #: Model name -> equilibrium batch size the moments were taken at.
    batches: Tuple[Tuple[str, int], ...]
    #: True when ``rho`` hit the clamp: the formulas were evaluated at
    #: the clamp and the estimate is a floor, not a prediction.
    clamped: bool = False

    @property
    def mean_latency_s(self) -> float:
        """Mean sojourn estimate: wait plus mean occupancy service."""
        return self.mean_wait_s + self.es_s


class AnalyticCapacityModel:
    """M/G/k fluid estimates for a homogeneous fleet serving a mix.

    Per-backend service moments come straight from the engine's
    calibrated :meth:`~repro.serving.OnlineServingEngine.batch_latency`
    — the same numbers the DES consumes — so the two answers differ
    only by queueing approximation, never by hardware model.

    Args:
        engine: The calibrated latency model.
        mix: Model name -> traffic share (normalized internally).
        policy: Dispatch policy the latencies are evaluated under.
        spec: Node hardware; the engine's default when omitted.
        max_batch: Batch cap; the engine's when omitted.
        rho_clamp: Utilization ceiling for the blowup clamp.
    """

    def __init__(
        self,
        engine,
        mix: Mapping[str, float],
        policy: str,
        spec=None,
        max_batch: Optional[int] = None,
        rho_clamp: float = 0.999,
    ) -> None:
        if not mix:
            raise ValueError("traffic mix must name at least one model")
        total = float(sum(mix.values()))
        if total <= 0 or any(w < 0 for w in mix.values()):
            raise ValueError("traffic shares must be non-negative, sum > 0")
        if not 0.0 < rho_clamp < 1.0:
            raise ValueError("rho_clamp must lie in (0, 1)")
        self.engine = engine
        self.mix: Dict[str, float] = {
            m: w / total for m, w in sorted(mix.items()) if w > 0
        }
        self.policy = policy
        self.spec = spec
        self.max_batch = max_batch if max_batch is not None else engine.max_batch
        self.rho_clamp = rho_clamp

    def _latency(self, model: str, batch: int) -> float:
        return self.engine.batch_latency(
            model, self.policy, batch, spec=self.spec
        )

    def equilibrium_batch(self, model: str, lam_node_rps: float) -> int:
        """Fixed point of "arrivals during one service fill the next
        batch": ``b = clamp(ceil(lam * L(b)), 1, max_batch)``.

        Iterates from ``b = 1``; the map is monotone in ``b`` (longer
        batches take longer, gathering more arrivals) so it either
        converges or saturates at ``max_batch`` within ``max_batch``
        steps.  Zero or negative rates pin ``b* = 1``.
        """
        if lam_node_rps <= 0.0:
            return 1
        b = 1
        for _ in range(self.max_batch + 1):
            nxt = min(
                self.max_batch,
                max(1, math.ceil(lam_node_rps * self._latency(model, b))),
            )
            if nxt == b:
                return b
            b = nxt
        return b

    def service_moments(
        self, k: int, lam_rps: float
    ) -> Tuple[float, float, float, Tuple[Tuple[str, int], ...]]:
        """Mix-weighted occupancy moments and the sojourn p99.

        Args:
            k: Node count the load is split across.
            lam_rps: Total offered rate.

        Returns:
            ``(ES, ES2, service_p99, batches)`` where ES/ES2 are the
            per-request *occupancy* moments (``L(b*)/b*``), service_p99
            is the 99th percentile of the *sojourn* service time
            (``L(b*)`` — a request rides its whole batch), and batches
            records each model's equilibrium batch size.
        """
        if k < 1:
            raise ValueError("need at least one node")
        es = 0.0
        es2 = 0.0
        batches: List[Tuple[str, int]] = []
        sojourns: List[Tuple[float, float]] = []  # (L(b*), share)
        for model, share in self.mix.items():
            lam_node = share * lam_rps / k
            b = self.equilibrium_batch(model, lam_node)
            lat = self._latency(model, b)
            occ = lat / b
            es += share * occ
            es2 += share * occ * occ
            batches.append((model, b))
            sojourns.append((lat, share))
        sojourns.sort()
        acc = 0.0
        s99 = sojourns[-1][0]
        for lat, share in sojourns:
            acc += share
            if acc >= 0.99:
                s99 = lat
                break
        return es, es2, s99, tuple(batches)

    def estimate(self, k: int, lam_rps: float) -> MGkEstimate:
        """The closed-form probe: ``k`` nodes at ``lam_rps`` offered.

        Zero-rate loads short-circuit to an all-zero estimate; loads at
        or beyond ``rho_clamp`` are evaluated *at* the clamp, flagged
        ``clamped=True``, and announced with a ``RuntimeWarning`` — the
        numbers are then a floor on the real delay, not a prediction.
        """
        if k < 1:
            raise ValueError("need at least one node")
        if lam_rps <= 0.0:
            return MGkEstimate(
                lam_rps=max(lam_rps, 0.0),
                k=k,
                es_s=0.0,
                es2_s=0.0,
                rho=0.0,
                erlang_c=0.0,
                mean_wait_s=0.0,
                p99_wait_s=0.0,
                service_p99_s=0.0,
                p99_s=0.0,
                batches=(),
            )
        es, es2, s99, batches = self.service_moments(k, lam_rps)
        rho = lam_rps * es / k
        clamped = rho >= self.rho_clamp
        if clamped:
            warnings.warn(
                f"analytic estimate saturated: rho={rho:.3f} >= "
                f"clamp {self.rho_clamp}; reporting delays at the clamp "
                "(a floor, not a prediction)",
                RuntimeWarning,
                stacklevel=2,
            )
            rho_eff = self.rho_clamp
            lam_eff = rho_eff * k / es
        else:
            rho_eff = rho
            lam_eff = lam_rps
        c = erlang_c(k, lam_eff * es)
        wq = mgk_wait(lam_eff, k, es, es2)
        if c > 0.01:
            p99_wait = es / (k * (1.0 - rho_eff)) * math.log(c / 0.01)
        else:
            p99_wait = 0.0
        return MGkEstimate(
            lam_rps=lam_rps,
            k=k,
            es_s=es,
            es2_s=es2,
            rho=rho,
            erlang_c=c,
            mean_wait_s=wq,
            p99_wait_s=p99_wait,
            service_p99_s=s99,
            p99_s=p99_wait + s99,
            batches=batches,
            clamped=clamped,
        )

    def piecewise(
        self,
        trace,
        duration_s: float,
        k: int,
        window_s: Optional[float] = None,
    ) -> List[Tuple[float, float, MGkEstimate]]:
        """Piecewise-stationary estimates over a ``RateTrace``.

        The horizon ``[0, duration_s]`` is carved into windows; each
        window's mean rate (via ``trace.mean_rate``) is treated as a
        stationary M/G/k load.  Zero-rate windows contribute all-zero
        estimates (no load, no wait).

        Args:
            trace: A :class:`repro.autoscale.traces.RateTrace`.
            duration_s: Horizon length, seconds.
            k: Node count.
            window_s: Window length; defaults to ``duration_s / 16``.

        Returns:
            ``[(t0, t1, estimate), ...]`` covering the horizon.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if window_s is None:
            window_s = duration_s / 16.0
        if window_s <= 0:
            raise ValueError("window must be positive")
        out: List[Tuple[float, float, MGkEstimate]] = []
        t = 0.0
        while t < duration_s:
            t1 = min(t + window_s, duration_s)
            lam = trace.mean_rate(t, t1)
            out.append((t, t1, self.estimate(k, lam)))
            t = t1
        return out

    def worst_window(
        self,
        trace,
        duration_s: float,
        k: int,
        window_s: Optional[float] = None,
    ) -> MGkEstimate:
        """The planning answer for a nonstationary trace: the estimate
        of the worst (highest ``p99_s``, clamped windows first) window —
        conservative by construction."""
        windows = self.piecewise(trace, duration_s, k, window_s)
        return max(windows, key=lambda w: (w[2].clamped, w[2].p99_s))[2]
