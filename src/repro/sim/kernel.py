"""The deterministic discrete-event kernel every serving loop runs on.

One clock, one event queue, one total order.  Before this kernel the repo
carried four hand-rolled event loops (single-node engine, static fleet,
elastic fleet, heterogeneous elastic fleet), each re-implementing the
heap, the clock, and the tie-break contract their request-for-request
equivalence tests depend on.  The kernel owns all three, so a new
scenario (e.g. failure injection) is a new event kind plus handlers — not
a fifth loop.

**The total order.**  Events are dequeued by ``(time, kind, entity,
seq)``:

========  ========  ====================================================
priority  kind      why it sorts here
========  ========  ====================================================
0         RECOVER   repaired capacity rejoins before anything else this
                    instant, so arrivals at the recovery instant can
                    route to it
1         ARRIVAL   arrivals drain before any other processing at the
                    same instant, so simultaneous requests share batches
                    and routing sees them in stream order
2         READY     provisioned nodes join the routing set before the
                    controller looks
3         CONTROL   the controller observes after arrivals and joins
4         FAIL      outages strike after the controller observed (it
                    reacts next tick) and before finishes, so a batch
                    completing exactly at the failure instant is lost —
                    the pessimistic reading
5         PREFILL   a prompt pass completing at an instant merges its
                    sequences (and emits their first tokens) before the
                    decode boundary at the same instant, so fresh joiners
                    are part of that boundary's batch; like FINISH it
                    sorts after FAIL — a prefill landing exactly at a
                    failure instant is lost with the node
6         DECODE    token boundaries fire after any same-instant prefill
          _STEP     merge and before FINISH bookkeeping, so the
                    completions recorded at an instant already reflect
                    every token emitted at it
7         FINISH    completions are recorded last at any instant
========  ========  ====================================================

Ties inside one ``(time, kind)`` break by ``entity`` (node id, stream
index, tick number), then by the kernel-assigned insertion sequence, so
the order is total and insertion-order independent —
``tests/test_sim.py`` permutes insertion orders to prove it.

**Epoch delivery.**  ``run`` delivers every event sharing one ``(time,
kind)`` as a single batch to that kind's handler.  That is exactly the
"drain every arrival at this instant before any dispatch" contract the
pre-kernel loops implemented by hand, and for single-entity kinds it
degenerates to one event per call.

**Bulk streams stay O(1).**  Request arrivals are known upfront and
sorted; pushing 100k of them through the heap would pay an avoidable
log-factor.  ``preload`` accepts the sorted stream and the kernel merges
it with the heap of dynamically scheduled events, preserving the one
total order at deque-head cost.
"""

from __future__ import annotations

import heapq
from collections import deque
from enum import IntEnum
from typing import Any, Callable, Deque, Iterable, List, Mapping, NamedTuple

__all__ = ["EventKind", "Event", "SimClock", "DiscreteEventKernel"]


class EventKind(IntEnum):
    """Event classes in kernel priority order (lower = earlier at a tie).

    The numeric values ARE the tie-break contract at equal timestamps —
    see the module docstring's table.  New event kinds must pick a slot
    in this order deliberately; appending without thought silently
    changes simultaneous-event semantics.
    """

    RECOVER = 0
    ARRIVAL = 1
    READY = 2
    CONTROL = 3
    FAIL = 4
    PREFILL = 5
    DECODE_STEP = 6
    FINISH = 7


class Event(NamedTuple):
    """One scheduled occurrence; compares as its total-order key.

    As a ``NamedTuple`` an event *is* its heap entry: tuple comparison
    over ``(time, kind, entity, seq)`` implements the documented total
    order, and ``seq`` (kernel-assigned, globally unique) guarantees the
    comparison never reaches the possibly-uncomparable ``payload``.
    """

    #: Simulated instant the event fires, seconds.
    time: float
    #: Event class (an :class:`EventKind`; plain ints compare equal).
    kind: int
    #: Tie-break id inside one (time, kind): node id, stream index, ...
    entity: int = 0
    #: Kernel-assigned insertion sequence; callers leave the default.
    seq: int = 0
    #: Opaque handler data (request, epoch counter, ...).
    payload: Any = None


class SimClock:
    """Monotonic simulated time.

    The kernel owns one and advances it as events dequeue; handlers may
    read ``now`` but never set it — time only moves by processing events.
    """

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, t: float) -> None:
        """Move time forward to ``t``.

        Args:
            t: The next event's timestamp.

        Raises:
            RuntimeError: If ``t`` is in the past — a scheduling bug.
        """
        if t < self.now:
            raise RuntimeError(
                f"simulated time went backwards: {self.now} -> {t}"
            )
        self.now = t


#: A handler receives ``(now, events)`` — every event of one kind firing
#: at one instant, in entity order.
Handler = Callable[[float, List[Event]], None]


class DiscreteEventKernel:
    """One simulation run: a heap plus a pre-sorted bulk stream.

    Usage::

        kernel = DiscreteEventKernel()
        kernel.preload(Event(r.arrival_s, EventKind.ARRIVAL, i, payload=r)
                       for i, r in enumerate(stream))
        kernel.schedule(0.5, EventKind.CONTROL)
        kernel.run({EventKind.ARRIVAL: on_arrivals, ...})

    Handlers may call :meth:`schedule` while the run is in flight (that
    is how dispatches create their finish events); scheduling into the
    past raises.  An event scheduled for the *current* instant with an
    already-passed kind priority still fires at this instant, in a later
    batch — time never moves backwards, but intra-instant priority only
    orders events that existed when the instant began.
    """

    __slots__ = (
        "clock",
        "processed",
        "_heap",
        "_stream",
        "_seq",
        "_lazy",
        "_lazy_prev",
    )

    def __init__(self) -> None:
        self.clock = SimClock()
        #: Events delivered to handlers so far (the events/sec numerator).
        self.processed = 0
        self._heap: List[Event] = []
        self._stream: Deque[Event] = deque()
        self._seq = 0
        self._lazy = None
        self._lazy_prev = None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def _stamp(self, ev: Event) -> Event:
        self._seq += 1
        return ev._replace(seq=self._seq)

    def preload(self, events: Iterable[Event]) -> None:
        """Append a time-ordered bulk stream (e.g. request arrivals).

        The stream bypasses the heap — the kernel merges it with
        dynamically scheduled events at dequeue time — so preloading n
        events costs O(n), not O(n log n).  Preloaded events keep their
        ``seq`` of 0: they are never ``<``-compared against each other
        (the stream is FIFO), and against heap events (``seq >= 1``) the
        comparison resolves at ``seq`` at the latest, so the possibly
        uncomparable payload is never reached.

        Args:
            events: Events already sorted by ``(time, kind, entity)``,
                also non-decreasing relative to any earlier preload.

        Raises:
            ValueError: If the events are out of order.
        """
        stream = self._stream
        prev = stream[-1][:3] if stream else None
        for ev in events:
            key = ev[:3]
            if prev is not None and key < prev:
                raise ValueError(
                    f"preloaded events out of order: {key} after {prev}"
                )
            prev = key
            stream.append(ev)

    def preload_stream(self, events: Iterable[Event]) -> None:
        """Attach a *lazy* time-ordered bulk stream.

        Like :meth:`preload`, but the iterable is consumed one event at a
        time as the run advances instead of being materialized into the
        stream deque upfront — the move that keeps a 10M-request run's
        memory flat: arrivals exist only between being generated and
        being served.  Ordering is validated at pull time (the run raises
        mid-flight on a misordered source, same :class:`ValueError`
        contract as :meth:`preload`).

        Events pulled from the lazy stream sort after any still-queued
        eager ``preload`` events; interleaving both is supported but the
        combined sequence must still be globally non-decreasing.

        Args:
            events: An iterator/generator of events sorted by
                ``(time, kind, entity)``.

        Raises:
            RuntimeError: If a lazy stream is already attached.
        """
        if self._lazy is not None:
            raise RuntimeError("a lazy event stream is already attached")
        self._lazy = iter(events)
        self._lazy_prev = self._stream[-1][:3] if self._stream else None

    def _refill(self) -> None:
        """Pull the next lazy event into the (empty) stream deque."""
        try:
            ev = next(self._lazy)
        except StopIteration:
            self._lazy = None
            return
        key = ev[:3]
        if self._lazy_prev is not None and key < self._lazy_prev:
            raise ValueError(
                f"lazy stream events out of order: {key} after {self._lazy_prev}"
            )
        self._lazy_prev = key
        self._stream.append(ev)

    def schedule(
        self, time: float, kind: int, entity: int = 0, payload: Any = None
    ) -> Event:
        """Insert one event into the run.

        Args:
            time: Firing instant (>= the current clock).
            kind: An :class:`EventKind`.
            entity: Tie-break id within the (time, kind) batch.
            payload: Opaque data handed to the handler.

        Returns:
            The stamped event (useful in tests).

        Raises:
            ValueError: If ``time`` is before the current clock.
        """
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < {self.clock.now}"
            )
        ev = self._stamp(Event(time, int(kind), entity, payload=payload))
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------ #
    # Macro-step seams (the fast paths' view into the queue)
    # ------------------------------------------------------------------ #

    def peek_time(self) -> Any:
        """Timestamp of the next pending event, or ``None`` when drained.

        The segment re-peek seam: a fast path advancing state in closed
        form between events asks how far it may run before the event
        world can change under it, plans a segment bounded by that
        instant, and re-peeks at the segment boundary.  Peeking refills
        one event from an attached lazy stream if the eager deque is
        empty, but consumes nothing.
        """
        if not self._stream and self._lazy is not None:
            self._refill()
        t = self._stream[0].time if self._stream else None
        if self._heap:
            ht = self._heap[0].time
            if t is None or ht < t:
                return ht
        return t

    def credit_events(self, n: int) -> None:
        """Count ``n`` events a fast path replayed arithmetically.

        A macro-stepped segment collapses ``k`` would-be events into one
        scheduled boundary; crediting the other ``k - 1`` keeps
        ``processed`` (and the ``events_processed`` benchmarks divide
        wall time by) identical to the event-at-a-time run.

        Raises:
            ValueError: On a negative credit.
        """
        if n < 0:
            raise ValueError("cannot credit a negative event count")
        self.processed += n

    # ------------------------------------------------------------------ #
    # The run loop
    # ------------------------------------------------------------------ #

    def run(self, handlers: Mapping[int, Handler], obs: Any = None) -> float:
        """Drain the queue, delivering per-instant batches to handlers.

        Args:
            handlers: :class:`EventKind` -> handler.  Kinds without a
                handler are dequeued and dropped (still counted in
                ``processed``).
            obs: Optional :class:`~repro.obs.RunObserver`.  When it
                carries a profiler the run executes an instrumented twin
                of the loop (per-kind counts, handler wall time, stream
                vs. heap delivery, events/s timeline); otherwise this
                original loop runs untouched — the disabled cost is this
                one branch per run, never per event.

        Returns:
            The final clock value (the last event's timestamp, or 0.0
            for an empty run).
        """
        profiler = getattr(obs, "profile", None) if obs is not None else None
        if profiler is not None:
            return self._run_profiled(handlers, profiler)
        heap, stream = self._heap, self._stream
        clock = self.clock
        heappop = heapq.heappop
        while True:
            if not stream and self._lazy is not None:
                self._refill()
            if not (heap or stream):
                break
            if stream and (not heap or stream[0] < heap[0]):
                first = stream.popleft()
            else:
                first = heappop(heap)
            t, kind = first.time, first.kind
            batch = [first]
            # Collect the rest of this (time, kind) batch.  The global
            # minimum lives at one of the two heads; if it no longer
            # matches, nothing later can.
            while True:
                if not stream and self._lazy is not None:
                    self._refill()
                if stream and (not heap or stream[0] < heap[0]):
                    nxt = stream[0]
                    if nxt.time == t and nxt.kind == kind:
                        batch.append(stream.popleft())
                        continue
                elif heap:
                    nxt = heap[0]
                    if nxt.time == t and nxt.kind == kind:
                        batch.append(heappop(heap))
                        continue
                break
            clock.advance(t)
            self.processed += len(batch)
            handler = handlers.get(kind)
            if handler is not None:
                handler(t, batch)
        return clock.now

    def _run_profiled(self, handlers: Mapping[int, Handler], prof: Any) -> float:
        """The instrumented twin of :meth:`run`.

        Same merge/batch/dispatch structure, plus ``perf_counter``
        timing around every handler call, per-kind event/batch counts,
        stream-vs-heap delivery counts, and periodic events/s timeline
        samples — all accumulated onto ``prof`` (a
        :class:`~repro.obs.profile.KernelProfiler`).  Kept as a separate
        loop so the un-profiled path carries zero per-event overhead.
        """
        from time import perf_counter

        heap, stream = self._heap, self._stream
        clock = self.clock
        heappop = heapq.heappop
        counts, batches, handler_s = prof.counts, prof.batches, prof.handler_s
        stream_n = heap_n = 0
        run_t0 = perf_counter()
        wall_base = prof.wall_s
        while True:
            if not stream and self._lazy is not None:
                self._refill()
            if not (heap or stream):
                break
            if stream and (not heap or stream[0] < heap[0]):
                first = stream.popleft()
                stream_n += 1
            else:
                first = heappop(heap)
                heap_n += 1
            t, kind = first.time, first.kind
            batch = [first]
            while True:
                if not stream and self._lazy is not None:
                    self._refill()
                if stream and (not heap or stream[0] < heap[0]):
                    nxt = stream[0]
                    if nxt.time == t and nxt.kind == kind:
                        batch.append(stream.popleft())
                        stream_n += 1
                        continue
                elif heap:
                    nxt = heap[0]
                    if nxt.time == t and nxt.kind == kind:
                        batch.append(heappop(heap))
                        heap_n += 1
                        continue
                break
            clock.advance(t)
            n = len(batch)
            self.processed += n
            prof.events += n
            counts[kind] = counts.get(kind, 0) + n
            batches[kind] = batches.get(kind, 0) + 1
            handler = handlers.get(kind)
            if handler is not None:
                h0 = perf_counter()
                handler(t, batch)
                handler_s[kind] = handler_s.get(kind, 0.0) + (perf_counter() - h0)
            if prof.events >= prof.next_sample:
                prof.sample(t, wall_base + (perf_counter() - run_t0), prof.events)
        prof.wall_s = wall_base + (perf_counter() - run_t0)
        prof.stream_events += stream_n
        prof.heap_events += heap_n
        prof.runs += 1
        return clock.now

    def finalize(self, report: Any) -> None:
        """Copy end-of-run kernel counters onto ``report``.

        The one shared home of the ``events_processed`` plumbing every
        run loop used to hand-copy: any report object with an
        ``events_processed`` attribute (all five serving reports) gets
        this kernel's ``processed`` count.

        Finalizing is only legal once the kernel is fully drained —
        the fast path drains the heap itself, and a bug that left
        events pending would silently under-count; idempotent, so run
        loops and their callers may both finalize.

        Args:
            report: The run's report object.

        Raises:
            RuntimeError: If events are still pending (non-empty heap,
                preloaded stream, or unexhausted lazy stream).
        """
        if self._heap or self._stream or self._lazy is not None:
            raise RuntimeError(
                "finalize() before the kernel drained: "
                f"{len(self._heap)} heap + {len(self._stream)} stream "
                "event(s) still pending"
            )
        report.events_processed = self.processed
