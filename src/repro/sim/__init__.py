"""The discrete-event simulation substrate under every serving layer.

Bottom of the serving stack: :mod:`repro.serving.engine` (one node),
:mod:`repro.cluster` (static fleets), :mod:`repro.autoscale` (elastic
and heterogeneous fleets) all run on this one kernel instead of four
hand-rolled event loops.

* :mod:`~repro.sim.kernel` — :class:`SimClock`, typed :class:`Event`\\ s
  on one queue with an explicit, tested total order (time, then event
  kind priority, then entity id), epoch-batched delivery, and an O(1)
  path for pre-sorted bulk streams;
* :mod:`~repro.sim.metrics` — the shared measurement vocabulary
  (:func:`nearest_rank` percentiles, :func:`window_latencies`,
  :class:`BusyWindow` exact busy-time integration);
* :mod:`~repro.sim.failures` — :class:`FailureTrace` outage schedules
  (scripted or seeded MTBF/MTTR) that inject ``FAIL``/``RECOVER``
  events no pre-kernel loop could express;
* :mod:`~repro.sim.stats` — the streaming statistics core
  (:class:`MetricsRecorder`, :class:`QuantileSketch`,
  :class:`WindowRing`) every report layer accumulates through, with
  exact ``record="full"`` and flat-memory ``record="streaming"`` modes;
* :mod:`~repro.sim.sweep` — the multiprocess sweep runner
  (:func:`run_sweep`) that fans independent seeded configurations
  across cores with results identical to serial execution.
"""

from repro.sim.failures import FailureTrace, Outage
from repro.sim.kernel import DiscreteEventKernel, Event, EventKind, SimClock
from repro.sim.metrics import BusyWindow, nearest_rank, window_latencies
from repro.sim.stats import (
    MetricsRecorder,
    P2Quantile,
    QuantileSketch,
    RecordingModeError,
    StreamStats,
    VersionedList,
    WindowRing,
)
from repro.sim.sweep import SweepResult, run_sweep

__all__ = [
    "SimClock",
    "Event",
    "EventKind",
    "DiscreteEventKernel",
    "nearest_rank",
    "window_latencies",
    "BusyWindow",
    "Outage",
    "FailureTrace",
    "RecordingModeError",
    "VersionedList",
    "P2Quantile",
    "QuantileSketch",
    "StreamStats",
    "WindowRing",
    "MetricsRecorder",
    "SweepResult",
    "run_sweep",
]
