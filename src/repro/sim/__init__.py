"""The discrete-event simulation substrate under every serving layer.

Bottom of the serving stack: :mod:`repro.serving.engine` (one node),
:mod:`repro.cluster` (static fleets), :mod:`repro.autoscale` (elastic
and heterogeneous fleets) all run on this one kernel instead of four
hand-rolled event loops.

* :mod:`~repro.sim.kernel` — :class:`SimClock`, typed :class:`Event`\\ s
  on one queue with an explicit, tested total order (time, then event
  kind priority, then entity id), epoch-batched delivery, and an O(1)
  path for pre-sorted bulk streams;
* :mod:`~repro.sim.metrics` — the shared measurement vocabulary
  (:func:`nearest_rank` percentiles, :func:`window_latencies`,
  :class:`BusyWindow` exact busy-time integration);
* :mod:`~repro.sim.failures` — :class:`FailureTrace` outage schedules
  (scripted or seeded MTBF/MTTR) that inject ``FAIL``/``RECOVER``
  events no pre-kernel loop could express.
"""

from repro.sim.failures import FailureTrace, Outage
from repro.sim.kernel import DiscreteEventKernel, Event, EventKind, SimClock
from repro.sim.metrics import BusyWindow, nearest_rank, window_latencies

__all__ = [
    "SimClock",
    "Event",
    "EventKind",
    "DiscreteEventKernel",
    "nearest_rank",
    "window_latencies",
    "BusyWindow",
    "Outage",
    "FailureTrace",
]
