"""The streaming statistics core under every report layer.

Before this module each report layer (the single-node
:class:`~repro.serving.engine.ServingReport`, the fleet's
``ClusterReport``, the autoscaler's ``AutoscaleReport``, and the mixed
fleet's ``HeteroAutoscaleReport``) accumulated a per-request
``CompletedRequest`` list and sorted it to answer percentile queries —
memory and sort cost grew linearly with traffic, a hard wall before
datacenter-scale runs.  This module is the one accumulation contract all
of them now share: a :class:`MetricsRecorder` fed by the sim kernel's
``FINISH`` path, in one of two modes.

* ``record="full"`` (the default, and the golden-trace contract): every
  per-request record is kept, percentiles are *exact* nearest-rank over
  the sorted latencies, and behavior is bit-for-bit what the
  pre-refactor reports produced.  The right mode for small runs,
  debugging, and regression fixtures.
* ``record="streaming"`` (the scale mode): no per-request list exists
  anywhere.  Latencies stream through a :class:`QuantileSketch` (exact
  nearest-rank up to a fixed reservoir, then P²-style markers), counts
  and means are incremental, and windowed percentiles come from a
  bounded ring of per-window sub-sketches (:class:`WindowRing`) so
  ``window_percentile`` stays O(1) per completion.  Peak memory is flat
  in the number of requests — the mode that makes a 24h-diurnal,
  10M-request run fit in a laptop's RAM.

Accessing a per-request list (``completed``, ``latencies_s``, ...) on a
streaming recorder raises :class:`RecordingModeError` with a pointer at
``record="full"`` — a loud contract, not a silent empty list.

The quantile machinery is deliberately simple and fully deterministic
(no sampling randomness): the P² estimator of Jain & Chlamtac (1985),
one marker set per tracked quantile, seeded from the exact reservoir at
the moment it spills — the same incremental-aggregation move the
analytic cycle-accounting simulators in SNIPPETS.md make instead of
materializing event streams.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence, Tuple

from repro.sim.metrics import nearest_rank, window_latencies

__all__ = [
    "DEFAULT_QUANTILES",
    "RecordingModeError",
    "VersionedList",
    "P2Quantile",
    "QuantileSketch",
    "StreamStats",
    "WindowRing",
    "MetricsRecorder",
]

#: Quantiles every sketch tracks with a dedicated P² marker set (as
#: fractions).  Queries off this grid interpolate between the nearest
#: tracked quantiles (and the observed min/max at the ends).
DEFAULT_QUANTILES: Tuple[float, ...] = (0.25, 0.5, 0.75, 0.9, 0.95, 0.99)

#: Exact-reservoir size before a sketch spills to P² markers.  Up to
#: this many observations every percentile answer is exact nearest-rank.
DEFAULT_EXACT_LIMIT = 512

#: Closed windows a :class:`WindowRing` retains (oldest evicted beyond
#: this) — bounds streaming-mode memory regardless of run length.
DEFAULT_RING_DEPTH = 4096


class RecordingModeError(RuntimeError):
    """Raised when per-request data is asked of a streaming recorder.

    Streaming mode keeps aggregates only; the per-request lists the
    pre-refactor reports exposed simply do not exist.  Re-run with
    ``record="full"`` to get them back.
    """


class VersionedList(list):
    """A list that counts its mutations — the cache-invalidation key.

    ``ServingReport.latencies_s`` used to memoize its sorted copy and
    rebuild only when ``len(completed)`` changed, so a *same-length*
    mutation (replacing an element) served stale percentiles.  Keying
    the memo on :attr:`version` instead invalidates on every mutation,
    whichever method performed it.
    """

    __slots__ = ("version",)

    def __init__(self, iterable=()) -> None:
        super().__init__(iterable)
        self.version = 0

    def _bump(self) -> None:
        self.version += 1

    def append(self, item) -> None:
        """Append ``item`` and invalidate any memoized view."""
        super().append(item)
        self._bump()

    def extend(self, iterable) -> None:
        """Extend and invalidate any memoized view."""
        super().extend(iterable)
        self._bump()

    def insert(self, index, item) -> None:
        """Insert and invalidate any memoized view."""
        super().insert(index, item)
        self._bump()

    def pop(self, index=-1):
        """Pop and invalidate any memoized view."""
        out = super().pop(index)
        self._bump()
        return out

    def remove(self, item) -> None:
        """Remove and invalidate any memoized view."""
        super().remove(item)
        self._bump()

    def clear(self) -> None:
        """Clear and invalidate any memoized view."""
        super().clear()
        self._bump()

    def sort(self, **kwargs) -> None:
        """Sort in place and invalidate any memoized view."""
        super().sort(**kwargs)
        self._bump()

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self._bump()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._bump()

    def __iadd__(self, other):
        out = super().__iadd__(other)
        self._bump()
        return out


class P2Quantile:
    """One P² marker set: a streaming estimate of a single quantile.

    The Jain & Chlamtac (1985) algorithm: five markers whose heights
    approximate the (0, p/2, p, (1+p)/2, 1) quantiles, nudged toward
    their desired positions with piecewise-parabolic interpolation on
    every observation.  O(1) memory and time per observation.

    Markers are seeded from an already-sorted sample (the exact
    reservoir a :class:`QuantileSketch` spills), which starts them far
    closer to their targets than the textbook first-five-observations
    initialization.
    """

    __slots__ = ("p", "n", "_d", "_q", "_pos")

    def __init__(self, p: float, sorted_seed: Sequence[float]) -> None:
        """Seed the marker set from a sorted sample.

        Args:
            p: Target quantile as a fraction in (0, 1).
            sorted_seed: Ascending observations (at least 5).

        Raises:
            ValueError: If ``p`` is out of range or the seed is short.
        """
        if not 0.0 < p < 1.0:
            raise ValueError("quantile fraction must be in (0, 1)")
        m = len(sorted_seed)
        if m < 5:
            raise ValueError("P2 needs a seed of at least 5 observations")
        self.p = p
        self.n = m
        self._d = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        idx: List[int] = []
        for i, d in enumerate(self._d):
            j = int(round(d * (m - 1)))
            if idx:
                j = max(j, idx[-1] + 1)  # strictly increasing positions
            idx.append(min(j, m - 5 + i))
        self._q = [float(sorted_seed[j]) for j in idx]
        self._pos = [j + 1 for j in idx]  # 1-based ranks among n seen

    def add(self, x: float) -> None:
        """Fold one observation into the marker set."""
        q, pos = self._q, self._pos
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and q[k + 1] <= x:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1
        self.n += 1
        n1 = self.n - 1
        for i in (1, 2, 3):
            desired = 1.0 + n1 * self._d[i]
            delta = desired - pos[i]
            if (delta >= 1.0 and pos[i + 1] - pos[i] > 1) or (
                delta <= -1.0 and pos[i - 1] - pos[i] < -1
            ):
                s = 1 if delta >= 1.0 else -1
                qn = self._parabolic(i, s)
                if not q[i - 1] < qn < q[i + 1]:
                    qn = self._linear(i, s)
                q[i] = qn
                pos[i] += s

    def add_run(self, x: float, n: int) -> None:
        """Fold ``n`` identical observations in one weighted update.

        The macro-step ingestion primitive: a batched decode boundary
        emits the *same* gap for every active sequence, so the markers
        take the whole run as one weighted observation — rank positions
        above the insertion point jump by ``n``, then a single standard
        adjustment sweep nudges the inner markers.  That makes the cost
        O(1) per *run* instead of O(1) per *sample* (the property that
        lets a macro-stepped path ingest 300k tokens in 40k updates);
        the price is that marker positions chase their desired ranks one
        step per run rather than per sample — the estimator stays
        monotone and bracketed, and converges over the run stream.  Both
        the reference and fast generative paths ingest the identical run
        sequence, so their sketches agree exactly.
        """
        if n == 1:
            self.add(x)
            return
        q, pos = self._q, self._pos
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and q[k + 1] <= x:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += n
        self.n += n
        n1 = self.n - 1
        for i in (1, 2, 3):
            desired = 1.0 + n1 * self._d[i]
            delta = desired - pos[i]
            if (delta >= 1.0 and pos[i + 1] - pos[i] > 1) or (
                delta <= -1.0 and pos[i - 1] - pos[i] < -1
            ):
                s = 1 if delta >= 1.0 else -1
                qn = self._parabolic(i, s)
                if not q[i - 1] < qn < q[i + 1]:
                    qn = self._linear(i, s)
                q[i] = qn
                pos[i] += s

    def _parabolic(self, i: int, s: int) -> float:
        q, pos = self._q, self._pos
        num1 = pos[i] - pos[i - 1] + s
        num2 = pos[i + 1] - pos[i] - s
        den = pos[i + 1] - pos[i - 1]
        term1 = num1 * (q[i + 1] - q[i]) / (pos[i + 1] - pos[i])
        term2 = num2 * (q[i] - q[i - 1]) / (pos[i] - pos[i - 1])
        return q[i] + s * (term1 + term2) / den

    def _linear(self, i: int, s: int) -> float:
        q, pos = self._q, self._pos
        return q[i] + s * (q[i + s] - q[i]) / (pos[i + s] - pos[i])

    @property
    def value(self) -> float:
        """The current estimate of the target quantile."""
        return self._q[2]


class QuantileSketch:
    """Exact nearest-rank up to a reservoir limit, P² markers beyond it.

    The two regimes give both worlds: small runs (and small windows) pay
    nothing for approximation — answers are the exact nearest-rank the
    pre-refactor lists produced — while long streams hold O(1) memory.
    At the spill instant the exact reservoir seeds one
    :class:`P2Quantile` per tracked quantile, so the markers start on
    target instead of on the first five observations.
    """

    __slots__ = (
        "quantiles",
        "exact_limit",
        "count",
        "min",
        "max",
        "_exact",
        "_markers",
        "_rr",
    )

    def __init__(
        self,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
    ) -> None:
        """Create an empty sketch.

        Args:
            quantiles: Tracked quantile fractions, each in (0, 1).
            exact_limit: Reservoir size before spilling to P² (>= 8).

        Raises:
            ValueError: On an out-of-range quantile or a tiny limit.
        """
        qs = tuple(sorted(set(float(q) for q in quantiles)))
        if not qs or any(not 0.0 < q < 1.0 for q in qs):
            raise ValueError("tracked quantiles must be fractions in (0, 1)")
        if exact_limit < 8:
            raise ValueError("exact_limit must be at least 8")
        self.quantiles = qs
        self.exact_limit = exact_limit
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._exact: Optional[List[float]] = []
        self._markers: Optional[List[P2Quantile]] = None
        #: Round-robin cursor for run-batched marker updates.
        self._rr = 0

    @property
    def is_exact(self) -> bool:
        """True while every answer is still exact nearest-rank."""
        return self._markers is None

    @property
    def exact_values(self) -> Optional[List[float]]:
        """The ascending reservoir while exact, else ``None``."""
        return self._exact

    def add(self, x: float) -> None:
        """Fold one observation into the sketch."""
        x = float(x)
        self.count += 1
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if self._markers is None:
            bisect.insort(self._exact, x)
            if len(self._exact) >= self.exact_limit:
                self._markers = [P2Quantile(q, self._exact) for q in self.quantiles]
                self._exact = None
            return
        for m in self._markers:
            m.add(x)

    def add_run(self, x: float, n: int) -> None:
        """Fold ``n`` identical observations in one O(1) bulk update.

        In the exact regime the run is spliced into the reservoir at its
        insertion point in one slice assignment (a run may overshoot
        ``exact_limit`` before spilling — deterministic, and identical
        for every caller feeding the same run sequence).  Past the spill
        the run feeds *one* tracked marker, round-robin: each marker
        then estimates its quantile from an interleaved subsample of the
        run stream, which keeps ingestion O(1) per run regardless of run
        width or marker count — the property that lets a macro-stepped
        decode path ingest hundreds of thousands of token gaps in tens
        of thousands of updates.  Min/max (the interpolation anchors)
        still see every run.
        """
        if n == 1:
            self.add(x)
            return
        if n <= 0:
            raise ValueError("run length must be positive")
        x = float(x)
        self.count += n
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if self._markers is None:
            exact = self._exact
            lo = bisect.bisect_right(exact, x)
            exact[lo:lo] = [x] * n
            if len(exact) >= self.exact_limit:
                self._markers = [P2Quantile(q, exact) for q in self.quantiles]
                self._exact = None
            return
        markers = self._markers
        i = self._rr
        markers[i].add_run(x, n)
        self._rr = i + 1 if i + 1 < len(markers) else 0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in (0, 100]).

        Exact nearest-rank while the reservoir holds; after the spill,
        tracked quantiles answer from their P² marker and off-grid
        queries interpolate linearly between the bracketing tracked
        quantiles (with the observed min/max anchoring the ends).

        Args:
            q: Percentile in (0, 100].

        Returns:
            The estimate, or NaN for an empty sketch.

        Raises:
            ValueError: If ``q`` is outside (0, 100].
        """
        if not 0 < q <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            return math.nan
        if self._markers is not None:
            return self._interp(q / 100.0)
        return nearest_rank(self._exact, q)

    def _interp(self, p: float) -> float:
        pts: List[Tuple[float, float]] = [(0.0, self.min)]
        pts.extend(
            (frac, marker.value)
            for frac, marker in zip(self.quantiles, self._markers)
        )
        pts.append((1.0, self.max))
        for (p0, v0), (p1, v1) in zip(pts, pts[1:]):
            if p <= p1:
                if p1 <= p0:
                    return v1
                w = (p - p0) / (p1 - p0)
                return v0 + w * (v1 - v0)
        return self.max


class StreamStats:
    """Incremental count/sum/mean/min/max plus a quantile sketch.

    The one-pass replacement for "keep a latency list and sort it":
    every moment it can answer the same questions a sorted list could,
    at O(1) memory once past the sketch's exact reservoir.
    """

    __slots__ = ("count", "total", "_sketch")

    def __init__(
        self,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
    ) -> None:
        """Create empty running statistics.

        Args:
            quantiles: Tracked quantile fractions for the sketch.
            exact_limit: The sketch's exact-reservoir size.
        """
        self.count = 0
        self.total = 0.0
        self._sketch = QuantileSketch(quantiles, exact_limit)

    def add(self, x: float) -> None:
        """Fold one observation in."""
        self.count += 1
        self.total += x
        self._sketch.add(x)

    def add_run(self, x: float, n: int) -> None:
        """Fold ``n`` identical observations in one batched update.

        One multiply for the sum, one bulk sketch insert — the per-run
        cost the macro-stepped decode path pays per boundary instead of
        per token.  ``n == 1`` delegates to :meth:`add`, so mixed-run
        callers keep single-sample semantics unchanged.
        """
        if n == 1:
            self.add(x)
            return
        self.count += n
        self.total += x * n
        self._sketch.add_run(x, n)

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    @property
    def min(self) -> float:
        """Smallest observation (inf when empty)."""
        return self._sketch.min

    @property
    def max(self) -> float:
        """Largest observation (-inf when empty)."""
        return self._sketch.max

    @property
    def is_exact(self) -> bool:
        """True while percentile answers are exact nearest-rank."""
        return self._sketch.is_exact

    @property
    def exact_values(self) -> Optional[List[float]]:
        """The sketch's ascending reservoir while exact, else ``None``."""
        return self._sketch.exact_values

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile estimate (``q`` in (0, 100])."""
        return self._sketch.quantile(q)


class _Window:
    """One closed (or still-open) window of a :class:`WindowRing`."""

    __slots__ = ("start_s", "end_s", "stats")

    def __init__(self, start_s: float, quantiles, exact_limit) -> None:
        self.start_s = start_s
        self.end_s = math.inf  # open until rolled
        self.stats = StreamStats(quantiles, exact_limit)


class WindowRing:
    """A bounded ring of windowed sub-sketches for O(1) window queries.

    Completions land in the open window; :meth:`roll` closes it (the
    elastic fleets roll at every control tick, so a window *is* a
    control interval) and a fixed ``window_s`` width auto-rolls for
    loops without a controller.  Only the newest ``depth`` closed
    windows are retained, so memory is bounded however long the run.

    Queries merge the sub-sketches of every window intersecting the
    asked range: exact when all of them still hold their reservoirs
    (the common case — a control window sees far fewer completions than
    the reservoir size), and a count-weighted interpolation of the
    per-window quantile curves once any window has spilled.  Windows
    are never split: a query is effectively snapped to the window
    boundaries it overlaps.
    """

    __slots__ = ("window_s", "depth", "quantiles", "exact_limit", "_closed", "_open")

    #: Per-quantile-curve sample grid used when merging spilled windows.
    _MERGE_GRID = tuple((i + 0.5) / 32.0 for i in range(32))

    def __init__(
        self,
        window_s: Optional[float] = None,
        depth: int = DEFAULT_RING_DEPTH,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_limit: int = 128,
    ) -> None:
        """Create an empty ring.

        Args:
            window_s: Auto-roll width; ``None`` rolls only explicitly.
            depth: Closed windows retained (oldest evicted beyond this).
            quantiles: Tracked quantile fractions per sub-sketch.
            exact_limit: Per-window exact-reservoir size.

        Raises:
            ValueError: On a non-positive width or depth.
        """
        if window_s is not None and window_s <= 0:
            raise ValueError("window_s must be positive when given")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.window_s = window_s
        self.depth = depth
        self.quantiles = tuple(quantiles)
        self.exact_limit = exact_limit
        self._closed: List[_Window] = []
        self._open = _Window(0.0, self.quantiles, self.exact_limit)

    def add(self, x: float, t: float) -> None:
        """Record observation ``x`` stamped at time ``t`` (non-decreasing)."""
        if self.window_s is not None:
            edge = self._open.start_s + self.window_s
            if t >= edge:
                # Snap the boundary to the width grid so sparse streams
                # don't accumulate one giant window.
                periods = math.floor((t - self._open.start_s) / self.window_s)
                self.roll(self._open.start_s + periods * self.window_s)
        self._open.stats.add(x)

    def roll(self, t: float) -> None:
        """Close the open window at ``t`` and start a new one there."""
        w = self._open
        if w.stats.count:
            w.end_s = t
            self._closed.append(w)
            if len(self._closed) > self.depth:
                del self._closed[0 : len(self._closed) - self.depth]
        self._open = _Window(t, self.quantiles, self.exact_limit)

    def _overlapping(self, start_s: float, end_s: float) -> List[_Window]:
        out = [
            w
            for w in self._closed
            if w.start_s < end_s and w.end_s > start_s
        ]
        w = self._open
        if w.stats.count and w.start_s < end_s:
            out.append(w)
        return out

    def window_percentile(self, q: float, start_s: float, end_s: float) -> float:
        """Percentile over completions in windows touching ``[start_s, end_s)``.

        Args:
            q: Percentile in (0, 100].
            start_s: Query start (inclusive).
            end_s: Query end (exclusive).

        Returns:
            Exact nearest-rank when every overlapped window is still in
            its exact regime; a count-weighted estimate otherwise; NaN
            when no retained window overlaps.
        """
        windows = self._overlapping(start_s, end_s)
        if not windows:
            return math.nan
        if all(w.stats.is_exact for w in windows):
            merged: List[float] = []
            for w in windows:
                merged.extend(w.stats.exact_values)
            merged.sort()
            return nearest_rank(merged, q)
        # Weighted merge: sample each window's quantile curve and take
        # the weighted nearest rank across samples.
        samples: List[Tuple[float, float]] = []  # (value, weight)
        for w in windows:
            st = w.stats
            if st.is_exact:
                wgt = 1.0
                samples.extend((v, wgt) for v in st.exact_values)
            else:
                wgt = st.count / len(self._MERGE_GRID)
                samples.extend(
                    (st.percentile(p * 100.0), wgt) for p in self._MERGE_GRID
                )
        samples.sort(key=lambda vw: vw[0])
        total = sum(wgt for _, wgt in samples)
        target = q / 100.0 * total
        cum = 0.0
        for v, wgt in samples:
            cum += wgt
            if cum >= target:
                return v
        return samples[-1][0]

    def window_count(self, start_s: float, end_s: float) -> int:
        """Completions recorded in windows touching ``[start_s, end_s)``."""
        return sum(w.stats.count for w in self._overlapping(start_s, end_s))


class MetricsRecorder:
    """The one metrics-accumulation contract every report layer shares.

    The sim kernel's ``FINISH`` path (and the admission/failure paths)
    call :meth:`record_completion` / :meth:`record_rejection` /
    :meth:`record_failure`; reports answer every query from here.

    * ``record="full"`` keeps per-request records in
      :class:`VersionedList`\\ s and computes exact statistics from them
      on demand — the pre-refactor behavior, bit for bit.
    * ``record="streaming"`` keeps only aggregates: counters, running
      sums, a latency :class:`QuantileSketch`, and a :class:`WindowRing`
      of per-window sub-sketches.  The per-request list properties
      raise :class:`RecordingModeError`.

    A recorder may chain to a ``parent``: fleets give each node a
    recorder whose parent is the pool/fleet recorder, so one completion
    recorded at the node updates every aggregation level — that is the
    "one shared metrics core fed by the FINISH path".
    """

    __slots__ = (
        "record",
        "parent",
        "_completed",
        "_rejected",
        "_failed",
        "_lat_memo",
        "n_completed",
        "n_rejected",
        "n_failed",
        "latency",
        "_queue_sum",
        "_service_sum",
        "_batch_sum",
        "ring",
    )

    def __init__(
        self,
        record: str = "full",
        window_s: Optional[float] = None,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
        ring_depth: int = DEFAULT_RING_DEPTH,
        parent: Optional["MetricsRecorder"] = None,
    ) -> None:
        """Create an empty recorder.

        Args:
            record: ``"full"`` (exact per-request lists) or
                ``"streaming"`` (flat-memory aggregates).
            window_s: Auto-roll width of the streaming window ring;
                ``None`` rolls only on explicit :meth:`roll_window`
                calls (the elastic control loops roll every tick).
            quantiles: Tracked quantile fractions for the sketches.
            exact_limit: Exact-reservoir size of the overall sketch.
            ring_depth: Closed windows the ring retains.
            parent: Optional upstream recorder every record also feeds.

        Raises:
            ValueError: On an unknown ``record`` mode.
        """
        if record not in ("full", "streaming"):
            raise ValueError(
                f"unknown record mode {record!r}; choose 'full' or 'streaming'"
            )
        self.record = record
        self.parent = parent
        self.n_completed = 0
        self.n_rejected = 0
        self.n_failed = 0
        self._lat_memo: Tuple[int, List[float]] = (-1, [])
        if record == "full":
            self._completed: Optional[VersionedList] = VersionedList()
            self._rejected: Optional[VersionedList] = VersionedList()
            self._failed: Optional[VersionedList] = VersionedList()
            self.latency = None
            self.ring = None
        else:
            self._completed = self._rejected = self._failed = None
            self.latency = StreamStats(quantiles, exact_limit)
            self.ring = WindowRing(
                window_s=window_s,
                depth=ring_depth,
                quantiles=quantiles,
            )
        self._queue_sum = 0.0
        self._service_sum = 0.0
        self._batch_sum = 0.0

    # ------------------------------------------------------------------ #
    # The recording contract (the FINISH/admission/failure paths)
    # ------------------------------------------------------------------ #

    def record_completion(self, c) -> None:
        """Record one completed request.

        Args:
            c: An object with ``latency_s``, ``queue_s``, ``service_s``,
                ``batch`` and ``finish_s`` attributes (a
                ``CompletedRequest``).  Full mode keeps the object;
                streaming mode reads the scalars and drops it.
        """
        self.n_completed += 1
        if self._completed is not None:
            self._completed.append(c)
        else:
            self.latency.add(c.latency_s)
            self._queue_sum += c.queue_s
            self._service_sum += c.service_s
            self._batch_sum += c.batch
            self.ring.add(c.latency_s, c.finish_s)
        if self.parent is not None:
            self.parent.record_completion(c)

    def record_rejection(self, r) -> None:
        """Record one admission-rejected request (kept only in full mode)."""
        self.n_rejected += 1
        if self._rejected is not None:
            self._rejected.append(r)
        if self.parent is not None:
            self.parent.record_rejection(r)

    def record_failure(self, f) -> None:
        """Record one failure-lost request (kept only in full mode)."""
        self.n_failed += 1
        if self._failed is not None:
            self._failed.append(f)
        if self.parent is not None:
            self.parent.record_failure(f)

    def roll_window(self, t: float) -> None:
        """Close the streaming window ring's open window at ``t``.

        A no-op in full mode (full-mode window queries are computed
        exactly from the per-request records instead).
        """
        if self.ring is not None:
            self.ring.roll(t)

    # ------------------------------------------------------------------ #
    # Per-request access (full mode only)
    # ------------------------------------------------------------------ #

    def _require_full(self, what: str):
        if self.record != "full":
            raise RecordingModeError(
                f"{what} is unavailable in streaming mode — per-request "
                "records were not kept; re-run with record='full'"
            )

    @property
    def completed(self) -> VersionedList:
        """Per-request completion records (full mode only).

        Raises:
            RecordingModeError: In streaming mode.
        """
        self._require_full("the completed-request list")
        return self._completed

    @property
    def rejected(self) -> VersionedList:
        """Per-request rejection records (full mode only).

        Raises:
            RecordingModeError: In streaming mode.
        """
        self._require_full("the rejected-request list")
        return self._rejected

    @property
    def failed(self) -> VersionedList:
        """Per-request failure records (full mode only).

        Raises:
            RecordingModeError: In streaming mode.
        """
        self._require_full("the failed-request list")
        return self._failed

    @property
    def latencies_s(self) -> List[float]:
        """Ascending completed latencies, memoized per list version.

        Raises:
            RecordingModeError: In streaming mode — use
                :meth:`percentile` instead.
        """
        self._require_full("the sorted latency list")
        version, memo = self._lat_memo
        if version != self._completed.version:
            memo = sorted(c.latency_s for c in self._completed)
            self._lat_memo = (self._completed.version, memo)
        return memo

    def new_latencies(self, seen: int) -> List[float]:
        """Latencies of completions recorded after the first ``seen``.

        The elastic control loops slice each node's completion list once
        per tick to build the window-p99 signal; routing the slice
        through the recorder lets the fast path answer it without
        materializing per-request records (full mode only).

        Raises:
            RecordingModeError: In streaming mode.
        """
        self._require_full("the completion-latency slice")
        return [c.latency_s for c in self._completed[seen:]]

    # ------------------------------------------------------------------ #
    # Aggregate queries (both modes)
    # ------------------------------------------------------------------ #

    @property
    def completed_count(self) -> int:
        """Completions recorded so far (works in both modes)."""
        if self._completed is not None:
            return len(self._completed)
        return self.n_completed

    @property
    def rejected_count(self) -> int:
        """Rejections recorded so far (works in both modes)."""
        if self._rejected is not None:
            return len(self._rejected)
        return self.n_rejected

    @property
    def failed_count(self) -> int:
        """Failure losses recorded so far (works in both modes)."""
        if self._failed is not None:
            return len(self._failed)
        return self.n_failed

    def percentile(self, q: float) -> float:
        """Latency percentile: exact in full mode, sketched in streaming.

        Args:
            q: Percentile in (0, 100].

        Returns:
            Latency seconds (NaN when nothing completed).
        """
        if self.record == "full":
            return nearest_rank(self.latencies_s, q)
        return self.latency.percentile(q)

    def window_percentile(self, q: float, start_s: float, end_s: float) -> float:
        """Latency percentile over completions finishing in a window.

        Full mode scans the per-request records exactly; streaming mode
        answers from the window ring (snapped to the rolled window
        boundaries the range overlaps).

        Args:
            q: Percentile in (0, 100].
            start_s: Window start (inclusive).
            end_s: Window end (exclusive).

        Returns:
            Latency seconds (NaN when the window saw no completion).
        """
        if self.record == "full":
            return nearest_rank(
                window_latencies(self._completed, start_s, end_s), q
            )
        return self.ring.window_percentile(q, start_s, end_s)

    @property
    def mean_latency_s(self) -> float:
        """Mean completed latency (NaN when nothing completed)."""
        if self.record == "full":
            if not self._completed:
                return math.nan
            return sum(c.latency_s for c in self._completed) / len(self._completed)
        return self.latency.mean

    @property
    def mean_queue_s(self) -> float:
        """Mean queueing delay (NaN when nothing completed)."""
        if self.record == "full":
            if not self._completed:
                return math.nan
            return sum(c.queue_s for c in self._completed) / len(self._completed)
        if self.n_completed == 0:
            return math.nan
        return self._queue_sum / self.n_completed

    @property
    def mean_service_s(self) -> float:
        """Mean service time (NaN when nothing completed)."""
        if self.record == "full":
            if not self._completed:
                return math.nan
            return sum(c.service_s for c in self._completed) / len(self._completed)
        if self.n_completed == 0:
            return math.nan
        return self._service_sum / self.n_completed

    @property
    def mean_batch(self) -> float:
        """Mean dispatched batch size (NaN when nothing completed)."""
        if self.record == "full":
            if not self._completed:
                return math.nan
            return sum(c.batch for c in self._completed) / len(self._completed)
        if self.n_completed == 0:
            return math.nan
        return self._batch_sum / self.n_completed
