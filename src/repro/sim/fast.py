"""Vectorized struct-of-arrays fast path for the serving simulators.

The profiled 100k-request hetero bench spends >90% of its wall time in
per-event Python churn: one ``Event`` tuple, one heap push/pop, and one
handler dispatch per arrival.  But between control/failure events the
arrival stream is pure request traffic with a *known* schedule — it was
preloaded — so none of that machinery is needed to replay it.  This
module collapses the hot ARRIVAL→dispatch→FINISH path:

* :func:`drain` walks the preloaded arrivals as a struct-of-arrays
  (one sorted numpy array of arrival times) and hands whole equal-time
  *epochs* to a loop-specific callback, keeping the binary heap only
  for the cold kinds (CONTROL/READY/FAIL/RECOVER and the FINISH events
  dispatches schedule).  The kernel's documented total order —
  RECOVER < ARRIVAL < READY < CONTROL < FAIL < FINISH at equal
  instants — is preserved by construction: an epoch at time ``t`` runs
  after any heap event earlier than ``t`` or at ``t`` with a smaller
  kind, and before everything else.
* :class:`FastRecorder` defers per-request ``CompletedRequest``
  materialization: the FINISH path records one ``(dispatch, finish,
  requests)`` triple per batch, and the per-request records are built
  lazily the first time a report query needs them.  Every query
  answers bit-identically to the eager recorder.
* The ``_*Fast`` router twins reproduce each builtin router's choice
  float-for-float while amortizing the per-arrival replica scan:
  within a (model, SLO) *key lifetime* — delimited by any dispatch,
  finish, or fleet-membership event — node backlogs change only
  through the twin's own picks, so a heap seeded from live backlogs
  and advanced by ``heapreplace`` tracks them exactly.

Exactness is the contract (pinned by ``tests/test_fast_differential``):
the fast path must produce the same report, request for request, as the
event-at-a-time path.  It therefore only engages on configurations it
can replay exactly; every serving loop falls back to the slow path
otherwise.

Profiling note: under a :class:`~repro.obs.KernelProfiler` the fast
path counts arrival epochs in the ARRIVAL event/batch ledgers but books
no handler time for them — routing happens inside the drain, not in a
per-event handler.  ``handler_share`` then honestly reports what is
left of the per-event handler churn the fast path was built to remove.
"""

from __future__ import annotations

from bisect import bisect_right
from heapq import heapify, heappop, heapreplace, heappush
from time import perf_counter
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.serving.engine import (
    CompletedRequest,
    RejectedRequest,
    Request,
    ServingReport,
    slo_admit,
)
from repro.sim.kernel import DiscreteEventKernel, EventKind
from repro.sim.stats import MetricsRecorder

__all__ = [
    "FAST_RUNS",
    "FastRecorder",
    "arrival_times",
    "drain",
    "make_chooser",
    "run_engine_fast",
]

#: Fast-path engagements since import — the differential harness and the
#: benchmarks snapshot it around a run to assert the gate actually took
#: the vectorized path (a silent fallback would make fast==slow vacuous).
FAST_RUNS = 0

_ARRIVAL = int(EventKind.ARRIVAL)


def count_run() -> None:
    """Bump :data:`FAST_RUNS` (called once per engaged fast-path run)."""
    global FAST_RUNS
    FAST_RUNS += 1


def arrival_times(ordered: List[Request]) -> np.ndarray:
    """The struct-of-arrays column the drain walks: sorted arrival times."""
    return np.fromiter(
        (r.arrival_s for r in ordered), np.float64, count=len(ordered)
    )


# ---------------------------------------------------------------------- #
# Deferred batch recording
# ---------------------------------------------------------------------- #


class FastRecorder(MetricsRecorder):
    """A full-mode recorder that materializes completions lazily.

    The hot FINISH path calls :meth:`record_batch` once per dispatched
    batch instead of building one :class:`CompletedRequest` per request;
    any query that needs the per-request list flushes the pending
    batches first, producing records identical (field for field, float
    for float) to what the eager path would have stored.

    Only ``record="full"`` is supported — the streaming recorder is
    already flat-memory and keeps its eager per-scalar path.  Parent
    chaining is unsupported: the fast path only engages on loops that
    give full-mode nodes parentless recorders.
    """

    __slots__ = ("_batches", "_cum")

    def __init__(self) -> None:
        super().__init__(record="full")
        self._batches: List[tuple] = []
        #: per-batch cumulative completion count (flushed included) so
        #: tail reads bisect straight to the first unseen batch.
        self._cum: List[int] = []

    def record_batch(
        self, dispatch_s: float, finish_s: float, requests: List[Request]
    ) -> None:
        """Record one finished batch (``requests`` ownership transfers)."""
        self._batches.append((dispatch_s, finish_s, requests))
        self.n_completed += len(requests)
        self._cum.append(self.n_completed)

    def _flush(self) -> None:
        if not self._batches:
            return
        append = self._completed.append
        for dispatch_s, finish_s, reqs in self._batches:
            b = len(reqs)
            for r in reqs:
                append(
                    CompletedRequest(
                        request=r,
                        dispatch_s=dispatch_s,
                        finish_s=finish_s,
                        batch=b,
                    )
                )
        self._batches.clear()
        self._cum.clear()

    # Every accessor that reads the per-request completion list flushes
    # first; counters (n_completed) are maintained eagerly.

    @property
    def completed(self):
        self._flush()
        return MetricsRecorder.completed.fget(self)

    @property
    def completed_count(self) -> int:
        return self.n_completed

    @property
    def latencies_s(self) -> List[float]:
        self._flush()
        return MetricsRecorder.latencies_s.fget(self)

    def new_latencies(self, seen: int) -> List[float]:
        """Flush-free tail slice: pending batches are read in place."""
        out = []
        flushed = self._completed
        if seen < len(flushed):
            out.extend(c.latency_s for c in flushed[seen:])
            seen = len(flushed)
        if seen >= self.n_completed:
            return out
        batches = self._batches
        cum = self._cum
        i = bisect_right(cum, seen)
        pos = cum[i] - len(batches[i][2])
        for _, finish_s, reqs in batches[i:]:
            for r in reqs[seen - pos:] if seen > pos else reqs:
                out.append(finish_s - r.arrival_s)
            pos += len(reqs)
            seen = pos
        return out

    def window_percentile(self, q: float, start_s: float, end_s: float) -> float:
        self._flush()
        return MetricsRecorder.window_percentile(self, q, start_s, end_s)

    @property
    def mean_latency_s(self) -> float:
        self._flush()
        return MetricsRecorder.mean_latency_s.fget(self)

    @property
    def mean_queue_s(self) -> float:
        self._flush()
        return MetricsRecorder.mean_queue_s.fget(self)

    @property
    def mean_service_s(self) -> float:
        self._flush()
        return MetricsRecorder.mean_service_s.fget(self)

    @property
    def mean_batch(self) -> float:
        self._flush()
        return MetricsRecorder.mean_batch.fget(self)


# ---------------------------------------------------------------------- #
# Exact router twins
# ---------------------------------------------------------------------- #


class _ChooserBase:
    """Shared cache/invalidations of the fast router twins.

    ``replicas_for`` is the loop's live membership view; its result is
    cached per model until :meth:`invalidate_all` (fleet membership or
    node state changed).  ``_key`` marks the current backlog-tracking
    lifetime; :meth:`invalidate_backlogs` ends it (some node's queue or
    in-flight set changed outside the twin's own picks).
    """

    __slots__ = ("router", "replicas_for", "_reps", "_key")

    def __init__(self, router, replicas_for) -> None:
        self.router = router
        self.replicas_for = replicas_for
        self._reps: Dict[str, list] = {}
        self._key = None

    def invalidate_backlogs(self) -> None:
        self._key = None

    def invalidate_all(self) -> None:
        self._key = None
        self._reps.clear()

    def _replicas(self, model: str) -> list:
        reps = self._reps.get(model)
        if reps is None:
            reps = self.replicas_for(model)
            self._reps[model] = reps
        return reps


class _RoundRobinFast(_ChooserBase):
    """Twin of ``RoundRobinRouter`` — backlog-oblivious, shares the
    router's own per-model counter so fast and slow runs interleave."""

    __slots__ = ()

    def invalidate_backlogs(self) -> None:  # cycling ignores load
        pass

    def route(self, r: Request, now: float):
        reps = self._replicas(r.model)
        if not reps:
            return None
        nxt = self.router._next
        i = nxt.get(r.model, 0)
        nxt[r.model] = i + 1
        return reps[i % len(reps)]


class _LeastLoadedFast(_ChooserBase):
    """Twin of ``LeastLoadedRouter``: min (backlog, node_id) via a heap
    seeded from live backlogs and advanced by own-pick increments."""

    __slots__ = ("_heap", "_by_id")

    def route(self, r: Request, now: float):
        model = r.model
        if self._key != model:
            reps = self._replicas(model)
            if not reps:
                return None
            self._key = model
            self._by_id = {n.node_id: n for n in reps}
            heap = [(n.backlog(), n.node_id) for n in reps]
            heapify(heap)
            self._heap = heap
        heap = self._heap
        b, nid = heap[0]
        heapreplace(heap, (b + 1, nid))
        return self._by_id[nid]


class _AffinityFast(_ChooserBase):
    """Twin of ``AffinityRouter``: primary until the spill threshold,
    then join-shortest-queue.  Within a key lifetime the primary's
    backlog only grows, so spilling is monotone and the JSQ heap can be
    built lazily at the first spill."""

    __slots__ = ("_primary", "_pb", "_limit", "_heap", "_by_id")

    def route(self, r: Request, now: float):
        model = r.model
        if self._key != model:
            reps = self._replicas(model)
            if not reps:
                return None
            self._key = model
            primary = reps[0]
            self._primary = primary
            sb = self.router.spill_backlog
            self._limit = sb if sb is not None else primary.max_batch
            self._pb = primary.backlog()
            self._heap = None
        if self._pb < self._limit:
            self._pb += 1
            return self._primary
        heap = self._heap
        if heap is None:
            reps = self._replicas(model)
            self._by_id = {n.node_id: n for n in reps}
            heap = [(n.backlog(), n.node_id) for n in reps]
            heapify(heap)
            self._heap = heap
        b, nid = heap[0]
        heapreplace(heap, (b + 1, nid))
        return self._by_id[nid]


class _BackendAffinityFast(_ChooserBase):
    """Twin of ``BackendAffinityRouter`` keyed on (model, slo).

    At each arrival the slow router recomputes ``slack = slo - (clock -
    arrival_s)``; the fast path routes every request at its own arrival
    instant, so slack is exactly ``slo`` and feasibility reduces to
    ``eta + min_latency <= slo``.  Within a backlog lifetime
    ``busy_until`` and ``in_flight`` are frozen (any change
    invalidates), so a node's eta only shrinks as ``now`` grows:
    feasibility is monotone and the build instant doesn't matter.
    Nodes infeasible-but-busy go on a watch list re-evaluated per
    arrival with the *original float expression* (never an algebraic
    rearrangement); idle infeasible nodes can never become feasible
    this lifetime.

    State is kept *per key* in a dict so interleaved (model, slo)
    streams don't thrash rebuilds.  Because another key's picks can
    grow a node's queue behind a cached heap's back, heap entries only
    ever **under-estimate** the live backlog; pops lazily re-validate
    the top against ``node.backlog()`` and re-sift until the top is
    live, which selects the exact ``(cost, live backlog, node_id)``
    minimum the slow router's scan would.
    """

    __slots__ = ("_states", "_ckey", "_cst")

    def __init__(self, router, replicas_for) -> None:
        super().__init__(router, replicas_for)
        #: (model, slo) -> [fheap | None, watch, fbheap | None]
        self._states: Dict[tuple, list] = {}
        self._ckey = None  # memo of the last key looked up …
        self._cst = None  # … and its state, skipping the dict round-trip

    def invalidate_backlogs(self) -> None:
        if self._states:
            self._states.clear()
        self._cst = None

    def invalidate_all(self) -> None:
        self._states.clear()
        self._reps.clear()
        self._cst = None

    def route(self, r: Request, now: float):
        model = r.model
        slo = r.slo_s
        st = self._cst
        ck = self._ckey
        if st is None or ck[0] != model or ck[1] != slo:
            key = (model, slo)
            st = self._states.get(key)
            self._ckey = key
            self._cst = st
        if st is None:
            reps = self._replicas(model)
            if not reps:
                return None
            if slo is None:
                feas = None
                watch: list = []
            else:
                # Heap entries carry the node as a trailing payload: the
                # unique node_id settles every tie before tuple
                # comparison could ever reach the node itself.
                feas = []
                watch = []
                for n in reps:
                    ml = n.min_latency(model)
                    if n.in_flight:
                        if max(0.0, n.busy_until - now) + ml <= slo:
                            feas.append(
                                (n.spec.hourly_cost, n.backlog(), n.node_id, n)
                            )
                        else:
                            watch.append((n, ml))
                    elif 0.0 + ml <= slo:
                        feas.append(
                            (n.spec.hourly_cost, n.backlog(), n.node_id, n)
                        )
                    # else: idle and infeasible — dead for this lifetime
                heapify(feas)
            st = [feas, watch, None]
            self._states[key] = st
        fheap, watch, fbheap = st
        if slo is not None:
            if watch:
                still = []
                for n, ml in watch:
                    if max(0.0, n.busy_until - now) + ml <= slo:
                        heappush(
                            fheap,
                            (n.spec.hourly_cost, n.backlog(), n.node_id, n),
                        )
                    else:
                        still.append((n, ml))
                if len(still) != len(watch):
                    st[1] = still
            while fheap:
                c, b, nid, node = fheap[0]
                live = len(node.queue) + len(node.in_flight)
                if live != b:
                    heapreplace(fheap, (c, live, nid, node))
                    continue
                heapreplace(fheap, (c, b + 1, nid, node))
                return node
        if fbheap is None:
            reps = self._replicas(model)
            fbheap = [
                (n.backlog(), n.spec.hourly_cost, n.node_id, n) for n in reps
            ]
            heapify(fbheap)
            st[2] = fbheap
        while True:
            b, c, nid, node = fbheap[0]
            live = len(node.queue) + len(node.in_flight)
            if live != b:
                heapreplace(fbheap, (live, c, nid, node))
                continue
            heapreplace(fbheap, (b + 1, c, nid, node))
            return node


def make_chooser(router, replicas_for: Callable[[str], list]):
    """Build the exact fast twin of ``router``, or ``None`` if it has no
    twin (custom router subclasses fall back to the slow path)."""
    # Exact type checks: a subclass may override route() arbitrarily.
    from repro.cluster.router import (
        AffinityRouter,
        BackendAffinityRouter,
        LeastLoadedRouter,
        RoundRobinRouter,
    )

    t = type(router)
    if t is RoundRobinRouter:
        return _RoundRobinFast(router, replicas_for)
    if t is LeastLoadedRouter:
        return _LeastLoadedFast(router, replicas_for)
    if t is AffinityRouter:
        return _AffinityFast(router, replicas_for)
    if t is BackendAffinityRouter:
        return _BackendAffinityFast(router, replicas_for)
    return None


# ---------------------------------------------------------------------- #
# The struct-of-arrays drain
# ---------------------------------------------------------------------- #


def drain(
    kernel: DiscreteEventKernel,
    arrival_ts: np.ndarray,
    on_epoch: Callable[[float, int, int], bool],
    handlers: Dict[int, Callable],
    profiler=None,
) -> float:
    """Replay preloaded arrivals as epochs against the kernel's heap.

    The arrival stream is the struct-of-arrays column ``arrival_ts``
    (sorted, one entry per request); everything else — CONTROL ticks,
    failures, and the FINISH events ``on_epoch``/handlers schedule via
    ``kernel.schedule`` — lives on the kernel's heap.  Equal-time
    arrivals form one *epoch*; ``on_epoch(t, lo, hi)`` processes
    requests ``[lo, hi)`` and returns True when it scheduled a heap
    event, which forces a re-peek (the new event may precede the next
    epoch).  Heap events are popped in (time, kind) batches exactly
    like :meth:`DiscreteEventKernel.run`, and an epoch at ``t`` runs
    after heap kinds below ARRIVAL at ``t`` (RECOVER) and before those
    above — the documented total order.

    The kernel's clock and processed-event ledger are advanced so
    ``kernel.finalize`` and the profiler contract hold unchanged; with
    a ``profiler``, arrival epochs land in the ARRIVAL count/batch
    ledgers but book no handler time (see the module docstring).

    Args:
        kernel: The kernel whose heap holds every non-arrival event.
            Must not contain ARRIVAL events (arrivals are the array).
        arrival_ts: Sorted float64 arrival times.
        on_epoch: Callback for one equal-time arrival span.
        handlers: Heap handlers by ``int(EventKind)``; unhandled kinds
            are dropped but counted, as in the slow kernel.
        profiler: Optional :class:`~repro.obs.KernelProfiler`.

    Returns:
        The kernel clock after the drain.
    """
    heap = kernel._heap
    clock = kernel.clock
    ta = arrival_ts
    n = len(ta)
    if n:
        bounds = [0]
        bounds.extend((np.flatnonzero(ta[1:] != ta[:-1]) + 1).tolist())
        bounds.append(n)
        tl = ta.tolist()
        etimes = [tl[b] for b in bounds[:-1]]
    else:
        bounds = [0]
        etimes = []
    ne = len(etimes)
    ei = 0
    processed = 0
    searchsorted = np.searchsorted
    get_handler = handlers.get
    prof = profiler
    if prof is not None:
        counts = prof.counts
        batches = prof.batches
        handler_s = prof.handler_s
        stream_n = heap_n = 0
        run_t0 = perf_counter()
        wall_base = prof.wall_s

    while True:
        if heap:
            head = heap[0]
            ht = head[0]
            hk = head[1]
            if ei < ne and (
                etimes[ei] < ht or (etimes[ei] == ht and hk > _ARRIVAL)
            ):
                # Arrivals precede the heap head: run epochs up to it,
                # re-peeking as soon as an epoch schedules a heap event.
                j = int(
                    searchsorted(
                        ta, ht, side="right" if hk > _ARRIVAL else "left"
                    )
                )
                while ei < ne and bounds[ei] < j:
                    lo = bounds[ei]
                    hi = bounds[ei + 1]
                    t = etimes[ei]
                    ei += 1
                    scheduled = on_epoch(t, lo, hi)
                    nn = hi - lo
                    processed += nn
                    if prof is not None:
                        prof.events += nn
                        counts[_ARRIVAL] = counts.get(_ARRIVAL, 0) + nn
                        batches[_ARRIVAL] = batches.get(_ARRIVAL, 0) + 1
                        stream_n += nn
                        if prof.events >= prof.next_sample:
                            prof.sample(
                                t,
                                wall_base + (perf_counter() - run_t0),
                                prof.events,
                            )
                    if scheduled:
                        break
                continue
            if hk == _ARRIVAL:
                raise ValueError(
                    "fast drain found an ARRIVAL on the heap; arrivals "
                    "must come in through the preloaded array"
                )
            clock.advance(ht)
            batch = [heappop(heap)]
            while heap and heap[0][0] == ht and heap[0][1] == hk:
                batch.append(heappop(heap))
            handler = get_handler(hk)
            nn = len(batch)
            processed += nn
            if prof is None:
                if handler is not None:
                    handler(ht, batch)
            else:
                prof.events += nn
                counts[hk] = counts.get(hk, 0) + nn
                batches[hk] = batches.get(hk, 0) + 1
                heap_n += nn
                if handler is not None:
                    h0 = perf_counter()
                    handler(ht, batch)
                    handler_s[hk] = handler_s.get(hk, 0.0) + (
                        perf_counter() - h0
                    )
                if prof.events >= prof.next_sample:
                    prof.sample(
                        ht, wall_base + (perf_counter() - run_t0), prof.events
                    )
        elif ei < ne:
            lo = bounds[ei]
            hi = bounds[ei + 1]
            t = etimes[ei]
            ei += 1
            on_epoch(t, lo, hi)  # re-peeks next iteration regardless
            nn = hi - lo
            processed += nn
            if prof is not None:
                prof.events += nn
                counts[_ARRIVAL] = counts.get(_ARRIVAL, 0) + nn
                batches[_ARRIVAL] = batches.get(_ARRIVAL, 0) + 1
                stream_n += nn
                if prof.events >= prof.next_sample:
                    prof.sample(
                        t, wall_base + (perf_counter() - run_t0), prof.events
                    )
        else:
            break

    kernel.processed += processed
    if prof is not None:
        prof.wall_s = wall_base + (perf_counter() - run_t0)
        prof.stream_events += stream_n
        prof.heap_events += heap_n
        prof.runs += 1
    return clock.now


# ---------------------------------------------------------------------- #
# The single-node engine fast loop
# ---------------------------------------------------------------------- #


def run_engine_fast(
    engine, ordered: List[Request], policy: str, report: ServingReport
) -> ServingReport:
    """The 1-entity engine loop without a kernel.

    One batch is in flight at a time, so the heap degenerates to a
    single pending FINISH slot: every arrival at or before the pending
    finish instant is bulk-appended to the queue (dispatch is a no-op
    while busy — exactly the slow path's behavior), then the finish is
    recorded as one batch and the next dispatch attempted.  Identical,
    request for request, to :meth:`OnlineServingEngine.run`.
    """
    count_run()
    n = len(ordered)
    ta = arrival_times(ordered)
    tl = ta.tolist()
    stats = report.stats
    max_batch = engine.max_batch
    batch_latency = engine.batch_latency
    record_rejection = report.record_rejection
    queue: List[Request] = []
    pending = None  # (finish_t, batch, dispatch_t)
    last_finish = 0.0
    n_batches = 0
    i = 0

    def try_dispatch(now: float) -> None:
        nonlocal pending
        while queue:
            head_model = queue[0].model
            candidates = []
            for r in queue:
                if r.model == head_model:
                    candidates.append(r)
                    if len(candidates) == max_batch:
                        break
            batch, rejected_now, service = slo_admit(
                candidates,
                now,
                lambda size: batch_latency(head_model, policy, size),
            )
            for r in rejected_now:
                record_rejection(RejectedRequest(request=r, rejected_at_s=now))
            ncand = len(candidates)
            if ncand == len(queue):
                queue.clear()
            else:
                dropped = 0
                newq = []
                for r in queue:
                    if dropped < ncand and r.model == head_model:
                        dropped += 1
                    else:
                        newq.append(r)
                queue[:] = newq
            if batch:
                pending = (now + service, batch, now)
                return

    while True:
        if pending is not None:
            tf = pending[0]
            if i < n:
                j = int(np.searchsorted(ta, tf, side="right"))
                if j > i:
                    queue.extend(ordered[i:j])
                    i = j
            tf, batch, dispatched = pending
            pending = None
            stats.record_batch(dispatched, tf, batch)
            n_batches += 1
            last_finish = tf
            try_dispatch(tf)
        elif i < n:
            t = tl[i]
            j = i + 1
            while j < n and tl[j] == t:
                j += 1
            queue.extend(ordered[i:j])
            i = j
            try_dispatch(t)
        else:
            break

    report.sim_end_s = max(last_finish, ordered[-1].arrival_s)
    report.events_processed = n + n_batches
    return report
