"""Node failure/recovery injection: the event type no old loop could host.

A :class:`FailureTrace` is a deterministic schedule of node outages the
serving simulators turn into kernel ``FAIL``/``RECOVER`` events.  The
semantics (implemented by the fleet loops, pinned by ``serve-chaos``):

* at ``start_s`` the victim node goes dark: its queued requests and its
  in-flight batch are lost (recorded as *failed* requests — the batch's
  service never completes, and the node's busy-time credit is truncated
  to the seconds actually served), and the router stops resolving to it;
* while down, arrivals route among the surviving replicas; a model whose
  every replica is down drops its arrivals at the door;
* elastic policies see the loss — a failed node leaves the owned set, so
  the next control tick observes the smaller fleet and can order a
  replacement;
* at ``end_s`` the node rejoins empty (repair time is the outage length,
  so MTTR already covers any state restore) and routable.

Two constructors: :meth:`FailureTrace.scripted` for pinned outages (the
golden chaos scenarios) and :meth:`FailureTrace.poisson` for seeded
MTBF/MTTR sampling per node — exponential up-times and repair times, the
textbook availability model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.sim.kernel import DiscreteEventKernel, EventKind

__all__ = ["Outage", "FailureTrace"]


@dataclass(frozen=True)
class Outage:
    """One node's downtime interval ``[start_s, end_s)``."""

    node_id: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if not 0.0 <= self.start_s < self.end_s:
            raise ValueError("need 0 <= start_s < end_s")

    @property
    def duration_s(self) -> float:
        """Seconds the node is down."""
        return self.end_s - self.start_s


class FailureTrace:
    """A deterministic outage schedule over a simulation's node ids.

    Node ids name *spawn order*: a static fleet's nodes are ``0..n-1``,
    an elastic fleet's initial nodes are ``0..initial-1`` and later
    spawns count up.  An outage naming a node that does not exist (or is
    not serving) when it strikes is a recorded no-op — this keeps one
    trace meaningful across fleets of different shapes, which is exactly
    how ``serve-chaos`` compares a static and an elastic fleet under the
    *same* failures.
    """

    def __init__(self, outages: Iterable[Outage]) -> None:
        self.outages: Tuple[Outage, ...] = tuple(
            sorted(outages, key=lambda o: (o.start_s, o.node_id, o.end_s))
        )
        by_node: dict = {}
        for o in self.outages:
            prev = by_node.get(o.node_id)
            if prev is not None and o.start_s < prev:
                raise ValueError(
                    f"overlapping outages for node {o.node_id}: "
                    f"{o.start_s} < {prev}"
                )
            by_node[o.node_id] = o.end_s

    @classmethod
    def scripted(cls, outages: Sequence[Tuple[int, float, float]]) -> "FailureTrace":
        """A pinned schedule from ``(node_id, start_s, end_s)`` triples.

        Args:
            outages: The downtime intervals, any order.

        Returns:
            The trace (sorted, overlap-checked per node).
        """
        return cls(Outage(nid, t0, t1) for nid, t0, t1 in outages)

    @classmethod
    def poisson(
        cls,
        n_nodes: int,
        mtbf_s: float,
        mttr_s: float,
        horizon_s: float,
        seed: int = 0,
    ) -> "FailureTrace":
        """Seeded exponential up/down cycling per node.

        Each node alternates exponentially distributed up-times (mean
        ``mtbf_s``) and repair times (mean ``mttr_s``) from t=0.  No
        outage *starts* at or after the horizon, but a repair begun
        before it may finish past it (events beyond the workload's tail
        are harmless no-ops).  Steady-state availability of one node is
        ``mtbf / (mtbf + mttr)``.

        Args:
            n_nodes: Nodes 0..n-1 draw independent outage processes.
            mtbf_s: Mean seconds between failures (up-time).
            mttr_s: Mean seconds to repair (down-time).
            horizon_s: No outage starts at or after this time.
            seed: RNG seed; same seed, same trace.

        Returns:
            The sampled trace.
        """
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        if mtbf_s <= 0 or mttr_s <= 0 or horizon_s <= 0:
            raise ValueError("mtbf_s, mttr_s, and horizon_s must be positive")
        outages: List[Outage] = []
        for nid in range(n_nodes):
            rng = random.Random(seed * 1_000_003 + nid)
            t = 0.0
            while True:
                t += rng.expovariate(1.0 / mtbf_s)
                if t >= horizon_s:
                    break
                down = rng.expovariate(1.0 / mttr_s)
                outages.append(Outage(nid, t, t + down))
                t += down
        return cls(outages)

    def __len__(self) -> int:
        return len(self.outages)

    def schedule_on(self, kernel: DiscreteEventKernel) -> None:
        """Emit this trace as FAIL/RECOVER events on a kernel.

        Args:
            kernel: The run's kernel; each outage becomes one ``FAIL`` at
                its start and one ``RECOVER`` at its end, tie-broken by
                node id like every other event.
        """
        for o in self.outages:
            kernel.schedule(o.start_s, EventKind.FAIL, o.node_id)
            kernel.schedule(o.end_s, EventKind.RECOVER, o.node_id)
