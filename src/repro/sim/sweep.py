"""Multiprocess sweep runner for independent simulation configurations.

Parameter sweeps — an experiment grid, a :class:`CapacityPlanner` probe
ladder, a seed ensemble — are embarrassingly parallel: every
configuration is an independent simulation with its own seed.  This
module fans them across worker processes with ``multiprocessing`` and
guarantees the one property a reproducibility repo cares about:
**results are a pure function of (fn, configs), independent of worker
count and identical to serial execution.**

That guarantee holds because of three rules, enforced here rather than
hoped for:

* the sweep function and every config must be picklable module-level
  objects (closures and lambdas fail fast with a clear error instead of
  a cryptic pickling traceback mid-pool);
* results are collected with an *ordered* map, so result ``i`` always
  corresponds to config ``i`` no matter which worker ran it first;
* any randomness must be seeded from the config itself — worker
  processes share no RNG state with the parent or each other.

``workers=1`` (or a single-CPU box) runs serially in-process — the same
code path tests compare the pooled runs against.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """The outcome of one :func:`run_sweep` call.

    Attributes:
        results: One entry per config, in config order — whatever the
            sweep function returned for that config.
        configs: The configs as submitted (same order as ``results``).
        workers: Worker processes actually used (1 means serial).
    """

    results: List[Any]
    configs: List[Any] = field(repr=False)
    workers: int = 1

    def __len__(self) -> int:
        """Number of configurations swept."""
        return len(self.results)

    def __iter__(self):
        """Iterate over ``(config, result)`` pairs in config order."""
        return iter(zip(self.configs, self.results))


def _check_picklable(obj: Any, what: str) -> None:
    try:
        pickle.dumps(obj)
    except Exception as exc:  # pickle raises a zoo of types
        raise TypeError(
            f"{what} is not picklable ({exc}); sweep functions and configs "
            "must be module-level objects so worker processes can import "
            "them — closures, lambdas, and locally-defined classes cannot "
            "cross a process boundary"
        ) from exc


def default_workers() -> int:
    """Worker count used when ``run_sweep`` is not given one.

    The CPU count minus one (the parent keeps a core), at least 1.
    """
    return max(1, (os.cpu_count() or 1) - 1)


def run_sweep(
    fn: Callable[[Any], Any],
    configs: Sequence[Any],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> SweepResult:
    """Run ``fn(config)`` for every config, fanned across processes.

    Determinism contract: as long as ``fn`` derives all randomness from
    its config (seeded), the returned results are byte-identical for
    any ``workers`` value — the pool map is ordered and workers share
    no state.  Tests assert exactly this.

    Args:
        fn: A picklable module-level callable taking one config.
        configs: The configurations to sweep (each picklable).
        workers: Process count; ``None`` picks :func:`default_workers`,
            ``1`` (or a single config) runs serially in-process.
        chunksize: Configs handed to a worker per dispatch (larger
            amortizes IPC for very cheap configs).

    Returns:
        A :class:`SweepResult` with results in config order.

    Raises:
        TypeError: If ``fn`` or a config cannot cross the process
            boundary (raised before any worker starts).
        ValueError: On a non-positive ``workers`` or ``chunksize``.
    """
    configs = list(configs)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    workers = min(workers, max(1, len(configs)))

    if workers == 1 or len(configs) <= 1:
        results = [fn(c) for c in configs]
        return SweepResult(results=results, configs=configs, workers=1)

    _check_picklable(fn, "the sweep function")
    for i, c in enumerate(configs):
        _check_picklable(c, f"config #{i}")

    ctx = multiprocessing.get_context("fork" if hasattr(os, "fork") else "spawn")
    with ctx.Pool(processes=workers) as pool:
        results = pool.map(fn, configs, chunksize=chunksize)
    return SweepResult(results=results, configs=configs, workers=workers)
