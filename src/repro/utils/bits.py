"""Bit-manipulation primitives used throughout the address-mapping layer.

All XOR-based DRAM address mappings in this package are linear functions over
GF(2): every output bit (channel, rank, bank-group, bank, row, column bit) is
the parity of the physical address ANDed with a mask.  These helpers provide
scalar and vectorized (NumPy ``uint64``) parity evaluation plus bit
scatter/gather used when enumerating matrix footprints.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

__all__ = [
    "bit",
    "mask_of_bits",
    "bits_of_mask",
    "parity",
    "parity_u64",
    "extract_bits",
    "lowest_set_bit",
    "highest_set_bit",
    "scatter_bits",
    "gather_bits",
    "iter_submasks",
]

_U64 = np.uint64


def bit(i: int) -> int:
    """Return an integer with only bit *i* set."""
    if i < 0:
        raise ValueError(f"bit index must be non-negative, got {i}")
    return 1 << i


def mask_of_bits(bits: Iterable[int]) -> int:
    """Build a mask with the given bit positions set.

    >>> mask_of_bits([0, 3])
    9
    """
    m = 0
    for b in bits:
        m |= bit(b)
    return m


def bits_of_mask(mask: int) -> List[int]:
    """List the set-bit positions of *mask* in ascending order.

    >>> bits_of_mask(9)
    [0, 3]
    """
    if mask < 0:
        raise ValueError("mask must be non-negative")
    out = []
    i = 0
    while mask:
        if mask & 1:
            out.append(i)
        mask >>= 1
        i += 1
    return out


def parity(x: int) -> int:
    """Parity (popcount mod 2) of a Python integer (arbitrary precision)."""
    return bin(x).count("1") & 1


def parity_u64(x: np.ndarray) -> np.ndarray:
    """Vectorized parity of each element of a ``uint64`` array.

    Returns a ``uint64`` array of 0/1 values.  Uses the hardware popcount when
    available (NumPy >= 2.0) and XOR-folding otherwise.
    """
    x = np.asarray(x, dtype=_U64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(x).astype(_U64) & _U64(1)
    # XOR-fold: the parity of all 64 bits accumulates into bit 0.
    for shift in (32, 16, 8, 4, 2, 1):
        x = x ^ (x >> _U64(shift))
    return x & _U64(1)


def extract_bits(x: int, bits: Iterable[int]) -> int:
    """Pack the values of *x* at the given bit positions into a small integer.

    ``bits[0]`` becomes bit 0 of the result, ``bits[1]`` bit 1, and so on.
    """
    out = 0
    for k, b in enumerate(bits):
        out |= ((x >> b) & 1) << k
    return out


def lowest_set_bit(mask: int) -> int:
    """Index of the least-significant set bit (-1 if mask == 0)."""
    if mask == 0:
        return -1
    return (mask & -mask).bit_length() - 1


def highest_set_bit(mask: int) -> int:
    """Index of the most-significant set bit (-1 if mask == 0)."""
    if mask == 0:
        return -1
    return mask.bit_length() - 1


def scatter_bits(value: int, mask: int) -> int:
    """Deposit the low bits of *value* into the set-bit positions of *mask*.

    This is the software equivalent of the BMI2 ``pdep`` instruction: bit 0 of
    *value* lands in the lowest set bit of *mask*, bit 1 in the next, etc.
    """
    out = 0
    k = 0
    m = mask
    while m:
        b = lowest_set_bit(m)
        if (value >> k) & 1:
            out |= 1 << b
        m &= m - 1
        k += 1
    return out


def gather_bits(value: int, mask: int) -> int:
    """Extract the bits of *value* at set positions of *mask* (``pext``)."""
    out = 0
    k = 0
    m = mask
    while m:
        b = lowest_set_bit(m)
        if (value >> b) & 1:
            out |= 1 << k
        m &= m - 1
        k += 1
    return out


def iter_submasks(mask: int):
    """Yield every submask of *mask* (including 0 and *mask* itself).

    Uses the standard ``(s - 1) & mask`` enumeration; yields ``2**popcount``
    values in decreasing order followed by 0.
    """
    s = mask
    while True:
        yield s
        if s == 0:
            return
        s = (s - 1) & mask


def scatter_bits_u64(values: np.ndarray, mask: int) -> np.ndarray:
    """Vectorized ``scatter_bits``: deposit each element's low bits into *mask*.

    *values* must be ``uint64``; the result is ``uint64``.
    """
    values = np.asarray(values, dtype=_U64)
    out = np.zeros_like(values)
    for k, b in enumerate(bits_of_mask(mask)):
        out |= ((values >> _U64(k)) & _U64(1)) << _U64(b)
    return out


def gather_bits_u64(values: np.ndarray, mask: int) -> np.ndarray:
    """Vectorized ``gather_bits`` over a ``uint64`` array."""
    values = np.asarray(values, dtype=_U64)
    out = np.zeros_like(values)
    for k, b in enumerate(bits_of_mask(mask)):
        out |= ((values >> _U64(b)) & _U64(1)) << _U64(k)
    return out
