"""Unit constants and human-readable formatting helpers."""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "CACHE_BLOCK_BYTES",
    "WORD_BYTES",
    "cycles_to_us",
    "cycles_to_seconds",
    "human_bytes",
    "human_cycles",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Cache-block (DRAM burst) size in bytes; DDR4 BL8 on a 64-bit channel.
CACHE_BLOCK_BYTES = 64
#: fp32 word size; all GEMMs in the paper use single precision.
WORD_BYTES = 4


def cycles_to_seconds(cycles: float, clock_hz: float = 1.2e9) -> float:
    """Convert DRAM-clock cycles to seconds (default DDR4-2400: 1.2 GHz)."""
    if clock_hz <= 0:
        raise ValueError("clock_hz must be positive")
    return cycles / clock_hz


def cycles_to_us(cycles: float, clock_hz: float = 1.2e9) -> float:
    """Convert DRAM-clock cycles to microseconds."""
    return cycles_to_seconds(cycles, clock_hz) * 1e6


def human_bytes(n: float) -> str:
    """Format a byte count: ``human_bytes(3 * 1024**2) == '3.0 MiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def human_cycles(c: float) -> str:
    """Format a cycle count in engineering notation (e.g. ``1.20e+06``)."""
    return f"{c:.2e}"
