"""Shared low-level utilities: bit manipulation and unit helpers."""

from repro.utils.bits import (
    bit,
    bits_of_mask,
    extract_bits,
    gather_bits,
    lowest_set_bit,
    mask_of_bits,
    parity,
    parity_u64,
    scatter_bits,
)
from repro.utils.units import GiB, KiB, MiB, cycles_to_us, human_bytes, human_cycles

__all__ = [
    "bit",
    "bits_of_mask",
    "extract_bits",
    "gather_bits",
    "lowest_set_bit",
    "mask_of_bits",
    "parity",
    "parity_u64",
    "scatter_bits",
    "GiB",
    "KiB",
    "MiB",
    "cycles_to_us",
    "human_bytes",
    "human_cycles",
]
