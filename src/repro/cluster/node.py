"""One fleet node (StepStone, CPU, or GPU) inside a simulated cluster.

A node is the per-machine half of the fleet simulator: it owns a request
queue, forms FIFO per-model batches exactly like the single-node
:class:`~repro.serving.engine.OnlineServingEngine`, applies the same
single-pass SLO admission, and charges batch service time through the
engine's memoized :meth:`~repro.serving.engine.OnlineServingEngine.batch_latency`.
Nodes share one engine instance so the latency model is computed once for
the whole fleet, not once per node.

Heterogeneity enters through the node's :class:`~repro.serving.NodeSpec`:
the spec picks the hardware latency model (and therefore the *effective*
dispatch policy — a CPU or GPU node has exactly one way to run a batch),
while queueing, batching, and SLO admission stay identical across
backends, so fleets of mixed substrates remain directly comparable.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.serving.engine import (
    CompletedRequest,
    FailedRequest,
    OnlineServingEngine,
    RejectedRequest,
    Request,
    ServingReport,
    slo_admit,
)
from repro.serving.nodespec import STEPSTONE_NODE, NodeSpec

__all__ = ["ClusterNode"]


class ClusterNode:
    """Queue + dispatch state of one node; driven by the fleet simulator.

    Args:
        node_id: Fleet-unique id (also the event tie-break order).
        engine: The shared latency model / simulator vocabulary.
        policy: StepStone dispatch policy (``cpu``/``pim``/``hybrid``).
            Non-StepStone specs override it with their only dispatch —
            ``self.policy`` holds the *effective* policy.
        models: Models this node hosts weights for; ``None``/empty means
            every model (full replication).
        max_batch: Per-batch request cap; defaults to the engine's.
        spec: Hardware spec of this node (default: the StepStone node).
    """

    def __init__(
        self,
        node_id: int,
        engine: OnlineServingEngine,
        policy: str,
        models: Optional[Set[str]] = None,
        max_batch: Optional[int] = None,
        spec: NodeSpec = STEPSTONE_NODE,
    ) -> None:
        self.node_id = node_id
        self.engine = engine
        self.spec = spec
        self.policy = spec.effective_policy(policy)
        self.models: Set[str] = set(models) if models else set()
        self.max_batch = max_batch if max_batch is not None else engine.max_batch
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.queue: List[Request] = []
        self.in_flight: List[Request] = []
        self.busy_until: float = 0.0
        self.busy_s: float = 0.0
        #: Bumped on every failure; a pending finish event carrying an
        #: older epoch is stale (its batch was lost) and must be ignored.
        self.epoch: int = 0
        self._dispatch_s: float = 0.0
        self._service_s: float = 0.0
        #: Optional :class:`~repro.obs.trace.SpanRecorder` the owning
        #: fleet attaches for a traced run (``None`` = no tracing).
        self.obs_spans = None
        # Batch-1 latency per model: a hardware property of this node,
        # so it survives runs.  The SLO-feasibility routers ask for it
        # once per replica per arrival — caching here keeps that hot
        # path a dict hit instead of re-keying the engine's memo.
        self._min_lat: dict = {}
        self.report = ServingReport(policy=self.policy)

    @property
    def idle(self) -> bool:
        """True when no batch is in flight on this node."""
        return not self.in_flight

    def backlog(self) -> int:
        """Requests on this node (queued + in the running batch) — the
        join-shortest-queue load signal."""
        return len(self.queue) + len(self.in_flight)

    def min_latency(self, model: str) -> float:
        """Batch-1 service seconds for ``model`` on this node's hardware —
        the feasibility floor routers compare against a request's SLO."""
        hit = self._min_lat.get(model)
        if hit is None:
            hit = self.engine.batch_latency(model, self.policy, 1, spec=self.spec)
            self._min_lat[model] = hit
        return hit

    def eta_s(self, clock: float) -> float:
        """Seconds until this node could *start* a new batch at ``clock``
        (the remaining service time of the in-flight batch, if any)."""
        if self.in_flight:
            return max(0.0, self.busy_until - clock)
        return 0.0

    def enqueue(self, request: Request) -> None:
        """Queue one routed request.

        Args:
            request: An arrival whose model this node must host.

        Raises:
            ValueError: If the node does not host the request's model.
        """
        if self.models and request.model not in self.models:
            raise ValueError(
                f"node {self.node_id} does not host {request.model!r}"
            )
        self.queue.append(request)

    def try_dispatch(self, clock: float) -> Optional[float]:
        """Launch the next admissible batch if idle; return its finish time.

        Mirrors the single-node engine: the batch is FIFO from the oldest
        queued request's model, capped at ``max_batch``, shrunk by SLO
        admission.  If admission rejects an entire batch the loop moves on
        to the next head-of-queue model.

        Args:
            clock: Current simulated time.

        Returns:
            The batch finish time, or ``None`` when nothing dispatched
            (busy node or empty/fully-rejected queue).
        """
        while self.idle and self.queue:
            head_model = self.queue[0].model
            # FIFO batch: the first max_batch head-model requests in
            # queue order (early-exit scan; long mixed queues stay O(b)).
            candidates = []
            cap = self.max_batch
            for r in self.queue:
                if r.model == head_model:
                    candidates.append(r)
                    if len(candidates) == cap:
                        break
            admitted, rejected, service = slo_admit(
                candidates,
                clock,
                lambda size: self.engine.batch_latency(
                    head_model, self.policy, size, spec=self.spec
                ),
            )
            spans = self.obs_spans
            for r in rejected:
                self.report.record_rejection(
                    RejectedRequest(request=r, rejected_at_s=clock)
                )
                if spans is not None:
                    spans.emit(
                        r.req_id,
                        "rejected",
                        r.arrival_s,
                        clock - r.arrival_s,
                        node=self.node_id,
                        model=r.model,
                    )
            # admitted + rejected partition the candidates, which are the
            # first len(candidates) head-model requests in queue order —
            # drop exactly that many matches instead of id-set filtering.
            ncand = len(candidates)
            if ncand == len(self.queue):
                self.queue = []
            else:
                newq = []
                dropped = 0
                for r in self.queue:
                    if dropped < ncand and r.model == head_model:
                        dropped += 1
                    else:
                        newq.append(r)
                self.queue = newq
            if admitted:
                self.in_flight = admitted
                self._dispatch_s = clock
                self._service_s = service
                self.busy_until = clock + service
                self.busy_s += service
                if spans is not None:
                    for r in admitted:
                        spans.emit(
                            r.req_id,
                            "queued",
                            r.arrival_s,
                            clock - r.arrival_s,
                            node=self.node_id,
                            batch=len(admitted),
                            model=r.model,
                        )
                return self.busy_until
        return None

    def finish_batch(self, clock: float) -> None:
        """Record the running batch's completions at ``clock``."""
        spans = self.obs_spans
        for r in self.in_flight:
            self.report.record_completion(
                CompletedRequest(
                    request=r,
                    dispatch_s=self._dispatch_s,
                    finish_s=clock,
                    batch=len(self.in_flight),
                )
            )
            if spans is not None:
                spans.emit(
                    r.req_id,
                    "serve",
                    self._dispatch_s,
                    clock - self._dispatch_s,
                    node=self.node_id,
                    batch=len(self.in_flight),
                    model=r.model,
                )
        if spans is not None and self.in_flight:
            spans.emit(
                -1,
                "batch",
                self._dispatch_s,
                self._service_s,
                node=self.node_id,
                batch=len(self.in_flight),
                model=self.in_flight[0].model,
            )
        self.in_flight = []

    def fail(self, clock: float) -> List[Request]:
        """Lose everything this node holds at ``clock`` (a node failure).

        The in-flight batch never completes (its requests are recorded
        as failed with reason ``"in-flight-lost"`` and the busy-time
        credit taken at dispatch is truncated to the seconds actually
        served), queued requests are dropped (``"queue-dropped"``), and
        the epoch bump invalidates the pending finish event.

        Args:
            clock: The failure instant.

        Returns:
            The lost requests (in-flight first, then queue order).
        """
        lost = list(self.in_flight) + list(self.queue)
        spans = self.obs_spans
        if self.in_flight:
            self.busy_s -= max(0.0, self.busy_until - clock)
            if spans is not None:
                # The truncated execution: dispatch to the failure
                # instant, never to the scheduled finish.
                spans.emit(
                    -1,
                    "batch",
                    self._dispatch_s,
                    clock - self._dispatch_s,
                    node=self.node_id,
                    batch=len(self.in_flight),
                    model=self.in_flight[0].model,
                )
            for r in self.in_flight:
                self.report.record_failure(
                    FailedRequest(
                        request=r,
                        failed_at_s=clock,
                        node_id=self.node_id,
                        reason="in-flight-lost",
                    )
                )
                if spans is not None:
                    spans.emit(
                        r.req_id,
                        "failed",
                        r.arrival_s,
                        clock - r.arrival_s,
                        node=self.node_id,
                        model=r.model,
                    )
        for r in self.queue:
            self.report.record_failure(
                FailedRequest(
                    request=r,
                    failed_at_s=clock,
                    node_id=self.node_id,
                    reason="queue-dropped",
                )
            )
            if spans is not None:
                spans.emit(
                    r.req_id,
                    "failed",
                    r.arrival_s,
                    clock - r.arrival_s,
                    node=self.node_id,
                    model=r.model,
                )
        self.queue = []
        self.in_flight = []
        self.busy_until = clock
        self.epoch += 1
        return lost
