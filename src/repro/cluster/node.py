"""One StepStone node inside a simulated fleet.

A node is the per-machine half of the fleet simulator: it owns a request
queue, forms FIFO per-model batches exactly like the single-node
:class:`~repro.serving.engine.OnlineServingEngine`, applies the same
single-pass SLO admission, and charges batch service time through the
engine's memoized :meth:`~repro.serving.engine.OnlineServingEngine.batch_latency`.
Nodes share one engine instance so the latency model is computed once for
the whole fleet, not once per node.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.serving.engine import (
    CompletedRequest,
    OnlineServingEngine,
    RejectedRequest,
    Request,
    ServingReport,
    slo_admit,
)

__all__ = ["ClusterNode"]


class ClusterNode:
    """Queue + dispatch state of one node; driven by the fleet simulator."""

    def __init__(
        self,
        node_id: int,
        engine: OnlineServingEngine,
        policy: str,
        models: Optional[Set[str]] = None,
        max_batch: Optional[int] = None,
    ) -> None:
        self.node_id = node_id
        self.engine = engine
        self.policy = policy
        self.models: Set[str] = set(models) if models else set()
        self.max_batch = max_batch if max_batch is not None else engine.max_batch
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.queue: List[Request] = []
        self.in_flight: List[Request] = []
        self.busy_until: float = 0.0
        self.busy_s: float = 0.0
        self._dispatch_s: float = 0.0
        self.report = ServingReport(policy=policy)

    @property
    def idle(self) -> bool:
        return not self.in_flight

    def backlog(self) -> int:
        """Requests on this node (queued + in the running batch) — the
        join-shortest-queue load signal."""
        return len(self.queue) + len(self.in_flight)

    def enqueue(self, request: Request) -> None:
        if self.models and request.model not in self.models:
            raise ValueError(
                f"node {self.node_id} does not host {request.model!r}"
            )
        self.queue.append(request)

    def try_dispatch(self, clock: float) -> Optional[float]:
        """Launch the next admissible batch if idle; return its finish time.

        Mirrors the single-node engine: the batch is FIFO from the oldest
        queued request's model, capped at ``max_batch``, shrunk by SLO
        admission.  If admission rejects an entire batch the loop moves on
        to the next head-of-queue model.
        """
        while self.idle and self.queue:
            head_model = self.queue[0].model
            candidates = [r for r in self.queue if r.model == head_model][
                : self.max_batch
            ]
            admitted, rejected, service = slo_admit(
                candidates,
                clock,
                lambda size: self.engine.batch_latency(head_model, self.policy, size),
            )
            for r in rejected:
                self.report.rejected.append(
                    RejectedRequest(request=r, rejected_at_s=clock)
                )
            taken = {id(r) for r in admitted} | {id(r) for r in rejected}
            self.queue = [r for r in self.queue if id(r) not in taken]
            if admitted:
                self.in_flight = admitted
                self._dispatch_s = clock
                self.busy_until = clock + service
                self.busy_s += service
                return self.busy_until
        return None

    def finish_batch(self, clock: float) -> None:
        """Record the running batch's completions at ``clock``."""
        for r in self.in_flight:
            self.report.completed.append(
                CompletedRequest(
                    request=r,
                    dispatch_s=self._dispatch_s,
                    finish_s=clock,
                    batch=len(self.in_flight),
                )
            )
        self.in_flight = []
