"""Replicated, memory-capacity-aware model-to-node placement.

A fleet node holds model weights in its serving memory — PIM-enabled DRAM
on a StepStone socket, plain DRAM on a CPU node, on-card device memory on
a GPU node — and a model can only be served by nodes that host a replica
of its weights.  Placement therefore decides both *feasibility* (weights
must fit in each node's memory budget) and *load spread* (more replicas
mean more nodes can absorb a model's traffic).

The planner is a deterministic greedy *most-free-first* (worst-fit) pass:
models are placed largest first, and each replica goes to the node with
the largest free memory **fraction** that does not already hold one (ties
break toward more free bytes, then the lowest node id) — balancing weight
bytes across nodes rather than packing them tightly.  On a homogeneous
fleet the fraction ordering coincides with the historical free-bytes
ordering, so plans are unchanged; on a heterogeneous fleet it stops a
12 GB GPU node from being loaded like a 128 GB StepStone socket.  The
first replica of each model is its *primary* — the affinity router's
preferred target.

For capacity planning over mixed fleets, :meth:`ModelPlacement.saturate`
instead puts every model on every node it fits (largest models first per
node), which is the heterogeneous analogue of the homogeneous planner's
"replicate everywhere" convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.models.inference import all_models
from repro.models.layers import ModelSpec
from repro.serving.nodespec import NodeSpec

__all__ = ["DEFAULT_NODE_CAPACITY_BYTES", "PlacementError", "ModelPlacement"]

#: Default per-node weight budget: one six-channel StepStone socket with
#: buffered-DIMM capacities in the paper's deployment range (~128 GB).
DEFAULT_NODE_CAPACITY_BYTES: float = 128e9


class PlacementError(ValueError):
    """No feasible assignment of model replicas to node memories."""


def _per_node_capacities(
    capacity_bytes: Union[float, Sequence[float]], n_nodes: int
) -> List[float]:
    """Normalize a scalar or per-node capacity argument to one per node."""
    if isinstance(capacity_bytes, (int, float)):
        caps = [float(capacity_bytes)] * n_nodes
    else:
        caps = [float(c) for c in capacity_bytes]
        if len(caps) != n_nodes:
            raise PlacementError(
                f"{len(caps)} capacities for {n_nodes} nodes"
            )
    if any(c <= 0 for c in caps):
        raise PlacementError("node capacities must be positive")
    return caps


@dataclass
class ModelPlacement:
    """An assignment of model-weight replicas to node ids.

    Attributes:
        replicas: model -> node ids hosting a replica, primary first.
        used_bytes: node id -> weight bytes placed on it.
        capacity_bytes: The largest per-node budget the plan was made for
            (the only budget, on a homogeneous fleet).
        node_capacity_bytes: Per-node budgets when they differ; empty for
            homogeneous plans and hand-built placements.
    """

    #: model -> node ids hosting a replica, primary first.
    replicas: Dict[str, List[int]]
    #: node id -> weight bytes placed on it.
    used_bytes: Dict[int, float]
    capacity_bytes: float = DEFAULT_NODE_CAPACITY_BYTES
    #: node id -> capacity, populated when nodes differ in memory.
    node_capacity_bytes: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def plan(
        cls,
        models: Optional[Mapping[str, ModelSpec]] = None,
        n_nodes: int = 1,
        replication: int = 1,
        capacity_bytes: Union[float, Sequence[float]] = DEFAULT_NODE_CAPACITY_BYTES,
    ) -> "ModelPlacement":
        """Greedy most-free-first placement of ``replication`` copies per
        model (worst-fit: balances weight bytes across nodes).

        Args:
            models: Model specs to place; ``None`` places the full zoo.
            n_nodes: Fleet size.
            replication: Copies of each model's weights (``<= n_nodes``).
            capacity_bytes: One shared budget, or one budget per node for
                heterogeneous fleets.

        Returns:
            A deterministic :class:`ModelPlacement`.

        Raises:
            PlacementError: If any replica cannot fit anywhere.
        """
        if n_nodes <= 0:
            raise PlacementError("need at least one node")
        if replication <= 0:
            raise PlacementError("replication factor must be positive")
        if replication > n_nodes:
            raise PlacementError(
                f"replication {replication} exceeds node count {n_nodes}"
            )
        caps = _per_node_capacities(capacity_bytes, n_nodes)
        specs = dict(models) if models is not None else all_models()
        free = {nid: caps[nid] for nid in range(n_nodes)}
        replicas: Dict[str, List[int]] = {}
        # Largest models first so the tight placements happen while nodes
        # are still empty; name tie-break keeps the plan deterministic.
        order = sorted(specs, key=lambda m: (-specs[m].total_weight_bytes, m))
        for name in order:
            need = specs[name].total_weight_bytes
            homes: List[int] = []
            for _ in range(replication):
                fits = [
                    nid
                    for nid, cap in free.items()
                    if nid not in homes and cap >= need
                ]
                if not fits:
                    raise PlacementError(
                        f"cannot place replica of {name!r} "
                        f"({need / 1e9:.1f} GB) on {n_nodes} nodes of "
                        f"{min(caps) / 1e9:.1f}-{max(caps) / 1e9:.1f} GB"
                    )
                target = max(
                    fits, key=lambda nid: (free[nid] / caps[nid], free[nid], -nid)
                )
                free[target] -= need
                homes.append(target)
            replicas[name] = homes
        used = {nid: caps[nid] - cap for nid, cap in free.items()}
        hetero = {nid: caps[nid] for nid in range(n_nodes)} if len(set(caps)) > 1 else {}
        return cls(
            replicas=replicas,
            used_bytes=used,
            capacity_bytes=max(caps),
            node_capacity_bytes=hetero,
        )

    @classmethod
    def plan_for_specs(
        cls,
        models: Optional[Mapping[str, ModelSpec]] = None,
        specs: Sequence[NodeSpec] = (),
        replication: int = 1,
    ) -> "ModelPlacement":
        """:meth:`plan` with each node's budget read off its
        :class:`~repro.serving.NodeSpec` (``memory_bytes``)."""
        if not specs:
            raise PlacementError("need at least one node spec")
        return cls.plan(
            models,
            n_nodes=len(specs),
            replication=replication,
            capacity_bytes=[s.memory_bytes for s in specs],
        )

    @classmethod
    def saturate(
        cls,
        models: Optional[Mapping[str, ModelSpec]] = None,
        specs: Sequence[NodeSpec] = (),
    ) -> "ModelPlacement":
        """Put every model on every node whose memory can take it.

        The heterogeneous analogue of the capacity planner's "replicate
        everywhere" convention: each node hosts as many of the served
        models as fit together in its budget, largest models first — so a
        small GPU node naturally skips datacenter-scale weights while
        still absorbing the models it *can* serve.

        Args:
            models: Model specs to place; ``None`` places the full zoo.
            specs: One :class:`~repro.serving.NodeSpec` per node.

        Returns:
            A :class:`ModelPlacement` where ``replicas[m]`` lists every
            node hosting ``m`` (ascending node id).

        Raises:
            PlacementError: If some model fits on no node at all.
        """
        if not specs:
            raise PlacementError("need at least one node spec")
        model_specs = dict(models) if models is not None else all_models()
        order = sorted(
            model_specs,
            key=lambda m: (-model_specs[m].total_weight_bytes, m),
        )
        replicas: Dict[str, List[int]] = {name: [] for name in model_specs}
        used: Dict[int, float] = {}
        for nid, spec in enumerate(specs):
            free = float(spec.memory_bytes)
            placed = 0.0
            for name in order:
                need = model_specs[name].total_weight_bytes
                if need <= free:
                    free -= need
                    placed += need
                    replicas[name].append(nid)
            used[nid] = placed
        unhosted = sorted(m for m, homes in replicas.items() if not homes)
        if unhosted:
            raise PlacementError(
                f"no node can host {unhosted} within its memory budget"
            )
        caps = [float(s.memory_bytes) for s in specs]
        hetero = (
            {nid: caps[nid] for nid in range(len(specs))}
            if len(set(caps)) > 1
            else {}
        )
        return cls(
            replicas=replicas,
            used_bytes=used,
            capacity_bytes=max(caps),
            node_capacity_bytes=hetero,
        )

    def nodes_for(self, model: str) -> List[int]:
        """Replica node ids for ``model``, primary first.

        Raises:
            KeyError: If the model has no placed replica.
        """
        try:
            return self.replicas[model]
        except KeyError as exc:
            raise KeyError(
                f"model {model!r} has no placed replica; "
                f"placed: {sorted(self.replicas)}"
            ) from exc

    def models_on(self, node_id: int) -> List[str]:
        """Models whose weights live on ``node_id`` (sorted by name)."""
        return sorted(m for m, homes in self.replicas.items() if node_id in homes)
