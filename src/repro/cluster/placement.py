"""Replicated, memory-capacity-aware model-to-node placement.

A StepStone node holds model weights in its PIM-enabled main memory; a
model can only be served by nodes that host a replica of its weights.
Placement therefore decides both *feasibility* (weights must fit in each
node's DRAM) and *load spread* (more replicas mean more nodes can absorb a
model's traffic).

The planner is a deterministic greedy *most-free-first* (worst-fit) pass:
models are placed largest first, and each replica goes to the node with
the most free memory that does not already hold one (ties break toward
the lowest node id) — balancing weight bytes across nodes rather than
packing them tightly.  The first replica of each model is its *primary* —
the affinity router's preferred target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.models.inference import all_models
from repro.models.layers import ModelSpec

__all__ = ["DEFAULT_NODE_CAPACITY_BYTES", "PlacementError", "ModelPlacement"]

#: Default per-node weight budget: one six-channel StepStone socket with
#: buffered-DIMM capacities in the paper's deployment range (~128 GB).
DEFAULT_NODE_CAPACITY_BYTES: float = 128e9


class PlacementError(ValueError):
    """No feasible assignment of model replicas to node memories."""


@dataclass
class ModelPlacement:
    """An assignment of model-weight replicas to node ids."""

    #: model -> node ids hosting a replica, primary first.
    replicas: Dict[str, List[int]]
    #: node id -> weight bytes placed on it.
    used_bytes: Dict[int, float]
    capacity_bytes: float = DEFAULT_NODE_CAPACITY_BYTES

    @classmethod
    def plan(
        cls,
        models: Optional[Mapping[str, ModelSpec]] = None,
        n_nodes: int = 1,
        replication: int = 1,
        capacity_bytes: float = DEFAULT_NODE_CAPACITY_BYTES,
    ) -> "ModelPlacement":
        """Greedy most-free-first placement of ``replication`` copies per
        model (worst-fit: balances bytes across nodes)."""
        if n_nodes <= 0:
            raise PlacementError("need at least one node")
        if replication <= 0:
            raise PlacementError("replication factor must be positive")
        if replication > n_nodes:
            raise PlacementError(
                f"replication {replication} exceeds node count {n_nodes}"
            )
        specs = dict(models) if models is not None else all_models()
        free = {nid: float(capacity_bytes) for nid in range(n_nodes)}
        replicas: Dict[str, List[int]] = {}
        # Largest models first so the tight placements happen while nodes
        # are still empty; name tie-break keeps the plan deterministic.
        order = sorted(specs, key=lambda m: (-specs[m].total_weight_bytes, m))
        for name in order:
            need = specs[name].total_weight_bytes
            homes: List[int] = []
            for _ in range(replication):
                fits = [
                    nid
                    for nid, cap in free.items()
                    if nid not in homes and cap >= need
                ]
                if not fits:
                    raise PlacementError(
                        f"cannot place replica of {name!r} "
                        f"({need / 1e9:.1f} GB) on {n_nodes} nodes of "
                        f"{capacity_bytes / 1e9:.1f} GB"
                    )
                target = max(fits, key=lambda nid: (free[nid], -nid))
                free[target] -= need
                homes.append(target)
            replicas[name] = homes
        used = {
            nid: float(capacity_bytes) - cap for nid, cap in free.items()
        }
        return cls(replicas=replicas, used_bytes=used, capacity_bytes=capacity_bytes)

    def nodes_for(self, model: str) -> List[int]:
        """Replica node ids for ``model``, primary first."""
        try:
            return self.replicas[model]
        except KeyError as exc:
            raise KeyError(
                f"model {model!r} has no placed replica; "
                f"placed: {sorted(self.replicas)}"
            ) from exc

    def models_on(self, node_id: int) -> List[str]:
        """Models whose weights live on ``node_id``."""
        return sorted(m for m, homes in self.replicas.items() if node_id in homes)
