"""Pluggable request routing across a model's replica nodes.

The router sees each request at its arrival instant and picks one node
among those hosting the model's weights (the placement's replica list,
primary first).  Four policies:

* ``round-robin`` — cycle a per-model counter over the replica list;
  oblivious to load, the classic baseline.
* ``least-loaded`` — join-shortest-queue: the replica with the smallest
  backlog (queued + in-flight requests), ties toward the lower node id.
  Adapts to skewed per-model traffic that round-robin spreads blindly.
* ``affinity`` — prefer the primary replica until its backlog reaches a
  spill threshold, then fall back to join-shortest-queue over all
  replicas.  Concentrating a model's traffic yields larger same-model
  batches (better amortization of weight streaming) while the spillover
  bounds queueing under bursts.
* ``backend-affinity`` — the heterogeneous-fleet economics policy: among
  replicas whose hardware can still meet the request's SLO (remaining
  busy time plus batch-1 service under the bound), pick the *cheapest*
  ($/hr), breaking ties join-shortest-queue.  Cheap StepStone nodes
  absorb baseline traffic until their queues make them infeasible, at
  which point requests spill to faster, pricier substrates — exactly the
  mixed-fleet behavior the cost-aware planner sizes for.  Without an SLO
  (or with no feasible replica) it degrades to join-shortest-queue with a
  cost tie-break, so load still spreads.

All policies are deterministic: same request stream, same decisions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.node import ClusterNode
from repro.serving.engine import Request

__all__ = [
    "ROUTER_POLICIES",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "AffinityRouter",
    "BackendAffinityRouter",
    "make_router",
]

#: Routing policies understood by :func:`make_router`.
ROUTER_POLICIES: Tuple[str, ...] = (
    "round-robin",
    "least-loaded",
    "affinity",
    "backend-affinity",
)


class Router:
    """Base router: picks one node among a model's replicas."""

    name = "base"

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        """Pick the node that will queue ``request``.

        Args:
            request: The arriving request.
            replicas: Nodes hosting the request's model, primary first
                (never empty).
            clock: The arrival instant.

        Returns:
            The chosen node.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-stream state (called once per simulation run)."""


class RoundRobinRouter(Router):
    """Cycle each model's requests over its replica list."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next: dict = {}

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        """Return the next replica in the model's cycle."""
        i = self._next.get(request.model, 0)
        self._next[request.model] = i + 1
        return replicas[i % len(replicas)]

    def reset(self) -> None:
        """Restart every model's cycle at its primary replica."""
        self._next.clear()


def _shortest_queue(replicas: List[ClusterNode]) -> ClusterNode:
    return min(replicas, key=lambda n: (n.backlog(), n.node_id))


class LeastLoadedRouter(Router):
    """Join-shortest-queue over the model's replicas."""

    name = "least-loaded"

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        """Return the replica with the smallest backlog (ties: lower id)."""
        return _shortest_queue(replicas)


class AffinityRouter(Router):
    """Primary replica first; spill to join-shortest-queue under pressure.

    Args:
        spill_backlog: Backlog at which the primary stops absorbing new
            requests; ``None`` defaults to the node's batch cap (one full
            batch wave already waiting) at route time.
    """

    name = "affinity"

    def __init__(self, spill_backlog: Optional[int] = None) -> None:
        #: Backlog at which the primary stops absorbing new requests;
        #: ``None`` defaults to the node's batch cap (one full batch wave
        #: already waiting) at route time.
        self.spill_backlog = spill_backlog

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        """Return the primary while below the spill threshold, else JSQ."""
        primary = replicas[0]
        limit = (
            self.spill_backlog if self.spill_backlog is not None else primary.max_batch
        )
        if primary.backlog() < limit:
            return primary
        return _shortest_queue(replicas)


class BackendAffinityRouter(Router):
    """Cheapest SLO-feasible backend first; join-shortest-queue fallback.

    A replica is *feasible* for a request when its remaining busy time
    plus a batch-1 service on its hardware still fits the request's SLO —
    a deliberately cheap estimate (queued work behind the in-flight batch
    is ignored, and batching will usually do better than batch-1) that
    only has to rank substrates, not predict latency.
    """

    name = "backend-affinity"

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        """Return the cheapest feasible replica (ties: backlog, node id).

        Without an SLO — or when every replica is already infeasible —
        falls back to join-shortest-queue with an hourly-cost tie-break,
        so best-effort traffic still spreads by load.
        """
        slo = request.slo_s
        if slo is not None:
            slack = slo - (clock - request.arrival_s)
            feasible = [
                n
                for n in replicas
                if n.eta_s(clock) + n.min_latency(request.model) <= slack
            ]
            if feasible:
                return min(
                    feasible,
                    key=lambda n: (n.spec.hourly_cost, n.backlog(), n.node_id),
                )
        return min(
            replicas,
            key=lambda n: (n.backlog(), n.spec.hourly_cost, n.node_id),
        )


def make_router(policy: str, **kwargs) -> Router:
    """Build a router by policy name.

    Args:
        policy: One of :data:`ROUTER_POLICIES`.
        **kwargs: Forwarded to the router's constructor (e.g.
            ``spill_backlog`` for ``affinity``).

    Returns:
        A fresh :class:`Router`.

    Raises:
        ValueError: On an unknown policy name.
    """
    if policy == "round-robin":
        return RoundRobinRouter(**kwargs)
    if policy == "least-loaded":
        return LeastLoadedRouter(**kwargs)
    if policy == "affinity":
        return AffinityRouter(**kwargs)
    if policy == "backend-affinity":
        return BackendAffinityRouter(**kwargs)
    raise ValueError(
        f"unknown router policy {policy!r}; choose from {ROUTER_POLICIES}"
    )
