"""Pluggable request routing across a model's replica nodes.

The router sees each request at its arrival instant and picks one node
among those hosting the model's weights (the placement's replica list,
primary first).  Three policies:

* ``round-robin`` — cycle a per-model counter over the replica list;
  oblivious to load, the classic baseline.
* ``least-loaded`` — join-shortest-queue: the replica with the smallest
  backlog (queued + in-flight requests), ties toward the lower node id.
  Adapts to skewed per-model traffic that round-robin spreads blindly.
* ``affinity`` — prefer the primary replica until its backlog reaches a
  spill threshold, then fall back to join-shortest-queue over all
  replicas.  Concentrating a model's traffic yields larger same-model
  batches (better amortization of weight streaming) while the spillover
  bounds queueing under bursts.

All policies are deterministic: same request stream, same decisions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.node import ClusterNode
from repro.serving.engine import Request

__all__ = [
    "ROUTER_POLICIES",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "AffinityRouter",
    "make_router",
]

#: Routing policies understood by :func:`make_router`.
ROUTER_POLICIES: Tuple[str, ...] = ("round-robin", "least-loaded", "affinity")


class Router:
    """Base router: picks one node among a model's replicas."""

    name = "base"

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-stream state (called once per simulation run)."""


class RoundRobinRouter(Router):
    """Cycle each model's requests over its replica list."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next: dict = {}

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        i = self._next.get(request.model, 0)
        self._next[request.model] = i + 1
        return replicas[i % len(replicas)]

    def reset(self) -> None:
        self._next.clear()


def _shortest_queue(replicas: List[ClusterNode]) -> ClusterNode:
    return min(replicas, key=lambda n: (n.backlog(), n.node_id))


class LeastLoadedRouter(Router):
    """Join-shortest-queue over the model's replicas."""

    name = "least-loaded"

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        return _shortest_queue(replicas)


class AffinityRouter(Router):
    """Primary replica first; spill to join-shortest-queue under pressure."""

    name = "affinity"

    def __init__(self, spill_backlog: Optional[int] = None) -> None:
        #: Backlog at which the primary stops absorbing new requests;
        #: ``None`` defaults to the node's batch cap (one full batch wave
        #: already waiting) at route time.
        self.spill_backlog = spill_backlog

    def route(
        self, request: Request, replicas: List[ClusterNode], clock: float
    ) -> ClusterNode:
        primary = replicas[0]
        limit = (
            self.spill_backlog if self.spill_backlog is not None else primary.max_batch
        )
        if primary.backlog() < limit:
            return primary
        return _shortest_queue(replicas)


def make_router(policy: str, **kwargs) -> Router:
    """Build a router by policy name (see :data:`ROUTER_POLICIES`)."""
    if policy == "round-robin":
        return RoundRobinRouter(**kwargs)
    if policy == "least-loaded":
        return LeastLoadedRouter(**kwargs)
    if policy == "affinity":
        return AffinityRouter(**kwargs)
    raise ValueError(
        f"unknown router policy {policy!r}; choose from {ROUTER_POLICIES}"
    )
