"""Multi-node fleet serving on simulated StepStone nodes.

The paper frames StepStone PIM as a datacenter substrate: cheap bandwidth
per node that a provider deploys as a *fleet*.  This package adds the layer
above :mod:`repro.serving` — many nodes on one shared simulated clock:

* :mod:`~repro.cluster.placement` — replicated, memory-capacity-aware
  assignment of model weights to nodes;
* :mod:`~repro.cluster.router` — pluggable request routing (round-robin,
  join-shortest-queue, model affinity with replica spillover);
* :mod:`~repro.cluster.node` — one StepStone node: queue, FIFO per-model
  batching, SLO admission, and the per-node dispatch policy;
* :mod:`~repro.cluster.fleet` — the discrete-event fleet simulator and its
  aggregated :class:`~repro.cluster.fleet.ClusterReport`;
* :mod:`~repro.cluster.planner` — capacity planning: the minimum node
  count sustaining a target load at a p99 SLO, and the heterogeneous
  cost-minimizing search (`HeteroCapacityPlanner`) over mixed
  CPU/GPU/StepStone fleets.

Nodes need not be StepStone: every node carries a
:class:`~repro.serving.NodeSpec` (backend, memory, $/hr, power), and an
all-StepStone spec list reproduces the homogeneous fleet request for
request.
"""

from repro.cluster.fleet import Cluster, ClusterReport
from repro.cluster.node import ClusterNode
from repro.cluster.placement import (
    DEFAULT_NODE_CAPACITY_BYTES,
    ModelPlacement,
    PlacementError,
)
from repro.cluster.planner import (
    CapacityPlan,
    CapacityPlanner,
    HeteroCapacityPlan,
    HeteroCapacityPlanner,
)
from repro.cluster.router import (
    ROUTER_POLICIES,
    AffinityRouter,
    BackendAffinityRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    make_router,
)

__all__ = [
    "Cluster",
    "ClusterReport",
    "ClusterNode",
    "ModelPlacement",
    "PlacementError",
    "DEFAULT_NODE_CAPACITY_BYTES",
    "CapacityPlan",
    "CapacityPlanner",
    "HeteroCapacityPlan",
    "HeteroCapacityPlanner",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "AffinityRouter",
    "BackendAffinityRouter",
    "ROUTER_POLICIES",
    "make_router",
]
